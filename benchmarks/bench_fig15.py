"""Regenerates fig15 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_fig15(benchmark):
    tables = run_experiment_bench(benchmark, "fig15")
    assert tables and tables[0].rows
