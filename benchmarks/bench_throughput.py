"""Hot-loop micro-benchmarks: simulator and generator throughput."""

import pytest

from repro.config import CacheParams, KB, LLCConfig
from repro.sim.future import next_use_indices
from repro.sim.offline import simulate_trace
from repro.trace import synth
from repro.workloads.apps import ALL_APPS
from repro.workloads.framegen import generate_frame_trace

LLC = LLCConfig(params=CacheParams(128 * KB, ways=16), banks=1, sample_period=16)


@pytest.fixture(scope="module")
def mixed_trace():
    return synth.producer_consumer(
        1024, 8, consume_fraction=0.7, gap_blocks=4096
    )


@pytest.mark.parametrize(
    "policy", ["lru", "nru", "drrip", "ship-mem", "gspc", "belady"]
)
def test_policy_throughput(benchmark, mixed_trace, policy):
    """Accesses simulated per second, per policy."""
    result = benchmark(simulate_trace, mixed_trace, policy, LLC)
    assert result.accesses == len(mixed_trace)


@pytest.mark.parametrize("observer", ["off", "sampling"])
def test_observer_overhead(benchmark, mixed_trace, observer):
    """Replay throughput with and without the sampling event observer.

    Compare the two rows to measure the observer tax (target: < 5%
    replay-throughput regression, so telemetry can stay on by default).
    """
    from repro.obs.events import SamplingObserver

    def run():
        obs = SamplingObserver() if observer == "sampling" else None
        return simulate_trace(mixed_trace, "drrip", LLC, observer=obs)

    result = benchmark(run)
    assert result.accesses == len(mixed_trace)


def test_next_use_precompute_throughput(benchmark, mixed_trace):
    blocks = mixed_trace.block_addresses()
    benchmark(next_use_indices, blocks)


def test_frame_generation_throughput(benchmark):
    """Synthetic-frame synthesis speed (1/16 linear scale)."""
    trace = benchmark.pedantic(
        generate_frame_trace,
        args=(ALL_APPS[0], 0),
        kwargs={"scale": 0.0625},
        rounds=1,
        iterations=1,
    )
    assert len(trace) > 0


def test_detailed_timing_throughput(benchmark, mixed_trace):
    """Event-driven timing model: accesses simulated per second."""
    from repro.config import paper_baseline
    from repro.gpu.detailed import DetailedGPUSimulator

    simulator = DetailedGPUSimulator(paper_baseline(llc_mb=8, scale=0.125))
    timing = benchmark(simulator.run, mixed_trace, "drrip")
    assert timing.accesses == len(mixed_trace)


def test_reuse_distance_throughput(benchmark, mixed_trace):
    """Fenwick-tree stack distances: accesses processed per second."""
    from repro.analysis.reuse import reuse_distances

    blocks = mixed_trace.block_addresses().tolist()
    benchmark(reuse_distances, blocks)
