"""Hot-loop micro-benchmarks: simulator and generator throughput.

Run under pytest-benchmark for the per-policy hot-loop numbers, or as a
script for the CI benchmark-regression smoke::

    PYTHONPATH=src python benchmarks/bench_throughput.py --out BENCH_parallel.json

The script mode replays a small trace under a policy roster twice —
serially and fanned out with :func:`repro.parallel.run_policy_sims` —
and emits a JSON report with accesses/sec per policy plus the serial vs
parallel wall times, so CI can track both simulator throughput and the
``--jobs`` engine's overhead over time.
"""

from repro.config import CacheParams, KB, LLCConfig
from repro.sim.future import next_use_indices
from repro.sim.offline import simulate_trace
from repro.trace import synth
from repro.workloads.apps import ALL_APPS
from repro.workloads.framegen import generate_frame_trace

try:
    import pytest
except ImportError:  # script mode: the CI bench job installs only numpy
    pytest = None

LLC = LLCConfig(params=CacheParams(128 * KB, ways=16), banks=1, sample_period=16)

if pytest is not None:

    @pytest.fixture(scope="module")
    def mixed_trace():
        return synth.producer_consumer(
            1024, 8, consume_fraction=0.7, gap_blocks=4096
        )

    @pytest.mark.parametrize(
        "policy", ["lru", "nru", "drrip", "ship-mem", "gspc", "belady"]
    )
    def test_policy_throughput(benchmark, mixed_trace, policy):
        """Accesses simulated per second, per policy."""
        result = benchmark(simulate_trace, mixed_trace, policy, LLC)
        assert result.accesses == len(mixed_trace)

    @pytest.mark.parametrize("observer", ["off", "sampling"])
    def test_observer_overhead(benchmark, mixed_trace, observer):
        """Replay throughput with and without the sampling event observer.

        Compare the two rows to measure the observer tax (target: < 5%
        replay-throughput regression, so telemetry can stay on by default).
        """
        from repro.obs.events import SamplingObserver

        def run():
            obs = SamplingObserver() if observer == "sampling" else None
            return simulate_trace(mixed_trace, "drrip", LLC, observer=obs)

        result = benchmark(run)
        assert result.accesses == len(mixed_trace)

    def test_next_use_precompute_throughput(benchmark, mixed_trace):
        blocks = mixed_trace.block_addresses()
        benchmark(next_use_indices, blocks)

    def test_frame_generation_throughput(benchmark):
        """Synthetic-frame synthesis speed (1/16 linear scale)."""
        trace = benchmark.pedantic(
            generate_frame_trace,
            args=(ALL_APPS[0], 0),
            kwargs={"scale": 0.0625},
            rounds=1,
            iterations=1,
        )
        assert len(trace) > 0

    def test_detailed_timing_throughput(benchmark, mixed_trace):
        """Event-driven timing model: accesses simulated per second."""
        from repro.config import paper_baseline
        from repro.gpu.detailed import DetailedGPUSimulator

        simulator = DetailedGPUSimulator(paper_baseline(llc_mb=8, scale=0.125))
        timing = benchmark(simulator.run, mixed_trace, "drrip")
        assert timing.accesses == len(mixed_trace)

    def test_reuse_distance_throughput(benchmark, mixed_trace):
        """Fenwick-tree stack distances: accesses processed per second."""
        from repro.analysis.reuse import reuse_distances

        blocks = mixed_trace.block_addresses().tolist()
        benchmark(reuse_distances, blocks)


# -- CI smoke script ----------------------------------------------------------

SMOKE_POLICIES = ("drrip", "nru", "gspc", "gspc+ucd", "belady")


def run_smoke(jobs: int = 2, scale: float = 0.0625) -> dict:
    """Serial vs parallel replay of one small frame; returns the report."""
    import time

    from repro.config import paper_baseline
    from repro.parallel import resolve_jobs, run_policy_sims
    from repro.workloads.apps import ALL_APPS
    from repro.workloads.framegen import generate_frame_trace

    workers = resolve_jobs(jobs)
    trace = generate_frame_trace(ALL_APPS[0], 0, scale)
    llc = paper_baseline(llc_mb=8, scale=scale).llc

    started = time.perf_counter()
    serial = run_policy_sims(trace, SMOKE_POLICIES, llc, workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_policy_sims(trace, SMOKE_POLICIES, llc, workers=workers)
    parallel_seconds = time.perf_counter() - started

    for (_, a, *_), (_, b, *_) in zip(serial, parallel):
        assert a.stats.snapshot() == b.stats.snapshot(), (
            f"serial/parallel divergence under {a.policy}"
        )
    return {
        "trace": {"name": trace.meta.get("name"), "accesses": len(trace)},
        "scale": scale,
        "workers": workers,
        "policies": list(SMOKE_POLICIES),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds else 1.0,
        "accesses_per_second": {
            name: result.replay_accesses_per_second
            for name, result, *_ in serial
        },
    }


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Benchmark-regression smoke: serial vs parallel replay."
    )
    parser.add_argument(
        "--out", default="BENCH_parallel.json", help="report path"
    )
    parser.add_argument("--jobs", type=int, default=2, help="worker count")
    parser.add_argument(
        "--scale", type=float, default=0.0625, help="linear frame scale"
    )
    args = parser.parse_args(argv)
    report = run_smoke(jobs=args.jobs, scale=args.scale)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    slowest = min(report["accesses_per_second"].values())
    print(
        f"wrote {args.out}: {report['trace']['accesses']:,} accesses, "
        f"serial {report['serial_seconds']:.2f}s vs parallel "
        f"{report['parallel_seconds']:.2f}s "
        f"(x{report['speedup']:.2f}, slowest policy {slowest:,.0f} acc/s)"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
