"""Ablation bench: contribution of each GSPC design ingredient."""

from conftest import run_experiment_bench


def test_ablation(benchmark):
    tables = run_experiment_bench(benchmark, "ablation")
    assert len(tables) == 5
