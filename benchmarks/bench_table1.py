"""Regenerates table1 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_table1(benchmark):
    tables = run_experiment_bench(benchmark, "table1")
    assert tables and tables[0].rows
