"""Benchmark-regression gate for the CI bench-smoke job.

Compares a freshly generated ``BENCH_parallel.json`` (see
``bench_throughput.py``) against the committed ``BENCH_baseline.json``
and fails if any policy's accesses/sec dropped more than the threshold
below baseline::

    PYTHONPATH=src python benchmarks/check_regression.py \\
        --report BENCH_parallel.json --baseline BENCH_baseline.json

The delta table prints either way, so every CI run leaves a throughput
record in its log.  A policy present in the baseline but missing from
the report is a failure (a silently dropped benchmark is a regression
too); new policies in the report are reported but never gate.  Refresh
the committed baseline with ``--update`` after an intentional
performance change.

``--sweep-report BENCH_sweep.json`` additionally (or, with
``--sweep-only``, exclusively) gates the sweep orchestrator's overhead
over bare ``run_jobs`` (see ``bench_sweep.py``) against
``--sweep-overhead-limit`` (default 5%).  When the report carries a
``traced_overhead_fraction`` (tracing-enabled sweep vs plain sweep),
that fraction is held to the same limit.

``--fastsim-report BENCH_fastsim_ci.json --fastsim-baseline
BENCH_fastsim.json`` gates the fast-engine replay throughput (see
``bench_fastsim.py``) per workload and policy under the same
``--threshold`` drop rule, printing the speedup delta table either way.

``--serve-report BENCH_serve_ci.json --serve-baseline
BENCH_serve.json`` gates the ``gspc-serve`` load benchmark (see
``bench_serve.py``): request throughput may not drop, and p99 latency
may not rise, by more than ``--threshold``.  ``--serve-only`` skips
the main throughput gate, mirroring ``--sweep-only``.

Mode flags are validated strictly: combinations that would silently
skip a requested gate (``--update`` alongside any report flag,
``--sweep-only``/``--serve-only`` alongside a gate they don't run)
are usage errors, exit code 2.
"""

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.25
DEFAULT_SWEEP_OVERHEAD_LIMIT = 0.05


def load_throughput(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    table = report.get("accesses_per_second")
    if not isinstance(table, dict) or not table:
        raise SystemExit(f"error: {path} has no accesses_per_second table")
    return {name: float(value) for name, value in table.items()}


def compare(baseline: dict, current: dict, threshold: float):
    """Per-policy delta rows plus the list of failures."""
    rows = []
    failures = []
    for policy in sorted(set(baseline) | set(current)):
        base = baseline.get(policy)
        now = current.get(policy)
        if base is None:
            rows.append((policy, None, now, None, "new"))
            continue
        if now is None:
            rows.append((policy, base, None, None, "MISSING"))
            failures.append(f"{policy}: missing from report")
            continue
        delta = (now - base) / base
        status = "ok"
        if delta < -threshold:
            status = "FAIL"
            failures.append(
                f"{policy}: {now:,.0f}/s is {-delta:.1%} below "
                f"baseline {base:,.0f}/s (limit {threshold:.0%})"
            )
        rows.append((policy, base, now, delta, status))
    return rows, failures


def print_table(rows) -> None:
    print(f"{'policy':12s} {'baseline/s':>14s} {'current/s':>14s} "
          f"{'delta':>8s}  status")
    for policy, base, now, delta, status in rows:
        base_s = f"{base:,.0f}" if base is not None else "-"
        now_s = f"{now:,.0f}" if now is not None else "-"
        delta_s = f"{delta:+.1%}" if delta is not None else "-"
        print(f"{policy:12s} {base_s:>14s} {now_s:>14s} {delta_s:>8s}  {status}")


def check_sweep_overhead(path: str, limit: float) -> list:
    """Failure messages for the sweep-orchestration overhead gate."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    overhead = report.get("overhead_fraction")
    if not isinstance(overhead, (int, float)) or isinstance(overhead, bool):
        return [f"{path} has no numeric overhead_fraction"]
    print(
        f"sweep orchestration: bare {report.get('bare_min', 0):.2f}s vs "
        f"sweep {report.get('sweep_min', 0):.2f}s "
        f"(overhead {overhead:+.1%}, limit {limit:.0%})"
    )
    failures = []
    if overhead > limit:
        failures.append(
            f"sweep orchestration overhead {overhead:.1%} exceeds "
            f"the {limit:.0%} limit"
        )
    # Tracing gate: only present in reports from bench_sweep.py versions
    # that time the traced side; older reports pass vacuously.
    traced = report.get("traced_overhead_fraction")
    if traced is not None:
        if not isinstance(traced, (int, float)) or isinstance(traced, bool):
            failures.append(f"{path} has a non-numeric traced_overhead_fraction")
        else:
            print(
                f"sweep tracing: sweep {report.get('sweep_min', 0):.2f}s vs "
                f"traced {report.get('traced_min', 0):.2f}s "
                f"(overhead {traced:+.1%}, limit {limit:.0%})"
            )
            if traced > limit:
                failures.append(
                    f"sweep tracing overhead {traced:.1%} exceeds "
                    f"the {limit:.0%} limit"
                )
    return failures


def _load_fastsim_rows(path: str) -> dict:
    """``(workload, policy) -> row`` from a ``bench_fastsim.py`` report."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    workloads = report.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        raise SystemExit(f"error: {path} has no workloads table")
    return {
        (workload, policy): row
        for workload, section in workloads.items()
        for policy, row in section.get("results", {}).items()
    }


def check_fastsim(report_path: str, baseline_path: str, threshold: float) -> list:
    """Failure messages for the fast-engine throughput gate.

    Gates ``fast_accesses_per_second`` per (workload, policy) with the
    same drop rule as the main table, and prints the speedup delta so
    every CI log records how far ahead of the reference engine each
    kernel currently is.
    """
    current = _load_fastsim_rows(report_path)
    baseline = _load_fastsim_rows(baseline_path)
    print(f"{'workload':10s} {'policy':12s} {'baseline':>14s} {'current':>14s} "
          f"{'delta':>8s} {'speedup':>14s}  status")
    failures = []
    for key in sorted(set(baseline) | set(current)):
        workload, policy = key
        base = baseline.get(key)
        now = current.get(key)
        if base is None:
            speed = f"x{now['speedup']:.2f}"
            print(f"{workload:10s} {policy:12s} {'-':>14s} "
                  f"{now['fast_accesses_per_second']:>14,.0f} {'-':>8s} "
                  f"{speed:>14s}  new")
            continue
        if now is None:
            print(f"{workload:10s} {policy:12s} "
                  f"{base['fast_accesses_per_second']:>14,.0f} {'-':>14s} "
                  f"{'-':>8s} {'-':>14s}  MISSING")
            failures.append(f"fastsim {workload}/{policy}: missing from report")
            continue
        base_fast = float(base["fast_accesses_per_second"])
        now_fast = float(now["fast_accesses_per_second"])
        delta = (now_fast - base_fast) / base_fast
        speed = f"x{base['speedup']:.2f}->x{now['speedup']:.2f}"
        status = "ok"
        if delta < -threshold:
            status = "FAIL"
            failures.append(
                f"fastsim {workload}/{policy}: {now_fast:,.0f}/s is "
                f"{-delta:.1%} below baseline {base_fast:,.0f}/s "
                f"(limit {threshold:.0%})"
            )
        print(f"{workload:10s} {policy:12s} {base_fast:>14,.0f} "
              f"{now_fast:>14,.0f} {delta:>+8.1%} {speed:>14s}  {status}")
    return failures


def check_serve(report_path: str, baseline_path: str, threshold: float) -> list:
    """Failure messages for the gspc-serve load gate.

    Throughput is better-higher, p99 latency better-lower; each is held
    to the same fractional limit.  p50 prints for the log but never
    gates — median latency on a shared runner is too noisy to block on.
    """
    with open(report_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = []
    print(f"{'metric':16s} {'baseline':>14s} {'current':>14s} "
          f"{'delta':>8s}  status")
    # (key, better, gated, format) — "delta" is always (now-base)/base;
    # the sign that fails depends on which direction is better.
    metrics = (
        ("throughput_rps", "higher", True, "{:,.0f}"),
        ("p99_seconds", "lower", True, "{:.4f}"),
        ("p50_seconds", "lower", False, "{:.4f}"),
    )
    for key, better, gated, fmt in metrics:
        base = baseline.get(key)
        now = report.get(key)
        for path, value in ((baseline_path, base), (report_path, now)):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SystemExit(f"error: {path} has no numeric {key}")
        delta = (now - base) / base if base else 0.0
        regressed = delta < -threshold if better == "higher" else delta > threshold
        status = "info" if not gated else ("FAIL" if regressed else "ok")
        print(f"{key:16s} {fmt.format(base):>14s} {fmt.format(now):>14s} "
              f"{delta:>+8.1%}  {status}")
        if gated and regressed:
            worse = "below" if better == "higher" else "above"
            failures.append(
                f"serve {key}: {fmt.format(now)} is {abs(delta):.1%} {worse} "
                f"baseline {fmt.format(base)} (limit {threshold:.0%})"
            )
    return failures


def validate_modes(parser, args) -> None:
    """Reject flag combinations that would silently skip a gate.

    Historically ``--update`` and ``--sweep-only`` simply ignored any
    other report flag on the command line — a CI edit could believe it
    was gating something it never ran.  Every such combination is now a
    usage error (argparse ``error()``, exit code 2).
    """
    exclusive = [
        flag
        for flag, enabled in (
            ("--update", args.update),
            ("--sweep-only", args.sweep_only),
            ("--serve-only", args.serve_only),
        )
        if enabled
    ]
    if len(exclusive) > 1:
        parser.error(" and ".join(exclusive) + " are mutually exclusive")
    if args.sweep_only and not args.sweep_report:
        parser.error("--sweep-only requires --sweep-report")
    if args.serve_only and not args.serve_report:
        parser.error("--serve-only requires --serve-report")
    ignored = []
    if args.update:
        ignored = [
            flag
            for flag, value in (
                ("--sweep-report", args.sweep_report),
                ("--fastsim-report", args.fastsim_report),
                ("--serve-report", args.serve_report),
            )
            if value
        ]
    elif args.sweep_only:
        ignored = [
            flag
            for flag, value in (
                ("--fastsim-report", args.fastsim_report),
                ("--serve-report", args.serve_report),
            )
            if value
        ]
    elif args.serve_only:
        ignored = [
            flag
            for flag, value in (
                ("--sweep-report", args.sweep_report),
                ("--fastsim-report", args.fastsim_report),
            )
            if value
        ]
    if ignored:
        parser.error(
            f"{exclusive[0]} would silently skip {', '.join(ignored)}; "
            "run them in a separate invocation"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when benchmark throughput regresses."
    )
    parser.add_argument(
        "--report", default="BENCH_parallel.json", help="fresh bench report"
    )
    parser.add_argument(
        "--baseline", default="BENCH_baseline.json", help="committed baseline"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated fractional drop (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the report instead of gating",
    )
    parser.add_argument(
        "--sweep-report",
        metavar="PATH",
        help="also gate a bench_sweep.py report (BENCH_sweep.json)",
    )
    parser.add_argument(
        "--sweep-overhead-limit",
        type=float,
        default=DEFAULT_SWEEP_OVERHEAD_LIMIT,
        help="max tolerated sweep-orchestration overhead (default 0.05)",
    )
    parser.add_argument(
        "--sweep-only",
        action="store_true",
        help="skip the throughput gate; check only --sweep-report",
    )
    parser.add_argument(
        "--fastsim-report",
        metavar="PATH",
        help="also gate a fresh bench_fastsim.py report",
    )
    parser.add_argument(
        "--fastsim-baseline",
        metavar="PATH",
        default="BENCH_fastsim.json",
        help="committed fast-engine baseline (default BENCH_fastsim.json)",
    )
    parser.add_argument(
        "--serve-report",
        metavar="PATH",
        help="also gate a fresh bench_serve.py report",
    )
    parser.add_argument(
        "--serve-baseline",
        metavar="PATH",
        default="BENCH_serve.json",
        help="committed serve-load baseline (default BENCH_serve.json)",
    )
    parser.add_argument(
        "--serve-only",
        action="store_true",
        help="skip the throughput gate; check only --serve-report",
    )
    args = parser.parse_args(argv)
    validate_modes(parser, args)

    if args.sweep_only:
        failures = check_sweep_overhead(args.sweep_report, args.sweep_overhead_limit)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if not failures:
            print("sweep orchestration overhead within limit")
        return 1 if failures else 0

    if args.serve_only:
        failures = check_serve(
            args.serve_report, args.serve_baseline, args.threshold
        )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if not failures:
            print(f"serve load within {args.threshold:.0%} of baseline")
        return 1 if failures else 0

    current = load_throughput(args.report)
    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump({"accesses_per_second": current}, handle, indent=2)
            handle.write("\n")
        print(f"updated {args.baseline} from {args.report}")
        return 0

    baseline = load_throughput(args.baseline)
    rows, failures = compare(baseline, current, args.threshold)
    print_table(rows)
    if args.sweep_report:
        failures.extend(
            check_sweep_overhead(args.sweep_report, args.sweep_overhead_limit)
        )
    if args.fastsim_report:
        print()
        failures.extend(
            check_fastsim(
                args.fastsim_report, args.fastsim_baseline, args.threshold
            )
        )
    if args.serve_report:
        print()
        failures.extend(
            check_serve(args.serve_report, args.serve_baseline, args.threshold)
        )
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nall policies within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
