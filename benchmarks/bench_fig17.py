"""Regenerates fig17 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_fig17(benchmark):
    tables = run_experiment_bench(benchmark, "fig17")
    assert tables and tables[0].rows
