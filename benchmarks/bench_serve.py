"""gspc-serve load benchmark.

Starts a real ``gspc-serve`` process on an ephemeral port, warms its
content-addressed store with one tiny sweep, then hammers the HTTP API
from ``--clients`` concurrent clients for ``--rounds`` timed rounds.
Every request in the load phase is a store-backed operation (cache-hit
submit, status, result, stats), so the report measures the service
stack — HTTP framing, event-loop dispatch, store reads — not
simulation time::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json

Throughput is the best round (requests/sec); latency percentiles are
the best round's, so both reflect machinery cost rather than scheduler
noise — the same best-of-rounds convention as ``bench_sweep.py``.  CI
regenerates the report and gates it against the committed
``BENCH_serve.json`` via ``check_regression.py --serve-report``
(p99 latency and throughput, 25% degradation rule).
"""

import time

#: The warm-up spec: one policy, one frame, tiny scale — just enough to
#: put one real result in the store for the load phase to hit.
WARM_SPEC = {
    "name": "bench-serve",
    "policies": ["drrip"],
    "apps": ["DMC"],
    "scale": 0.0625,
    "llc_mb": [8],
}


def percentile(sorted_seconds, fraction: float) -> float:
    """Nearest-rank percentile of an ascending latency list."""
    if not sorted_seconds:
        return 0.0
    index = min(len(sorted_seconds) - 1, int(fraction * len(sorted_seconds)))
    return sorted_seconds[index]


def run_bench(
    clients: int = 4,
    requests_per_client: int = 50,
    rounds: int = 3,
    base_dir: str = ".",
) -> dict:
    import os
    import signal
    import subprocess
    import sys
    import threading

    from repro.serve.client import ServeClient, read_port_file

    store_dir = os.path.join(base_dir, "store")
    port_file = os.path.join(base_dir, "serve.port")
    # Server stderr goes to serve.log so CI can upload it on failure.
    log_handle = open(os.path.join(base_dir, "serve.log"), "wb")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--store", store_dir,
            "--port", "0",
            "--port-file", port_file,
            "--cache-dir", os.path.join(base_dir, "cache"),
        ],
        stdout=subprocess.DEVNULL,
        stderr=log_handle,
    )
    try:
        deadline = time.time() + 30
        while not os.path.exists(port_file):
            if time.time() > deadline:
                raise RuntimeError("gspc-serve never wrote its port file")
            time.sleep(0.05)
        address = read_port_file(port_file)
        control = ServeClient(address)
        control.wait_until_up()

        started = time.perf_counter()
        key = control.submit(WARM_SPEC)["key"]
        control.wait(key, timeout=300)
        cold_compute_seconds = time.perf_counter() - started

        def client_body(latencies: list) -> None:
            client = ServeClient(address)
            # One submit (cache hit), then a status/result/stats rotation
            # — the mix a dashboard polling finished work generates.
            ops = [
                lambda: client.submit(WARM_SPEC),
                lambda: client.status(key),
                lambda: client.result(key),
                lambda: client.stats(),
            ]
            for i in range(requests_per_client):
                op = ops[i % len(ops)]
                op_started = time.perf_counter()
                op()
                latencies.append(time.perf_counter() - op_started)

        round_stats = []
        for _ in range(rounds):
            per_client = [[] for _ in range(clients)]
            threads = [
                threading.Thread(target=client_body, args=(per_client[i],))
                for i in range(clients)
            ]
            round_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - round_started
            latencies = sorted(
                latency for chunk in per_client for latency in chunk
            )
            round_stats.append(
                {
                    "requests": len(latencies),
                    "seconds": wall,
                    "throughput_rps": len(latencies) / wall,
                    "p50_seconds": percentile(latencies, 0.50),
                    "p99_seconds": percentile(latencies, 0.99),
                }
            )
        best = max(round_stats, key=lambda row: row["throughput_rps"])
        control.shutdown()
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGKILL)
            server.wait()
        log_handle.close()
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "rounds": rounds,
        "requests_total": sum(row["requests"] for row in round_stats),
        "cold_compute_seconds": cold_compute_seconds,
        "round_stats": round_stats,
        # Gated metrics: the best round, so noise can only help.
        "throughput_rps": best["throughput_rps"],
        "p50_seconds": best["p50_seconds"],
        "p99_seconds": best["p99_seconds"],
    }


def main(argv=None) -> int:
    import argparse
    import json
    import tempfile

    parser = argparse.ArgumentParser(
        description="Load-test gspc-serve and report latency/throughput."
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="report path")
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent clients"
    )
    parser.add_argument(
        "--requests", type=int, default=50, help="requests per client per round"
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timed rounds (best is reported)"
    )
    parser.add_argument(
        "--dir", default=None,
        help="working directory to keep (serve.log, store, WAL) for "
        "post-mortems; default is an ephemeral tempdir",
    )
    args = parser.parse_args(argv)
    if args.dir:
        import os

        os.makedirs(args.dir, exist_ok=True)
        report = run_bench(
            clients=args.clients,
            requests_per_client=args.requests,
            rounds=args.rounds,
            base_dir=args.dir,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as base_dir:
            report = run_bench(
                clients=args.clients,
                requests_per_client=args.requests,
                rounds=args.rounds,
                base_dir=base_dir,
            )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {args.out}: {report['throughput_rps']:,.0f} req/s over "
        f"{args.clients} client(s), p50 {report['p50_seconds'] * 1e3:.2f}ms, "
        f"p99 {report['p99_seconds'] * 1e3:.2f}ms "
        f"(cold compute {report['cold_compute_seconds']:.2f}s)"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
