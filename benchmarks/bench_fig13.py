"""Regenerates fig13 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_fig13(benchmark):
    tables = run_experiment_bench(benchmark, "fig13")
    assert tables and tables[0].rows
