"""Regenerates fig16 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_fig16(benchmark):
    tables = run_experiment_bench(benchmark, "fig16")
    assert tables and tables[0].rows
