"""Regenerates fig01 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_fig01(benchmark):
    tables = run_experiment_bench(benchmark, "fig01")
    assert tables and tables[0].rows
