"""Regenerates fig12 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_fig12(benchmark):
    tables = run_experiment_bench(benchmark, "fig12")
    assert tables and tables[0].rows
