"""Timing-model cross-validation bench."""

from conftest import run_experiment_bench


def test_timing_models(benchmark):
    tables = run_experiment_bench(benchmark, "timing")
    assert tables[0].rows
