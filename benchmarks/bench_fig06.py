"""Regenerates fig06 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_fig06(benchmark):
    tables = run_experiment_bench(benchmark, "fig06")
    assert tables and tables[0].rows
