"""Fast-engine vs reference-engine replay throughput.

Runs every fast-covered policy through both engines on the same traces,
hard-fails unless the results are byte-identical, and reports the
replay-loop speedup per policy::

    PYTHONPATH=src python benchmarks/bench_fastsim.py --out BENCH_fastsim.json

Two workloads are measured.  The *resident* trace (a cache-fitting
cyclic scan, ~97% hit rate) is the headline number: steady-state replay
where per-access engine overhead dominates, which is what the fast
kernels eliminate.  The *mixed* producer/consumer trace is reported for
context — on miss-heavy traces both engines spend their time in victim
scans and dict churn, so the gap narrows.

Timing is best-of-``--repeats`` on ``replay_seconds`` (setup excluded;
both engines share the same vectorized decode costs there).
"""

from repro.config import CacheParams, KB, MB, LLCConfig
from repro.fastsim import FAST_POLICIES
from repro.sim.offline import simulate_trace
from repro.trace import synth

#: Every covered base policy, plus ``gspc+ucd`` — the paper's headline
#: configuration (GSPC with the DISPLAY stream uncached) gets its own
#: gated row rather than riding on plain ``gspc``.
BENCH_POLICIES = FAST_POLICIES + ("gspc+ucd",)

WORKLOADS = (
    (
        "resident",
        lambda: synth.cyclic_scan(4096, 40),
        LLCConfig(params=CacheParams(1 * MB, ways=16), banks=2, sample_period=16),
    ),
    (
        "mixed",
        lambda: synth.producer_consumer(
            1024, 8, consume_fraction=0.7, gap_blocks=4096
        ),
        LLCConfig(params=CacheParams(128 * KB, ways=16), banks=1, sample_period=16),
    ),
)


def _fingerprint(result):
    return (result.stats.snapshot(), result.extras)


def measure_policy(trace, llc, policy: str, repeats: int) -> dict:
    """Best-of-``repeats`` replay throughput for both engines."""
    reference = fast = None
    for _ in range(repeats):
        ref_run = simulate_trace(trace, policy, llc, engine="reference")
        fast_run = simulate_trace(trace, policy, llc, engine="fast")
        assert _fingerprint(ref_run) == _fingerprint(fast_run), (
            f"fast/reference divergence under {policy!r} "
            f"on {trace.meta.get('name')}"
        )
        if reference is None or ref_run.replay_seconds < reference.replay_seconds:
            reference = ref_run
        if fast is None or fast_run.replay_seconds < fast.replay_seconds:
            fast = fast_run
    return {
        "reference_accesses_per_second": reference.replay_accesses_per_second,
        "fast_accesses_per_second": fast.replay_accesses_per_second,
        "speedup": fast.replay_accesses_per_second
        / reference.replay_accesses_per_second,
        "hit_rate": reference.hit_rate,
    }


def run_bench(repeats: int = 3) -> dict:
    report = {"policies": list(BENCH_POLICIES), "workloads": {}}
    for name, build, llc in WORKLOADS:
        trace = build()
        rows = {
            policy: measure_policy(trace, llc, policy, repeats)
            for policy in BENCH_POLICIES
        }
        report["workloads"][name] = {
            "trace": {"name": trace.meta.get("name"), "accesses": len(trace)},
            "results": rows,
        }
    resident = report["workloads"]["resident"]["results"]
    report["min_resident_speedup"] = min(
        row["speedup"] for row in resident.values()
    )
    return report


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Fast vs reference engine replay throughput."
    )
    parser.add_argument("--out", default="BENCH_fastsim.json", help="report path")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless every resident-workload speedup reaches this",
    )
    args = parser.parse_args(argv)
    report = run_bench(repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for name, section in report["workloads"].items():
        for policy, row in section["results"].items():
            print(
                f"{name:10s} {policy:12s} "
                f"ref {row['reference_accesses_per_second']:>12,.0f}/s  "
                f"fast {row['fast_accesses_per_second']:>12,.0f}/s  "
                f"x{row['speedup']:.2f}"
            )
    floor = report["min_resident_speedup"]
    print(f"wrote {args.out}: min resident speedup x{floor:.2f}")
    if args.min_speedup and floor < args.min_speedup:
        print(f"FAIL: below required x{args.min_speedup:.2f}")
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
