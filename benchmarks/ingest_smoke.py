"""CI smoke harness for the trace-ingestion stack (the ingest-smoke job).

Three phases, each runnable locally against a scratch directory::

    PYTHONPATH=src python benchmarks/ingest_smoke.py contract --dir smoke
    PYTHONPATH=src python benchmarks/ingest_smoke.py sweep --dir smoke
    PYTHONPATH=src python benchmarks/ingest_smoke.py serve --dir smoke

``contract`` exercises gspc-ingest's exit-code contract end to end: the
committed fixture capture converts cleanly (0), a truncated copy is
rejected as a runtime error (1), an unusable --out is a usage error
(2), and a synthetic capture whose stream mix sits outside the paper's
Table 1 envelope fails conformance (3) — but still writes its artifacts,
and passes with --no-check.

``sweep`` replays the ingested fixture through gspc-sweep under both
engines and diffs the reference run byte-for-byte against the committed
golden CSV (tests/golden/ingest_results.csv); the fast run must match
modulo the engine column.

``serve`` submits a source-bearing spec to gspc-serve and proves the
served CSV is byte-identical to the golden file.
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import time

FIXTURE = os.path.join("examples", "captures", "capdemo_f0.jsonl.gz")
GOLDEN = os.path.join("tests", "golden", "ingest_results.csv")

#: The golden sweep's geometry: 1 MB differentiates every policy on the
#: fixture frame (at 8 MB the working set fits and they all tie).
POLICIES = [
    "nru", "lru", "srrip", "drrip",
    "gspztc", "gspztc+tse", "gspc", "gspc+ucd",
]
LLC_MB = 1


def run_ingest(args, expect):
    """Run gspc-ingest, asserting on its exit code."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.trace.sources.ingest"] + args,
        capture_output=True, text=True,
    )
    assert proc.returncode == expect, (
        f"gspc-ingest {' '.join(args)}: expected exit {expect}, got "
        f"{proc.returncode}\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    return proc


def contract(base_dir: str) -> int:
    os.makedirs(base_dir, exist_ok=True)
    replay_dir = os.path.join(base_dir, "replay")
    manifests = os.path.join(base_dir, "manifests")

    # Exit 0: the committed fixture converts and conforms.
    run_ingest(
        ["--capture", FIXTURE, "--out", replay_dir,
         "--metrics-out", manifests], expect=0,
    )
    assert os.path.exists(os.path.join(replay_dir, "source.json"))
    with open(os.path.join(replay_dir, "ingest.json")) as handle:
        manifest = json.load(handle)
    frames = manifest["frames"]
    assert len(frames) == 1 and frames[0]["conformant"], frames
    assert manifest["metrics"]["envelope_violations"] == 0, manifest["metrics"]

    # Exit 1: a capture truncated mid-stream (header declares more
    # accesses than the file carries) is a runtime error.
    with gzip.open(FIXTURE, "rt", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    truncated = os.path.join(base_dir, "truncated_f0.jsonl.gz")
    with gzip.open(truncated, "wt", encoding="utf-8") as handle:
        handle.write("\n".join(lines[:-10]) + "\n")
    run_ingest(
        ["--capture", truncated, "--out", os.path.join(base_dir, "r1")],
        expect=1,
    )

    # Exit 2: --out that collides with an existing file is a usage error.
    blocker = os.path.join(base_dir, "not-a-dir")
    with open(blocker, "w") as handle:
        handle.write("x")
    run_ingest(["--capture", FIXTURE, "--out", blocker], expect=2)

    # Exit 3: a capture whose stream mix violates the Table 1 envelope
    # (100% TEX) fails conformance — with its artifacts still written —
    # and passes once --no-check waives the gate.
    skew = os.path.join(base_dir, "skew_f0.jsonl")
    with open(skew, "w", encoding="utf-8") as handle:
        header = {"capture": "gspc-capture", "version": 1,
                  "workload": "skew", "frame": 0, "accesses": 300}
        handle.write(json.dumps(header) + "\n")
        for index in range(300):
            handle.write(json.dumps(
                {"addr": index * 64, "stream": "tex", "write": False}
            ) + "\n")
    skew_out = os.path.join(base_dir, "r3")
    proc = run_ingest(["--capture", skew, "--out", skew_out], expect=3)
    assert "envelope=FAIL" in proc.stdout, proc.stdout
    assert os.path.exists(os.path.join(skew_out, "source.json"))
    assert os.path.exists(os.path.join(skew_out, "ingest.json"))
    run_ingest(
        ["--capture", skew, "--out", os.path.join(base_dir, "r0"),
         "--no-check"], expect=0,
    )

    print("contract: gspc-ingest exit codes 0/1/2/3 all as documented")
    return 0


def sweep(base_dir: str) -> int:
    replay_dir = os.path.join(base_dir, "replay")
    if not os.path.exists(os.path.join(replay_dir, "source.json")):
        run_ingest(["--capture", FIXTURE, "--out", replay_dir], expect=0)
    csvs = {}
    for engine in ("reference", "fast"):
        out_dir = os.path.join(base_dir, f"sweep-{engine}")
        subprocess.run(
            [sys.executable, "-m", "repro.sweep",
             "--out", out_dir,
             "--source", f"replay:{replay_dir}",
             "--policies", *POLICIES,
             "--llc-mb", str(LLC_MB),
             "--cache-dir", os.path.join(base_dir, "cache"),
             "--engine", engine],
            check=True, stdout=subprocess.DEVNULL,
        )
        with open(os.path.join(out_dir, "results.csv")) as handle:
            csvs[engine] = handle.read()
    with open(GOLDEN, encoding="utf-8") as handle:
        golden = handle.read()
    assert csvs["reference"] == golden, (
        "reference sweep over the ingested fixture diverged from "
        f"{GOLDEN} — if the change is intentional, regenerate the golden"
    )

    def strip_engine(text):
        rows = [line.split(",") for line in text.splitlines()]
        return [row[:4] + row[5:] for row in rows]

    assert strip_engine(csvs["fast"]) == strip_engine(csvs["reference"]), (
        "fast engine diverged from reference on the ingested fixture"
    )
    print(f"sweep: both engines match the golden CSV ({len(golden)} bytes)")
    return 0


def serve(base_dir: str) -> int:
    from repro.serve.client import ServeClient, read_port_file

    replay_dir = os.path.abspath(os.path.join(base_dir, "replay"))
    if not os.path.exists(os.path.join(replay_dir, "source.json")):
        run_ingest(["--capture", FIXTURE, "--out", replay_dir], expect=0)
    spec = {
        "name": "ingest-smoke",
        "policies": POLICIES,
        "llc_mb": [LLC_MB],
        "apps": ["capdemo"],
        "engine": "reference",
        "source": f"replay:{replay_dir}",
    }
    port_file = os.path.join(base_dir, "serve.port")
    if os.path.exists(port_file):
        os.unlink(port_file)
    log = open(os.path.join(base_dir, "serve.log"), "w", encoding="utf-8")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.serve",
         "--store", os.path.join(base_dir, "store"),
         "--port", "0",
         "--port-file", port_file,
         "--cache-dir", os.path.join(base_dir, "cache")],
        stdout=log, stderr=log,
    )
    try:
        deadline = time.time() + 30
        while not os.path.exists(port_file):
            if time.time() > deadline:
                raise SystemExit("error: gspc-serve never wrote its port file")
            time.sleep(0.05)
        client = ServeClient(read_port_file(port_file))
        client.wait_until_up()
        entry = client.submit(spec)
        client.wait(entry["key"], timeout=600)
        served = client.result(entry["key"])["results_csv"]
        client.shutdown()
        assert server.wait(timeout=30) == 0
    finally:
        if server.poll() is None:
            server.kill()
        log.close()
    with open(GOLDEN, encoding="utf-8") as handle:
        golden = handle.read()
    assert served == golden, (
        "gspc-serve served different bytes than the golden CSV for the "
        "ingested-fixture spec"
    )
    print("serve: source-bearing spec served byte-identical to the golden")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Trace-ingestion smoke harness (exit-code contract, "
        "golden sweep replay, serve leg)."
    )
    parser.add_argument("phase", choices=["contract", "sweep", "serve"])
    parser.add_argument(
        "--dir", default="ingest-smoke", help="scratch directory"
    )
    args = parser.parse_args(argv)
    return {"contract": contract, "sweep": sweep, "serve": serve}[args.phase](
        args.dir
    )


if __name__ == "__main__":
    sys.exit(main())
