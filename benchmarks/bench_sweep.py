"""Sweep-orchestration overhead benchmark.

Runs the same (trace + sims) job set three times — through the bare
:func:`repro.parallel.run_jobs` pool, through the full
:class:`repro.sweep.SweepRunner` stack (per-attempt worker processes,
journalling with per-record fsync, result-file handoff), and through
the same sweep stack with run tracing enabled (trace context shipped
to every worker, span events collected) — and reports orchestration
and tracing overheads as fractions of the respective baselines::

    PYTHONPATH=src python benchmarks/bench_sweep.py --out BENCH_sweep.json

Each side is timed ``--repeats`` times and the minimum is used, so the
reported ``overhead_fraction`` / ``traced_overhead_fraction`` reflect
machinery cost, not scheduler noise.  The trace cache is warmed before
timing any side, so all measure simulation work.  CI gates both
fractions via ``check_regression.py --sweep-report BENCH_sweep.json``
(limit 5% each).
"""

import time


def run_bench(
    scale: float = 0.25,
    workers: int = 2,
    repeats: int = 3,
    base_dir: str = ".",
) -> dict:
    import os

    from repro.parallel import run_jobs
    from repro.sweep.exec import ProcessLauncher, SweepRunner
    from repro.sweep.journal import Journal
    from repro.sweep.spec import SweepSpec, expand

    cache_dir = os.path.join(base_dir, "cache")
    spec = SweepSpec(
        name="bench",
        policies=("drrip", "nru", "gspc"),
        llc_mb=(8,),
        apps=("DMC",),
        scale=scale,
        engine="auto",
    )
    jobs = expand(spec)
    sim_jobs = [job.sim_job() for job in jobs]
    config = spec.config_for(8, cache_dir)

    # Warm the trace cache so neither side times trace synthesis.
    run_jobs([job for job in sim_jobs if job.kind == "trace"], config, 1)

    def time_bare() -> float:
        started = time.perf_counter()
        run_jobs(sim_jobs, config, workers)
        return time.perf_counter() - started

    def time_sweep(round_index: int, traced: bool = False) -> float:
        from repro.obs.tracing import TraceCollector, TraceContext

        label = "traced" if traced else "sweep"
        sweep_dir = os.path.join(base_dir, f"{label}-{round_index}")
        os.makedirs(sweep_dir, exist_ok=True)
        ctx = TraceContext.new_run("bench") if traced else None
        collector = TraceCollector(ctx) if traced else None
        launcher = ProcessLauncher(
            spec, cache_dir, os.path.join(sweep_dir, "tmp"), trace_ctx=ctx
        )
        started = time.perf_counter()
        with Journal(os.path.join(sweep_dir, "journal.jsonl")) as journal:
            outcome = SweepRunner(
                jobs, launcher, journal, workers=workers, collector=collector
            ).run()
        elapsed = time.perf_counter() - started
        assert outcome.ok, f"bench sweep failed: {outcome.failures}"
        if traced:
            assert len(collector) > 0, "traced bench produced no events"
        return elapsed

    bare_seconds = [time_bare() for _ in range(repeats)]
    sweep_seconds = [time_sweep(i) for i in range(repeats)]
    traced_seconds = [time_sweep(i, traced=True) for i in range(repeats)]
    bare_min = min(bare_seconds)
    sweep_min = min(sweep_seconds)
    traced_min = min(traced_seconds)
    return {
        "scale": scale,
        "workers": workers,
        "repeats": repeats,
        "jobs": {
            "total": len(jobs),
            "sims": sum(1 for job in jobs if job.kind == "sim"),
        },
        "bare_seconds": bare_seconds,
        "sweep_seconds": sweep_seconds,
        "traced_seconds": traced_seconds,
        "bare_min": bare_min,
        "sweep_min": sweep_min,
        "traced_min": traced_min,
        "overhead_fraction": (sweep_min - bare_min) / bare_min,
        # Tracing cost relative to the untraced sweep stack — gated by
        # check_regression.py at the same 5% limit as orchestration.
        "traced_overhead_fraction": (traced_min - sweep_min) / sweep_min,
    }


def main(argv=None) -> int:
    import argparse
    import json
    import tempfile

    parser = argparse.ArgumentParser(
        description="Measure SweepRunner overhead over bare run_jobs."
    )
    parser.add_argument("--out", default="BENCH_sweep.json", help="report path")
    parser.add_argument(
        "--scale", type=float, default=0.25, help="linear frame scale"
    )
    parser.add_argument("--jobs", type=int, default=2, help="worker count")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing rounds per side"
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as base_dir:
        report = run_bench(
            scale=args.scale,
            workers=args.jobs,
            repeats=args.repeats,
            base_dir=base_dir,
        )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {args.out}: bare {report['bare_min']:.2f}s vs sweep "
        f"{report['sweep_min']:.2f}s vs traced {report['traced_min']:.2f}s "
        f"over {report['jobs']['total']} jobs "
        f"(orchestration overhead {report['overhead_fraction']:+.1%}, "
        f"tracing overhead {report['traced_overhead_fraction']:+.1%})"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
