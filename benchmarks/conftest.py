"""Shared benchmark infrastructure.

Each ``bench_*`` module regenerates one of the paper's tables/figures at
reduced scale through pytest-benchmark and prints the resulting rows
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them).
Figure-level benches execute once per session (``pedantic`` with a
single round): they are end-to-end experiment timings, not hot-loop
micro-benchmarks — those live in ``bench_throughput.py``.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig, get_experiment

#: Reduced-scale configuration used by every figure bench.
BENCH_CONFIG = ExperimentConfig(
    scale=0.0625, frames_per_app=1, cache_dir=".repro_cache"
)


def run_experiment_bench(benchmark, experiment_id: str, config=BENCH_CONFIG):
    """Benchmark one experiment end-to-end and print its tables."""
    experiment = get_experiment(experiment_id)

    def once():
        return experiment.run(config)

    tables = benchmark.pedantic(once, rounds=1, iterations=1)
    for table in tables:
        print()
        print(table.render())
    return tables


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG
