"""Summarize run manifests into a perf-trajectory table.

Turns the JSON manifests emitted by ``gspc-sim --metrics-out`` /
``gspc-experiments --metrics-out`` (and the ``manifest.json`` a
``gspc-sweep`` run leaves in its sweep directory — one row per
completed sim job plus a whole-sweep summary row) into one aligned
table (or CSV), so comparing runs over time is a matter of diffing
data, not stdout::

    python benchmarks/manifest_report.py out/
    python benchmarks/manifest_report.py out/*.json --csv > trajectory.csv
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.errors import ObservabilityError  # noqa: E402
from repro.obs.manifest import load_manifest, validate_manifest  # noqa: E402


def _collect(paths: List[str]) -> List[tuple]:
    """(path, explicit) pairs; directory members are not explicit."""
    files: List[tuple] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                (os.path.join(path, name), False)
                for name in sorted(os.listdir(path))
                if name.endswith(".json")
            )
        else:
            files.append((path, True))
    return files


def _sweep_rows(path: str, manifest: Dict[str, object]) -> List[Dict[str, object]]:
    """One row per completed sim job, then a whole-sweep summary row."""
    sweep = manifest.get("sweep", {}) or {}
    metrics = manifest.get("metrics", {}) or {}
    rows: List[Dict[str, object]] = []
    total_accesses = 0
    total_misses = 0
    for job_id in sorted(metrics):
        payload = metrics[job_id] or {}
        job_metrics = payload.get("metrics", {}) or {}
        accesses = payload.get("accesses")
        misses = job_metrics.get("misses")
        if isinstance(accesses, (int, float)):
            total_accesses += int(accesses)
        if isinstance(misses, (int, float)):
            total_misses += int(misses)
        rows.append({
            "file": os.path.basename(path),
            "kind": "sweep",
            "run": job_id,
            "accesses": accesses,
            "misses": misses,
            "hit_rate": job_metrics.get("hit_rate"),
            "setup_s": None,
            "replay_s": None,
            "acc_per_s": None,
        })
    wall = manifest.get("wall_seconds")
    rows.append({
        "file": os.path.basename(path),
        "kind": "sweep",
        "run": (
            f"{sweep.get('name', '?')} "
            f"[{sweep.get('completed', 0)}/{sweep.get('total_jobs', 0)} ok, "
            f"{sweep.get('failed', 0)} failed]"
        ),
        "accesses": total_accesses or None,
        "misses": total_misses or None,
        "hit_rate": None,
        "setup_s": None,
        "replay_s": wall,
        "acc_per_s": (
            total_accesses / wall
            if total_accesses and isinstance(wall, (int, float)) and wall > 0
            else None
        ),
    })
    return rows


def _rows(path: str, manifest: Dict[str, object]) -> List[Dict[str, object]]:
    kind = manifest.get("kind", "?")
    if kind == "sweep":
        return _sweep_rows(path, manifest)
    phases = manifest.get("phases", {}) or {}
    replay = float(phases.get("replay_seconds", 0.0) or 0.0)
    if kind == "experiment":
        label = manifest.get("experiment", {}).get("id", "?")
        accesses = misses = None
        hit_rate = None
    else:
        label = f"{manifest.get('trace', {}).get('name', '?')}/{manifest.get('policy', '?')}"
        metrics = manifest.get("metrics", {}) or {}
        accesses = metrics.get("accesses")
        misses = metrics.get("misses")
        hit_rate = metrics.get("hit_rate")
    throughput = (
        accesses / replay if accesses and replay > 0 else None
    )
    return [{
        "file": os.path.basename(path),
        "kind": kind,
        "run": label,
        "accesses": accesses,
        "misses": misses,
        "hit_rate": hit_rate,
        "setup_s": phases.get("setup_seconds"),
        "replay_s": phases.get("replay_seconds"),
        "acc_per_s": throughput,
    }]


_COLUMNS = (
    "file", "kind", "run", "accesses", "misses",
    "hit_rate", "setup_s", "replay_s", "acc_per_s",
)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Tabulate run manifests (files or directories)."
    )
    parser.add_argument("paths", nargs="+", help="manifest files or dirs")
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    args = parser.parse_args(argv)

    rows: List[Dict[str, object]] = []
    failures = 0
    for path, explicit in _collect(args.paths):
        try:
            manifest = load_manifest(path)
        except ObservabilityError as exc:
            failures += 1
            print(f"invalid manifest {path}: {exc}", file=sys.stderr)
            continue
        if not explicit and not (
            isinstance(manifest, dict) and "kind" in manifest
        ):
            # Directory scans sweep up unrelated JSON (a sweep's
            # spec.json or trace.json); only gate files named directly.
            continue
        problems = validate_manifest(manifest)
        if problems:
            failures += 1
            print(f"invalid manifest {path}: {problems[0]}", file=sys.stderr)
            continue
        rows.extend(_rows(path, manifest))

    if args.csv:
        print(",".join(_COLUMNS))
        for row in rows:
            print(",".join(_fmt(row[c]) for c in _COLUMNS))
    else:
        cells = [[_fmt(row[c]) for c in _COLUMNS] for row in rows]
        widths = [
            max([len(c)] + [len(line[i]) for line in cells])
            for i, c in enumerate(_COLUMNS)
        ]
        print("  ".join(c.ljust(w) for c, w in zip(_COLUMNS, widths)))
        for line in cells:
            print("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
