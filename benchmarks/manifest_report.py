"""Summarize run manifests into a perf-trajectory table.

Turns the JSON manifests emitted by ``gspc-sim --metrics-out`` /
``gspc-experiments --metrics-out`` into one aligned table (or CSV), so
comparing runs over time is a matter of diffing data, not stdout::

    python benchmarks/manifest_report.py out/
    python benchmarks/manifest_report.py out/*.json --csv > trajectory.csv
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.errors import ObservabilityError  # noqa: E402
from repro.obs.manifest import load_manifest, validate_manifest  # noqa: E402


def _collect(paths: List[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".json")
            )
        else:
            files.append(path)
    return files


def _row(path: str, manifest: Dict[str, object]) -> Dict[str, object]:
    kind = manifest.get("kind", "?")
    phases = manifest.get("phases", {}) or {}
    replay = float(phases.get("replay_seconds", 0.0) or 0.0)
    if kind == "experiment":
        label = manifest.get("experiment", {}).get("id", "?")
        accesses = misses = None
        hit_rate = None
    else:
        label = f"{manifest.get('trace', {}).get('name', '?')}/{manifest.get('policy', '?')}"
        metrics = manifest.get("metrics", {}) or {}
        accesses = metrics.get("accesses")
        misses = metrics.get("misses")
        hit_rate = metrics.get("hit_rate")
    throughput = (
        accesses / replay if accesses and replay > 0 else None
    )
    return {
        "file": os.path.basename(path),
        "kind": kind,
        "run": label,
        "accesses": accesses,
        "misses": misses,
        "hit_rate": hit_rate,
        "setup_s": phases.get("setup_seconds"),
        "replay_s": phases.get("replay_seconds"),
        "acc_per_s": throughput,
    }


_COLUMNS = (
    "file", "kind", "run", "accesses", "misses",
    "hit_rate", "setup_s", "replay_s", "acc_per_s",
)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Tabulate run manifests (files or directories)."
    )
    parser.add_argument("paths", nargs="+", help="manifest files or dirs")
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of a table"
    )
    args = parser.parse_args(argv)

    rows: List[Dict[str, object]] = []
    failures = 0
    for path in _collect(args.paths):
        try:
            manifest = load_manifest(path)
        except ObservabilityError as exc:
            failures += 1
            print(f"invalid manifest {path}: {exc}", file=sys.stderr)
            continue
        problems = validate_manifest(manifest)
        if problems:
            failures += 1
            print(f"invalid manifest {path}: {problems[0]}", file=sys.stderr)
            continue
        rows.append(_row(path, manifest))

    if args.csv:
        print(",".join(_COLUMNS))
        for row in rows:
            print(",".join(_fmt(row[c]) for c in _COLUMNS))
    else:
        cells = [[_fmt(row[c]) for c in _COLUMNS] for row in rows]
        widths = [
            max([len(c)] + [len(line[i]) for line in cells])
            for i, c in enumerate(_COLUMNS)
        ]
        print("  ".join(c.ljust(w) for c, w in zip(_COLUMNS, widths)))
        for line in cells:
            print("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
