"""Workload-family characterization benchmark.

Characterizes every preset of the extended workload families
(``repro.workloads.families``: coherent / graph / compute) and writes
``BENCH_workloads.json``::

    PYTHONPATH=src python benchmarks/bench_workloads.py --out BENCH_workloads.json

Per preset: the stream-class mix, Table 1 envelope verdict, an LRU
stack-distance (reuse-distance) summary, and the miss rate of each of
the 8 golden policies at the golden sweep geometry (``--llc-mb 1``,
the capacity that differentiates policies at reduced scale).  Per
family: mean miss rate per policy across the family's presets and the
number of *distinct* policy miss rates.  The CI characterization job
gates on:

* ``coherent`` presets conform to the Table 1 envelope; ``graph`` and
  ``compute`` presets violate it (they exist to probe outside it);
* every family differentiates at least ``--min-distinct`` (default 4)
  of the 8 policies;
* the coherent family's inter-frame block overlap is ordered by its
  similarity knob (coh-hi > coh-lo).

Exit 0 when every gate holds, 1 otherwise.
"""

import numpy as np

#: The golden policy set (same as the ingest golden CSV): every name is
#: fast-engine covered, so the characterization run stays quick.
POLICIES = [
    "nru", "lru", "srrip", "drrip",
    "gspztc", "gspztc+tse", "gspc", "gspc+ucd",
]

#: Stack-distance computation is O(n log n) with a Python-level loop;
#: cap the profiled prefix so graph-pr (~400k accesses) stays cheap.
REUSE_DISTANCE_CAP = 120_000


def characterize_preset(workload, scale: float, llc_mb: int) -> dict:
    from repro.config import paper_baseline
    from repro.sim.offline import simulate_trace
    from repro.trace.sources.envelope import (
        characterize_capture,
        check_envelope,
    )
    from repro.trace.stats import reuse_distance_summary

    trace = workload.generate(0, scale)
    characterization = characterize_capture(trace)
    violations = check_envelope(characterization)
    profiled = (
        trace if len(trace) <= REUSE_DISTANCE_CAP
        else trace.slice(0, REUSE_DISTANCE_CAP)
    )
    llc = paper_baseline(llc_mb=llc_mb, scale=scale).llc
    miss_rates = {}
    for policy in POLICIES:
        result = simulate_trace(trace, policy, llc, engine="fast")
        total = result.hits + result.misses
        miss_rates[policy] = result.misses / total if total else 0.0
    return {
        "name": workload.name,
        "abbrev": workload.abbrev,
        "family": workload.family,
        "accesses": characterization["accesses"],
        "write_fraction": characterization["write_fraction"],
        "footprint_bytes": characterization["footprint_bytes"],
        "classes": characterization["classes"],
        "envelope_violations": violations,
        "conformant": not violations,
        "reuse_distance": reuse_distance_summary(profiled),
        "reuse_distance_accesses": len(profiled),
        "miss_rates": miss_rates,
    }


def run_bench(scale: float, llc_mb: int, min_distinct: int) -> dict:
    from repro.workloads.families import (
        FAMILY_ENVELOPE_CONFORMANT,
        all_families,
        family_by_name,
        family_workloads,
    )
    from repro.workloads.families.coherent import inter_frame_overlap

    families = {}
    failures = []
    for family in all_families():
        presets = [
            characterize_preset(workload, scale, llc_mb)
            for workload in family_workloads(family)
        ]
        means = {
            policy: float(
                np.mean([p["miss_rates"][policy] for p in presets])
            )
            for policy in POLICIES
        }
        distinct = len({round(rate, 9) for rate in means.values()})
        expected = FAMILY_ENVELOPE_CONFORMANT[family]
        for preset in presets:
            if preset["conformant"] != expected:
                verdict = "conform" if expected else "violate"
                failures.append(
                    f"{preset['name']}: expected to {verdict} the Table 1 "
                    f"envelope, got violations={preset['envelope_violations']}"
                )
        if distinct < min_distinct:
            failures.append(
                f"family {family}: only {distinct} distinct policy miss "
                f"rates (need >= {min_distinct}); means={means}"
            )
        families[family] = {
            "presets": presets,
            "mean_miss_rates": means,
            "distinct_policies": distinct,
            "envelope_conformant_expected": expected,
        }

    # Knob validation: more similarity must mean more inter-frame reuse.
    overlaps = {
        name: inter_frame_overlap(family_by_name(name), scale)
        for name in ("coh-hi", "coh-med", "coh-lo")
    }
    families["coherent"]["inter_frame_overlap"] = overlaps
    if not overlaps["coh-hi"] > overlaps["coh-lo"]:
        failures.append(
            f"similarity knob inert: overlap(coh-hi)={overlaps['coh-hi']:.4f}"
            f" <= overlap(coh-lo)={overlaps['coh-lo']:.4f}"
        )

    return {
        "scale": scale,
        "llc_mb": llc_mb,
        "policies": POLICIES,
        "min_distinct": min_distinct,
        "families": families,
        "failures": failures,
        "ok": not failures,
    }


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Characterize the extended workload families."
    )
    parser.add_argument(
        "--out", default="BENCH_workloads.json", help="report path"
    )
    parser.add_argument(
        "--scale", type=float, default=0.0625, help="linear frame scale"
    )
    parser.add_argument(
        "--llc-mb", type=int, default=1,
        help="LLC capacity for the miss-rate spread (paper-scale MB)",
    )
    parser.add_argument(
        "--min-distinct", type=int, default=4,
        help="minimum distinct per-family policy miss rates",
    )
    args = parser.parse_args(argv)
    report = run_bench(args.scale, args.llc_mb, args.min_distinct)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for family, data in report["families"].items():
        presets = data["presets"]
        verdict = "conformant" if data["envelope_conformant_expected"] else "violating"
        print(
            f"{family}: {len(presets)} presets, "
            f"{data['distinct_policies']}/8 policies distinct, "
            f"envelope {verdict}"
        )
    for failure in report["failures"]:
        print(f"FAIL: {failure}")
    print(f"wrote {args.out}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
