"""Render benchmark JSON reports as GitHub job-summary markdown.

CI appends the output to ``$GITHUB_STEP_SUMMARY`` so speedup and
miss-rate tables are readable on the run page without downloading
artifacts::

    PYTHONPATH=src python benchmarks/ci_summary.py \
        --fastsim BENCH_fastsim_ci.json --parallel BENCH_parallel.json \
        --sweep BENCH_sweep.json >> "$GITHUB_STEP_SUMMARY"

    PYTHONPATH=src python benchmarks/ci_summary.py \
        --workloads BENCH_workloads.json >> "$GITHUB_STEP_SUMMARY"

Every section is optional; missing files are skipped with a note so a
partially failed job still renders what it measured.
"""

import argparse
import json
import sys


def _load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"> `{path}` unavailable: {exc}\n")
        return None


def section_fastsim(path: str) -> None:
    report = _load(path)
    if report is None:
        return
    print("## Fast-engine speedup\n")
    print("| workload | policy | reference acc/s | fast acc/s | speedup |")
    print("|---|---|---:|---:|---:|")
    for workload, data in sorted(report.get("workloads", {}).items()):
        for policy, result in sorted(data.get("results", {}).items()):
            print(
                f"| {workload} | {policy} "
                f"| {result['reference_accesses_per_second']:,.0f} "
                f"| {result['fast_accesses_per_second']:,.0f} "
                f"| x{result['speedup']:.2f} |"
            )
    print()


def section_parallel(path: str) -> None:
    report = _load(path)
    if report is None:
        return
    print("## Parallel throughput\n")
    print(
        f"serial {report['serial_seconds']:.2f}s vs parallel "
        f"{report['parallel_seconds']:.2f}s with {report['workers']} "
        f"workers (x{report['speedup']:.2f})\n"
    )
    print("| policy | accesses/s |")
    print("|---|---:|")
    for policy, rate in sorted(report.get("accesses_per_second", {}).items()):
        print(f"| {policy} | {rate:,.0f} |")
    print()


def section_sweep(path: str) -> None:
    report = _load(path)
    if report is None:
        return
    print("## Sweep orchestration overhead\n")
    print("| side | seconds (min) | overhead |")
    print("|---|---:|---:|")
    print(f"| bare run_jobs | {report['bare_min']:.2f} | — |")
    print(
        f"| sweep stack | {report['sweep_min']:.2f} "
        f"| {report['overhead_fraction']:+.1%} |"
    )
    print(
        f"| traced sweep | {report['traced_min']:.2f} "
        f"| {report['traced_overhead_fraction']:+.1%} |"
    )
    print()


def section_workloads(path: str) -> None:
    report = _load(path)
    if report is None:
        return
    policies = report["policies"]
    print("## Workload-family characterization\n")
    header = " | ".join(policies)
    print(f"| family | preset | envelope | {header} |")
    print("|---|---|---|" + "---:|" * len(policies))
    for family, data in report["families"].items():
        for preset in data["presets"]:
            verdict = "conforms" if preset["conformant"] else "violates"
            rates = " | ".join(
                f"{preset['miss_rates'][p]:.4f}" for p in policies
            )
            print(
                f"| {family} | {preset['abbrev']} | {verdict} | {rates} |"
            )
        means = " | ".join(
            f"{data['mean_miss_rates'][p]:.4f}" for p in policies
        )
        print(
            f"| {family} | **mean** "
            f"| {data['distinct_policies']}/{len(policies)} distinct "
            f"| {means} |"
        )
    print()
    overlaps = report["families"].get("coherent", {}).get(
        "inter_frame_overlap"
    )
    if overlaps:
        print("Inter-frame block overlap (similarity knob): ", end="")
        print(
            ", ".join(f"{k} {v:.3f}" for k, v in overlaps.items())
        )
        print()
    for failure in report.get("failures", []):
        print(f"**FAIL**: {failure}\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Render benchmark JSONs as job-summary markdown."
    )
    parser.add_argument("--fastsim", help="BENCH_fastsim_ci.json path")
    parser.add_argument("--parallel", help="BENCH_parallel.json path")
    parser.add_argument("--sweep", help="BENCH_sweep.json path")
    parser.add_argument("--workloads", help="BENCH_workloads.json path")
    args = parser.parse_args(argv)
    if not any((args.fastsim, args.parallel, args.sweep, args.workloads)):
        parser.error("give at least one report path")
    if args.parallel:
        section_parallel(args.parallel)
    if args.fastsim:
        section_fastsim(args.fastsim)
    if args.sweep:
        section_sweep(args.sweep)
    if args.workloads:
        section_workloads(args.workloads)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
