"""Compare the result-bearing sections of two manifest directories.

The CI engine-equivalence job runs the same simulations once per replay
engine with ``--metrics-out`` and then checks that every manifest pair
agrees on what was simulated and what came out::

    PYTHONPATH=src python benchmarks/diff_manifest_metrics.py out_ref out_fast

Only the deterministic sections are compared — ``policy``, ``trace``,
``metrics``, ``extras`` and ``config`` — because the rest legitimately
differs between engines: timestamps, phase timings, the ``engine``
field itself, and ``events`` (the fast engine records no event
telemetry).  ``engine`` fields are ignored at *any* nesting depth:
sweep manifests record the engine per job inside ``metrics`` and again
in ``config``.  Directories must contain the same manifest filenames.
"""

import argparse
import json
import os
import sys

COMPARED_KEYS = ("policy", "trace", "metrics", "extras", "config")


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def strip_engine(value):
    """``value`` with every nested ``engine`` mapping key removed."""
    if isinstance(value, dict):
        return {
            key: strip_engine(item)
            for key, item in value.items()
            if key != "engine"
        }
    if isinstance(value, list):
        return [strip_engine(item) for item in value]
    return value


def diff_pair(left: dict, right: dict, name: str) -> list:
    problems = []
    for key in COMPARED_KEYS:
        left_value = strip_engine(left.get(key))
        right_value = strip_engine(right.get(key))
        if left_value != right_value:
            problems.append(
                f"{name}: section {key!r} differs\n"
                f"  left:  {json.dumps(left_value, sort_keys=True)}\n"
                f"  right: {json.dumps(right_value, sort_keys=True)}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff the deterministic sections of manifest pairs."
    )
    parser.add_argument("left", help="first manifest directory")
    parser.add_argument("right", help="second manifest directory")
    args = parser.parse_args(argv)

    left_names = sorted(
        name for name in os.listdir(args.left) if name.endswith(".json")
    )
    right_names = sorted(
        name for name in os.listdir(args.right) if name.endswith(".json")
    )
    problems = []
    if left_names != right_names:
        problems.append(
            f"manifest sets differ: {left_names} vs {right_names}"
        )
    if not left_names:
        problems.append(f"no manifests found in {args.left}")
    for name in left_names:
        if name not in right_names:
            continue
        problems.extend(
            diff_pair(
                load(os.path.join(args.left, name)),
                load(os.path.join(args.right, name)),
                name,
            )
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(f"ok: {len(left_names)} manifest pair(s) agree on {COMPARED_KEYS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
