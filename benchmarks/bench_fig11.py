"""Regenerates fig11 of the paper at reduced scale (see conftest)."""

from conftest import run_experiment_bench


def test_fig11(benchmark):
    tables = run_experiment_bench(benchmark, "fig11")
    assert tables and tables[0].rows
