"""Extensions bench: texture bypass and multi-frame sequences."""

from conftest import run_experiment_bench


def test_extensions(benchmark):
    tables = run_experiment_bench(benchmark, "extensions")
    assert len(tables) == 2
