"""CI smoke harness for gspc-serve (the serve-smoke job).

Two phases, each runnable locally against a scratch directory::

    PYTHONPATH=src python benchmarks/serve_smoke.py phase1 --dir smoke
    PYTHONPATH=src python benchmarks/serve_smoke.py phase2 --dir smoke

``phase1`` starts a server, submits the same spec twice *concurrently*,
and proves the duplicate coalesced onto one computation; it then runs
the identical spec through a direct ``gspc-sweep`` and diffs the served
CSV byte-for-byte.  The server is left running (its pid on disk).

``phase2`` kills that server with SIGKILL — no shutdown hook gets to
run — restarts on the same store, and proves the result is served from
the content-addressed store with *zero* computations and the same
bytes, then shuts down gracefully so the run manifest gets written.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time

SPEC = {
    "name": "smoke",
    "policies": ["drrip", "gspc+ucd"],
    "apps": ["DMC"],
    "scale": 0.0625,
}


def start_server(base_dir: str, log_name: str, metrics_out=None):
    """Start gspc-serve on an ephemeral port; returns (process, client)."""
    from repro.serve.client import ServeClient, read_port_file

    port_file = os.path.join(base_dir, "serve.port")
    if os.path.exists(port_file):
        os.unlink(port_file)
    argv = [
        sys.executable, "-m", "repro.serve",
        "--store", os.path.join(base_dir, "store"),
        "--port", "0",
        "--port-file", port_file,
        "--cache-dir", os.path.join(base_dir, "cache"),
    ]
    if metrics_out:
        argv += ["--metrics-out", metrics_out]
    log = open(os.path.join(base_dir, log_name), "w", encoding="utf-8")
    process = subprocess.Popen(argv, stdout=log, stderr=log)
    deadline = time.time() + 30
    while not os.path.exists(port_file):
        if time.time() > deadline:
            raise SystemExit("error: gspc-serve never wrote its port file")
        time.sleep(0.05)
    client = ServeClient(read_port_file(port_file))
    client.wait_until_up()
    return process, client


def phase1(base_dir: str) -> int:
    os.makedirs(base_dir, exist_ok=True)
    server, client = start_server(base_dir, "serve.log")
    with open(os.path.join(base_dir, "server.pid"), "w") as handle:
        handle.write(str(server.pid))

    entries = [None, None]

    def submit(index):
        entries[index] = client.submit(SPEC)

    threads = [
        threading.Thread(target=submit, args=(i,)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    keys = {entry["key"] for entry in entries}
    assert len(keys) == 1, f"duplicate submissions got distinct keys: {keys}"
    key = keys.pop()
    client.wait(key, timeout=600)
    stats = client.stats()
    assert stats["submitted"] == 2, stats
    assert stats["computed"] == 1, f"expected exactly one computation: {stats}"
    assert stats["coalesced"] + stats["cache_hits"] == 1, stats
    again = client.submit(SPEC)
    assert again["status"] == "done", again
    assert client.stats()["cache_hits"] >= 1
    served_csv = client.result(key)["results_csv"]
    with open(os.path.join(base_dir, "served.csv"), "w") as handle:
        handle.write(served_csv)
    print(f"phase1: computed once for key {key[:16]}..., "
          f"{stats['coalesced']} coalesced")

    # Byte-identity against a direct gspc-sweep run of the same spec.
    spec_path = os.path.join(base_dir, "spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(SPEC, handle)
    direct_dir = os.path.join(base_dir, "direct")
    subprocess.run(
        [
            sys.executable, "-m", "repro.sweep",
            "--spec", spec_path,
            "--out", direct_dir,
            "--cache-dir", os.path.join(base_dir, "cache"),
        ],
        check=True,
    )
    with open(os.path.join(direct_dir, "results.csv"), encoding="utf-8") as f:
        direct_csv = f.read()
    assert served_csv == direct_csv, (
        "served results_csv differs from a direct gspc-sweep run"
    )
    print("phase1: served CSV is byte-identical to gspc-sweep "
          f"({len(direct_csv)} bytes); server left running")
    return 0


def phase2(base_dir: str, metrics_out=None) -> int:
    with open(os.path.join(base_dir, "server.pid")) as handle:
        pid = int(handle.read().strip())
    os.kill(pid, signal.SIGKILL)
    # Reap if it was our child (local single-process runs); in CI the
    # phases are separate steps and the runner's init reaps it.
    try:
        os.waitpid(pid, 0)
    except ChildProcessError:
        pass

    metrics_out = metrics_out or os.path.join(base_dir, "manifests")
    server, client = start_server(base_dir, "serve2.log", metrics_out)
    entry = client.submit(SPEC)
    assert entry["status"] == "done" and entry["cached"], (
        f"restart did not serve from the store: {entry}"
    )
    stats = client.stats()
    assert stats["computed"] == 0, f"restart recomputed: {stats}"
    assert stats["cache_hits"] >= 1, stats
    served = client.result(entry["key"])["results_csv"]
    with open(os.path.join(base_dir, "served.csv"), encoding="utf-8") as f:
        assert served == f.read(), "restart served different bytes"
    client.shutdown()
    assert server.wait(timeout=30) == 0, "graceful shutdown exited non-zero"
    print("phase2: kill -9 + restart served from the store, "
          "zero computations, same bytes")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="gspc-serve crash/coalesce smoke harness."
    )
    parser.add_argument("phase", choices=["phase1", "phase2"])
    parser.add_argument(
        "--dir", default="serve-smoke", help="scratch directory"
    )
    parser.add_argument(
        "--metrics-out", help="manifest dir for the phase2 server"
    )
    args = parser.parse_args(argv)
    if args.phase == "phase1":
        return phase1(args.dir)
    return phase2(args.dir, args.metrics_out)


if __name__ == "__main__":
    sys.exit(main())
