"""The extended workload families (repro.workloads.families).

Covers the registry, per-family determinism, the coherent similarity
knob, the designed envelope verdicts (coherent conforms, graph and
compute deliberately violate), fast-vs-reference engine equivalence on
family traces, resolution through ``SyntheticSource`` and the sweep
spec, the zero-frame ``TraceError`` guard, and the families CLI
exit-code contract (0 conform / 2 usage / 3 violate).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SweepError, TraceError, WorkloadError
from repro.trace.sources.envelope import characterize_capture, check_envelope
from repro.trace.sources.synthetic import SyntheticSource
from repro.workloads.apps import frames_for_app
from repro.workloads.families import (
    FAMILY_ENVELOPE_CONFORMANT,
    all_families,
    family_by_name,
    family_workloads,
    is_family_workload,
)
from repro.workloads.families.__main__ import main as families_cli
from repro.workloads.families.coherent import inter_frame_overlap

#: Small enough that every generated frame is a fraction of a second.
SCALE = 0.03125

#: One representative preset per family, used by the heavier tests.
REPRESENTATIVES = ("coh-med", "graph-bfs", "comp-stream")


# -- registry -----------------------------------------------------------------

def test_registry_shape():
    assert all_families() == ["coherent", "graph", "compute"]
    for family in all_families():
        presets = family_workloads(family)
        assert len(presets) == 3
        assert all(p.family == family for p in presets)


def test_lookup_by_name_and_abbrev():
    assert family_by_name("coh-hi") is family_by_name("coherent-high")
    assert family_by_name("graph-pr").mode == "pr"
    assert is_family_workload("comp-reduce")
    assert not is_family_workload("DMC")  # Table 1 apps are not families
    with pytest.raises(WorkloadError):
        family_by_name("nosuch")
    with pytest.raises(WorkloadError):
        family_workloads("nosuch-family")


# -- generation ---------------------------------------------------------------

@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_generation_is_deterministic(name):
    workload = family_by_name(name)
    first = workload.generate(0, SCALE)
    second = workload.generate(0, SCALE)
    assert np.array_equal(first.addresses, second.addresses)
    assert np.array_equal(first.streams, second.streams)
    assert np.array_equal(first.writes, second.writes)


@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_frames_actually_vary(name):
    workload = family_by_name(name)
    first = workload.generate(0, SCALE)
    second = workload.generate(1, SCALE)
    assert not (
        len(first) == len(second)
        and np.array_equal(first.addresses, second.addresses)
    )


def test_similarity_knob_orders_inter_frame_overlap():
    overlaps = {
        name: inter_frame_overlap(family_by_name(name), SCALE)
        for name in ("coh-hi", "coh-med", "coh-lo")
    }
    assert overlaps["coh-hi"] > overlaps["coh-lo"]
    assert all(0.0 < value <= 1.0 for value in overlaps.values())


# -- envelope verdicts --------------------------------------------------------

@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_envelope_verdict_matches_design(name):
    workload = family_by_name(name)
    violations = check_envelope(
        characterize_capture(workload.generate(0, SCALE))
    )
    expected_conformant = FAMILY_ENVELOPE_CONFORMANT[workload.family]
    assert (not violations) == expected_conformant, violations


# -- engine equivalence -------------------------------------------------------

@pytest.mark.parametrize("name", REPRESENTATIVES)
def test_fast_engine_matches_reference(name):
    from repro.config import paper_baseline
    from repro.sim.offline import simulate_trace

    trace = family_by_name(name).generate(0, SCALE)
    llc = paper_baseline(llc_mb=1, scale=SCALE).llc
    for policy in ("lru", "gspc"):
        ref = simulate_trace(trace, policy, llc, engine="reference")
        fast = simulate_trace(trace, policy, llc, engine="fast")
        assert (ref.hits, ref.misses) == (fast.hits, fast.misses)


# -- source and sweep integration ---------------------------------------------

def test_synthetic_source_resolves_but_does_not_enumerate():
    source = SyntheticSource()
    spec = source.frame_spec("graph-chase", 2)
    assert spec.app.abbrev == "graph-chase"
    assert spec.frame_index == 2
    trace = source.frame_trace("coh-hi", 0, SCALE)
    assert len(trace) > 0
    # The published 12-app x 52-frame set stays exactly as it was.
    enumerated = {workload.name for workload in source.workloads()}
    assert len(source.frames()) == 52
    assert not any(is_family_workload(name) for name in enumerated)


def test_sweep_spec_expands_family_apps():
    from repro.sweep.spec import SweepSpec

    spec = SweepSpec(
        name="fam",
        policies=("lru",),
        apps=("coh-hi", "graph-bfs", "comp-stream"),
        frames_per_app=2,
        scale=SCALE,
    )
    frames = spec.frames()
    assert len(frames) == 6
    assert {frame.app.abbrev for frame in frames} == {
        "coh-hi", "graph-bfs", "comp-stream"
    }
    with pytest.raises(SweepError):
        SweepSpec(name="bad", policies=("lru",), apps=("nosuch",))


def test_frames_per_app_clamps_to_family_num_frames():
    from repro.sweep.spec import SweepSpec

    spec = SweepSpec(
        name="fam",
        policies=("lru",),
        apps=("coh-hi",),
        frames_per_app=99,  # presets define 4 frames
        scale=SCALE,
    )
    assert len(spec.frames()) == family_by_name("coh-hi").num_frames


# -- zero-frame guard ---------------------------------------------------------

class _Frameless:
    name = "frameless"
    abbrev = "none"
    num_frames = 0


def test_frames_for_app_rejects_zero_frames():
    with pytest.raises(TraceError):
        frames_for_app(_Frameless())
    assert len(frames_for_app(family_by_name("coh-hi"))) == 4


# -- CLI exit-code contract ---------------------------------------------------

def test_cli_list(capsys):
    assert families_cli(["list"]) == 0
    out = capsys.readouterr().out
    for name in REPRESENTATIVES:
        assert name in out


def test_cli_check_exit_codes(capsys):
    args = ["--frame", "0", "--scale", str(SCALE)]
    assert families_cli(["check", "coh-hi", *args]) == 0
    assert families_cli(["check", "graph-bfs", *args]) == 3
    assert families_cli(["check", "graph-bfs", "--expect", "violate", *args]) == 0
    assert families_cli(["check", "coh-hi", "--expect", "violate", *args]) == 3
    # Mixed conform/violate fails both gates.
    assert families_cli(["check", "coh-hi", "graph-bfs", *args]) == 3
    capsys.readouterr()


def test_cli_usage_errors(capsys):
    assert families_cli(["check", "nosuch"]) == 2
    assert families_cli(["nosuch-command"]) == 2
    capsys.readouterr()
