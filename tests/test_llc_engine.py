"""LLC engine tests: hits/misses, eviction, RT-bit statistics, bypass."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import BYPASS, HIT, LLC, MISS, LLCObserver
from repro.core.lru import LRUPolicy
from repro.core.srrip import SRRIPPolicy
from repro.streams import Stream


def _llc(num_sets=4, ways=2, policy=None, **kwargs):
    geometry = CacheGeometry(num_sets=num_sets, ways=ways)
    return LLC(geometry, policy or LRUPolicy(), **kwargs)


def _addr(block):
    return block * 64


class TestBasics:
    def test_miss_then_hit(self):
        llc = _llc()
        assert llc.access(_addr(0), Stream.Z) == MISS
        assert llc.access(_addr(0), Stream.Z) == HIT
        assert llc.stats.misses == 1
        assert llc.stats.hits == 1

    def test_fill_on_miss_always(self):
        llc = _llc()
        llc.access(_addr(0), Stream.TEXTURE)
        assert llc.contains(_addr(0))

    def test_eviction_when_set_full(self):
        llc = _llc(num_sets=1, ways=2)
        llc.access(_addr(0), Stream.Z)
        llc.access(_addr(1), Stream.Z)
        llc.access(_addr(2), Stream.Z)  # evicts LRU: block 0
        assert llc.stats.evictions == 1
        assert not llc.contains(_addr(0))
        assert llc.contains(_addr(1))
        assert llc.contains(_addr(2))

    def test_dirty_eviction_counts_writeback(self):
        llc = _llc(num_sets=1, ways=1)
        llc.access(_addr(0), Stream.RT, is_write=True)
        llc.access(_addr(1), Stream.Z)
        assert llc.stats.writebacks == 1
        assert llc.stats.dram_writes == 1

    def test_clean_eviction_no_writeback(self):
        llc = _llc(num_sets=1, ways=1)
        llc.access(_addr(0), Stream.Z)
        llc.access(_addr(1), Stream.Z)
        assert llc.stats.writebacks == 0

    def test_write_hit_dirties_block(self):
        llc = _llc(num_sets=1, ways=1)
        llc.access(_addr(0), Stream.RT)
        llc.access(_addr(0), Stream.RT, is_write=True)
        llc.access(_addr(1), Stream.Z)
        assert llc.stats.writebacks == 1

    def test_per_stream_accounting(self):
        llc = _llc()
        llc.access(_addr(0), Stream.Z)
        llc.access(_addr(0), Stream.Z)
        llc.access(_addr(1), Stream.TEXTURE)
        assert llc.stats.per_stream[Stream.Z].hits == 1
        assert llc.stats.per_stream[Stream.Z].misses == 1
        assert llc.stats.per_stream[Stream.TEXTURE].misses == 1

    def test_resident_blocks(self):
        llc = _llc()
        for block in range(5):
            llc.access(_addr(block), Stream.Z)
        assert llc.resident_blocks() == 5

    def test_dram_reads_count_misses(self):
        llc = _llc()
        llc.access(_addr(0), Stream.Z)
        llc.access(_addr(0), Stream.Z)
        assert llc.stats.dram_reads == 1


class TestInterStreamTracking:
    def test_rt_production_and_consumption(self):
        llc = _llc()
        llc.access(_addr(0), Stream.RT, is_write=True)
        assert llc.rt_flag_of(_addr(0)) is True
        assert llc.stats.rt_produced == 1
        llc.access(_addr(0), Stream.TEXTURE)
        assert llc.stats.rt_consumed == 1
        assert llc.stats.tex_inter_hits == 1
        assert llc.rt_flag_of(_addr(0)) is False

    def test_second_tex_hit_is_intra_stream(self):
        llc = _llc()
        llc.access(_addr(0), Stream.RT, is_write=True)
        llc.access(_addr(0), Stream.TEXTURE)
        llc.access(_addr(0), Stream.TEXTURE)
        assert llc.stats.tex_inter_hits == 1
        assert llc.stats.tex_intra_hits == 1

    def test_display_counts_as_rt_production(self):
        llc = _llc()
        llc.access(_addr(0), Stream.DISPLAY, is_write=True)
        assert llc.stats.rt_produced == 1

    def test_rt_reacquisition_counts_as_new_production(self):
        llc = _llc()
        llc.access(_addr(0), Stream.RT, is_write=True)   # production 1
        llc.access(_addr(0), Stream.TEXTURE)             # consumption 1
        llc.access(_addr(0), Stream.RT, is_write=True)   # production 2
        llc.access(_addr(0), Stream.TEXTURE)             # consumption 2
        assert llc.stats.rt_produced == 2
        assert llc.stats.rt_consumed == 2

    def test_eviction_clears_rt_flag(self):
        llc = _llc(num_sets=1, ways=1)
        llc.access(_addr(0), Stream.RT, is_write=True)
        llc.access(_addr(1), Stream.Z)          # evicts RT block
        llc.access(_addr(0), Stream.TEXTURE)    # miss, refill as texture
        assert llc.stats.rt_consumed == 0
        assert llc.stats.tex_inter_hits == 0

    def test_consumption_rate(self):
        llc = _llc()
        llc.access(_addr(0), Stream.RT, is_write=True)
        llc.access(_addr(1), Stream.RT, is_write=True)
        llc.access(_addr(0), Stream.TEXTURE)
        assert llc.stats.rt_consumption_rate == pytest.approx(0.5)


class TestBypass:
    def test_uncached_stream_bypasses(self):
        llc = _llc(uncached_streams={Stream.DISPLAY})
        assert llc.access(_addr(0), Stream.DISPLAY, is_write=True) == BYPASS
        assert not llc.contains(_addr(0))
        assert llc.stats.per_stream[Stream.DISPLAY].bypasses == 1
        assert llc.stats.dram_writes == 1

    def test_uncached_read_counts_dram_read(self):
        llc = _llc(uncached_streams={Stream.DISPLAY})
        llc.access(_addr(0), Stream.DISPLAY, is_write=False)
        assert llc.stats.dram_reads == 1

    def test_other_streams_unaffected(self):
        llc = _llc(uncached_streams={Stream.DISPLAY})
        assert llc.access(_addr(0), Stream.RT) == MISS
        assert llc.contains(_addr(0))


class TestObserver:
    def test_observer_receives_events(self):
        events = []

        class Recorder(LLCObserver):
            def on_fill(self, ctx, slot):
                events.append(("fill", ctx.block, slot))

            def on_hit(self, ctx, slot, was_rt):
                events.append(("hit", ctx.block, was_rt))

            def on_evict(self, ctx, slot):
                events.append(("evict", slot))

        llc = _llc(num_sets=1, ways=1, observer=Recorder())
        llc.access(_addr(0), Stream.RT, is_write=True)
        llc.access(_addr(0), Stream.TEXTURE)
        llc.access(_addr(9), Stream.Z)
        kinds = [event[0] for event in events]
        assert kinds == ["fill", "hit", "evict", "fill"]
        assert events[1][2] is True  # the texture hit saw the RT bit


class TestPolicyIntegration:
    def test_srrip_policy_runs(self):
        llc = _llc(num_sets=2, ways=4, policy=SRRIPPolicy())
        for block in range(32):
            llc.access(_addr(block), Stream.Z)
        assert llc.stats.misses == 32
        assert llc.resident_blocks() == 8

    def test_snapshot_keys(self):
        llc = _llc()
        llc.access(_addr(0), Stream.Z)
        snapshot = llc.stats.snapshot()
        for key in ("accesses", "hits", "misses", "per_stream", "hit_rate"):
            assert key in snapshot


class TestWritebackSink:
    def test_sink_receives_victim_addresses(self):
        received = []
        geometry = CacheGeometry(num_sets=1, ways=1)
        llc = LLC(geometry, LRUPolicy(), writeback_sink=received.append)
        llc.access(_addr(5), Stream.RT, is_write=True)
        llc.access(_addr(6), Stream.Z)  # evicts dirty block 5
        assert received == [_addr(5)]

    def test_sink_skipped_for_clean_victims(self):
        received = []
        geometry = CacheGeometry(num_sets=1, ways=1)
        llc = LLC(geometry, LRUPolicy(), writeback_sink=received.append)
        llc.access(_addr(5), Stream.Z)
        llc.access(_addr(6), Stream.Z)
        assert received == []
