"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.config import CacheParams, KB, LLCConfig
from repro.core.base import NEVER
from repro.core.registry import make_policy
from repro.sim.future import next_use_indices
from repro.sim.offline import simulate_trace
from repro.streams import Stream
from repro.trace.record import Trace
from repro.utils.counters import SaturatingCounter

# -- strategies -----------------------------------------------------------------

small_traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),     # block
        st.integers(min_value=0, max_value=7),      # stream
        st.booleans(),                              # write
    ),
    min_size=1,
    max_size=300,
)


def _trace_from(entries) -> Trace:
    addresses = np.array([b * 64 for b, _, _ in entries], dtype=np.uint64)
    streams = np.array([s for _, s, _ in entries], dtype=np.uint8)
    writes = np.array([w for _, _, w in entries], dtype=bool)
    return Trace(addresses, streams, writes, {"name": "hyp"})


TINY = LLCConfig(params=CacheParams(2 * KB, ways=2), banks=1, sample_period=4)

ALL_POLICIES = (
    "lru", "nru", "srrip", "brrip", "drrip", "gs-drrip", "ship-mem",
    "gspztc", "gspztc+tse", "gspc",
)


# -- counters -----------------------------------------------------------------

@given(
    bits=st.integers(min_value=1, max_value=8),
    operations=st.lists(st.sampled_from(["inc", "dec", "halve"]), max_size=60),
)
def test_counter_always_in_range(bits, operations):
    counter = SaturatingCounter(bits)
    for operation in operations:
        if operation == "inc":
            counter.increment()
        elif operation == "dec":
            counter.decrement()
        else:
            counter.halve()
        assert 0 <= counter.value <= counter.max_value


# -- next-use ---------------------------------------------------------------------

@given(blocks=st.lists(st.integers(min_value=0, max_value=15), max_size=120))
def test_next_use_pointers_consistent(blocks):
    array = np.array(blocks, dtype=np.uint64)
    next_uses = next_use_indices(array)
    for i, nxt in enumerate(next_uses.tolist()):
        if nxt == NEVER:
            assert all(b != blocks[i] for b in blocks[i + 1 :])
        else:
            assert blocks[nxt] == blocks[i]
            assert all(b != blocks[i] for b in blocks[i + 1 : nxt])


# -- cache invariants ------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(entries=small_traces, policy=st.sampled_from(ALL_POLICIES))
def test_accounting_identities(entries, policy):
    trace = _trace_from(entries)
    result = simulate_trace(trace, policy, TINY)
    stats = result.stats
    assert stats.hits + stats.misses + stats.bypasses == len(trace)
    assert stats.fills == stats.misses           # no-bypass policies fill
    assert stats.writebacks <= stats.evictions
    assert stats.evictions <= stats.misses
    assert stats.rt_consumed <= stats.rt_produced
    assert stats.dram_reads == stats.misses


@settings(max_examples=30, deadline=None)
@given(entries=small_traces, policy=st.sampled_from(ALL_POLICIES))
def test_residency_never_exceeds_capacity(entries, policy):
    geometry = CacheGeometry(num_sets=8, ways=2, sample_period=4)
    llc = LLC(geometry, make_policy(policy))
    for block, stream, write in entries:
        llc.access(block * 64, stream, write)
        assert llc.resident_blocks() <= geometry.num_sets * geometry.ways
    # Every resident lookup entry is unique and consistent.
    for block, _, _ in entries[-8:]:
        way = llc.way_of(block * 64)
        if way is not None:
            assert 0 <= way < geometry.ways


@settings(max_examples=25, deadline=None)
@given(entries=small_traces)
def test_most_recent_block_is_resident(entries):
    """After any access sequence the last-touched block must be cached
    (the LLC is non-bypassing for cached streams)."""
    llc = LLC(CacheGeometry(num_sets=4, ways=2), make_policy("gspc"))
    for block, stream, write in entries:
        llc.access(block * 64, stream, write)
        assert llc.contains(block * 64)


# -- Belady optimality ----------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(entries=small_traces, policy=st.sampled_from(ALL_POLICIES))
def test_belady_is_lower_bound(entries, policy):
    """On any trace, OPT must not miss more than any online policy."""
    trace = _trace_from(entries)
    opt = simulate_trace(trace, "belady", TINY).misses
    online = simulate_trace(trace, policy, TINY).misses
    assert opt <= online


@settings(max_examples=20, deadline=None)
@given(entries=small_traces)
def test_determinism(entries):
    trace = _trace_from(entries)
    a = simulate_trace(trace, "gspc+ucd", TINY)
    b = simulate_trace(trace, "gspc+ucd", TINY)
    assert a.stats.snapshot() == b.stats.snapshot()


# -- UCD property -----------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(entries=small_traces)
def test_ucd_never_caches_display(entries):
    trace = _trace_from(entries)
    llc_stats = simulate_trace(trace, "drrip+ucd", TINY).stats
    display = llc_stats.per_stream[Stream.DISPLAY]
    assert display.hits == 0 and display.misses == 0
    display_count = sum(1 for _, s, _ in entries if s == int(Stream.DISPLAY))
    assert display.bypasses == display_count


# -- command-stream round trips -----------------------------------------------

command_draws = st.lists(
    st.tuples(
        st.integers(0, 15), st.integers(0, 15),   # x0, y0
        st.integers(1, 16), st.integers(1, 16),   # width, height
        st.floats(0.1, 1.0),                      # coverage
        st.booleans(),                            # blend
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=25, deadline=None)
@given(draws=command_draws)
def test_command_list_json_round_trip(draws):
    from repro.workloads.commands import CommandList, capture_commands
    from repro.workloads.passes import DrawCall, RenderPass
    from repro.workloads.surfaces import AddressSpace, allocate_surface

    space = AddressSpace()
    color = allocate_surface(space, "color", 64, 64)
    render_pass = RenderPass(
        "p",
        color,
        draws=tuple(
            DrawCall(
                region=(x0, y0, x0 + w, y0 + h),
                coverage=coverage,
                blend=blend,
            )
            for x0, y0, w, h, coverage, blend in draws
        ),
    )
    captured = capture_commands([render_pass])
    restored = CommandList.from_json(captured.to_json())
    assert restored.commands == captured.commands
    assert restored.surfaces == captured.surfaces
