"""Bit-manipulation helper tests."""

import pytest

from repro.errors import ConfigError
from repro.utils.bitops import ilog2, is_power_of_two, mix_bits


@pytest.mark.parametrize("value", [1, 2, 4, 64, 1 << 20])
def test_powers_of_two(value):
    assert is_power_of_two(value)
    assert 1 << ilog2(value) == value


@pytest.mark.parametrize("value", [0, -4, 3, 6, 100])
def test_non_powers_of_two(value):
    assert not is_power_of_two(value)
    with pytest.raises(ConfigError):
        ilog2(value)


def test_mix_bits_deterministic():
    assert mix_bits(12345) == mix_bits(12345)


def test_mix_bits_spreads_nearby_inputs():
    hashes = {mix_bits(i) & 0xFFFF for i in range(256)}
    # 256 consecutive inputs should land in many distinct low-16 buckets.
    assert len(hashes) > 200


def test_mix_bits_stays_in_64_bits():
    assert mix_bits((1 << 64) - 1) < (1 << 64)
