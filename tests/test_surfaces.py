"""Surface and address-space tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.surfaces import (
    BLOCK_BYTES,
    PAGE_BYTES,
    AddressSpace,
    Surface,
    allocate_surface,
    allocate_texture,
)


class TestAddressSpace:
    def test_allocations_are_disjoint(self):
        space = AddressSpace()
        a = space.allocate(1000)
        b = space.allocate(1000)
        assert b >= a + 1000

    def test_page_alignment(self):
        space = AddressSpace()
        space.allocate(1)
        assert space.allocate(1) % PAGE_BYTES == 0

    def test_rejects_empty_allocation(self):
        with pytest.raises(WorkloadError):
            AddressSpace().allocate(0)


class TestSurface:
    def test_tile_counts_32bpp(self):
        surface = Surface("s", 0, 64, 32, tile_px=4)
        assert surface.tiles_x == 16
        assert surface.tiles_y == 8
        assert surface.num_blocks == 128
        assert surface.size_bytes == 128 * BLOCK_BYTES

    def test_stencil_tiling_8px(self):
        surface = Surface("stc", 0, 64, 64, tile_px=8)
        assert surface.num_blocks == 64

    def test_block_address_row_major(self):
        surface = Surface("s", 1 << 20, 64, 32)
        assert surface.block_address(0, 0) == 1 << 20
        assert surface.block_address(1, 0) == (1 << 20) + 64
        assert surface.block_address(0, 1) == (1 << 20) + 16 * 64

    def test_block_address_bounds_checked(self):
        surface = Surface("s", 0, 16, 16)
        with pytest.raises(WorkloadError):
            surface.block_address(4, 0)

    def test_vectorized_matches_scalar(self):
        surface = Surface("s", 4096, 64, 32)
        xs = np.array([0, 3, 15])
        ys = np.array([0, 2, 7])
        expected = [surface.block_address(x, y) for x, y in zip(xs, ys)]
        assert surface.block_addresses(xs, ys).tolist() == expected

    def test_vectorized_clips_out_of_range(self):
        surface = Surface("s", 0, 16, 16)
        addresses = surface.block_addresses(np.array([99]), np.array([-5]))
        assert surface.contains(int(addresses[0]))

    def test_linear_blocks_wrap(self):
        surface = Surface("s", 0, 16, 16)  # 16 blocks
        addresses = surface.linear_blocks(14, 4)
        blocks = [(a - surface.base) // BLOCK_BYTES for a in addresses.tolist()]
        assert blocks == [14, 15, 0, 1]

    def test_contains(self):
        surface = Surface("s", 4096, 16, 16)
        assert surface.contains(4096)
        assert not surface.contains(4095)

    def test_empty_extent_rejected(self):
        with pytest.raises(WorkloadError):
            Surface("s", 0, 0, 16)


class TestTextures:
    def test_mip_chain_halves(self):
        space = AddressSpace()
        texture = allocate_texture(space, "t", 64, 64)
        sizes = [level.width_px for level in texture.levels]
        assert sizes == [64, 32, 16, 8, 4]

    def test_level_clamping(self):
        space = AddressSpace()
        texture = allocate_texture(space, "t", 32, 32)
        assert texture.level(-1) is texture.levels[0]
        assert texture.level(99) is texture.levels[-1]

    def test_levels_disjoint(self):
        space = AddressSpace()
        texture = allocate_texture(space, "t", 64, 64)
        ranges = [
            (level.base, level.base + level.size_bytes)
            for level in texture.levels
        ]
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 <= b0 or b1 <= a0

    def test_total_blocks(self):
        space = AddressSpace()
        texture = allocate_texture(space, "t", 16, 16)
        assert texture.total_blocks == sum(level.num_blocks for level in texture.levels)

    def test_allocate_surface_sets_base(self):
        space = AddressSpace()
        surface = allocate_surface(space, "s", 32, 32)
        assert surface.base >= 1 << 32
