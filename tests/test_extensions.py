"""Tests for the beyond-the-paper extensions: multi-frame sequences and
texture-bypass GSPC."""

import numpy as np
import pytest

from repro.config import paper_baseline
from repro.errors import WorkloadError
from repro.sim.offline import build_llc, simulate_trace
from repro.streams import Stream
from repro.workloads.apps import ALL_APPS
from repro.workloads.sequence import generate_sequence_trace

SCALE = 0.0625


@pytest.fixture(scope="module")
def sequence():
    return generate_sequence_trace(ALL_APPS[3], num_frames=2, scale=SCALE)


class TestSequences:
    def test_two_frames_longer_than_one(self, sequence):
        single = generate_sequence_trace(ALL_APPS[3], num_frames=1, scale=SCALE)
        assert len(sequence) > len(single)
        assert sequence.meta["frames"] == 2
        assert len(sequence.meta["frame_boundaries"]) == 2

    def test_cross_frame_reuse_exists(self, sequence):
        """Frame 2 re-reads blocks frame 1 touched (persistent
        resources), unlike independently generated frames."""
        boundary = sequence.meta["frame_boundaries"][0]
        first = set(sequence.block_addresses()[:boundary].tolist())
        second = set(sequence.block_addresses()[boundary:].tolist())
        overlap = len(first & second) / len(second)
        assert overlap > 0.3

    def test_deterministic(self):
        a = generate_sequence_trace(ALL_APPS[0], num_frames=2, scale=SCALE)
        b = generate_sequence_trace(ALL_APPS[0], num_frames=2, scale=SCALE)
        assert np.array_equal(a.addresses, b.addresses)

    def test_rejects_zero_frames(self):
        with pytest.raises(WorkloadError):
            generate_sequence_trace(ALL_APPS[0], num_frames=0)

    def test_policies_run_on_sequences(self, sequence):
        system = paper_baseline(llc_mb=8, scale=SCALE)
        for policy in ("drrip", "gspc+ucd", "belady"):
            result = simulate_trace(sequence, policy, system.llc)
            assert result.accesses == len(sequence)


class TestGSPCBypass:
    def test_registered(self):
        from repro.core.registry import policy_spec

        assert policy_spec("gspc+bypass").build().name == "gspc+bypass"

    def test_bypasses_dead_textures(self):
        system = paper_baseline(llc_mb=8, scale=SCALE)
        llc = build_llc("gspc+bypass", system.llc)
        policy = llc.policy
        # Teach the sampler that E0 textures are dead.
        for bank in range(system.llc.banks):
            policy.counters["fill_e0"][bank] = 200
            policy.counters["hit_e0"][bank] = 1
        follower = next(
            s
            for s in range(llc.geometry.num_sets)
            if not llc.geometry.is_sample_set[s]
        )
        outcome = llc.access(follower * 64, Stream.TEXTURE)
        from repro.cache.llc import BYPASS

        assert outcome == BYPASS
        assert not llc.contains(follower * 64)
        assert policy.bypassed_fills == 1

    def test_never_bypasses_samples(self):
        system = paper_baseline(llc_mb=8, scale=SCALE)
        llc = build_llc("gspc+bypass", system.llc)
        policy = llc.policy
        for bank in range(system.llc.banks):
            policy.counters["fill_e0"][bank] = 200
        sample = llc.geometry.sample_sets[0]
        llc.access(sample * 64, Stream.TEXTURE)
        assert llc.contains(sample * 64)

    def test_never_bypasses_other_streams(self):
        system = paper_baseline(llc_mb=8, scale=SCALE)
        llc = build_llc("gspc+bypass", system.llc)
        for bank in range(system.llc.banks):
            llc.policy.counters["fill_e0"][bank] = 200
        follower = next(
            s
            for s in range(llc.geometry.num_sets)
            if not llc.geometry.is_sample_set[s]
        )
        llc.access(follower * 64, Stream.RT, is_write=True)
        assert llc.contains(follower * 64)

    def test_competitive_with_gspc_on_frames(self):
        """Bypass must not blow up miss counts (sanity, not superiority)."""
        from repro.workloads.framegen import generate_frame_trace

        system = paper_baseline(llc_mb=8, scale=SCALE)
        trace = generate_frame_trace(ALL_APPS[2], 0, scale=SCALE)
        gspc = simulate_trace(trace, "gspc", system.llc)
        bypass = simulate_trace(trace, "gspc+bypass", system.llc)
        assert bypass.misses < gspc.misses * 1.1
