"""Tests for the content-addressed result store (repro.serve.store).

The two hypothesis properties mirror the sweep journal's crash-safety
contract (tests/test_sweep.py): concurrent writers on one key leave
exactly one readable winner with no torn reads, and truncating the
store WAL at *any* byte offset recovers every fully written record and
nothing else.
"""

from __future__ import annotations

import json
import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import wal
from repro.errors import ServeError
from repro.serve.store import (
    DEFAULT_SHARD_WIDTH,
    ResultStore,
    code_version,
    result_key,
    verify,
)

KEY = result_key({"name": "s"}, "auto", "v1")


# -- keys ---------------------------------------------------------------------

def test_result_key_is_deterministic_and_order_insensitive():
    a = result_key({"name": "s", "scale": 0.5}, "auto", "v1")
    b = result_key({"scale": 0.5, "name": "s"}, "auto", "v1")
    assert a == b
    assert len(a) == 64 and set(a) <= set("0123456789abcdef")


def test_result_key_separates_spec_engine_and_code_version():
    base = result_key({"name": "s"}, "auto", "v1")
    assert result_key({"name": "t"}, "auto", "v1") != base
    assert result_key({"name": "s"}, "fast", "v1") != base
    assert result_key({"name": "s"}, "auto", "v2") != base


def test_result_key_rejects_non_mapping_spec():
    with pytest.raises(ServeError, match="spec object"):
        result_key(["not", "a", "spec"], "auto", "v1")


def test_code_version_env_override(monkeypatch):
    from repro import __version__

    monkeypatch.delenv("REPRO_CODE_VERSION", raising=False)
    assert code_version() == __version__
    monkeypatch.setenv("REPRO_CODE_VERSION", "deadbeef")
    assert code_version() == "deadbeef"


# -- basic store behaviour ----------------------------------------------------

def test_put_get_roundtrip(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert store.get(KEY) is None
    assert KEY not in store
    store.put(KEY, {"answer": 42})
    assert store.get(KEY) == {"answer": 42}
    assert KEY in store
    assert list(store.keys()) == [KEY]
    assert store.stats() == {"objects": 1, "wal_shards": 1}


def test_sharding_splits_objects_and_wal_by_key_prefix(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert store.object_path(KEY).endswith(
        os.path.join(KEY[:DEFAULT_SHARD_WIDTH], f"{KEY}.json")
    )
    assert store.wal_path(KEY).endswith(f"{KEY[:DEFAULT_SHARD_WIDTH]}.jsonl")
    zero = ResultStore(str(tmp_path / "flat"), shard_width=0)
    assert zero.wal_path(KEY).endswith("all.jsonl")


def test_store_rejects_bad_keys_and_payloads(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    with pytest.raises(ServeError, match="malformed store key"):
        store.get("not-a-key")
    with pytest.raises(ServeError, match="malformed store key"):
        store.put("abc", {})
    with pytest.raises(ServeError, match="payload must be an object"):
        store.put(KEY, "scalar")
    with pytest.raises(ServeError, match="shard width"):
        ResultStore(str(tmp_path / "s2"), shard_width=9)


def test_get_heals_missing_object_from_wal(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.put(KEY, {"n": 1})
    os.unlink(store.object_path(KEY))
    assert store.get(KEY) == {"n": 1}
    # The read healed the object file back into place.
    assert os.path.exists(store.object_path(KEY))


def test_get_falls_back_past_corrupt_object(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.put(KEY, {"n": 2})
    with open(store.object_path(KEY), "w", encoding="utf-8") as handle:
        handle.write('{"torn": ')
    assert store.get(KEY) == {"n": 2}


def test_first_wal_record_wins_on_replay(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.put(KEY, {"writer": "first"})
    wal.append_once(
        store.wal_path(KEY),
        {"v": 1, "key": KEY, "status": "ok", "payload": {"writer": "second"}},
    )
    os.unlink(store.object_path(KEY))
    assert store.get(KEY) == {"writer": "first"}


def test_recover_reports_heals_and_rejections(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    other = result_key({"name": "other"}, "auto", "v1")
    store.put(KEY, {"n": 1})
    store.put(other, {"n": 2})
    os.unlink(store.object_path(other))
    with open(store.wal_path(KEY), "a", encoding="utf-8") as handle:
        handle.write("garbage line\n")
    report = store.recover()
    assert report.keys == 2
    assert report.healed == 1
    assert report.rejected_lines == 1
    assert store.get(other) == {"n": 2}


def test_verify_rejects_malformed_records():
    good = {"v": 1, "key": KEY, "status": "ok", "payload": {"n": 1}}
    assert verify(json.loads(wal.seal(good))) == good
    for bad in (
        {**good, "key": "short"},
        {**good, "status": "failed"},
        {**good, "payload": "scalar"},
        {**good, "v": 99},
    ):
        assert verify(json.loads(wal.seal(bad))) is None
    # Checksum mismatch: sealed then tampered.
    tampered = json.loads(wal.seal(good))
    tampered["payload"] = {"n": 2}
    assert verify(tampered) is None


# -- hypothesis: concurrent writers, one winner, no torn reads ----------------

@settings(max_examples=25, deadline=None)
@given(
    payloads=st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=1000),
            min_size=1,
        ),
        min_size=2,
        max_size=4,
        unique_by=lambda d: wal.canonical_json(d),
    )
)
def test_concurrent_writers_one_winner(tmp_path_factory, payloads):
    """N racing put()s on one key: every read sees exactly one writer's
    payload, byte-for-byte — never an interleaving, never a torn read."""
    tmp_path = tmp_path_factory.mktemp("race")
    store = ResultStore(str(tmp_path / "store"))
    barrier = threading.Barrier(len(payloads))

    def writer(payload):
        barrier.wait()
        store.put(KEY, payload)

    threads = [
        threading.Thread(target=writer, args=(p,)) for p in payloads
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # The object file holds one complete payload (last rename wins).
    assert store.get(KEY) in payloads
    # The WAL holds every writer's record intact; replay picks the first.
    state = wal.replay(store.wal_path(KEY), validator=verify)
    assert state.rejected_lines == 0
    assert len(state.records) == len(payloads)
    assert all(record["payload"] in payloads for record in state.records)
    # A cold reader (object deleted) sees the first writer, still whole.
    os.unlink(store.object_path(KEY))
    assert store.get(KEY) == state.records[0]["payload"]


# -- hypothesis: WAL truncation at every byte offset --------------------------

_KEYS = [result_key({"n": i}, "auto", "v1") for i in range(3)]
_RECORDS = [
    {"v": 1, "key": key, "status": "ok", "payload": {"n": i}}
    for i, key in enumerate(_KEYS)
]
_FULL_TEXT = "".join(wal.seal(record) + "\n" for record in _RECORDS)


@settings(max_examples=60, deadline=None)
@given(cut=st.integers(min_value=0, max_value=len(_FULL_TEXT)))
def test_truncated_store_wal_recovers_every_whole_record(
    tmp_path_factory, cut
):
    """Kill the store at any byte: recovery keeps exactly the records
    whose final newline made it to disk, and heals their objects."""
    tmp_path = tmp_path_factory.mktemp("trunc")
    store = ResultStore(str(tmp_path / "store"), shard_width=0)
    with open(store.wal_path(_KEYS[0]), "w", encoding="utf-8") as handle:
        handle.write(_FULL_TEXT[:cut])
    report = store.recover()
    # A record survives iff its full sealed line made it to disk — the
    # trailing newline itself is not load-bearing (a final complete
    # line with the newline cut off still replays).
    sealed = _FULL_TEXT.splitlines()
    lines = _FULL_TEXT[:cut].split("\n")
    survivors = sum(1 for line in lines if line in sealed)
    partial_tail = sum(1 for line in lines if line and line not in sealed)
    assert report.keys == survivors
    assert report.healed == survivors
    assert report.rejected_lines == partial_tail
    for record in _RECORDS[:survivors]:
        assert store.get(str(record["key"])) == record["payload"]
    for record in _RECORDS[survivors:]:
        assert store.get(str(record["key"])) is None
