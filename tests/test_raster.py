"""Rasterizer tests: draw calls -> access streams."""

import numpy as np
import pytest

from repro.cache.hierarchy import RenderCacheFrontEnd
from repro.config import RenderCachesConfig
from repro.streams import Stream
from repro.workloads.passes import DrawCall, RenderPass, TextureBinding
from repro.workloads.raster import covered_tiles, emit_draw, emit_pass
from repro.workloads.surfaces import AddressSpace, allocate_surface, allocate_texture


@pytest.fixture
def resources():
    space = AddressSpace()
    color = allocate_surface(space, "color", 64, 64)
    depth = allocate_surface(space, "depth", 64, 64)
    hiz = allocate_surface(space, "hiz", 32, 32)
    texture = allocate_texture(space, "tex", 64, 64)
    vertex_base = space.allocate(64 * 64)
    shader_base = space.allocate(64 * 64)
    return space, color, depth, hiz, texture, vertex_base, shader_base


def _emit(render_pass, draw, resources, seed=0):
    _, _, _, _, _, vertex_base, shader_base = resources
    front = RenderCacheFrontEnd(RenderCachesConfig().scaled(1 / 256))
    emit_draw(
        front,
        render_pass,
        draw,
        np.random.default_rng(seed),
        vertex_base,
        shader_base,
        16,
    )
    return front.sink.build()


def test_covered_tiles_full_rect():
    space = AddressSpace()
    surface = allocate_surface(space, "s", 64, 64)
    draw = DrawCall(region=(0, 0, 4, 4), coverage=1.0)
    xs, ys = covered_tiles(draw, surface, np.random.default_rng(0))
    assert xs.size == 16
    assert xs.min() == 0 and xs.max() == 3


def test_covered_tiles_respects_coverage():
    space = AddressSpace()
    surface = allocate_surface(space, "s", 256, 256)
    draw = DrawCall(region=(0, 0, 64, 64), coverage=0.5)
    xs, _ = covered_tiles(draw, surface, np.random.default_rng(0))
    assert 0.35 * 4096 < xs.size < 0.65 * 4096


def test_empty_region_emits_nothing(resources):
    _, color, depth, hiz, _, _, _ = resources
    render_pass = RenderPass("p", color, depth_target=depth, hiz_target=hiz)
    draw = DrawCall(region=(5, 5, 5, 9))
    trace = _emit(render_pass, draw, resources)
    assert len(trace) == 0


def test_draw_emits_expected_streams(resources):
    _, color, depth, hiz, texture, _, _ = resources
    render_pass = RenderPass("p", color, depth_target=depth, hiz_target=hiz)
    draw = DrawCall(
        region=(0, 0, 8, 8),
        textures=(TextureBinding(source=texture, samples_per_tile=1.0),),
        vertex_blocks=4,
    )
    trace = _emit(render_pass, draw, resources)
    present = {Stream(int(s)) for s in set(trace.streams.tolist())}
    assert {Stream.VERTEX, Stream.OTHER, Stream.HIZ, Stream.Z,
            Stream.TEXTURE, Stream.RT} <= present


def test_rt_writes_target_surface(resources):
    _, color, depth, hiz, _, _, _ = resources
    render_pass = RenderPass("p", color, depth_target=depth, hiz_target=hiz)
    draw = DrawCall(region=(0, 0, 4, 4))
    trace = _emit(render_pass, draw, resources)
    rt_mask = trace.stream_mask(Stream.RT)
    for address in trace.addresses[rt_mask].tolist():
        assert color.contains(address)


def test_no_depth_pass_skips_z(resources):
    _, color, _, _, _, _, _ = resources
    render_pass = RenderPass("p", color)  # no depth target
    draw = DrawCall(region=(0, 0, 4, 4))
    trace = _emit(render_pass, draw, resources)
    assert int(trace.stream_mask(Stream.Z).sum()) == 0
    assert int(trace.stream_mask(Stream.HIZ).sum()) == 0


def test_early_z_reject_reduces_work(resources):
    _, color, depth, hiz, _, _, _ = resources
    lenient = RenderPass("p", color, depth_target=depth, early_z_reject=0.0)
    harsh = RenderPass("p", color, depth_target=depth, early_z_reject=0.9)
    draw = DrawCall(region=(0, 0, 16, 16))
    full = _emit(lenient, draw, resources)
    culled = _emit(harsh, draw, resources)
    assert int(culled.stream_mask(Stream.RT).sum()) < int(
        full.stream_mask(Stream.RT).sum()
    )


def test_full_read_binding_consumes_whole_source(resources):
    space, color, _, _, _, _, _ = resources
    dyntex = allocate_surface(space, "dyn", 16, 16)  # 16 blocks
    render_pass = RenderPass("p", color)
    draw = DrawCall(
        region=(0, 0, 2, 2),
        textures=(
            TextureBinding(source=dyntex, screen_mapped=True, full_read=True),
        ),
    )
    trace = _emit(render_pass, draw, resources)
    tex_addresses = set(
        trace.addresses[trace.stream_mask(Stream.TEXTURE)].tolist()
    )
    expected = {dyntex.base + i * 64 for i in range(dyntex.num_blocks)}
    assert tex_addresses == expected


def test_screen_mapped_identity_reads_matching_blocks(resources):
    space, color, _, _, _, _, _ = resources
    source = allocate_surface(space, "src", 64, 64)  # same size as target
    render_pass = RenderPass("p", color)
    draw = DrawCall(
        region=(0, 0, 16, 16),
        textures=(
            TextureBinding(
                source=source, samples_per_tile=1.0, screen_mapped=True
            ),
        ),
    )
    trace = _emit(render_pass, draw, resources)
    tex = trace.addresses[trace.stream_mask(Stream.TEXTURE)]
    offsets = {int(a) - source.base for a in tex.tolist()}
    rt = trace.addresses[trace.stream_mask(Stream.RT)]
    rt_offsets = {int(a) - color.base for a in rt.tolist()}
    assert offsets == rt_offsets  # identity mapping


def test_resolve_emits_display_writes(resources):
    _, color, _, _, _, vertex_base, shader_base = resources
    space = AddressSpace(base=1 << 40)
    display = allocate_surface(space, "display", 64, 64)
    render_pass = RenderPass(
        "final",
        color,
        draws=(DrawCall(region=(0, 0, 4, 4)),),
        resolve_to=display,
    )
    front = RenderCacheFrontEnd(RenderCachesConfig().scaled(1 / 256))
    emit_pass(
        front, render_pass, np.random.default_rng(0), vertex_base, shader_base, 16
    )
    trace = front.sink.build()
    display_mask = trace.stream_mask(Stream.DISPLAY)
    assert int(display_mask.sum()) == display.num_blocks
    assert trace.writes[display_mask].all()


def test_deterministic_for_same_seed(resources):
    _, color, depth, hiz, texture, _, _ = resources
    render_pass = RenderPass("p", color, depth_target=depth, hiz_target=hiz,
                             early_z_reject=0.3)
    draw = DrawCall(
        region=(0, 0, 8, 8),
        coverage=0.8,
        textures=(TextureBinding(source=texture, samples_per_tile=1.5),),
    )
    a = _emit(render_pass, draw, resources, seed=5)
    b = _emit(render_pass, draw, resources, seed=5)
    assert np.array_equal(a.addresses, b.addresses)
    assert np.array_equal(a.streams, b.streams)
