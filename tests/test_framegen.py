"""Frame-generator tests."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.streams import Stream
from repro.trace.stats import compute_trace_stats
from repro.workloads.apps import ALL_APPS, app_by_name
from repro.workloads.framegen import (
    build_frame_passes,
    build_resources,
    generate_frame_trace,
)

SCALE = 0.0625  # 1/16 linear: fast frames for tests


@pytest.fixture(scope="module")
def frame_trace():
    return generate_frame_trace(ALL_APPS[0], frame_index=0, scale=SCALE)


def test_trace_nonempty_and_metadata(frame_trace):
    assert len(frame_trace) > 1000
    assert frame_trace.meta["abbrev"] == ALL_APPS[0].abbrev
    assert frame_trace.meta["frame"] == 0
    assert frame_trace.meta["scale"] == SCALE
    assert frame_trace.meta["raw_accesses"] >= len(frame_trace)


def test_deterministic_generation():
    a = generate_frame_trace(ALL_APPS[1], 0, scale=SCALE)
    b = generate_frame_trace(ALL_APPS[1], 0, scale=SCALE)
    assert np.array_equal(a.addresses, b.addresses)
    assert np.array_equal(a.streams, b.streams)


def test_frames_differ(frame_trace):
    other = generate_frame_trace(ALL_APPS[0], 1, scale=SCALE)
    assert not (
        len(other) == len(frame_trace)
        and np.array_equal(other.addresses, frame_trace.addresses)
    )


def test_all_major_streams_present(frame_trace):
    stats = compute_trace_stats(frame_trace)
    for stream in (
        Stream.VERTEX,
        Stream.HIZ,
        Stream.Z,
        Stream.RT,
        Stream.TEXTURE,
        Stream.DISPLAY,
        Stream.OTHER,
    ):
        assert stats.stream_counts[stream] > 0, stream


def test_rt_and_tex_dominate(frame_trace):
    """The Figure-4 shape: RT + TEX carry most of the LLC traffic."""
    stats = compute_trace_stats(frame_trace)
    rt = stats.stream_fraction(Stream.RT)
    tex = stats.stream_fraction(Stream.TEXTURE)
    assert rt + tex > 0.5
    assert stats.stream_fraction(Stream.Z) > 0.05


def test_display_written_once(frame_trace):
    display_mask = frame_trace.stream_mask(Stream.DISPLAY)
    addresses = frame_trace.addresses[display_mask]
    assert frame_trace.writes[display_mask].all()
    assert len(np.unique(addresses)) == len(addresses)


def test_render_to_texture_exists(frame_trace):
    """Some blocks are written by RT and later read by TEX."""
    blocks = frame_trace.block_addresses()
    rt_blocks = set(blocks[frame_trace.stream_mask(Stream.RT)].tolist())
    tex_blocks = set(blocks[frame_trace.stream_mask(Stream.TEXTURE)].tolist())
    assert len(rt_blocks & tex_blocks) > 100


def test_negative_frame_rejected():
    with pytest.raises(WorkloadError):
        generate_frame_trace(ALL_APPS[0], frame_index=-1)


def test_resources_allocated_disjoint():
    rng = np.random.default_rng(0)
    resources = build_resources(app_by_name("BioShock"), SCALE, rng)
    surfaces = [
        resources.back_buffer,
        resources.display,
        resources.depth,
        resources.hiz,
        resources.stencil,
        resources.scene_color,
        *resources.aux_targets,
        *resources.post_targets,
        *resources.dyntex_targets,
        *resources.shadow_maps,
    ]
    ranges = sorted(
        (s.base, s.base + s.size_bytes) for s in surfaces
    )
    for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
        assert a1 <= b0


def test_pass_structure():
    rng = np.random.default_rng(0)
    app = app_by_name("StalkerCOP")
    resources = build_resources(app, SCALE, rng)
    passes = build_frame_passes(app, resources, 0, rng)
    names = [p.name for p in passes]
    assert any(name.startswith("shadow") for name in names)
    assert any(name.startswith("main") for name in names)
    assert any(name.startswith("post") for name in names)
    assert names[-1] == "final"
    assert passes[-1].resolve_to is resources.display


def test_post_chain_reads_previous_output():
    rng = np.random.default_rng(0)
    app = app_by_name("Unigine")
    resources = build_resources(app, SCALE, rng)
    passes = build_frame_passes(app, resources, 0, rng)
    posts = [p for p in passes if p.name.startswith("post")]
    assert len(posts) == app.post_passes
    first_sources = [b.source for b in posts[0].draws[0].textures]
    assert resources.scene_color in first_sources
