"""Detailed (event-driven) GPU model tests."""

import dataclasses

import pytest

from repro.config import DDR3_1867, GPU_SMALL, paper_baseline
from repro.gpu.detailed import DetailedGPUSimulator, simulate_frame_detailed
from repro.gpu.timing import simulate_frame_timing
from repro.trace import synth


@pytest.fixture(scope="module")
def system():
    return paper_baseline(llc_mb=8, scale=0.125)


@pytest.fixture(scope="module")
def trace():
    return synth.producer_consumer(512, 5, consume_fraction=0.7, gap_blocks=2048)


def test_basic_run(system, trace):
    timing = simulate_frame_detailed(trace, "drrip", system)
    assert timing.frame_ns > 0
    assert timing.accesses == len(trace)
    assert 0.0 <= timing.row_hit_rate <= 1.0
    assert timing.mshr_stall_fraction >= 0.0


def test_deterministic(system, trace):
    a = simulate_frame_detailed(trace, "gspc", system)
    b = simulate_frame_detailed(trace, "gspc", system)
    assert a.frame_ns == b.frame_ns


def test_fewer_misses_faster(system, trace):
    simulator = DetailedGPUSimulator(system)
    opt = simulator.run(trace, "belady")
    lru = simulator.run(trace, "lru")
    assert opt.misses < lru.misses
    assert opt.frame_ns < lru.frame_ns


def test_ordering_agrees_with_windowed_model(system, trace):
    """Both timing models must rank OPT above LRU on the same trace."""
    detailed_opt = simulate_frame_detailed(trace, "belady", system)
    detailed_lru = simulate_frame_detailed(trace, "lru", system)
    windowed_opt = simulate_frame_timing(trace, "belady", system)
    windowed_lru = simulate_frame_timing(trace, "lru", system)
    assert detailed_opt.speedup_over(detailed_lru) > 1.0
    assert windowed_opt.speedup_over(windowed_lru) > 1.0


def test_faster_dram_helps(system, trace):
    fast = dataclasses.replace(system, dram=DDR3_1867)
    base_t = simulate_frame_detailed(trace, "drrip", system)
    fast_t = simulate_frame_detailed(trace, "drrip", fast)
    assert fast_t.frame_ns < base_t.frame_ns


def test_fewer_contexts_slower(system, trace):
    small = dataclasses.replace(system, gpu=GPU_SMALL)
    base_t = simulate_frame_detailed(trace, "drrip", system)
    small_t = simulate_frame_detailed(trace, "drrip", small)
    assert small_t.frame_ns >= base_t.frame_ns


def test_mshr_pressure_reported(system):
    """A pure miss storm must put pressure on the MSHR pool."""
    storm = synth.cyclic_scan(num_blocks=65536, repetitions=1)
    timing = simulate_frame_detailed(storm, "lru", system)
    assert timing.misses == len(storm)
    assert timing.mshr_stall_fraction > 0.0


def test_fps_full_scale_correction(system, trace):
    timing = simulate_frame_detailed(trace, "lru", system)
    corrected = dataclasses.replace(timing, scale=0.5)
    assert corrected.fps_full_scale == pytest.approx(corrected.fps * 0.25)
