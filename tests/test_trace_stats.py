"""Trace statistics tests."""

from repro.streams import Stream
from repro.trace.stats import compute_trace_stats
from repro.trace.record import TraceBuilder

from helpers import make_trace


def test_counts_and_mix():
    trace = make_trace(
        [(0, Stream.Z), (1, Stream.Z), (2, Stream.RT), (3, Stream.TEXTURE)]
    )
    stats = compute_trace_stats(trace)
    assert stats.accesses == 4
    assert stats.stream_counts[Stream.Z] == 2
    assert stats.stream_fraction(Stream.Z) == 0.5
    assert stats.stream_fraction(Stream.RT) == 0.25
    mix = stats.mix()
    assert sum(mix.values()) == 1.0


def test_footprint_deduplicates_blocks():
    trace = make_trace([(0, Stream.Z), (0, Stream.Z), (1, Stream.Z)])
    stats = compute_trace_stats(trace)
    assert stats.footprint_blocks == 2
    assert stats.stream_footprint_blocks[Stream.Z] == 2
    assert stats.footprint_bytes == 128


def test_footprint_across_streams_shares_blocks():
    # A block written as RT then read as TEX counts once overall.
    trace = make_trace([(7, Stream.RT, True), (7, Stream.TEXTURE)])
    stats = compute_trace_stats(trace)
    assert stats.footprint_blocks == 1
    assert stats.stream_footprint_blocks[Stream.RT] == 1
    assert stats.stream_footprint_blocks[Stream.TEXTURE] == 1


def test_write_count():
    trace = make_trace([(0, Stream.RT, True), (1, Stream.RT), (2, Stream.Z, True)])
    assert compute_trace_stats(trace).writes == 2


def test_empty_trace():
    stats = compute_trace_stats(TraceBuilder().build())
    assert stats.accesses == 0
    assert stats.footprint_blocks == 0
    assert stats.stream_fraction(Stream.Z) == 0.0
