"""SHiP-mem tests (Section 5.1's description)."""

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.core.ship import REGION_SHIFT, SHiPMemPolicy
from repro.streams import Stream


def _llc(num_sets=16, ways=2):
    policy = SHiPMemPolicy()
    return policy, LLC(CacheGeometry(num_sets=num_sets, ways=ways), policy)


def test_initial_fill_is_long_not_distant():
    policy, llc = _llc()
    llc.access(0, Stream.TEXTURE)
    assert policy.get_rrpv(0, 0) == 2


def test_region_counter_learns_deadness():
    policy, llc = _llc(num_sets=1, ways=1)
    # Distinct blocks from ONE 16 KB region, never reused: every
    # eviction decrements the region counter until fills go distant.
    region_blocks = [i for i in range(4)]
    for block in region_blocks:
        llc.access(block * 64, Stream.TEXTURE)
    # counter started at 1; first eviction decrements it to 0.
    llc.access(4 * 64, Stream.TEXTURE)
    assert policy.get_rrpv(0, 0) == 3  # dead region -> distant fill


def test_hits_rehabilitate_region():
    policy, llc = _llc(num_sets=1, ways=2)
    llc.access(0, Stream.TEXTURE)
    llc.access(0, Stream.TEXTURE)  # hit: region counter up
    signature = policy._signature(0)
    assert policy.shct[0][signature] >= 2


def test_reused_block_eviction_does_not_decrement():
    policy, llc = _llc(num_sets=1, ways=1)
    llc.access(0, Stream.TEXTURE)
    llc.access(0, Stream.TEXTURE)       # reused
    before = policy.shct[0][policy._signature(0)]
    llc.access((1 << REGION_SHIFT), Stream.TEXTURE)  # evicts block 0
    assert policy.shct[0][policy._signature(0)] == before


def test_different_regions_have_independent_counters():
    policy, _ = _llc()
    a = policy._signature(0)
    b = policy._signature(1 << REGION_SHIFT)
    assert a != b


def test_same_region_same_signature():
    policy, _ = _llc()
    assert policy._signature(0) == policy._signature(16 * 1024 - 64)
