"""The sweep orchestrator: spec expansion, the crash-safe journal,
fault specs, retry/backoff scheduling, and resume equivalence.

Scheduler tests run against a scripted in-process launcher and a fake
clock, so the exact backoff schedule and timeout behaviour are pinned
without spawning processes or sleeping for real.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SweepError
from repro.faults import FaultSpec
from repro.obs.manifest import sweep_manifest, validate_manifest
from repro.sweep.exec import AttemptResult, RetryPolicy, SweepRunner
from repro.sweep.journal import (
    Journal,
    checksum,
    replay,
    seal,
    verify,
    write_atomic,
)
from repro.sweep.report import jobs_section, metrics_section, results_csv
from repro.sweep.spec import SweepJob, SweepSpec, expand
from repro.sweep.worker import load_result, result_filename


# -- spec ---------------------------------------------------------------------

def test_spec_roundtrip_and_expansion_order():
    spec = SweepSpec(
        name="s1",
        policies=("drrip", "lru"),
        llc_mb=(4, 8),
        apps=("DMC", "HAWX"),
        scale=0.0625,
    )
    assert SweepSpec.from_dict(spec.to_dict()) == spec
    jobs = expand(spec)
    # Traces first, then sims; deterministic on re-expansion.
    kinds = [job.kind for job in jobs]
    assert kinds == ["trace"] * 2 + ["sim"] * 8
    assert jobs == expand(spec)
    # Every sim depends on exactly its frame's trace job.
    trace_ids = {job.job_id for job in jobs if job.kind == "trace"}
    for job in jobs:
        if job.kind == "sim":
            assert len(job.deps) == 1 and job.deps[0] in trace_ids
            assert job.deps[0].endswith(f"{job.app}:f{job.frame_index}")


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(name="bad name"), "sweep name"),
        (dict(policies=()), "at least one policy"),
        (dict(policies=("nosuch",)), "unknown policy"),
        (dict(policies=("lru", "lru")), "duplicate policies"),
        (dict(llc_mb=()), "at least one llc_mb"),
        (dict(llc_mb=(0,)), "positive ints"),
        (dict(llc_mb=(8, 8)), "duplicate llc_mb"),
        (dict(apps=("NotAnApp",)), "unknown app"),
        (dict(frames_per_app=0), "frames_per_app"),
        (dict(scale=0.0), "scale"),
        (dict(engine="warp"), "unknown engine"),
    ],
)
def test_spec_validation(kwargs, match):
    base = dict(name="ok", policies=("lru",))
    base.update(kwargs)
    with pytest.raises(SweepError, match=match):
        SweepSpec(**base)


def test_spec_from_dict_rejects_unknown_keys():
    with pytest.raises(SweepError, match="unknown spec key"):
        SweepSpec.from_dict({"name": "x", "policies": ["lru"], "turbo": 1})
    with pytest.raises(SweepError, match="must be an object"):
        SweepSpec.from_dict(["lru"])


def test_sweep_job_validation():
    with pytest.raises(SweepError, match="unknown sweep job kind"):
        SweepJob("warp", "DMC", 0)
    with pytest.raises(SweepError, match="needs a policy"):
        SweepJob("sim", "DMC", 0)
    job = SweepJob("sim", "DMC", 0, "lru", 8)
    assert job.job_id == "sim:DMC:f0:lru:llc8"
    assert job.sim_job().kind == "sim"


# -- journal ------------------------------------------------------------------

def _ok_record(job_id, attempt=1, payload=None):
    return {
        "v": 1,
        "job": job_id,
        "status": "ok",
        "attempt": attempt,
        "seconds": 0.25,
        "payload": payload if payload is not None else {"job": job_id},
    }


def test_seal_verify_roundtrip_and_tamper_rejection():
    record = _ok_record("sim:a")
    line = seal(record)
    assert verify(json.loads(line)) == record
    assert verify(json.loads(line.replace('"ok"', '"OK"'))) is None
    assert verify("not a dict") is None
    assert verify({"v": 1}) is None


@pytest.mark.parametrize(
    "mutation",
    [
        {"v": 2},
        {"job": ""},
        {"status": "running"},
        {"attempt": 0},
        {"attempt": True},
        {"payload": "not-a-dict"},
    ],
)
def test_verify_rejects_invalid_bodies(mutation):
    record = dict(_ok_record("sim:a"), **mutation)
    assert verify({**record, "sha256": checksum(record)}) is None


def test_journal_append_and_replay(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with Journal(path) as journal:
        journal.append(
            {"v": 1, "job": "a", "status": "failed", "attempt": 1,
             "kind": "crash", "error": "boom"}
        )
        journal.append(_ok_record("a", attempt=2))
        journal.append(_ok_record("b"))
    state = replay(path)
    assert set(state.completed) == {"a", "b"}
    assert state.attempts == {"a": 2, "b": 1}
    assert state.failures == {}  # cleared by the later ok
    assert state.rejected_lines == 0


def test_replay_first_ok_wins_and_rejects_torn_tail(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    first = _ok_record("a", payload={"winner": 1})
    second = _ok_record("a", attempt=2, payload={"winner": 2})
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(seal(first) + "\n")
        handle.write(seal(second) + "\n")
        handle.write(seal(_ok_record("b"))[:17])  # torn final line
    state = replay(path)
    assert state.completed["a"]["payload"] == {"winner": 1}
    assert "b" not in state.completed
    assert state.rejected_lines == 1


def test_replay_missing_file_is_empty_state(tmp_path):
    state = replay(str(tmp_path / "nope.jsonl"))
    assert state.completed == {} and state.attempts == {}


def test_write_atomic_leaves_no_temp_files(tmp_path):
    path = str(tmp_path / "out.txt")
    write_atomic(path, "hello\n")
    assert os.listdir(tmp_path) == ["out.txt"]
    with open(path) as handle:
        assert handle.read() == "hello\n"


# -- fault specs --------------------------------------------------------------

def test_fault_spec_parse_and_match():
    fault = FaultSpec.parse("job=3,kind=crash")
    assert fault.matches(3, "sim:a", 1)
    assert not fault.matches(3, "sim:a", 2)  # default: attempt 1 only
    assert not fault.matches(2, "sim:a", 1)
    wild = FaultSpec.parse("job=sim:HAWX,kind=hang,attempt=*,hang_seconds=5")
    assert wild.hang_seconds == 5.0
    assert wild.matches(0, "sim:HAWX:f0:lru:llc8", 7)
    assert not wild.matches(0, "trace:DMC:f0", 1)
    assert "hang" in wild.describe()


@pytest.mark.parametrize(
    "text, match",
    [
        ("kind=crash", "needs at least job="),
        ("job=1,kind=meteor", "unknown fault kind"),
        ("job=1,kind=crash,attempt=zero", "positive integer"),
        ("job=1,kind=crash,mood=bad", "unknown fault field"),
        ("job=1,kind=", "malformed fault field"),
        ("job=1,kind=hang,hang_seconds=soon", "must be a number"),
    ],
)
def test_fault_spec_parse_rejects(text, match):
    with pytest.raises(SweepError, match=match):
        FaultSpec.parse(text)


def test_fault_spec_from_env():
    assert FaultSpec.from_env({}) is None
    fault = FaultSpec.from_env({"REPRO_FAULT_SPEC": "job=0,kind=corrupt"})
    assert fault.kind == "corrupt"


# -- retry policy -------------------------------------------------------------

def test_retry_policy_schedule():
    retry = RetryPolicy(max_attempts=4, backoff_base=0.5, backoff_mult=2.0,
                        backoff_max=1.5)
    assert retry.schedule() == (0.5, 1.0, 1.5)  # capped at backoff_max
    assert RetryPolicy(max_attempts=1).schedule() == ()


@pytest.mark.parametrize(
    "kwargs", [dict(max_attempts=0), dict(backoff_base=-1),
               dict(backoff_mult=0.5)],
)
def test_retry_policy_validation(kwargs):
    with pytest.raises(SweepError):
        RetryPolicy(**kwargs)


# -- the scheduler, with a scripted launcher and a fake clock -----------------

HANG = "hang"  # sentinel: poll never returns


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(round(seconds, 6))
        self.now += seconds


class FakeLauncher:
    """Scripted attempt outcomes: ``script[(job_id, attempt)]``.

    Unscripted attempts succeed immediately with a payload recording the
    attempt number.  A ``HANG`` entry makes ``poll`` return ``None``
    forever (until cancelled), driving the timeout path.
    """

    def __init__(self, script=None):
        self.script = dict(script or {})
        self.started = []
        self.cancelled = []

    def start(self, job, index, attempt):
        self.started.append((job.job_id, attempt))
        return (job, attempt)

    def poll(self, handle):
        job, attempt = handle
        outcome = self.script.get((job.job_id, attempt))
        if outcome is HANG:
            return None
        if outcome is not None:
            return outcome
        return AttemptResult(
            ok=True, payload={"job": job.job_id, "ran_attempt": attempt}
        )

    def cancel(self, handle):
        job, attempt = handle
        self.cancelled.append((job.job_id, attempt))


def _plan():
    return expand(
        SweepSpec(name="t", policies=("lru", "drrip"), llc_mb=(8,),
                  apps=("DMC",), scale=0.03125)
    )


def _runner(jobs, launcher, journal, **kwargs):
    clock = kwargs.pop("clock", FakeClock())
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3, backoff_base=0.5))
    return clock, SweepRunner(
        jobs, launcher, journal, clock=clock, sleep=clock.sleep, **kwargs
    )


def test_runner_happy_path_respects_dag_order(tmp_path):
    jobs = _plan()
    launcher = FakeLauncher()
    with Journal(str(tmp_path / "j.jsonl")) as journal:
        _, runner = _runner(jobs, launcher, journal)
        outcome = runner.run()
    assert outcome.ok and len(outcome.completed) == len(jobs)
    assert outcome.executed == {job.job_id: 1 for job in jobs}
    # The trace job launched before any sim that depends on it.
    started = [job_id for job_id, _ in launcher.started]
    assert started.index("trace:DMC:f0") < min(
        started.index(job.job_id) for job in jobs if job.kind == "sim"
    )
    # Every attempt was journalled and replays to the same state.
    state = replay(str(tmp_path / "j.jsonl"))
    assert set(state.completed) == set(outcome.completed)


def test_runner_retry_backoff_schedule_is_exact(tmp_path):
    [job] = expand(
        SweepSpec(name="t", policies=("lru",), apps=("DMC",),
                  frames_per_app=1, scale=0.03125)
    )[:1]
    fail = AttemptResult(ok=False, kind="crash", error="boom")
    launcher = FakeLauncher({(job.job_id, 1): fail, (job.job_id, 2): fail})
    with Journal(str(tmp_path / "j.jsonl")) as journal:
        clock, runner = _runner([job], launcher, journal)
        outcome = runner.run()
    assert outcome.ok and outcome.attempts[job.job_id] == 3
    # The only sleeps are the two backoff delays, exactly.
    assert clock.sleeps == [0.5, 1.0]


def test_runner_permanent_failure_releases_dependents(tmp_path):
    jobs = _plan()
    trace_id = jobs[0].job_id
    fail = AttemptResult(ok=False, kind="crash", error="boom")
    launcher = FakeLauncher(
        {(trace_id, attempt): fail for attempt in (1, 2, 3)}
    )
    with Journal(str(tmp_path / "j.jsonl")) as journal:
        _, runner = _runner(jobs, launcher, journal)
        outcome = runner.run()
    assert not outcome.ok
    assert set(outcome.failures) == {trace_id}
    assert outcome.failures[trace_id]["kind"] == "crash"
    # Sims still ran (they regenerate the trace themselves).
    assert all(
        job.job_id in outcome.completed for job in jobs if job.kind == "sim"
    )


def test_runner_timeout_cancels_and_retries(tmp_path):
    [job] = _plan()[:1]
    launcher = FakeLauncher({(job.job_id, 1): HANG})
    with Journal(str(tmp_path / "j.jsonl")) as journal:
        clock, runner = _runner(
            [job], launcher, journal, timeout=2.0, poll_interval=0.5
        )
        outcome = runner.run()
    assert outcome.ok and outcome.attempts[job.job_id] == 2
    assert launcher.cancelled == [(job.job_id, 1)]
    state = replay(str(tmp_path / "j.jsonl"))
    assert state.attempts[job.job_id] == 2


def test_runner_resume_skips_completed_and_continues_attempts(tmp_path):
    jobs = _plan()
    path = str(tmp_path / "j.jsonl")
    crashed_id = jobs[-1].job_id
    with Journal(path) as journal:
        for job in jobs[:-1]:
            journal.append(_ok_record(job.job_id, payload={"job": job.job_id}))
        journal.append(
            {"v": 1, "job": crashed_id, "status": "failed", "attempt": 2,
             "kind": "crash", "error": "boom"}
        )
    launcher = FakeLauncher()
    with Journal(path) as journal:
        _, runner = _runner(jobs, launcher, journal)
        outcome = runner.run(replay(path))
    # Only the crashed job re-ran, with attempt numbering continued.
    assert launcher.started == [(crashed_id, 3)]
    assert outcome.executed == {crashed_id: 1}
    assert set(outcome.resumed) == {job.job_id for job in jobs[:-1]}
    assert outcome.attempts[crashed_id] == 3
    assert len(outcome.completed) == len(jobs)


def test_runner_rejects_bad_knobs(tmp_path):
    jobs = _plan()[:1]
    with Journal(str(tmp_path / "j.jsonl")) as journal:
        with pytest.raises(SweepError, match="worker count"):
            SweepRunner(jobs, FakeLauncher(), journal, workers=0)
        with pytest.raises(SweepError, match="timeout"):
            SweepRunner(jobs, FakeLauncher(), journal, timeout=0)


# -- hypothesis: any journal prefix resumes to identical results --------------

_PLAN = _plan()
_FULL_LINES = [
    seal(_ok_record(job.job_id, payload={"job": job.job_id, "n": i}))
    for i, job in enumerate(_PLAN)
]
_FULL_TEXT = "".join(line + "\n" for line in _FULL_LINES)


@settings(max_examples=60, deadline=None)
@given(cut=st.integers(min_value=0, max_value=len(_FULL_TEXT)))
def test_truncated_journal_resumes_to_identical_results(tmp_path_factory, cut):
    """Kill the run at any byte: resume completes to the same payloads."""
    tmp_path = tmp_path_factory.mktemp("trunc")
    path = str(tmp_path / "j.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_FULL_TEXT[:cut])
    state = replay(path)
    # Replay is monotone: whatever survived is a prefix-consistent
    # subset of the full run, byte-for-byte the same payloads.
    full = replay_text(_FULL_TEXT, tmp_path)
    for job_id, record in state.completed.items():
        assert record == full.completed[job_id]
    # Resuming with a launcher that replays the full run's payloads
    # converges on exactly the uninterrupted result set.
    launcher = FakeLauncher(
        {
            (job.job_id, state.attempts.get(job.job_id, 0) + 1): AttemptResult(
                ok=True, payload={"job": job.job_id, "n": i}
            )
            for i, job in enumerate(_PLAN)
        }
    )
    with Journal(path) as journal:
        clock = FakeClock()
        runner = SweepRunner(
            _PLAN, launcher, journal, clock=clock, sleep=clock.sleep
        )
        outcome = runner.run(state)
    assert outcome.ok
    assert outcome.completed == full.completed_payloads
    # Journalled jobs were not re-executed.
    for job_id in state.completed:
        assert outcome.executed.get(job_id, 0) == 0


def replay_text(text, tmp_path):
    path = str(tmp_path / "full.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return replay(path)


# -- reports and the sweep manifest kind --------------------------------------

def _fake_outcome(jobs):
    from repro.sweep.exec import SweepOutcome

    payloads = {
        job.job_id: {
            "job": job.job_id,
            "kind": job.kind,
            "app": job.app,
            "frame": job.frame_index,
            "policy": job.policy,
            "llc_mb": job.llc_mb,
            "engine": "fast",
            "accesses": 100,
            "metrics": {"hits": 60, "misses": 40, "bypasses": 0,
                        "hit_rate": 0.6, "dram_reads": 40, "dram_writes": 5},
        }
        for job in jobs
    }
    return SweepOutcome(
        completed=payloads,
        attempts={job.job_id: 1 for job in jobs},
        executed={job.job_id: 1 for job in jobs},
        failures={},
        resumed=(),
        wall_seconds=1.0,
    )


def test_results_csv_in_plan_order_and_sims_only():
    jobs = _plan()
    outcome = _fake_outcome(jobs)
    text = results_csv(jobs, outcome.completed)
    lines = text.strip().split("\n")
    assert lines[0].startswith("app,frame,policy,llc_mb,engine,accesses")
    assert len(lines) == 1 + sum(1 for job in jobs if job.kind == "sim")
    assert "trace" not in text.split("\n", 1)[1]
    # Deterministic: identical on rebuild, rows in plan order.
    assert text == results_csv(jobs, outcome.completed)
    assert lines[1].split(",")[2] == "drrip"  # sorted before lru


def test_results_csv_omits_failed_jobs():
    jobs = _plan()
    outcome = _fake_outcome(jobs)
    victim = [job for job in jobs if job.kind == "sim"][0]
    full = results_csv(jobs, outcome.completed)
    del outcome.completed[victim.job_id]
    partial = results_csv(jobs, outcome.completed)
    assert (
        len(partial.strip().split("\n"))
        == len(full.strip().split("\n")) - 1
    )


def test_sweep_manifest_validates_and_rejects_garbage():
    jobs = _plan()
    outcome = _fake_outcome(jobs)
    manifest = sweep_manifest(
        {"name": "t"},
        sweep={"name": "t", "total_jobs": len(jobs), "completed": len(jobs),
               "failed": 0, "resumed": 0},
        metrics=metrics_section(jobs, outcome.completed),
        jobs=jobs_section(outcome, jobs),
    )
    assert validate_manifest(manifest) == []
    broken = dict(manifest, sweep={"name": "t"}, jobs=[{"job": "x"}])
    problems = validate_manifest(broken)
    assert any("sweep.total_jobs" in p for p in problems)
    assert any("jobs[0] missing" in p for p in problems)


def test_jobs_section_marks_resume_and_failures():
    jobs = _plan()
    outcome = _fake_outcome(jobs)
    failed_id = jobs[1].job_id
    del outcome.completed[failed_id]
    outcome.failures[failed_id] = {"attempt": 3, "kind": "timeout",
                                   "error": "slow"}
    outcome = type(outcome)(
        completed=outcome.completed,
        attempts=outcome.attempts,
        executed={failed_id: 3},
        failures=outcome.failures,
        resumed=tuple(
            job.job_id for job in jobs if job.job_id in outcome.completed
        ),
        wall_seconds=1.0,
    )
    section = {entry["job"]: entry for entry in jobs_section(outcome, jobs)}
    assert section[failed_id]["status"] == "failed"
    assert section[failed_id]["last_kind"] == "timeout"
    for job in jobs:
        if job.job_id != failed_id:
            assert section[job.job_id]["resumed"] is True
            assert section[job.job_id]["executed_attempts"] == 0


# -- worker result envelopes --------------------------------------------------

def test_result_filename_is_filesystem_safe():
    name = result_filename("sim:DMC:f0:gspc+ucd:llc8", 2)
    assert "/" not in name and ":" not in name
    assert name.endswith(".a2.json")


def test_load_result_rejects_bad_envelopes(tmp_path):
    path = str(tmp_path / "r.json")
    with pytest.raises(SweepError, match="no result file"):
        load_result(path, "sim:a")
    body = {"v": 1, "payload": {"job": "sim:a"}, "seconds": 0.1}
    good = json.dumps({**body, "sha256": checksum(body)})
    with open(path, "w") as handle:
        handle.write(good[: len(good) // 2])  # torn write
    with pytest.raises(SweepError, match="unreadable|checksum"):
        load_result(path, "sim:a")
    with open(path, "w") as handle:
        handle.write(good)
    assert load_result(path, "sim:a")["payload"]["job"] == "sim:a"
    with pytest.raises(SweepError, match="names job"):
        load_result(path, "sim:b")
    tampered = dict(body, payload={"job": "sim:evil"})
    with open(path, "w") as handle:
        json.dump({**tampered, "sha256": checksum(body)}, handle)
    with pytest.raises(SweepError, match="checksum"):
        load_result(path, "sim:a")
