"""LLCStats bookkeeping unit tests."""

import pytest

from repro.cache.stats import LLCStats, StreamStats
from repro.streams import Stream, StreamClass


def test_stream_stats_rates():
    stats = StreamStats(hits=3, misses=1, bypasses=2)
    assert stats.accesses == 6
    assert stats.hit_rate == pytest.approx(0.75)
    assert StreamStats().hit_rate == 0.0


def test_totals_aggregate_streams():
    stats = LLCStats()
    stats.per_stream[Stream.Z].hits = 2
    stats.per_stream[Stream.RT].misses = 3
    stats.per_stream[Stream.DISPLAY].bypasses = 1
    assert stats.hits == 2
    assert stats.misses == 3
    assert stats.bypasses == 1
    assert stats.accesses == 6


def test_class_hit_rate_merges_display_into_rt():
    stats = LLCStats()
    stats.per_stream[Stream.RT].hits = 1
    stats.per_stream[Stream.RT].misses = 1
    stats.per_stream[Stream.DISPLAY].hits = 2
    assert stats.class_hits(StreamClass.RT) == 3
    assert stats.class_hit_rate(StreamClass.RT) == pytest.approx(0.75)


def test_rt_hit_rate_excludes_display():
    """Figure 13's 'render target hit rate' counts blending accesses
    only — not the displayable color stream."""
    stats = LLCStats()
    stats.per_stream[Stream.RT].hits = 1
    stats.per_stream[Stream.RT].misses = 1
    stats.per_stream[Stream.DISPLAY].misses = 100
    assert stats.rt_hit_rate == pytest.approx(0.5)


def test_consumption_rate_zero_without_production():
    assert LLCStats().rt_consumption_rate == 0.0


def test_tex_inter_fraction():
    stats = LLCStats()
    stats.tex_inter_hits = 3
    stats.tex_intra_hits = 1
    assert stats.tex_inter_fraction == pytest.approx(0.75)
    assert LLCStats().tex_inter_fraction == 0.0


def test_snapshot_round_trips_per_stream():
    stats = LLCStats()
    stats.per_stream[Stream.TEXTURE].hits = 7
    snapshot = stats.snapshot()
    assert snapshot["per_stream"]["TEX"]["hits"] == 7
    assert snapshot["hits"] == 7
