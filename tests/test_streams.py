"""Stream taxonomy tests."""

import pytest

from repro.streams import (
    ALL_STREAM_CLASSES,
    ALL_STREAMS,
    STREAM_CLASS_TABLE,
    Stream,
    StreamClass,
    stream_class,
)


def test_eight_streams_four_classes():
    assert len(ALL_STREAMS) == 8
    assert len(ALL_STREAM_CLASSES) == 4


def test_policy_class_mapping_matches_paper():
    # Section 3: Z, texture sampler, render targets, and the rest.
    assert stream_class(Stream.Z) is StreamClass.Z
    assert stream_class(Stream.TEXTURE) is StreamClass.TEX
    assert stream_class(Stream.RT) is StreamClass.RT
    # "Displayable color is a render target" (Section 5.1).
    assert stream_class(Stream.DISPLAY) is StreamClass.RT
    for other in (Stream.VERTEX, Stream.HIZ, Stream.STENCIL, Stream.OTHER):
        assert stream_class(other) is StreamClass.OTHER


def test_dense_table_agrees_with_mapping():
    for stream in ALL_STREAMS:
        assert STREAM_CLASS_TABLE[int(stream)] == int(stream_class(stream))


def test_short_names_unique():
    names = [stream.short_name for stream in ALL_STREAMS]
    assert len(set(names)) == len(names)


@pytest.mark.parametrize("stream", list(Stream))
def test_stream_values_are_dense(stream):
    assert 0 <= int(stream) < len(Stream)
