"""The parallel execution engine: job planning, pool execution,
serial/parallel result equivalence, and trace-cache race safety."""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.config import KB, CacheParams, LLCConfig
from repro.core.registry import available_policies
from repro.errors import ParallelError, TraceError
from repro.experiments.common import (
    ExperimentConfig,
    clear_result_caches,
    frame_trace,
    get_experiment,
)
from repro.obs.manifest import validate_manifest
from repro.parallel import (
    SimJob,
    plan_for_experiment,
    resolve_jobs,
    run_jobs,
    run_policy_sims,
    seed_outcomes,
)
from repro.sim.offline import simulate_trace
from repro.trace import synth
from repro.trace.io import load_trace, save_trace

LLC = LLCConfig(params=CacheParams(32 * KB, ways=8), banks=1, sample_period=8)

#: Tiny but multi-app experiment configuration.
TINY = ExperimentConfig(scale=0.03125, frames_per_app=1, cache_dir=None)


@pytest.fixture(scope="module")
def mixed_trace():
    return synth.producer_consumer(512, 8, consume_fraction=0.6, gap_blocks=2048)


# -- --jobs resolution --------------------------------------------------------

def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_negative():
    with pytest.raises(ParallelError, match="--jobs must be >= 0"):
        resolve_jobs(-1)


def test_simjob_validation():
    with pytest.raises(ParallelError, match="unknown job kind"):
        SimJob("warp", "HAWX", 0)
    with pytest.raises(ParallelError, match="needs a policy"):
        SimJob("sim", "HAWX", 0)
    job = SimJob("sim", "HAWX", 2, "gspc+ucd")
    assert job.label == "sim HAWX f2 gspc+ucd"
    assert job.spec().app.abbrev == "HAWX"


# -- planning -----------------------------------------------------------------

def test_plan_covers_declared_policies_and_dedups():
    config = dataclasses.replace(TINY, cache_dir=".repro_cache")
    experiment = get_experiment("fig12")
    plan = plan_for_experiment(experiment, config)
    assert len(plan) == len(set(plan))
    kinds = [job.kind for job in plan]
    # Trace wave strictly precedes the sim wave.
    assert kinds.index("sim") == len([k for k in kinds if k == "trace"])
    frames = config.frames()
    assert sum(1 for job in plan if job.kind == "trace") == len(frames)
    policies = {job.policy for job in plan if job.kind == "sim"}
    assert policies == {"drrip", *experiment.sim_policies}
    # Deterministic: replanning yields the identical ordered list.
    assert plan == plan_for_experiment(experiment, config)


def test_plan_skips_trace_wave_without_cache():
    plan = plan_for_experiment(get_experiment("fig01"), TINY)
    assert plan and all(job.kind == "sim" for job in plan)


def test_plan_empty_for_metadata_experiments():
    assert plan_for_experiment(get_experiment("table6"), TINY) == []


def test_plan_characterization_jobs():
    plan = plan_for_experiment(get_experiment("fig07"), TINY)
    assert plan and all(job.kind == "char" for job in plan)
    assert {job.policy for job in plan} == {"belady"}


# -- serial vs parallel equivalence -------------------------------------------

def test_every_registered_policy_matches_serial(mixed_trace):
    """Worker-process SimResults equal in-process ones, per policy."""
    policies = available_policies()
    parallel = run_policy_sims(mixed_trace, policies, LLC, workers=2)
    assert [name for name, *_ in parallel] != []
    for requested, (name, result, events, spans, engine, trace_events) in zip(
        policies, parallel
    ):
        serial = simulate_trace(mixed_trace, requested, LLC)
        assert name == serial.policy
        assert result.stats.snapshot() == serial.stats.snapshot()
        assert result.accesses == serial.accesses
        assert events is None and spans is None
        assert engine in ("reference", "fast")
        assert trace_events == []  # no trace context -> no span events


def test_run_policy_sims_returns_telemetry(mixed_trace):
    [(name, result, events, spans, engine, _)] = run_policy_sims(
        mixed_trace, ["drrip"], LLC, workers=2, telemetry=True
    )
    assert events is not None and "sample_period" in events
    assert spans  # flat span table from the worker
    # Telemetry needs the observer, which only the reference engine has.
    assert engine == "reference"


def test_experiment_identical_after_parallel_prewarm(capsys):
    """fig01 tables are byte-identical with and without the job engine."""
    experiment = get_experiment("fig01")
    clear_result_caches()
    serial_csv = [t.to_csv() for t in experiment.run(TINY)]

    clear_result_caches()
    plan = plan_for_experiment(experiment, TINY)
    report = run_jobs(plan, TINY, workers=2)
    seed_outcomes(report.outcomes, TINY)
    parallel_csv = [t.to_csv() for t in experiment.run(TINY)]
    clear_result_caches()

    assert parallel_csv == serial_csv
    assert report.workers == 2
    assert len(report.outcomes) == len(plan)
    assert report.serial_seconds_estimate > 0


def test_run_jobs_outcomes_in_plan_order_and_progress_ordered():
    plan = plan_for_experiment(get_experiment("fig01"), TINY)[:6]
    seen = []
    report = run_jobs(
        plan, TINY, workers=2,
        progress=lambda k, total, outcome: seen.append((k, total)),
    )
    assert [outcome.job for outcome in report.outcomes] == list(plan)
    assert seen == [(k, len(plan)) for k in range(1, len(plan) + 1)]


def test_run_jobs_serial_worker_same_path():
    plan = plan_for_experiment(get_experiment("fig08"), TINY)[:2]
    report = run_jobs(plan, TINY, workers=1)
    assert [outcome.job for outcome in report.outcomes] == list(plan)
    assert all(outcome.value is not None for outcome in report.outcomes)


# -- cross-process span shipping ----------------------------------------------

def test_worker_spans_ship_across_processes(mixed_trace):
    """Span events recorded inside real worker processes come back with
    the parent run id stamped on them, and the merged timeline carries
    the same phase structure a serial run records."""
    from repro.obs.tracing import TraceContext
    from repro.obs.traceexport import build_chrome_trace, validate_trace

    ctx = TraceContext.new_run("test")
    policies = ["drrip", "nru"]
    serial = run_policy_sims(
        mixed_trace, policies, LLC, workers=1, trace_ctx=ctx
    )
    parallel = run_policy_sims(
        mixed_trace, policies, LLC, workers=2, trace_ctx=ctx
    )
    serial_paths = [sorted({e["path"] for e in ev}) for *_, ev in serial]
    parallel_paths = [sorted({e["path"] for e in ev}) for *_, ev in parallel]
    assert parallel_paths == serial_paths
    assert all(paths for paths in serial_paths)  # phases actually recorded
    assert all("sim" in paths for paths in serial_paths)  # root span

    events = [e for *_, ev in parallel for e in ev]
    # Every event is stamped with the parent run and its policy's job id,
    # and carries a worker pid — not the orchestrator's.
    assert {e["ctx"]["run_id"] for e in events} == {ctx.run_id}
    assert {e["ctx"]["job_id"] for e in events} == {"sim:drrip", "sim:nru"}
    assert all(e["pid"] != os.getpid() for e in events)
    # The merged timeline exports to a valid Chrome/Perfetto trace.
    trace_doc = build_chrome_trace(events, ctx.run_id)
    assert validate_trace(trace_doc) == []


def test_run_jobs_ships_events_in_plan_order():
    from repro.obs.tracing import TraceContext

    ctx = TraceContext.new_run("test")
    plan = plan_for_experiment(get_experiment("fig08"), TINY)[:2]
    report = run_jobs(plan, TINY, workers=2, trace_ctx=ctx)
    events = report.events()
    assert events, "workers shipped no span events"
    assert {e["ctx"]["run_id"] for e in events} == {ctx.run_id}
    # Root span per job is named after the job kind.
    roots = [e for e in events if "/" not in e["path"]]
    assert {e["name"] for e in roots} == {job.kind for job in plan}
    # Without a context, no events are recorded or shipped.
    quiet = run_jobs(plan, TINY, workers=1)
    assert quiet.events() == []


# -- manifest section ---------------------------------------------------------

def test_parallel_manifest_section_validates(mixed_trace):
    plan = plan_for_experiment(get_experiment("fig08"), TINY)[:2]
    report = run_jobs(plan, TINY, workers=2)
    section = report.manifest_section()
    assert section["workers"] == 2 and section["jobs"] == 2
    assert len(section["per_job"]) == 2

    from repro.obs.manifest import experiment_manifest

    manifest = experiment_manifest(
        "fig08", "t", config={}, elapsed_seconds=0.1, parallel=section
    )
    assert validate_manifest(manifest) == []


def test_parallel_manifest_section_rejects_garbage():
    from repro.obs.manifest import experiment_manifest

    manifest = experiment_manifest("fig08", "t", config={}, parallel={})
    problems = validate_manifest(manifest)
    assert any("parallel.workers" in p for p in problems)
    manifest["parallel"] = "not-a-mapping"
    assert any("'parallel'" in p for p in validate_manifest(manifest))


# -- trace-cache race safety --------------------------------------------------

def _race_frame_trace(cache_dir: str) -> int:
    config = ExperimentConfig(
        scale=0.03125, frames_per_app=1, cache_dir=cache_dir
    )
    spec = config.frames()[0]
    return len(frame_trace(spec, config))


def test_trace_cache_concurrent_writers(tmp_path):
    """Two processes racing on the same frame key both succeed and the
    cache entry stays loadable afterwards."""
    cache_dir = str(tmp_path / "cache")
    with ProcessPoolExecutor(max_workers=2) as pool:
        lengths = list(
            pool.map(_race_frame_trace, [cache_dir] * 4)
        )
    assert len(set(lengths)) == 1
    traces_dir = os.path.join(cache_dir, "traces")
    entries = os.listdir(traces_dir)
    assert len(entries) == 1  # no duplicate or leftover temp files
    reloaded = load_trace(os.path.join(traces_dir, entries[0]))
    assert len(reloaded) == lengths[0]


def _race_save(args) -> bool:
    path, seed = args
    trace = synth.cyclic_scan(64, 4)
    save_trace(trace, path)
    return True


def test_save_trace_atomic_under_racing_writers(tmp_path):
    path = str(tmp_path / "racy.npz")
    with ProcessPoolExecutor(max_workers=2) as pool:
        assert all(pool.map(_race_save, [(path, i) for i in range(6)]))
    assert os.listdir(tmp_path) == ["racy.npz"]  # temp files cleaned up
    assert len(load_trace(path)) > 0


def test_save_trace_rejects_unknown_extension(tmp_path):
    trace = synth.cyclic_scan(32, 2)
    with pytest.raises(TraceError, match="unknown trace extension"):
        save_trace(trace, str(tmp_path / "noext"))
    assert os.listdir(tmp_path) == []  # nothing written on rejection
