"""Reuse-distance analysis tests."""

import numpy as np
import pytest

from repro.analysis.reuse import (
    COLD,
    compute_reuse_profile,
    reuse_distances,
)
from repro.streams import Stream
from repro.trace import synth

from helpers import make_trace


def _reference(blocks):
    """O(n^2) reference stack-distance implementation."""
    out = []
    for i, block in enumerate(blocks):
        previous = None
        for j in range(i - 1, -1, -1):
            if blocks[j] == block:
                previous = j
                break
        if previous is None:
            out.append(COLD)
        else:
            out.append(len(set(blocks[previous + 1 : i])))
    return out


def test_simple_sequence():
    # b a c a b : a reused over {c} (1), b reused over {a, c} (2).
    blocks = [1, 2, 3, 2, 1]
    assert reuse_distances(blocks).tolist() == [COLD, COLD, COLD, 1, 2]


def test_immediate_reuse_distance_zero():
    assert reuse_distances([5, 5]).tolist() == [COLD, 0]


def test_matches_reference_on_random():
    rng = np.random.default_rng(3)
    blocks = rng.integers(0, 12, size=150).tolist()
    assert reuse_distances(blocks).tolist() == _reference(blocks)


def test_cyclic_scan_distance_equals_footprint():
    trace = synth.cyclic_scan(num_blocks=32, repetitions=2)
    distances = reuse_distances(trace.block_addresses().tolist())
    # Every second-round access sees all 31 other blocks in between.
    assert set(distances[32:].tolist()) == {31}


def test_profile_cold_fraction():
    trace = synth.cyclic_scan(num_blocks=16, repetitions=4)
    profile = compute_reuse_profile(trace)
    assert profile.cold == 16
    assert profile.cold_fraction == pytest.approx(0.25)


def test_profile_hit_rate_at_capacity():
    trace = synth.cyclic_scan(num_blocks=32, repetitions=4)
    profile = compute_reuse_profile(trace)
    # Capacity >= footprint: everything warm hits.
    assert profile.hit_rate_at_capacity(64) == pytest.approx(3 / 4)
    # Capacity below the cycle: LRU gets nothing.
    assert profile.hit_rate_at_capacity(16) == 0.0


def test_profile_per_stream_uses_global_interleaving():
    # The Z access reuses its block over the two TEX accesses between.
    trace = make_trace(
        [(0, Stream.Z), (1, Stream.TEXTURE), (2, Stream.TEXTURE), (0, Stream.Z)]
    )
    profile = compute_reuse_profile(trace, stream=Stream.Z)
    assert profile.accesses == 2
    assert profile.cold == 1
    assert profile.median_distance == 2.0


def test_histogram_counts_sum_to_warm_accesses():
    trace = synth.random_trace(length=500, footprint_blocks=64, seed=4)
    profile = compute_reuse_profile(trace)
    assert sum(count for _, count in profile.histogram) == (
        profile.accesses - profile.cold
    )


def test_empty_trace_profile():
    from repro.trace.record import TraceBuilder

    profile = compute_reuse_profile(TraceBuilder().build())
    assert profile.accesses == 0
    assert profile.median_distance is None
    assert profile.hit_rate_at_capacity(100) == 0.0
