"""SimResult and comparison-helper tests."""

import pytest

from repro.cache.stats import LLCStats
from repro.errors import SimulationError
from repro.sim.results import (
    SimResult,
    average_normalized_misses,
    geometric_mean,
    normalized_miss_table,
)
from repro.streams import Stream


def _result(policy, misses, accesses=100):
    stats = LLCStats()
    stats.per_stream[Stream.Z].misses = misses
    stats.per_stream[Stream.Z].hits = accesses - misses
    return SimResult(policy=policy, stats=stats, accesses=accesses)


def test_normalization():
    baseline = _result("drrip", 50)
    better = _result("gspc", 40)
    assert better.misses_normalized_to(baseline) == pytest.approx(0.8)


def test_normalization_rejects_different_traces():
    with pytest.raises(SimulationError):
        _result("a", 10, accesses=100).misses_normalized_to(
            _result("b", 10, accesses=200)
        )


def test_zero_miss_baseline():
    baseline = _result("drrip", 0)
    assert _result("x", 0).misses_normalized_to(baseline) == 1.0
    assert _result("x", 5).misses_normalized_to(baseline) == float("inf")


def test_normalized_table():
    results = {"drrip": _result("drrip", 50), "gspc": _result("gspc", 25)}
    table = normalized_miss_table(results, "drrip")
    assert table["gspc"] == pytest.approx(0.5)
    assert table["drrip"] == 1.0


def test_normalized_table_missing_baseline():
    with pytest.raises(SimulationError):
        normalized_miss_table({"gspc": _result("gspc", 1)}, "drrip")


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(SimulationError):
        geometric_mean([])
    with pytest.raises(SimulationError):
        geometric_mean([1.0, 0.0])


def test_average_normalized_misses():
    frames = [
        {"drrip": _result("drrip", 50), "gspc": _result("gspc", 25)},
        {"drrip": _result("drrip", 40), "gspc": _result("gspc", 40)},
    ]
    assert average_normalized_misses(frames, "gspc") == pytest.approx(0.75)


def test_hit_rate_property():
    assert _result("x", 25).hit_rate == pytest.approx(0.75)
