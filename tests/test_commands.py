"""Command-stream capture/serialize/replay tests."""

import numpy as np
import pytest

from repro.config import RenderCachesConfig
from repro.errors import WorkloadError
from repro.streams import Stream
from repro.trace.stats import compute_trace_stats
from repro.workloads.apps import ALL_APPS
from repro.workloads.commands import (
    BindTexture,
    CommandList,
    Draw,
    Present,
    SetPipelineState,
    SetTargets,
    passes_from_commands,
)
from repro.workloads.framegen import build_frame_passes, build_resources
from repro.workloads.replay import capture_frame_commands, replay_command_list

SCALE = 0.0625


@pytest.fixture(scope="module")
def command_list():
    return capture_frame_commands(ALL_APPS[0], 0, scale=SCALE)


class TestCapture:
    def test_captures_all_draws(self, command_list):
        rng = np.random.default_rng((ALL_APPS[0].seed << 8) ^ 0)
        resources = build_resources(ALL_APPS[0], SCALE, rng)
        passes = build_frame_passes(ALL_APPS[0], resources, 0, rng)
        assert command_list.draw_count() == sum(len(p.draws) for p in passes)

    def test_resource_table_complete(self, command_list):
        names = set(command_list.surface_table())
        for command in command_list.commands:
            if isinstance(command, SetTargets):
                assert command.color in names
            elif isinstance(command, BindTexture):
                assert command.surface in names
            elif isinstance(command, Present):
                assert command.display in names

    def test_present_emitted(self, command_list):
        assert any(isinstance(c, Present) for c in command_list.commands)

    def test_textures_declared_with_levels(self, command_list):
        table = command_list.surface_table()
        assert any(decl.levels > 1 for decl in table.values())


class TestSerialization:
    def test_json_round_trip(self, command_list):
        text = command_list.to_json()
        loaded = CommandList.from_json(text)
        assert loaded.draw_count() == command_list.draw_count()
        assert len(loaded.surfaces) == len(command_list.surfaces)
        assert loaded.commands == command_list.commands
        assert loaded.meta["abbrev"] == command_list.meta["abbrev"]

    def test_file_round_trip(self, command_list, tmp_path):
        path = tmp_path / "frame.cmds.json"
        command_list.save(path)
        loaded = CommandList.load(path)
        assert loaded.commands == command_list.commands

    def test_malformed_json_rejected(self):
        with pytest.raises(WorkloadError):
            CommandList.from_json("not json at all {")

    def test_unknown_op_rejected(self):
        with pytest.raises(WorkloadError):
            CommandList.from_json(
                '{"version": 1, "surfaces": [], '
                '"commands": [{"op": "warp_drive"}]}'
            )

    def test_bad_version_rejected(self):
        with pytest.raises(WorkloadError):
            CommandList.from_json('{"version": 99, "surfaces": [], "commands": []}')

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WorkloadError):
            CommandList.load(tmp_path / "absent.json")


class TestReconstruction:
    def test_passes_round_trip_structure(self, command_list):
        passes = passes_from_commands(command_list)
        assert sum(len(p.draws) for p in passes) == command_list.draw_count()
        assert passes[-1].resolve_to is not None

    def test_unknown_surface_reference_rejected(self):
        bad = CommandList(
            surfaces=[],
            commands=[
                SetTargets(color="ghost"),
                SetPipelineState(),
                Draw(region=(0, 0, 1, 1)),
            ],
        )
        with pytest.raises(WorkloadError):
            passes_from_commands(bad)


class TestReplay:
    def test_replay_produces_equivalent_structure(self, command_list):
        from repro.workloads.framegen import generate_frame_trace

        direct = generate_frame_trace(ALL_APPS[0], 0, scale=SCALE)
        replayed = replay_command_list(command_list)
        # Same structure: lengths within a few percent (coverage noise)
        # and matching stream mix shape.
        assert abs(len(replayed) - len(direct)) / len(direct) < 0.25
        direct_mix = compute_trace_stats(direct).mix()
        replay_mix = compute_trace_stats(replayed).mix()
        for stream in (Stream.RT, Stream.TEXTURE, Stream.Z):
            assert replay_mix[stream] == pytest.approx(
                direct_mix[stream], abs=0.08
            )

    def test_replay_deterministic_per_seed(self, command_list):
        a = replay_command_list(command_list, seed=3)
        b = replay_command_list(command_list, seed=3)
        assert np.array_equal(a.addresses, b.addresses)

    def test_replay_through_different_render_caches(self, command_list):
        small = replay_command_list(
            command_list, RenderCachesConfig().scaled(1 / 256)
        )
        large = replay_command_list(
            command_list, RenderCachesConfig().scaled(1 / 16)
        )
        # Bigger render caches absorb more raw accesses before the LLC.
        assert len(large) < len(small)

    def test_replay_json_round_trip_equivalence(self, command_list):
        reloaded = CommandList.from_json(command_list.to_json())
        a = replay_command_list(command_list, seed=1)
        b = replay_command_list(reloaded, seed=1)
        assert np.array_equal(a.addresses, b.addresses)
