"""Belady's OPT tests."""

import pytest

from repro.config import CacheParams, LLCConfig
from repro.core.base import NEVER
from repro.core.belady import BeladyPolicy
from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.sim.offline import simulate_trace
from repro.streams import Stream
from repro.trace import synth

from helpers import make_trace


def test_requires_future_flag():
    assert BeladyPolicy.needs_future is True


def test_victimizes_farthest_next_use():
    policy = BeladyPolicy()
    llc = LLC(CacheGeometry(num_sets=1, ways=2), policy)
    llc.access(0 * 64, Stream.Z, next_use=10)
    llc.access(1 * 64, Stream.Z, next_use=5)
    llc.access(2 * 64, Stream.Z, next_use=7)  # evicts block 0 (use at 10)
    assert not llc.contains(0)
    assert llc.contains(64)


def test_never_used_again_preferred_victim():
    policy = BeladyPolicy()
    llc = LLC(CacheGeometry(num_sets=1, ways=2), policy)
    llc.access(0 * 64, Stream.Z, next_use=NEVER)
    llc.access(1 * 64, Stream.Z, next_use=3)
    llc.access(2 * 64, Stream.Z, next_use=4)
    assert not llc.contains(0)


def test_hit_updates_next_use():
    policy = BeladyPolicy()
    llc = LLC(CacheGeometry(num_sets=1, ways=2), policy)
    llc.access(0 * 64, Stream.Z, next_use=2)
    llc.access(1 * 64, Stream.Z, next_use=100)
    llc.access(0 * 64, Stream.Z, next_use=NEVER)  # block 0 now dead
    llc.access(2 * 64, Stream.Z, next_use=50)     # must evict block 0
    assert not llc.contains(0)
    assert llc.contains(64)


def test_optimal_on_classic_sequence():
    # One-set cache of 2 ways; OPT on [0 1 2 0 1 2] misses 4 times
    # (0,1,2 cold + one of the re-references), LRU misses all 6.
    config = LLCConfig(params=CacheParams(128, ways=2), banks=1)
    trace = make_trace([(b, Stream.OTHER) for b in [0, 1, 2, 0, 1, 2]])
    opt = simulate_trace(trace, "belady", config)
    lru = simulate_trace(trace, "lru", config)
    assert opt.misses == 4
    assert lru.misses == 6


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_opt_never_loses_to_online_policies(seed, small_llc_config):
    trace = synth.random_trace(
        length=4000, footprint_blocks=2048, seed=seed
    )
    opt = simulate_trace(trace, "belady", small_llc_config).misses
    for policy in ("lru", "nru", "srrip", "drrip", "gspc"):
        online = simulate_trace(trace, policy, small_llc_config).misses
        assert opt <= online, f"OPT lost to {policy} (seed {seed})"
