"""Render-cache front-end tests."""

import numpy as np

from repro.cache.hierarchy import RenderCacheFrontEnd
from repro.config import KB, CacheParams, RenderCachesConfig
from repro.streams import Stream


def _tiny_caches():
    small = CacheParams(512, ways=2)
    return RenderCachesConfig(
        vertex_index=small,
        vertex=small,
        hiz=small,
        stencil=small,
        render_target=small,
        z=small,
        texture_l1=small,
        texture_l2=CacheParams(1 * KB, ways=2),
        texture_l3=CacheParams(2 * KB, ways=2),
    )


def test_miss_reaches_llc_trace():
    front = RenderCacheFrontEnd(_tiny_caches())
    front.access(0, Stream.Z)
    assert len(front.sink) == 1
    trace = front.sink.build()
    assert trace[0].stream is Stream.Z
    assert not trace[0].is_write


def test_render_cache_hit_filtered():
    front = RenderCacheFrontEnd(_tiny_caches())
    front.access(0, Stream.Z)
    front.access(0, Stream.Z)      # absorbed by the Z cache
    assert len(front.sink) == 1
    assert front.filtered_fraction() == 0.5


def test_dirty_eviction_emits_store():
    front = RenderCacheFrontEnd(_tiny_caches())
    front.access(0, Stream.RT, is_write=True)
    # One set has 2 ways: two more blocks in the same set evict block 0.
    sets = front.caches[Stream.RT].num_sets
    front.access(sets * 64, Stream.RT)
    front.access(2 * sets * 64, Stream.RT)
    trace = front.sink.build()
    writes = [a for a in trace if a.is_write]
    assert len(writes) == 1
    assert writes[0].address == 0
    assert writes[0].stream is Stream.RT


def test_texture_hierarchy_three_levels():
    front = RenderCacheFrontEnd(_tiny_caches())
    front.access(0, Stream.TEXTURE)
    assert len(front.sink) == 1       # L1, L2, L3 all missed
    front.access(0, Stream.TEXTURE)   # L1 hit
    assert len(front.sink) == 1
    assert front.texture_levels[0].stats.hits == 1


def test_texture_l2_backstop():
    front = RenderCacheFrontEnd(_tiny_caches())
    l1_blocks = front.texture_levels[0].num_sets * front.texture_levels[0].ways
    # Touch more blocks than L1 holds, then re-touch the first: L1
    # misses but L2 (larger) still hits, so nothing reaches the LLC.
    for block in range(l1_blocks + 1):
        front.access(block * 64, Stream.TEXTURE)
    before = len(front.sink)
    front.access(0, Stream.TEXTURE)
    assert len(front.sink) == before
    assert front.texture_levels[1].stats.hits >= 1


def test_display_and_other_uncached_internally():
    front = RenderCacheFrontEnd(_tiny_caches())
    front.access(0, Stream.DISPLAY, is_write=True)
    front.access(0, Stream.DISPLAY, is_write=True)
    front.access(64, Stream.OTHER)
    assert len(front.sink) == 3


def test_batch_path_matches_scalar_path():
    addresses = np.array([0, 64, 0, 128, 64], dtype=np.uint64)
    scalar = RenderCacheFrontEnd(_tiny_caches())
    for address in addresses.tolist():
        scalar.access(address, Stream.Z)
    batch = RenderCacheFrontEnd(_tiny_caches())
    batch.access_blocks(addresses, Stream.Z)
    assert np.array_equal(
        scalar.sink.build().addresses, batch.sink.build().addresses
    )
    assert scalar.raw_accesses == batch.raw_accesses


def test_streams_use_separate_caches():
    front = RenderCacheFrontEnd(_tiny_caches())
    front.access(0, Stream.Z)
    front.access(0, Stream.STENCIL)   # different cache: still a miss
    assert len(front.sink) == 2
