"""Per-application workload invariants (all twelve Table-1 profiles).

Cheap structural checks at 1/16 scale: every application must produce a
well-formed frame whose trace carries the paper's qualitative features.
"""

import numpy as np
import pytest

from repro.streams import Stream
from repro.trace.stats import compute_trace_stats
from repro.workloads.apps import ALL_APPS
from repro.workloads.framegen import generate_frame_trace

SCALE = 0.0625

_CACHE = {}


def _trace(app):
    if app.abbrev not in _CACHE:
        _CACHE[app.abbrev] = generate_frame_trace(app, 0, scale=SCALE)
    return _CACHE[app.abbrev]


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.abbrev)
def test_frame_generates(app):
    trace = _trace(app)
    assert len(trace) > 5000
    assert trace.meta["abbrev"] == app.abbrev


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.abbrev)
def test_rt_and_tex_dominate(app):
    stats = compute_trace_stats(_trace(app))
    rt = stats.stream_fraction(Stream.RT)
    tex = stats.stream_fraction(Stream.TEXTURE)
    assert rt + tex > 0.45, f"{app.abbrev}: RT+TEX only {rt + tex:.2f}"
    assert rt > 0.15 and tex > 0.15


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.abbrev)
def test_z_is_third_stream(app):
    stats = compute_trace_stats(_trace(app))
    z = stats.stream_fraction(Stream.Z)
    assert 0.03 < z < 0.35


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.abbrev)
def test_display_written_once_per_frame(app):
    trace = _trace(app)
    mask = trace.stream_mask(Stream.DISPLAY)
    addresses = trace.addresses[mask]
    assert len(addresses) > 0
    assert len(np.unique(addresses)) == len(addresses)
    assert trace.writes[mask].all()


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.abbrev)
def test_render_to_texture_present(app):
    trace = _trace(app)
    blocks = trace.block_addresses()
    rt = set(blocks[trace.stream_mask(Stream.RT)].tolist())
    tex = set(blocks[trace.stream_mask(Stream.TEXTURE)].tolist())
    assert len(rt & tex) > 50, f"{app.abbrev}: no render-to-texture reuse"


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.abbrev)
def test_writes_present_but_minority(app):
    trace = _trace(app)
    write_fraction = trace.writes.mean()
    assert 0.02 < write_fraction < 0.5
