"""Generic LRU set-associative cache tests (render caches)."""

from repro.cache.setassoc import LRUCache
from repro.config import CacheParams


def _cache(capacity=1024, ways=4):
    return LRUCache(CacheParams(capacity, ways=ways), "test")


def test_miss_then_hit():
    cache = _cache()
    hit, _ = cache.access(0)
    assert not hit
    hit, _ = cache.access(0)
    assert hit
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_same_block_different_offsets_hit():
    cache = _cache()
    cache.access(0)
    hit, _ = cache.access(63)
    assert hit


def test_lru_eviction_order():
    cache = _cache(capacity=4 * 64, ways=4)  # one set, 4 ways
    for block in range(4):
        cache.access(block * 64)
    cache.access(0)            # touch block 0 -> block 1 becomes LRU
    cache.access(4 * 64)       # evicts block 1
    hit, _ = cache.access(0)
    assert hit
    hit, _ = cache.access(64)
    assert not hit             # block 1 was evicted


def test_dirty_eviction_reports_writeback_address():
    cache = _cache(capacity=2 * 64, ways=2)  # one set, 2 ways
    cache.access(0, is_write=True)
    cache.access(64)
    _, writeback = cache.access(128)  # evicts dirty block 0
    assert writeback == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_reports_none():
    cache = _cache(capacity=2 * 64, ways=2)
    cache.access(0)
    cache.access(64)
    _, writeback = cache.access(128)
    assert writeback is None


def test_write_hit_marks_dirty():
    cache = _cache(capacity=2 * 64, ways=2)
    cache.access(0)                 # clean fill
    cache.access(0, is_write=True)  # dirtied on hit
    cache.access(64)
    _, writeback = cache.access(128)
    assert writeback == 0


def test_sets_are_independent():
    cache = _cache(capacity=4 * 64, ways=2)  # 2 sets
    cache.access(0)       # set 0
    cache.access(64)      # set 1
    cache.access(128)     # set 0
    cache.access(256)     # set 0 -> evicts block 0 (LRU in set 0)
    assert cache.contains(64)
    assert not cache.contains(0)


def test_contains_does_not_touch_lru():
    cache = _cache(capacity=2 * 64, ways=2)
    cache.access(0)
    cache.access(64)
    cache.contains(0)      # must NOT refresh block 0
    cache.access(128)      # evicts true LRU: block 0
    assert not cache.contains(0)


def test_flush_counts_dirty_blocks():
    cache = _cache()
    cache.access(0, is_write=True)
    cache.access(64)
    assert cache.flush() == 1
    assert not cache.contains(0)


def test_hit_rate():
    cache = _cache()
    cache.access(0)
    cache.access(0)
    cache.access(0)
    assert cache.stats.hit_rate == 2 / 3
