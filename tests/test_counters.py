"""Saturating-counter tests (the Section-3 hardware counters)."""

import pytest

from repro.errors import ConfigError
from repro.utils.counters import SaturatingCounter


def test_increment_saturates():
    counter = SaturatingCounter(bits=3)
    for _ in range(20):
        counter.increment()
    assert counter.value == 7
    assert counter.is_saturated


def test_increment_reports_saturation():
    counter = SaturatingCounter(bits=2, value=2)
    assert counter.increment() is True  # reaches 3
    assert counter.increment() is True  # stays 3


def test_decrement_saturates_at_zero():
    counter = SaturatingCounter(bits=4, value=2)
    assert counter.decrement() is False
    assert counter.decrement() is True
    assert counter.decrement() is True
    assert counter.value == 0


def test_halving_matches_paper_aging():
    counter = SaturatingCounter(bits=8, value=201)
    counter.halve()
    assert counter.value == 100
    counter.halve()
    assert counter.value == 50


def test_seven_bit_acc_counter_range():
    counter = SaturatingCounter(bits=7)
    assert counter.max_value == 127


def test_reset():
    counter = SaturatingCounter(bits=8, value=99)
    counter.reset()
    assert counter.value == 0


def test_int_conversion():
    assert int(SaturatingCounter(bits=8, value=42)) == 42


def test_invalid_width_rejected():
    with pytest.raises(ConfigError):
        SaturatingCounter(bits=0)


def test_out_of_range_initial_value_rejected():
    with pytest.raises(ConfigError):
        SaturatingCounter(bits=2, value=4)
    with pytest.raises(ConfigError):
        SaturatingCounter(bits=2, value=-1)


def test_increment_by_amount():
    counter = SaturatingCounter(bits=4)
    counter.increment(10)
    assert counter.value == 10
    counter.increment(10)
    assert counter.value == 15
