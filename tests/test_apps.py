"""Application-profile (Table 1) tests."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.apps import (
    ALL_APPS,
    FrameSpec,
    all_frames,
    app_by_name,
    frames_for_app,
)


def test_twelve_applications():
    assert len(ALL_APPS) == 12


def test_fifty_two_frames_total():
    assert len(all_frames()) == 52


def test_table1_resolutions():
    expected = {
        "3DMarkVAGT1": (1920, 1200, 10),
        "3DMarkVAGT2": (1920, 1200, 10),
        "AssnCreed": (1680, 1050, 10),
        "BioShock": (1920, 1200, 10),
        "DMC": (1680, 1050, 10),
        "Civilization": (1920, 1200, 11),
        "Dirt": (1680, 1050, 11),
        "HAWX": (1920, 1200, 11),
        "Heaven": (2560, 1600, 11),
        "LostPlanet": (1920, 1200, 11),
        "StalkerCOP": (1680, 1050, 11),
        "Unigine": (1920, 1200, 11),
    }
    for app in ALL_APPS:
        width, height, dx = expected[app.abbrev]
        assert (app.width_px, app.height_px, app.dx_version) == (
            width,
            height,
            dx,
        ), app.abbrev


def test_eight_games_four_benchmarks():
    benchmarks = {"3DMarkVAGT1", "3DMarkVAGT2", "Heaven", "Unigine"}
    games = {app.abbrev for app in ALL_APPS} - benchmarks
    assert len(games) == 8


def test_lookup_by_name_and_abbrev():
    assert app_by_name("BioShock") is app_by_name("bioshock")
    assert app_by_name("Assassin's Creed").abbrev == "AssnCreed"


def test_unknown_app_rejected():
    with pytest.raises(WorkloadError):
        app_by_name("Crysis")


def test_frames_for_app():
    app = app_by_name("Heaven")
    frames = frames_for_app(app)
    assert len(frames) == app.num_frames
    assert frames[0] == FrameSpec(app, 0)
    assert frames[0].name == "Heaven#f0"


def test_seeds_unique():
    seeds = [app.seed for app in ALL_APPS]
    assert len(set(seeds)) == len(seeds)


def test_profile_validation():
    with pytest.raises(WorkloadError):
        ALL_APPS[0].__class__(
            name="x", abbrev="x", dx_version=10, width_px=64, height_px=64,
            num_frames=0, seed=1,
        )
    with pytest.raises(WorkloadError):
        ALL_APPS[0].__class__(
            name="x", abbrev="x", dx_version=10, width_px=64, height_px=64,
            num_frames=1, seed=1, early_z_reject=1.5,
        )
