"""Offline simulator tests."""

from repro.config import CacheParams, KB, LLCConfig
from repro.core.registry import policy_spec
from repro.core.srrip import SRRIPPolicy
from repro.sim.offline import build_llc, simulate_trace
from repro.streams import Stream
from repro.trace import synth

from helpers import make_trace


def test_accepts_name_spec_and_instance(small_llc_config):
    trace = synth.cyclic_scan(64, 2)
    by_name = simulate_trace(trace, "srrip", small_llc_config)
    by_spec = simulate_trace(trace, policy_spec("srrip"), small_llc_config)
    by_instance = simulate_trace(trace, SRRIPPolicy(), small_llc_config)
    assert by_name.misses == by_spec.misses == by_instance.misses


def test_results_deterministic(small_llc_config):
    trace = synth.random_trace(2000, 1024, seed=9)
    a = simulate_trace(trace, "gspc", small_llc_config)
    b = simulate_trace(trace, "gspc", small_llc_config)
    assert a.misses == b.misses
    assert a.stats.snapshot() == b.stats.snapshot()


def test_cold_cache_all_misses(small_llc_config, sequential_trace):
    result = simulate_trace(sequential_trace, "lru", small_llc_config)
    assert result.misses == len(sequential_trace)
    assert result.hits == 0


def test_full_reuse_hits(small_llc_config):
    trace = synth.cyclic_scan(num_blocks=64, repetitions=4)
    result = simulate_trace(trace, "lru", small_llc_config)
    assert result.misses == 64
    assert result.hits == 3 * 64


def test_ucd_policy_bypasses_display(small_llc_config):
    trace = make_trace(
        [(i, Stream.DISPLAY, True) for i in range(16)]
        + [(100 + i, Stream.RT, True) for i in range(16)]
    )
    result = simulate_trace(trace, "drrip+ucd", small_llc_config)
    assert result.stats.per_stream[Stream.DISPLAY].bypasses == 16
    assert result.stats.per_stream[Stream.RT].misses == 16


def test_uncached_override(small_llc_config):
    trace = make_trace([(i, Stream.VERTEX) for i in range(8)])
    result = simulate_trace(
        trace, "drrip", small_llc_config, uncached_streams={Stream.VERTEX}
    )
    assert result.stats.per_stream[Stream.VERTEX].bypasses == 8


def test_belady_gets_future_automatically(small_llc_config):
    trace = synth.cyclic_scan(num_blocks=2048, repetitions=3)
    opt = simulate_trace(trace, "belady", small_llc_config)
    lru = simulate_trace(trace, "lru", small_llc_config)
    # Cyclic reuse beyond capacity: LRU gets nothing, OPT keeps a
    # cache-sized slice.
    assert opt.misses < lru.misses


def test_extras_contain_fill_fractions(small_llc_config):
    trace = synth.cyclic_scan(64, 2)
    result = simulate_trace(trace, "drrip", small_llc_config)
    fractions = result.extras["fill_distant_fraction"]
    assert set(fractions) == {"Z", "TEX", "RT", "OTHER"}


def test_trace_meta_propagates(small_llc_config):
    trace = synth.cyclic_scan(16, 1)
    result = simulate_trace(trace, "nru", small_llc_config)
    assert "cyclic_scan" in result.workload_name


def test_build_llc_observer_attached(small_llc_config):
    from repro.cache.llc import LLCObserver

    class Probe(LLCObserver):
        fills = 0

        def on_fill(self, ctx, slot):
            Probe.fills += 1

    llc = build_llc("lru", small_llc_config, observer=Probe())
    llc.access(0, Stream.Z)
    assert Probe.fills == 1


def test_tiny_llc_capacity_bound():
    config = LLCConfig(params=CacheParams(1 * KB, ways=2), banks=1)
    trace = synth.cyclic_scan(num_blocks=8, repetitions=10)
    result = simulate_trace(trace, "lru", config)
    assert result.misses == 8  # working set fits: only cold misses
