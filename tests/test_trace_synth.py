"""Synthetic test-trace generator tests."""

import numpy as np

from repro.streams import Stream
from repro.trace import synth
from repro.trace.stats import compute_trace_stats


def test_cyclic_scan_length_and_footprint():
    trace = synth.cyclic_scan(num_blocks=32, repetitions=3)
    assert len(trace) == 96
    assert compute_trace_stats(trace).footprint_blocks == 32


def test_cyclic_scan_repeats_same_blocks():
    trace = synth.cyclic_scan(num_blocks=8, repetitions=2)
    blocks = trace.block_addresses()
    assert np.array_equal(blocks[:8], blocks[8:])


def test_scan_with_working_set_streams_disjoint():
    trace = synth.scan_with_working_set(
        working_blocks=16, scan_blocks=64, rounds=2
    )
    blocks = trace.block_addresses()
    working = set(blocks[trace.stream_mask(Stream.Z)].tolist())
    scan = set(blocks[trace.stream_mask(Stream.TEXTURE)].tolist())
    assert not working & scan


def test_scan_blocks_are_single_use():
    trace = synth.scan_with_working_set(
        working_blocks=4, scan_blocks=32, rounds=3
    )
    scan_blocks = trace.block_addresses()[trace.stream_mask(Stream.TEXTURE)]
    unique, counts = np.unique(scan_blocks, return_counts=True)
    assert counts.max() == 1


def test_producer_consumer_consumes_produced_blocks():
    trace = synth.producer_consumer(num_blocks=32, rounds=2, consume_fraction=0.5)
    blocks = trace.block_addresses()
    produced = set(blocks[trace.stream_mask(Stream.RT)].tolist())
    consumed = set(blocks[trace.stream_mask(Stream.TEXTURE)].tolist())
    assert consumed <= produced
    # Each round consumes half of the produced blocks (a fresh subset).
    assert int(trace.stream_mask(Stream.TEXTURE).sum()) == 32


def test_producer_consumer_rt_accesses_are_writes():
    trace = synth.producer_consumer(num_blocks=8, rounds=1)
    rt_mask = trace.stream_mask(Stream.RT)
    assert trace.writes[rt_mask].all()


def test_interleaved_streams_round_robin():
    trace = synth.interleaved_streams(per_stream_blocks=4, rounds=2)
    streams = trace.streams[:12].tolist()
    assert streams == [int(Stream.Z)] * 4 + [int(Stream.RT)] * 4 + [
        int(Stream.TEXTURE)
    ] * 4


def test_random_trace_is_seed_deterministic():
    a = synth.random_trace(length=100, footprint_blocks=50, seed=7)
    b = synth.random_trace(length=100, footprint_blocks=50, seed=7)
    assert np.array_equal(a.addresses, b.addresses)
    c = synth.random_trace(length=100, footprint_blocks=50, seed=8)
    assert not np.array_equal(a.addresses, c.addresses)


def test_random_trace_footprint_bound():
    trace = synth.random_trace(length=1000, footprint_blocks=10, seed=1)
    assert compute_trace_stats(trace).footprint_blocks <= 10
