"""Configuration and scaling-model tests."""

import dataclasses

import pytest

from repro.config import (
    DDR3_1600,
    DDR3_1867,
    GPU_BASELINE,
    GPU_SMALL,
    KB,
    MB,
    CacheParams,
    DRAMConfig,
    LLCConfig,
    RenderCachesConfig,
    SystemConfig,
    paper_baseline,
)
from repro.errors import ConfigError


class TestCacheParams:
    def test_paper_llc_geometry(self):
        params = CacheParams(8 * MB, ways=16)
        assert params.num_blocks == 131072
        assert params.num_sets == 8192

    def test_non_power_of_two_ways_allowed(self):
        # The paper's HiZ cache: 12 KB, 24-way -> 8 sets.
        params = CacheParams(12 * KB, ways=24)
        assert params.num_sets == 8

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheParams(12 * KB, ways=16)  # 12 sets

    def test_rejects_capacity_not_multiple_of_block(self):
        with pytest.raises(ConfigError):
            CacheParams(100, ways=1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CacheParams(0, ways=4)

    def test_scaled_preserves_block_size(self):
        scaled = CacheParams(8 * MB, ways=16).scaled(1 / 64)
        assert scaled.block_bytes == 64
        assert scaled.capacity_bytes == 8 * MB // 64

    def test_scaled_clamps_to_min_sets(self):
        scaled = CacheParams(1 * KB, ways=4).scaled(1 / 1024, min_sets=2)
        assert scaled.num_sets >= 2

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigError):
            CacheParams(8 * MB, ways=16).scaled(0)


class TestLLCConfig:
    def test_paper_defaults(self):
        llc = LLCConfig()
        assert llc.num_sets == 8192
        assert llc.ways == 16
        assert llc.banks == 4
        assert llc.sets_per_bank == 2048
        assert llc.sample_period == 64  # 16 samples per 1024 sets

    def test_scaled_shrinks_banks_with_capacity(self):
        scaled = LLCConfig().scaled(1 / 64)
        assert scaled.banks < 4
        assert scaled.num_sets == 8192 // 64

    def test_scaled_keeps_followers_majority(self):
        scaled = LLCConfig().scaled(1 / 64)
        assert scaled.sample_period >= 4

    def test_rejects_bad_banks(self):
        with pytest.raises(ConfigError):
            LLCConfig(banks=3)

    def test_rejects_more_banks_than_sets(self):
        with pytest.raises(ConfigError):
            LLCConfig(params=CacheParams(4 * KB, ways=16), banks=8)


class TestDRAM:
    def test_ddr3_1600_peak_bandwidth(self):
        # Dual channel x 64-bit x 1600 MT/s = 25.6 GB/s.
        assert DDR3_1600.peak_bandwidth_gbps == pytest.approx(25.6)

    def test_row_miss_slower_than_row_hit(self):
        assert DDR3_1600.row_miss_ns() > DDR3_1600.row_hit_ns()

    def test_faster_part_has_lower_latency(self):
        assert DDR3_1867.row_hit_ns() < DDR3_1600.row_hit_ns()

    def test_burst_transfer_cycles(self):
        assert DDR3_1600.transfer_cycles == 4  # BL8 on a DDR bus

    def test_rejects_bad_channels(self):
        with pytest.raises(ConfigError):
            DRAMConfig(channels=0)


class TestGPU:
    def test_baseline_matches_paper(self):
        assert GPU_BASELINE.thread_contexts == 768
        assert GPU_BASELINE.texture_samplers == 12
        # "aggregate peak throughput of nearly 2.5 TFLOPS"
        assert GPU_BASELINE.peak_tflops == pytest.approx(2.4576, rel=1e-3)
        # "peak texture fill rate of 76.8 GTexels/second"
        assert GPU_BASELINE.peak_texel_rate_gtexels == pytest.approx(76.8)

    def test_small_gpu_matches_section_5_4(self):
        assert GPU_SMALL.thread_contexts == 512
        assert GPU_SMALL.texture_samplers == 8

    def test_llc_latency_ns(self):
        assert GPU_BASELINE.llc_latency_ns == pytest.approx(5.0)


class TestSystem:
    def test_paper_baseline_16mb(self):
        system = paper_baseline(llc_mb=16)
        assert system.llc.params.capacity_bytes == 16 * MB

    def test_scaled_system_shrinks_caches(self):
        system = paper_baseline(scale=0.125)
        assert system.llc.params.capacity_bytes < 8 * MB
        assert system.scale == 0.125

    def test_scale_out_of_range(self):
        with pytest.raises(ConfigError):
            SystemConfig().scaled(0.0)
        with pytest.raises(ConfigError):
            SystemConfig().scaled(1.5)

    def test_render_caches_scale(self):
        caches = RenderCachesConfig().scaled(1 / 64)
        assert caches.z.capacity_bytes < 32 * KB
        assert caches.texture_l3.capacity_bytes < 384 * KB

    def test_replace_dram(self):
        system = dataclasses.replace(SystemConfig(), dram=DDR3_1867)
        assert system.dram.name.startswith("DDR3-1867")
