"""Metrics registry semantics."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_counter_rejects_decrease():
    with pytest.raises(ObservabilityError):
        Counter("c").inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.inc(2.5)
    gauge.dec()
    assert gauge.value == pytest.approx(11.5)


def test_histogram_buckets_and_stats():
    histogram = Histogram("h", buckets=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 100.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(106.5)
    assert snap["min"] == 0.5 and snap["max"] == 100.0
    # <=1: {0.5, 1.0}; <=10: {5.0}; +inf: {100.0}
    assert snap["buckets"] == {"le_1": 2, "le_10": 1, "inf": 1}
    assert histogram.mean == pytest.approx(106.5 / 4)


def test_histogram_rejects_empty_buckets():
    with pytest.raises(ObservabilityError):
        Histogram("h", buckets=())


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert len(registry) == 3
    assert "a" in registry and "missing" not in registry


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ObservabilityError):
        registry.gauge("x")
    with pytest.raises(ObservabilityError):
        registry.histogram("x")


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("sim.accesses").inc(7)
    registry.gauge("sim.resident").set(42)
    registry.histogram("sim.latency", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"] == {"sim.accesses": 7}
    assert snap["gauges"] == {"sim.resident": 42}
    assert snap["histograms"]["sim.latency"]["count"] == 1
    assert registry.to_dict() == snap


def test_registry_reset():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.reset()
    assert len(registry) == 0
    assert registry.counter("a").value == 0


def test_default_registry_is_shared():
    assert default_registry() is default_registry()
