"""Paper-scale (scale = 1.0) configuration tests.

Trace *generation* at full resolution is expensive, but resource
allocation and command capture are cheap at any scale — so the paper
configuration itself is validated on every test run, and the heavy
rasterization stays in the reduced-scale tests.
"""

import numpy as np

from repro.config import MB, paper_baseline
from repro.workloads.apps import app_by_name
from repro.workloads.framegen import build_frame_passes, build_resources
from repro.workloads.replay import capture_frame_commands


def test_paper_llc_configuration():
    system = paper_baseline(llc_mb=8, scale=1.0)
    assert system.llc.params.capacity_bytes == 8 * MB
    assert system.llc.num_sets == 8192
    assert system.llc.banks == 4
    assert system.llc.sample_period == 64
    assert len(
        [s for s in range(8192) if s % 64 == 0]
    ) == 128  # 16 per 1024 sets


def test_paper_scale_surfaces_match_resolutions():
    app = app_by_name("Heaven")  # 2560 x 1600
    rng = np.random.default_rng(0)
    resources = build_resources(app, 1.0, rng)
    assert resources.back_buffer.width_px == 2560
    assert resources.back_buffer.height_px == 1600
    # A 32-bit 2560x1600 surface is 16 MB: comparable to the LLC, as in
    # the paper's capacity discussion.
    assert resources.back_buffer.size_bytes == 2560 * 1600 * 4


def test_paper_scale_pass_list_builds():
    app = app_by_name("StalkerCOP")
    rng = np.random.default_rng(0)
    resources = build_resources(app, 1.0, rng)
    passes = build_frame_passes(app, resources, 0, rng)
    assert passes
    total_tiles = sum(
        draw.tile_count() for p in passes for draw in p.draws
    )
    # Multi-pass full-resolution rendering covers millions of tiles.
    assert total_tiles > 1_000_000


def test_paper_scale_command_capture():
    command_list = capture_frame_commands(
        app_by_name("BioShock"), 0, scale=1.0
    )
    assert command_list.draw_count() > 50
    table = command_list.surface_table()
    assert table["back_buffer"].width_px == 1920
    # Serialization stays modest even at paper scale (commands, not
    # accesses).
    assert len(command_list.to_json()) < 1_000_000
