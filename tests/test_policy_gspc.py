"""GSPC tests against the Table-5 controller actions."""

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.core.gspc import GSPCPolicy
from repro.core.gspc_base import STATE_RT
from repro.streams import Stream


def _bound(num_sets=16, ways=4, sample_period=8):
    policy = GSPCPolicy()
    geometry = CacheGeometry(
        num_sets=num_sets, ways=ways, sample_period=sample_period
    )
    llc = LLC(geometry, policy)
    sample = geometry.sample_sets[0]
    follower = next(
        s for s in range(num_sets) if not geometry.is_sample_set[s]
    )
    return policy, llc, sample, follower


def _block_in(set_index, tag=0, num_sets=16):
    return (tag * num_sets + set_index) * 64


class TestProdConsCounters:
    def test_sample_rt_fill_increments_prod(self):
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.RT, is_write=True)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["prod"][bank] == 1

    def test_sample_consumption_increments_cons(self):
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.RT, is_write=True)
        llc.access(_block_in(sample), Stream.TEXTURE)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["cons"][bank] == 1

    def test_rt_blend_hit_does_not_increment_prod(self):
        # Table 5: "RT hit (blending): state <- 11" only.
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.RT, is_write=True)
        llc.access(_block_in(sample), Stream.RT)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["prod"][bank] == 1

    def test_follower_rt_fill_does_not_increment_prod(self):
        policy, llc, _, follower = _bound()
        llc.access(_block_in(follower), Stream.RT, is_write=True)
        bank = llc.geometry.bank_of_set[follower]
        assert policy.counters["prod"][bank] == 0

    def test_prod_cons_halved_with_other_counters(self):
        policy, llc, sample, _ = _bound()
        bank = llc.geometry.bank_of_set[sample]
        policy.counters["prod"][bank] = 40
        policy.counters["cons"][bank] = 20
        policy.acc[bank] = policy.acc_max
        llc.access(_block_in(sample), Stream.Z)
        assert policy.counters["prod"][bank] == 20
        assert policy.counters["cons"][bank] == 10


class TestDynamicRTInsertion:
    """Table 5's three-tier render-target protection."""

    def _fill_rt(self, policy, llc, follower, prod, cons, tag=0):
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["prod"][bank] = prod
        policy.counters["cons"][bank] = cons
        address = _block_in(follower, tag=tag)
        llc.access(address, Stream.RT, is_write=True)
        return policy.get_rrpv(follower, llc.way_of(address))

    def test_low_probability_distant(self):
        policy, llc, _, follower = _bound()
        # PROD > 16*CONS  (probability < 1/16) -> RRPV 3
        assert self._fill_rt(policy, llc, follower, prod=33, cons=2) == 3

    def test_mid_probability_long(self):
        policy, llc, _, follower = _bound()
        # 16*CONS >= PROD > 8*CONS -> RRPV 2
        assert self._fill_rt(policy, llc, follower, prod=20, cons=2) == 2

    def test_high_probability_protected(self):
        policy, llc, _, follower = _bound()
        # probability >= 1/8 -> RRPV 0
        assert self._fill_rt(policy, llc, follower, prod=16, cons=2) == 0

    def test_cold_start_protects(self):
        policy, llc, _, follower = _bound()
        # PROD == CONS == 0: 0 > 0 is false twice -> RRPV 0.
        assert self._fill_rt(policy, llc, follower, prod=0, cons=0) == 0

    def test_blend_hit_always_promotes(self):
        policy, llc, _, follower = _bound()
        self._fill_rt(policy, llc, follower, prod=200, cons=1)  # RRPV 3
        address = _block_in(follower)
        llc.access(address, Stream.RT)
        slot = policy._slot(follower, llc.way_of(address))
        assert policy.rrpv[slot] == 0
        assert policy.state[slot] == STATE_RT

    def test_consumption_probability_helper(self):
        policy, llc, _, _ = _bound()
        policy.counters["prod"][0] = 10
        policy.counters["cons"][0] = 5
        assert policy.rt_consumption_probability(0) == 0.5


class TestInheritedBehaviour:
    def test_tse_machinery_still_present(self):
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.TEXTURE)
        llc.access(_block_in(sample), Stream.TEXTURE)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["hit_e0"][bank] == 1

    def test_counter_inventory_matches_paper(self):
        # Two for Z, four for texture epochs, two for RT->TEX (Sec. 4).
        policy, _, _, _ = _bound()
        assert set(policy.counters) == {
            "fill_z",
            "hit_z",
            "fill_e0",
            "hit_e0",
            "fill_e1",
            "hit_e1",
            "prod",
            "cons",
        }
