"""Phase-analysis tests."""

from repro.analysis.phases import detect_phase_changes, phase_profile
from repro.config import CacheParams, KB, LLCConfig
from repro.streams import Stream
from repro.trace import synth

TINY = LLCConfig(params=CacheParams(4 * KB, ways=4), banks=1, sample_period=8)


def test_windows_cover_whole_trace():
    trace = synth.cyclic_scan(num_blocks=100, repetitions=5)
    windows = phase_profile(trace, "lru", TINY, window=128)
    assert sum(w.accesses for w in windows) == len(trace)
    assert windows[0].start_index == 0


def test_partial_final_window():
    trace = synth.cyclic_scan(num_blocks=100, repetitions=1)
    windows = phase_profile(trace, "lru", TINY, window=64)
    assert [w.accesses for w in windows] == [64, 36]


def test_hit_rates_reflect_warmup():
    trace = synth.cyclic_scan(num_blocks=32, repetitions=8)
    windows = phase_profile(trace, "lru", TINY, window=32)
    assert windows[0].hit_rate == 0.0       # cold first lap
    assert windows[-1].hit_rate == 1.0      # warmed up


def test_stream_fractions_and_dominant():
    trace = synth.interleaved_streams(per_stream_blocks=64, rounds=1)
    windows = phase_profile(trace, "lru", TINY, window=64)
    assert windows[0].dominant_stream is Stream.Z
    assert windows[1].dominant_stream is Stream.RT
    assert windows[0].stream_fraction(Stream.Z) == 1.0


def test_rt_consumption_windowed():
    trace = synth.producer_consumer(num_blocks=32, rounds=1, consume_fraction=1.0)
    windows = phase_profile(trace, "lru", TINY, window=32)
    assert sum(w.rt_consumed for w in windows) == 32


def test_phase_change_detection():
    trace = synth.interleaved_streams(
        per_stream_blocks=128, rounds=1,
        streams=(Stream.Z, Stream.TEXTURE),
    )
    windows = phase_profile(trace, "lru", TINY, window=128)
    changes = detect_phase_changes(windows)
    assert changes == [1]


def test_no_false_phase_changes_on_uniform_traffic():
    trace = synth.cyclic_scan(num_blocks=64, repetitions=8)
    windows = phase_profile(trace, "lru", TINY, window=64)
    assert detect_phase_changes(windows) == []


def test_real_frame_has_phases():
    from repro.workloads.apps import ALL_APPS
    from repro.workloads.framegen import generate_frame_trace

    trace = generate_frame_trace(ALL_APPS[0], 0, scale=0.0625)
    windows = phase_profile(trace, "drrip", TINY, window=4096)
    assert len(windows) > 4
    # A rendered frame shows at least one pass boundary.
    assert detect_phase_changes(windows, threshold=0.2)
