"""End-to-end integration tests: the paper's qualitative shapes.

These run the full pipeline (synthetic frames -> render caches -> LLC ->
policies -> timing) at reduced scale and assert the *directional*
claims of the paper's evaluation, averaged over several applications to
ride out per-frame noise.  Exact magnitudes are recorded in
EXPERIMENTS.md, not asserted here.
"""

import pytest

from repro.config import paper_baseline
from repro.gpu.timing import FrameTimingSimulator
from repro.sim.offline import simulate_trace
from repro.workloads.apps import ALL_APPS
from repro.workloads.framegen import generate_frame_trace

SCALE = 0.125
#: A representative subset keeps the module's runtime reasonable.
APPS = [ALL_APPS[0], ALL_APPS[2], ALL_APPS[4], ALL_APPS[7]]
POLICIES = (
    "drrip",
    "nru",
    "belady",
    "gs-drrip",
    "gspztc",
    "gspztc+tse",
    "gspc+ucd",
)


@pytest.fixture(scope="module")
def system():
    return paper_baseline(llc_mb=8, scale=SCALE)


@pytest.fixture(scope="module")
def results(system):
    """misses[policy] summed over frames, plus per-frame stats."""
    per_policy = {policy: [] for policy in POLICIES}
    for app in APPS:
        trace = generate_frame_trace(app, 0, scale=SCALE)
        for policy in POLICIES:
            per_policy[policy].append(
                simulate_trace(trace, policy, system.llc)
            )
    return per_policy


def _avg_ratio(results, policy, baseline="drrip"):
    ratios = [
        results[policy][i].misses / results[baseline][i].misses
        for i in range(len(results[policy]))
    ]
    return sum(ratios) / len(ratios)


def test_belady_saves_large_miss_fraction(results):
    """Figure 1: OPT exposes a big opportunity versus DRRIP."""
    assert _avg_ratio(results, "belady") < 0.9


def test_nru_worse_than_drrip(results):
    """Figure 1: NRU increases misses on average."""
    assert _avg_ratio(results, "nru") > 1.0


def test_gspztc_beats_gs_drrip_beats_drrip_on_average(results):
    """Figure 12 ordering (direction, not magnitude)."""
    assert _avg_ratio(results, "gspztc") <= _avg_ratio(results, "gs-drrip") + 0.01


def test_gspc_ucd_saves_misses(results):
    """Figure 12: the final proposal beats the DRRIP baseline."""
    assert _avg_ratio(results, "gspc+ucd") < 1.0


def test_opt_texture_hit_rate_dwarfs_online(results):
    """Figure 5: OPT's texture hit rate far exceeds DRRIP's."""
    opt = [r.stats.tex_hit_rate for r in results["belady"]]
    drrip = [r.stats.tex_hit_rate for r in results["drrip"]]
    assert sum(opt) / len(opt) > 1.4 * (sum(drrip) / len(drrip))


def test_opt_consumes_more_render_targets(results):
    """Figure 6: OPT realizes more RT->TEX consumption than DRRIP."""
    opt = [r.stats.rt_consumption_rate for r in results["belady"]]
    drrip = [r.stats.rt_consumption_rate for r in results["drrip"]]
    assert sum(opt) > sum(drrip)


def test_rt_hit_rate_gap_small(results):
    """Figure 5: the RT (blending) hit-rate gap OPT-vs-DRRIP is small
    compared to the texture gap."""
    opt = sum(r.stats.rt_hit_rate for r in results["belady"])
    drrip = sum(r.stats.rt_hit_rate for r in results["drrip"])
    assert opt / drrip < 1.25


def test_texture_epoch_shape(system):
    """Figure 7: most intra-stream texture hits come from E0, and E0's
    death ratio exceeds E2's."""
    from repro.analysis.characterize import characterize_frame

    trace = generate_frame_trace(APPS[0], 0, scale=SCALE)
    epochs = characterize_frame(trace, "belady", system.llc).tex_epochs
    distribution = epochs.hit_distribution()
    assert distribution[0] > 0.5
    assert epochs.death_ratio(0) > epochs.death_ratio(2)


def test_z_epochs_live_longer_than_texture(system):
    """Figures 7 vs 9: the Z stream's young blocks are far more likely
    to survive than texture blocks (the observation behind tracking
    epochs only for textures), and Z blocks that get one reuse tend to
    keep being reused."""
    from repro.analysis.characterize import characterize_frame

    z_totals = [0.0, 0.0]
    tex_e0 = 0.0
    for app in APPS[:2]:
        trace = generate_frame_trace(app, 0, scale=SCALE)
        char = characterize_frame(trace, "belady", system.llc)
        for e in range(2):
            z_totals[e] += char.z_epochs.death_ratio(e)
        tex_e0 += char.tex_epochs.death_ratio(0)
    assert z_totals[0] >= z_totals[1]      # Z deaths fall with epoch
    assert tex_e0 > z_totals[0]            # textures die far more in E0


def test_speedup_tracks_miss_savings(system):
    """Figures 15: policies that save misses run faster, with damping."""
    simulator = FrameTimingSimulator(system)
    trace = generate_frame_trace(APPS[1], 0, scale=SCALE)
    base = simulator.run(trace, "drrip+ucd")
    opt = simulator.run(trace, "belady+ucd")
    assert opt.speedup_over(base) > 1.0
