"""Experiment-framework tests (micro scale: fast but end-to-end)."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.experiments.common import (
    ExperimentConfig,
    all_experiments,
    clear_result_caches,
    frame_result,
    frame_trace,
    get_experiment,
)
from repro.workloads.apps import ALL_APPS, FrameSpec

#: 1/16 linear scale and a single app's frame keep these tests quick.
MICRO = ExperimentConfig(scale=0.0625, frames_per_app=1, cache_dir=None)


def test_registry_covers_all_paper_artifacts():
    registry = all_experiments()
    expected = {
        "fig01", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "table1", "table6",
    }
    assert expected <= set(registry)


def test_unknown_experiment_rejected():
    with pytest.raises(ReproError):
        get_experiment("fig99")


def test_config_frame_selection():
    assert len(MICRO.frames()) == 12
    full = dataclasses.replace(MICRO, frames_per_app=None)
    assert len(full.frames()) == 52


def test_trace_cache_round_trip(tmp_path):
    config = dataclasses.replace(MICRO, cache_dir=str(tmp_path))
    spec = FrameSpec(ALL_APPS[0], 0)
    first = frame_trace(spec, config)
    again = frame_trace(spec, config)
    assert len(first) == len(again)
    assert (tmp_path / "traces").exists()


def test_result_cache_reuses_objects():
    clear_result_caches()
    spec = FrameSpec(ALL_APPS[0], 0)
    a = frame_result(spec, "drrip", MICRO)
    b = frame_result(spec, "drrip", MICRO)
    assert a is b


def test_table1_and_table6_run():
    for experiment_id in ("table1", "table6"):
        tables = get_experiment(experiment_id).run(MICRO)
        assert tables and tables[0].rows


def test_fig04_mix_rows():
    tables = get_experiment("fig04").run(MICRO)
    table = tables[0]
    assert table.headers[0] == "Application"
    assert table.rows[-1][0] == "Average"
    # Each row's stream percentages sum to ~100.
    for row in table.rows:
        assert sum(cell for cell in row[1:]) == pytest.approx(100.0, abs=0.5)


def test_fig01_normalization_sane():
    tables = get_experiment("fig01").run(MICRO)
    table = tables[0]
    belady = table.column("Belady-OPT")
    assert all(value <= 1.0 for value in belady)


def test_fig08_percentages_in_range():
    table = get_experiment("fig08").run(MICRO)[0]
    for row in table.rows:
        assert 0.0 <= row[1] <= 100.0
        assert 0.0 <= row[2] <= 100.0
