"""Trace context propagation, event collection, and the Chrome-trace /
Prometheus-text exporters."""

import json
import os

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    TraceCollector,
    TraceContext,
    activate,
    current,
    deactivate,
    make_event,
)
from repro.obs.traceexport import (
    build_chrome_trace,
    check_trace,
    is_trace,
    load_trace_file,
    prometheus_text,
    validate_trace,
    write_trace_file,
)


# -- TraceContext -------------------------------------------------------------

def test_new_run_ids_are_prefixed_and_unique():
    a = TraceContext.new_run("gspc-sim")
    b = TraceContext.new_run("gspc-sim")
    assert a.run_id.startswith("gspc-sim-")
    assert a.run_id != b.run_id
    assert a.job_id == "" and a.attempt == 0


def test_child_keeps_run_identity():
    run = TraceContext.new_run("sweep")
    child = run.child("sim:DMC:f0:lru:llc8", attempt=3)
    assert child.run_id == run.run_id
    assert child.job_id == "sim:DMC:f0:lru:llc8"
    assert child.attempt == 3


def test_dict_roundtrip_across_process_boundary():
    ctx = TraceContext.new_run("run").child("job-7", attempt=2)
    data = ctx.to_dict()
    assert json.loads(json.dumps(data)) == data  # JSON-clean
    assert TraceContext.from_dict(data) == ctx
    # Falsy fields are dropped from the wire format.
    assert "parent_span_id" not in data
    assert set(TraceContext.new_run("r").to_dict()) == {"run_id"}


def test_from_dict_rejects_unknown_keys_and_none():
    assert TraceContext.from_dict(None) is None
    assert TraceContext.from_dict({}) is None
    with pytest.raises(ObservabilityError, match="unknown trace-context"):
        TraceContext.from_dict({"run_id": "r", "spam": 1})


def test_context_validation():
    with pytest.raises(ObservabilityError, match="needs a run_id"):
        TraceContext(run_id="")
    with pytest.raises(ObservabilityError, match="attempt must be >= 0"):
        TraceContext(run_id="r", attempt=-1)


def test_activate_current_deactivate():
    ctx = TraceContext.new_run("test")
    try:
        assert activate(ctx) is ctx
        assert current() is ctx
    finally:
        deactivate()
    assert current() is None


# -- TraceCollector -----------------------------------------------------------

def test_collector_gathers_own_and_shipped_events():
    ctx = TraceContext.new_run("run")
    collector = TraceCollector(ctx)
    collector.add_span("attempt", 100.0, 2.0, args={"attempt": 1})
    collector.extend(
        [make_event("replay", 100.5, 1.0, pid=4242, path="sim/replay")]
    )
    assert len(collector) == 2
    assert collector.pids() == sorted({os.getpid(), 4242})
    own = collector.events[0]
    assert own["ctx"] == ctx.to_dict()
    assert own["args"] == {"attempt": 1}


def test_collector_buffer_is_bounded():
    collector = TraceCollector(TraceContext.new_run("run"), max_events=2)
    for index in range(5):
        collector.add_span(f"s{index}", float(index), 1.0)
    assert len(collector) == 2
    assert collector.dropped == 3
    with pytest.raises(ObservabilityError):
        TraceCollector(TraceContext.new_run("run"), max_events=0)


# -- Chrome trace export ------------------------------------------------------

def _sample_events(run_id):
    ctx = {"run_id": run_id, "job_id": "sim:a"}
    return [
        make_event("sim", 1000.0, 3.0, pid=11, ctx=ctx),
        make_event("replay", 1001.0, 1.5, pid=11, path="sim/replay", ctx=ctx),
        make_event("sweep", 999.0, 5.0, pid=10,
                   ctx={"run_id": run_id}),
    ]


def test_build_chrome_trace_structure():
    trace = build_chrome_trace(
        _sample_events("run-1"),
        "run-1",
        process_names={10: "orchestrator"},
        extra_metadata={"sweep": "tiny"},
    )
    assert is_trace(trace)
    assert validate_trace(trace) == []
    assert trace["metadata"]["run_id"] == "run-1"
    assert trace["metadata"]["sweep"] == "tiny"
    assert trace["metadata"]["pids"] == [10, 11]
    meta_events = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert {e["args"]["name"] for e in meta_events} == {
        "orchestrator", "worker 11",
    }
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    # Sorted by start; timestamps rebased to the earliest (999.0) in µs.
    assert [e["name"] for e in spans] == ["sweep", "sim", "replay"]
    assert spans[0]["ts"] == 0.0
    assert spans[1]["ts"] == pytest.approx(1_000_000.0)
    assert spans[2]["dur"] == pytest.approx(1_500_000.0)
    # Trace context and path land in args for the viewer.
    assert spans[1]["args"]["run_id"] == "run-1"
    assert spans[2]["args"]["path"] == "sim/replay"


def test_trace_file_roundtrip(tmp_path):
    trace = build_chrome_trace(_sample_events("run-2"), "run-2")
    path = str(tmp_path / "deep" / "trace.json")
    assert write_trace_file(trace, path) == path
    assert load_trace_file(path) == json.loads(json.dumps(trace))
    check_trace(load_trace_file(path))  # must not raise


def test_validate_trace_catches_problems():
    assert validate_trace([]) == ["trace must be an object, got list"]
    assert validate_trace({"traceEvents": "nope"}) == [
        "'traceEvents' must be a list"
    ]
    bad_phase = {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 1}]}
    assert any(".ph" in p for p in validate_trace(bad_phase))
    negative = {
        "traceEvents": [
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -1, "dur": 0}
        ]
    }
    assert any(".ts" in p for p in validate_trace(negative))
    with pytest.raises(ObservabilityError, match="invalid trace"):
        check_trace(negative)


def test_validate_trace_rejects_foreign_run_events():
    trace = build_chrome_trace(_sample_events("run-3"), "run-3")
    trace["traceEvents"][-1]["args"]["run_id"] = "someone-else"
    problems = validate_trace(trace)
    assert any("someone-else" in p for p in problems)


def test_build_chrome_trace_empty_events():
    trace = build_chrome_trace([], "run-4")
    assert validate_trace(trace) == []
    assert trace["traceEvents"] == []


# -- Prometheus text ----------------------------------------------------------

def test_prometheus_text_renders_snapshot():
    registry = MetricsRegistry()
    registry.counter("sweep.jobs.total").inc(3)
    registry.gauge("sweep.wall_seconds").set(1.5)
    histogram = registry.histogram("sweep.attempt_seconds")
    histogram.observe(0.2)
    histogram.observe(0.4)
    text = prometheus_text(
        registry.snapshot(), labels={"run_id": "run-9"}
    )
    assert '# TYPE repro_sweep_jobs_total counter' in text
    assert 'repro_sweep_jobs_total{run_id="run-9"} 3' in text
    assert 'repro_sweep_wall_seconds{run_id="run-9"} 1.5' in text
    assert '# TYPE repro_sweep_attempt_seconds histogram' in text
    assert 'le="+Inf"' in text
    assert 'repro_sweep_attempt_seconds_count{run_id="run-9"} 2' in text
    # Bucket counts are cumulative and end at the total count.
    bucket_lines = [
        line for line in text.splitlines() if "_bucket" in line
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert counts == sorted(counts)
    assert counts[-1] == 2
