"""GSPZTC tests against the Table-3 controller actions."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.core.gspc_base import STATE_E0, STATE_RT
from repro.core.gspztc import GSPZTCPolicy
from repro.errors import ConfigError
from repro.streams import Stream


def _bound(num_sets=16, ways=4, sample_period=8, **kwargs):
    policy = GSPZTCPolicy(**kwargs)
    geometry = CacheGeometry(
        num_sets=num_sets, ways=ways, sample_period=sample_period
    )
    llc = LLC(geometry, policy)
    sample = geometry.sample_sets[0]
    follower = next(
        s for s in range(num_sets) if not geometry.is_sample_set[s]
    )
    return policy, llc, sample, follower


def _block_in(set_index, tag=0, num_sets=16):
    return (tag * num_sets + set_index) * 64


class TestSampleSets:
    def test_sample_fill_runs_srrip_and_counts(self):
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.Z)
        way = llc.way_of(_block_in(sample))
        assert policy.get_rrpv(sample, way) == 2  # SRRIP insertion
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["fill_z"][bank] == 1

    def test_sample_hit_counts_and_promotes(self):
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.Z)
        llc.access(_block_in(sample), Stream.Z)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["hit_z"][bank] == 1
        assert policy.get_rrpv(sample, llc.way_of(_block_in(sample))) == 0

    def test_rt_to_tex_consumption_counts_as_tex_fill(self):
        # Table 3: "RT->TEX hit: FILL(TEX)++" — a consumed render target
        # starts a new texture life.
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.RT, is_write=True)
        llc.access(_block_in(sample), Stream.TEXTURE)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["fill_tex"][bank] == 1
        assert policy.counters["hit_tex"][bank] == 0

    def test_plain_tex_hit_counts_hit(self):
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.TEXTURE)
        llc.access(_block_in(sample), Stream.TEXTURE)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["fill_tex"][bank] == 1
        assert policy.counters["hit_tex"][bank] == 1

    def test_acc_saturation_halves_counters(self):
        policy, llc, sample, _ = _bound()
        bank = llc.geometry.bank_of_set[sample]
        policy.counters["fill_tex"][bank] = 100
        policy.acc[bank] = policy.acc_max
        llc.access(_block_in(sample), Stream.Z)  # triggers the halving
        assert policy.counters["fill_tex"][bank] == 50
        assert policy.acc[bank] == 0


class TestFollowerInsertion:
    def test_rt_fills_fully_protected(self):
        policy, llc, _, follower = _bound()
        llc.access(_block_in(follower), Stream.RT, is_write=True)
        assert policy.get_rrpv(follower, llc.way_of(_block_in(follower))) == 0
        slot = policy._slot(follower, llc.way_of(_block_in(follower)))
        assert policy.state[slot] == STATE_RT

    def test_tex_fill_distant_when_reuse_low(self):
        policy, llc, _, follower = _bound()
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["fill_tex"][bank] = 90   # 90 > 8 * 10
        policy.counters["hit_tex"][bank] = 10
        llc.access(_block_in(follower), Stream.TEXTURE)
        assert policy.get_rrpv(follower, llc.way_of(_block_in(follower))) == 3

    def test_tex_fill_protected_when_reuse_high(self):
        # Table 3: "otherwise the texture block is filled with RRPV zero
        # because filling it with RRPV two hurts performance."
        policy, llc, _, follower = _bound()
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["fill_tex"][bank] = 10
        policy.counters["hit_tex"][bank] = 10
        llc.access(_block_in(follower), Stream.TEXTURE)
        assert policy.get_rrpv(follower, llc.way_of(_block_in(follower))) == 0

    def test_z_fill_distant_or_long(self):
        policy, llc, _, follower = _bound()
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["fill_z"][bank] = 90
        policy.counters["hit_z"][bank] = 10
        llc.access(_block_in(follower), Stream.Z)
        assert policy.get_rrpv(follower, llc.way_of(_block_in(follower))) == 3
        policy.counters["fill_z"][bank] = 10
        llc.access(_block_in(follower, tag=1), Stream.Z)
        way = llc.way_of(_block_in(follower, tag=1))
        assert policy.get_rrpv(follower, way) == 2

    def test_other_fill_long(self):
        policy, llc, _, follower = _bound()
        llc.access(_block_in(follower), Stream.VERTEX)
        assert policy.get_rrpv(follower, llc.way_of(_block_in(follower))) == 2

    def test_any_hit_promotes_to_zero(self):
        policy, llc, _, follower = _bound()
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["fill_tex"][bank] = 200
        llc.access(_block_in(follower), Stream.TEXTURE)  # distant fill
        llc.access(_block_in(follower), Stream.TEXTURE)  # hit
        assert policy.get_rrpv(follower, llc.way_of(_block_in(follower))) == 0


class TestRTBit:
    def test_rt_bit_set_on_rt_hit(self):
        policy, llc, _, follower = _bound()
        llc.access(_block_in(follower), Stream.Z)
        llc.access(_block_in(follower), Stream.RT, is_write=True)
        slot = policy._slot(follower, llc.way_of(_block_in(follower)))
        assert policy.state[slot] == STATE_RT

    def test_rt_bit_cleared_on_consumption(self):
        policy, llc, _, follower = _bound()
        llc.access(_block_in(follower), Stream.RT, is_write=True)
        llc.access(_block_in(follower), Stream.TEXTURE)
        slot = policy._slot(follower, llc.way_of(_block_in(follower)))
        assert policy.state[slot] == STATE_E0

    def test_rt_bit_cleared_on_eviction(self):
        policy, llc, _, follower = _bound(num_sets=16, ways=1)
        address = _block_in(follower)
        llc.access(address, Stream.RT, is_write=True)
        llc.access(_block_in(follower, tag=1), Stream.Z)  # evicts the RT
        slot = policy._slot(follower, 0)
        assert policy.state[slot] == STATE_E0


class TestParameters:
    def test_t_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            GSPZTCPolicy(t=3)

    def test_default_t_is_8(self):
        assert GSPZTCPolicy().t == 8

    def test_reuse_probability_helper(self):
        policy, llc, _, _ = _bound()
        policy.counters["fill_tex"][0] = 10
        policy.counters["hit_tex"][0] = 5
        assert policy.reuse_probability("fill_tex", "hit_tex", 0) == 0.5
