"""GS-DRRIP (stream-aware dueling) tests."""

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.core.dueling import FOLLOWER, LEADER_A, LEADER_B
from repro.core.gs_drrip import GSDRRIPPolicy
from repro.streams import Stream


def _bound_policy(num_sets=256, ways=4):
    policy = GSDRRIPPolicy()
    llc = LLC(CacheGeometry(num_sets=num_sets, ways=ways), policy)
    return policy, llc


def test_four_independent_duels():
    policy, _ = _bound_policy()
    assert len(policy.psels) == 4
    assert len(policy.roles) == 4


def test_leader_sets_disjoint_across_streams():
    policy, _ = _bound_policy()
    for set_index in range(256):
        leading = [
            sclass
            for sclass in range(4)
            if policy.roles[sclass][set_index] != FOLLOWER
        ]
        assert len(leading) <= 1


def test_stream_follows_its_own_winner():
    policy, llc = _bound_policy()
    tex = 1  # StreamClass.TEX
    # Push the TEX duel toward BRRIP by charging misses to its SRRIP
    # leaders only.
    for _ in range(600):
        policy.psels[tex].record_leader_miss(LEADER_A)
    follower = next(
        s
        for s in range(256)
        if all(policy.roles[c][s] == FOLLOWER for c in range(4))
    )
    llc.access(follower * 64, Stream.TEXTURE)
    way = llc.way_of(follower * 64)
    assert policy.get_rrpv(follower, way) == 3  # TEX converged to BRRIP
    # Another stream in the same set still uses its own (SRRIP) winner.
    other_follower = next(
        s
        for s in range(follower + 1, 256)
        if all(policy.roles[c][s] == FOLLOWER for c in range(4))
    )
    llc.access(other_follower * 64, Stream.Z)
    way = llc.way_of(other_follower * 64)
    assert policy.get_rrpv(other_follower, way) == 2


def test_leader_set_fixed_insertion_only_for_its_stream():
    policy, llc = _bound_policy()
    tex = 1
    brrip_leader = policy.roles[tex].index(LEADER_B)
    # TEX fill in its BRRIP leader set -> distant insertion.
    llc.access(brrip_leader * 64, Stream.TEXTURE)
    way = llc.way_of(brrip_leader * 64)
    assert policy.get_rrpv(brrip_leader, way) == 3
    # A Z fill in the same set follows the Z winner (SRRIP initially).
    llc.access((brrip_leader + 256) * 64, Stream.Z)
    way = llc.way_of((brrip_leader + 256) * 64)
    assert policy.get_rrpv(brrip_leader, way) == 2


def test_four_bit_variant_name():
    assert GSDRRIPPolicy(rrpv_bits=4).name == "gs-drrip4"
