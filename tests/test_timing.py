"""Frame-timing simulator tests."""

import dataclasses

import pytest

from repro.config import DDR3_1867, GPU_SMALL, paper_baseline
from repro.gpu.shader import ShaderModel
from repro.gpu.llc_timing import LLCTimingModel
from repro.gpu.timing import FrameTimingSimulator, average_fps, simulate_frame_timing
from repro.streams import Stream
from repro.trace import synth


@pytest.fixture(scope="module")
def system():
    return paper_baseline(llc_mb=8, scale=0.125)


@pytest.fixture(scope="module")
def trace():
    return synth.producer_consumer(512, 6, consume_fraction=0.7, gap_blocks=2048)


def test_frame_time_positive(system, trace):
    timing = simulate_frame_timing(trace, "drrip", system)
    assert timing.frame_ns > 0
    assert timing.fps > 0
    assert timing.accesses == len(trace)


def test_breakdown_components_bounded(system, trace):
    timing = simulate_frame_timing(trace, "drrip", system)
    # Windows take max(compute, dram, llc) + exposed, so the total is
    # bounded by the sum of all components and is at least the largest.
    upper = (
        timing.compute_ns + timing.dram_ns + timing.llc_ns + timing.exposed_ns
    )
    assert timing.frame_ns <= upper + 1e-6
    assert timing.frame_ns >= max(
        timing.compute_ns, timing.dram_ns, timing.llc_ns
    )


def test_fewer_misses_is_faster(system, trace):
    simulator = FrameTimingSimulator(system)
    opt = simulator.run(trace, "belady")
    lru = simulator.run(trace, "lru")
    assert opt.misses < lru.misses
    assert opt.frame_ns < lru.frame_ns
    assert opt.speedup_over(lru) > 1.0


def test_faster_dram_is_faster(system, trace):
    fast = dataclasses.replace(system, dram=DDR3_1867)
    base_t = simulate_frame_timing(trace, "drrip", system)
    fast_t = simulate_frame_timing(trace, "drrip", fast)
    assert fast_t.frame_ns < base_t.frame_ns


def test_smaller_gpu_is_slower(system, trace):
    small = dataclasses.replace(system, gpu=GPU_SMALL)
    base_t = simulate_frame_timing(trace, "drrip", system)
    small_t = simulate_frame_timing(trace, "drrip", small)
    assert small_t.frame_ns > base_t.frame_ns


def test_weaker_gpu_damps_policy_speedups(system, trace):
    """The paper's Section-5.4 observation: a less aggressive GPU has
    internal bottlenecks, so rendering is less sensitive to memory
    system optimizations."""
    small = dataclasses.replace(system, gpu=GPU_SMALL)
    base_speedup = simulate_frame_timing(trace, "belady", system).speedup_over(
        simulate_frame_timing(trace, "lru", system)
    )
    small_speedup = simulate_frame_timing(trace, "belady", small).speedup_over(
        simulate_frame_timing(trace, "lru", small)
    )
    assert base_speedup > 1.0
    assert small_speedup < base_speedup


def test_full_scale_fps_correction():
    timing = dataclasses.replace(
        simulate_frame_timing(
            synth.cyclic_scan(256, 2), "lru", paper_baseline(scale=0.125)
        ),
        scale=0.5,
    )
    assert timing.fps_full_scale == pytest.approx(timing.fps * 0.25)


def test_average_fps():
    a = simulate_frame_timing(synth.cyclic_scan(64, 2), "lru")
    assert average_fps([a, a]) == pytest.approx(a.fps_full_scale)
    assert average_fps([]) == 0.0


def test_shader_model_exposed_latency_scales_with_contexts():
    big = ShaderModel(paper_baseline().gpu)
    small = ShaderModel(GPU_SMALL)
    assert small.exposed_latency_ns(100, 50.0) > big.exposed_latency_ns(100, 50.0)
    assert big.exposed_latency_ns(0, 50.0) == 0.0


def test_shader_compute_monotone_in_work():
    model = ShaderModel(paper_baseline().gpu)
    light = model.compute_ns({int(Stream.Z): 10})
    heavy = model.compute_ns({int(Stream.Z): 10, int(Stream.TEXTURE): 100})
    assert heavy > light


def test_llc_timing_occupancy():
    system = paper_baseline()
    model = LLCTimingModel(system.llc, system.gpu)
    assert model.occupancy_ns(0) == 0.0
    assert model.occupancy_ns(1600) == pytest.approx(100.0)  # 4 banks @ 4 GHz
