"""Micro-scale runs of the remaining experiment modules.

Each experiment must execute end-to-end and produce structurally sound
tables; the directional claims are covered by test_integration.py at a
larger scale.
"""

import dataclasses

import pytest

from repro.experiments.common import ExperimentConfig, get_experiment

MICRO = ExperimentConfig(scale=0.0625, frames_per_app=1, cache_dir=None)


def _single_app_config():
    """One application only: monkeying frames() would be invasive, so
    these heavier experiments run at micro scale with 12 frames."""
    return MICRO


@pytest.mark.parametrize("experiment_id", ["fig05", "fig06", "fig07", "fig09"])
def test_characterization_figures_run(experiment_id):
    tables = get_experiment(experiment_id).run(_single_app_config())
    for table in tables:
        assert table.rows
        assert table.rows[-1][0] == "Average"


def test_fig05_three_panels_ordered():
    tables = get_experiment("fig05").run(MICRO)
    assert len(tables) == 3
    # OPT's texture hit rate beats NRU's on average (paper's headline gap).
    tex = tables[0]
    average = tex.rows[-1]
    belady, nru = average[1], average[3]
    assert belady > nru


def test_fig06_consumption_bounded():
    upper, lower = get_experiment("fig06").run(MICRO)
    for row in lower.rows:
        for cell in row[1:]:
            assert 0.0 <= cell <= 100.0


def test_fig07_death_ratios_bounded():
    _, lower = get_experiment("fig07").run(MICRO)
    for row in lower.rows:
        for cell in row[1:]:
            assert 0.0 <= cell <= 1.0


def test_fig11_reference_column_zero():
    table = get_experiment("fig11").run(MICRO)[0]
    reference = table.column("t=16")
    for value in reference:
        assert value == pytest.approx(0.0)


def test_fig12_has_all_policies():
    table = get_experiment("fig12").run(MICRO)[0]
    assert "GSPC+UCD" in table.headers
    assert len(table.rows) == 13  # 12 apps + average


def test_fig13_rates_bounded():
    table = get_experiment("fig13").run(MICRO)[0]
    for row in table.rows:
        for cell in row[1:]:
            assert 0.0 <= cell <= 100.0


def test_fig14_iso_overhead_policies():
    table = get_experiment("fig14").run(MICRO)[0]
    assert table.headers[1:] == ["LRU", "DRRIP4", "GS-DRRIP4", "GSPC+UCD"]


def test_fig15_speedups_positive():
    table = get_experiment("fig15").run(MICRO)[0]
    for row in table.rows:
        for cell in row[1:]:
            assert cell > 0.0


def test_fig16_uses_16mb():
    big = dataclasses.replace(MICRO, llc_mb=16)
    assert big.system().llc.params.capacity_bytes > MICRO.system().llc.params.capacity_bytes


def test_fig17_two_panels():
    tables = get_experiment("fig17").run(MICRO)
    assert len(tables) == 2
    assert "DDR3-1867" in tables[0].title
    assert "64 cores" in tables[1].title


def test_ablation_registered_and_structured():
    tables = get_experiment("ablation").run(MICRO)
    assert len(tables) == 5
    ladder = tables[0]
    assert ladder.rows[0][0] == "GS-DRRIP"
    render_caches = tables[4]
    # Larger render caches filter more accesses away from the LLC.
    accesses = render_caches.column("LLC accesses")
    assert accesses[0] > accesses[-1]


def test_extensions_registered():
    tables = get_experiment("extensions").run(MICRO)
    assert len(tables) == 2
    bypass = tables[0]
    assert any("BYPASS" in str(row[0]) for row in bypass.rows)


def test_timing_models_cross_validation():
    table = get_experiment("timing").run(MICRO)[0]
    assert table.headers[1] == "Windowed model"
    # Belady must be the fastest policy under BOTH timing models.
    belady = table.rows[-1]
    assert belady[0] == "BELADY+UCD"
    for other in table.rows[:-1]:
        assert belady[1] >= other[1]
        assert belady[2] >= other[2]
