"""DRRIP and set-dueling tests."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.config import CacheParams, KB, LLCConfig
from repro.core.drrip import DRRIPPolicy
from repro.core.dueling import (
    FOLLOWER,
    LEADER_A,
    LEADER_B,
    PolicySelector,
    leader_roles,
)
from repro.errors import ConfigError
from repro.sim.offline import simulate_trace
from repro.streams import Stream
from repro.trace import synth


class TestLeaderRoles:
    def test_leaders_are_minority(self):
        roles = leader_roles(1024)
        leaders = sum(1 for role in roles if role != FOLLOWER)
        assert leaders <= len(roles) // 8

    def test_equal_leader_counts(self):
        roles = leader_roles(1024)
        assert roles.count(LEADER_A) == roles.count(LEADER_B)
        assert roles.count(LEADER_A) > 0

    def test_duels_do_not_share_leaders(self):
        roles_0 = leader_roles(256, duel_index=0, num_duels=4)
        roles_1 = leader_roles(256, duel_index=1, num_duels=4)
        for set_index in range(256):
            if roles_0[set_index] != FOLLOWER:
                assert roles_1[set_index] == FOLLOWER

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            leader_roles(100)

    def test_rejects_bad_duel_index(self):
        with pytest.raises(ConfigError):
            leader_roles(256, duel_index=2, num_duels=2)


class TestPolicySelector:
    def test_starts_with_policy_a(self):
        assert PolicySelector().winner == LEADER_A

    def test_a_misses_swing_to_b(self):
        selector = PolicySelector(bits=4)
        selector.record_leader_miss(LEADER_A)
        assert selector.winner == LEADER_B

    def test_b_misses_swing_back(self):
        selector = PolicySelector(bits=4)
        selector.record_leader_miss(LEADER_A)
        selector.record_leader_miss(LEADER_B)
        selector.record_leader_miss(LEADER_B)
        assert selector.winner == LEADER_A

    def test_follower_misses_ignored(self):
        selector = PolicySelector(bits=4)
        selector.record_leader_miss(FOLLOWER)
        assert selector.counter.value == selector.midpoint


class TestDRRIP:
    def test_leaders_use_fixed_insertion(self):
        policy = DRRIPPolicy()
        geometry = CacheGeometry(num_sets=64, ways=4)
        llc = LLC(geometry, policy)
        srrip_leader = policy.roles.index(1)
        brrip_leader = policy.roles.index(2)
        llc.access(srrip_leader * 64, Stream.Z)
        assert policy.get_rrpv(srrip_leader, 0) == 2
        llc.access(brrip_leader * 64, Stream.Z)
        assert policy.get_rrpv(brrip_leader, 0) == 3

    def test_four_bit_variant(self):
        policy = DRRIPPolicy(rrpv_bits=4)
        assert policy.max_rrpv == 15
        assert policy.name == "drrip4"
        geometry = CacheGeometry(num_sets=64, ways=4)
        llc = LLC(geometry, policy)
        srrip_leader = policy.roles.index(1)
        llc.access(srrip_leader * 64, Stream.Z)
        assert policy.get_rrpv(srrip_leader, 0) == 14

    def test_duel_converges_to_brrip_on_thrash(self):
        # A cyclic working set slightly larger than the cache: BRRIP
        # retains a fraction, SRRIP retains nothing.
        llc_config = LLCConfig(
            params=CacheParams(16 * KB, ways=4), banks=1, sample_period=8
        )
        blocks = (16 * KB // 64) * 2
        trace = synth.cyclic_scan(blocks, repetitions=20)
        drrip = simulate_trace(trace, "drrip", llc_config)
        srrip = simulate_trace(trace, "srrip", llc_config)
        brrip = simulate_trace(trace, "brrip", llc_config)
        assert brrip.misses < srrip.misses
        assert drrip.misses < srrip.misses  # duel found the winner

    def test_duel_tracks_srrip_on_recency_traffic(self):
        llc_config = LLCConfig(
            params=CacheParams(16 * KB, ways=4), banks=1, sample_period=8
        )
        trace = synth.scan_with_working_set(
            working_blocks=64, scan_blocks=512, rounds=10
        )
        drrip = simulate_trace(trace, "drrip", llc_config)
        brrip = simulate_trace(trace, "brrip", llc_config)
        srrip = simulate_trace(trace, "srrip", llc_config)
        best = min(srrip.misses, brrip.misses)
        # DRRIP lands near the better component (leader overhead aside).
        assert drrip.misses <= best * 1.10
