"""gspc-sim CLI tests."""

import logging
import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.streams import Stream
from repro.trace.io import save_trace
from repro.trace.record import TraceBuilder


@pytest.fixture
def tiny_trace_path(tmp_path):
    builder = TraceBuilder({"name": "cli-test", "scale": 0.125})
    rng = np.random.default_rng(0)
    for _ in range(3000):
        builder.append(int(rng.integers(0, 4096)) * 64, Stream(int(rng.integers(0, 8))))
    path = tmp_path / "trace.npz"
    save_trace(builder.build(), path)
    return str(path)


def test_list_policies(capsys):
    assert main(["--list-policies"]) == 0
    out = capsys.readouterr().out
    assert "gspc" in out and "drrip" in out


def test_simulate_saved_trace(tiny_trace_path, capsys):
    assert main(
        ["--trace", tiny_trace_path, "--policies", "drrip", "lru"]
    ) == 0
    out = capsys.readouterr().out
    assert "Offline simulation" in out
    assert "DRRIP" in out and "LRU" in out


def test_timing_flag(tiny_trace_path, capsys):
    assert main(
        ["--trace", tiny_trace_path, "--policies", "lru", "--timing"]
    ) == 0
    assert "Frame timing" in capsys.readouterr().out


def test_app_synthesis(capsys):
    assert main(
        ["--app", "AssnCreed", "--scale", "0.0625", "--policies", "lru"]
    ) == 0
    assert "AssnCreed#f0" in capsys.readouterr().out


def test_save_trace(tmp_path, capsys):
    out_path = tmp_path / "saved.npz"
    assert main(
        ["--app", "DMC", "--scale", "0.0625", "--save-trace", str(out_path)]
    ) == 0
    assert out_path.exists()


def test_unknown_policy_errors(tiny_trace_path, capsys):
    assert main(["--trace", tiny_trace_path, "--policies", "nonsense"]) == 1
    assert "error:" in capsys.readouterr().err


def test_missing_trace_errors(capsys):
    assert main(["--trace", "/nonexistent/file.npz"]) == 1
    assert "error:" in capsys.readouterr().err


def test_unknown_app_errors(capsys):
    assert main(["--app", "Quake"]) == 1


def test_negative_jobs_rejected(tiny_trace_path, capsys):
    assert main(["--trace", tiny_trace_path, "--jobs", "-3"]) == 2
    assert "--jobs must be >= 0" in capsys.readouterr().err


def test_jobs_two_matches_serial_table(tiny_trace_path, capsys):
    policies = ["--policies", "drrip", "lru", "nru"]
    assert main(["--trace", tiny_trace_path, *policies]) == 0
    serial = capsys.readouterr().out
    assert main(["--trace", tiny_trace_path, *policies, "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel.replace(
        "parallel: 3 policies over 2 workers\n", ""
    ) == serial


def test_jobs_manifest_has_parallel_section(tiny_trace_path, tmp_path):
    out = tmp_path / "m"
    assert main(
        ["--trace", tiny_trace_path, "--policies", "drrip", "lru",
         "--jobs", "2", "--metrics-out", str(out)]
    ) == 0
    import json

    manifests = [json.loads((out / f).read_text()) for f in os.listdir(out)]
    for manifest in manifests:
        assert manifest["parallel"]["workers"] == 2
        assert manifest["parallel"]["jobs"] == 2
        assert manifest["events"]["sample_period"] >= 1


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.policies == ["drrip", "gspc+ucd"]
    assert args.llc_mb == 8
    assert args.metrics_out is None
    assert args.log_level is None  # resolved via $REPRO_LOG_LEVEL
    assert not args.verbose
    assert args.engine == "auto"


def test_unknown_engine_exits_2(tiny_trace_path, capsys):
    # argparse rejects values outside its choices with usage + exit 2.
    with pytest.raises(SystemExit) as excinfo:
        main(["--trace", tiny_trace_path, "--engine", "turbo"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_engine_fast_rejects_uncovered_policy(tiny_trace_path, capsys):
    assert main(
        [
            "--trace", tiny_trace_path,
            "--policies", "gspc+bypass",
            "--engine", "fast",
        ]
    ) == 1
    err = capsys.readouterr().err
    assert "not covered by the fast engine" in err
    # The covered list is derived from the registry, not hardcoded.
    assert "gspc" in err


def test_engine_auto_falls_back_for_uncovered_policy(tiny_trace_path, capsys):
    assert main(
        [
            "--trace", tiny_trace_path,
            "--policies", "gspc+bypass",
            "--engine", "auto",
        ]
    ) == 0
    assert "GSPC+BYPASS" in capsys.readouterr().out.upper()


def test_engine_fast_matches_reference_table(tiny_trace_path, capsys):
    policies = ["--policies", "drrip", "nru", "belady"]
    assert main(
        ["--trace", tiny_trace_path, *policies, "--engine", "reference"]
    ) == 0
    reference = capsys.readouterr().out
    assert main(
        ["--trace", tiny_trace_path, *policies, "--engine", "fast"]
    ) == 0
    assert capsys.readouterr().out == reference


def test_engine_recorded_in_manifest(tiny_trace_path, tmp_path):
    out = tmp_path / "m"
    assert main(
        ["--trace", tiny_trace_path, "--policies", "drrip", "gspc",
         "--metrics-out", str(out)]
    ) == 0
    import json

    by_policy = {}
    for name in os.listdir(out):
        manifest = json.loads((out / name).read_text())
        by_policy[manifest["policy"]] = manifest
    # Telemetry (--metrics-out) keeps the observer, so auto resolves to
    # the reference engine for every policy; the field is still emitted.
    assert by_policy["drrip"]["engine"] == "reference"
    assert by_policy["gspc"]["engine"] == "reference"


def test_engine_fast_manifest_records_fast(tiny_trace_path, tmp_path):
    out = tmp_path / "m"
    assert main(
        ["--trace", tiny_trace_path, "--policies", "drrip",
         "--engine", "fast", "--metrics-out", str(out)]
    ) == 0
    import json

    [name] = os.listdir(out)
    manifest = json.loads((out / name).read_text())
    assert manifest["engine"] == "fast"
    assert manifest["events"] is None  # fast kernels have no observer


def test_trace_out_writes_valid_chrome_trace(tiny_trace_path, tmp_path):
    from repro.obs.traceexport import load_trace_file, validate_trace

    trace_path = str(tmp_path / "run.trace.json")
    assert main(
        ["--trace", tiny_trace_path, "--policies", "drrip", "lru",
         "--jobs", "2", "--trace-out", trace_path]
    ) == 0
    trace = load_trace_file(trace_path)
    assert validate_trace(trace) == []
    assert trace["metadata"]["run_id"].startswith("gspc-sim-")
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert spans, "no span events exported"
    # One root "sim" span per policy, each stamped with its job id.
    roots = [e for e in spans if e["name"] == "sim"]
    assert {e["args"]["job_id"] for e in roots} == {
        "sim:drrip", "sim:lru",
    }
    assert {e["args"]["run_id"] for e in spans} == {
        trace["metadata"]["run_id"]
    }


def test_trace_sample_must_be_positive(tiny_trace_path, capsys):
    assert main(
        ["--trace", tiny_trace_path, "--trace-sample", "0"]
    ) == 2
    assert "--trace-sample must be >= 1" in capsys.readouterr().err


def test_metrics_text_dump(tiny_trace_path, tmp_path):
    metrics_path = str(tmp_path / "metrics.prom")
    assert main(
        ["--trace", tiny_trace_path, "--policies", "drrip",
         "--metrics-text", metrics_path]
    ) == 0
    with open(metrics_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert "# TYPE repro_sim_policies counter" in text
    assert "repro_sim_misses_drrip" in text
    assert 'run_id="gspc-sim-' in text


def test_verbose_sets_debug_level(tiny_trace_path):
    assert main(
        ["--trace", tiny_trace_path, "--policies", "lru", "--verbose"]
    ) == 0
    assert logging.getLogger("repro").level == logging.DEBUG


def test_bad_log_level_errors(tiny_trace_path, capsys):
    assert main(
        ["--trace", tiny_trace_path, "--log-level", "CHATTY"]
    ) == 1
    assert "error:" in capsys.readouterr().err
