"""Unit tests for benchmarks/check_regression.py.

Covers the existing throughput / sweep-overhead / fastsim gates, the
new serve-load gate, and — the regression this file exists for — that
flag combinations which would silently skip a requested gate are usage
errors (exit code 2), not silent no-ops.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def write_json(path, data) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    return str(path)


@pytest.fixture
def throughput_pair(tmp_path):
    baseline = write_json(
        tmp_path / "baseline.json",
        {"accesses_per_second": {"drrip": 1000.0, "gspc": 800.0}},
    )
    report = write_json(
        tmp_path / "report.json",
        {"accesses_per_second": {"drrip": 990.0, "gspc": 820.0}},
    )
    return baseline, report


# -- existing gates -----------------------------------------------------------

def test_throughput_within_threshold_passes(throughput_pair, capsys):
    baseline, report = throughput_pair
    assert check_regression.main(
        ["--report", report, "--baseline", baseline]
    ) == 0
    assert "all policies within" in capsys.readouterr().out


def test_throughput_drop_fails(tmp_path, throughput_pair, capsys):
    baseline, _ = throughput_pair
    report = write_json(
        tmp_path / "slow.json",
        {"accesses_per_second": {"drrip": 500.0, "gspc": 820.0}},
    )
    assert check_regression.main(
        ["--report", report, "--baseline", baseline]
    ) == 1
    assert "below" in capsys.readouterr().err


def test_missing_policy_fails(tmp_path, throughput_pair, capsys):
    baseline, _ = throughput_pair
    report = write_json(
        tmp_path / "partial.json", {"accesses_per_second": {"drrip": 1000.0}}
    )
    assert check_regression.main(
        ["--report", report, "--baseline", baseline]
    ) == 1
    assert "missing from report" in capsys.readouterr().err


def test_update_rewrites_baseline(tmp_path, throughput_pair):
    _, report = throughput_pair
    baseline = str(tmp_path / "new-baseline.json")
    assert check_regression.main(
        ["--report", report, "--baseline", baseline, "--update"]
    ) == 0
    with open(baseline, encoding="utf-8") as handle:
        assert json.load(handle)["accesses_per_second"]["drrip"] == 990.0


def test_sweep_only_gates_overhead(tmp_path, capsys):
    good = write_json(
        tmp_path / "sweep.json",
        {"overhead_fraction": 0.02, "bare_min": 1.0, "sweep_min": 1.02},
    )
    assert check_regression.main(
        ["--sweep-only", "--sweep-report", good]
    ) == 0
    bad = write_json(
        tmp_path / "sweep-bad.json",
        {"overhead_fraction": 0.5, "bare_min": 1.0, "sweep_min": 1.5},
    )
    assert check_regression.main(
        ["--sweep-only", "--sweep-report", bad]
    ) == 1
    assert "exceeds" in capsys.readouterr().err


def test_sweep_tracing_overhead_gates(tmp_path, capsys):
    report = write_json(
        tmp_path / "sweep.json",
        {
            "overhead_fraction": 0.01,
            "traced_overhead_fraction": 0.4,
            "bare_min": 1.0,
            "sweep_min": 1.01,
            "traced_min": 1.41,
        },
    )
    assert check_regression.main(
        ["--sweep-only", "--sweep-report", report]
    ) == 1
    assert "tracing overhead" in capsys.readouterr().err


def _fastsim_report(rate: float, speedup: float = 5.0) -> dict:
    return {
        "workloads": {
            "DMC": {
                "results": {
                    "drrip": {
                        "fast_accesses_per_second": rate,
                        "speedup": speedup,
                    }
                }
            }
        }
    }


def test_fastsim_gate_passes_and_fails(tmp_path, throughput_pair, capsys):
    baseline, report = throughput_pair
    fast_base = write_json(
        tmp_path / "fast-base.json", _fastsim_report(1000.0)
    )
    fast_ok = write_json(tmp_path / "fast-ok.json", _fastsim_report(950.0))
    assert check_regression.main(
        ["--report", report, "--baseline", baseline,
         "--fastsim-report", fast_ok, "--fastsim-baseline", fast_base]
    ) == 0
    fast_bad = write_json(tmp_path / "fast-bad.json", _fastsim_report(100.0))
    assert check_regression.main(
        ["--report", report, "--baseline", baseline,
         "--fastsim-report", fast_bad, "--fastsim-baseline", fast_base]
    ) == 1
    assert "fastsim DMC/drrip" in capsys.readouterr().err


# -- the serve-load gate ------------------------------------------------------

def _serve_report(rps: float, p99: float, p50: float = 0.002) -> dict:
    return {"throughput_rps": rps, "p99_seconds": p99, "p50_seconds": p50}


def test_serve_gate_passes_within_threshold(tmp_path, capsys):
    baseline = write_json(
        tmp_path / "serve-base.json", _serve_report(1000.0, 0.004)
    )
    report = write_json(
        tmp_path / "serve-now.json", _serve_report(900.0, 0.0045)
    )
    assert check_regression.main(
        ["--serve-only", "--serve-report", report,
         "--serve-baseline", baseline]
    ) == 0
    assert "serve load within" in capsys.readouterr().out


def test_serve_gate_fails_on_throughput_drop(tmp_path, capsys):
    baseline = write_json(
        tmp_path / "serve-base.json", _serve_report(1000.0, 0.004)
    )
    report = write_json(
        tmp_path / "serve-now.json", _serve_report(500.0, 0.004)
    )
    assert check_regression.main(
        ["--serve-only", "--serve-report", report,
         "--serve-baseline", baseline]
    ) == 1
    assert "throughput_rps" in capsys.readouterr().err


def test_serve_gate_fails_on_p99_rise_but_not_p50(tmp_path, capsys):
    baseline = write_json(
        tmp_path / "serve-base.json", _serve_report(1000.0, 0.004)
    )
    # p50 doubles (informational only), p99 rises past the limit.
    report = write_json(
        tmp_path / "serve-now.json", _serve_report(1000.0, 0.006, p50=0.004)
    )
    assert check_regression.main(
        ["--serve-only", "--serve-report", report,
         "--serve-baseline", baseline]
    ) == 1
    err = capsys.readouterr().err
    assert "p99_seconds" in err and "p50_seconds" not in err


def test_serve_gate_rejects_reports_missing_metrics(tmp_path, capsys):
    baseline = write_json(
        tmp_path / "serve-base.json", _serve_report(1000.0, 0.004)
    )
    report = write_json(tmp_path / "serve-now.json", {"p99_seconds": 0.004})
    with pytest.raises(SystemExit, match="no numeric throughput_rps"):
        check_regression.main(
            ["--serve-only", "--serve-report", report,
             "--serve-baseline", baseline]
        )
    capsys.readouterr()


def test_serve_gate_composes_with_main_table(tmp_path, throughput_pair, capsys):
    baseline, report = throughput_pair
    serve_base = write_json(
        tmp_path / "serve-base.json", _serve_report(1000.0, 0.004)
    )
    serve_now = write_json(
        tmp_path / "serve-now.json", _serve_report(980.0, 0.004)
    )
    assert check_regression.main(
        ["--report", report, "--baseline", baseline,
         "--serve-report", serve_now, "--serve-baseline", serve_base]
    ) == 0
    capsys.readouterr()


# -- strict mode validation: bad combinations exit 2 --------------------------

@pytest.mark.parametrize(
    "argv",
    [
        ["--sweep-only"],
        ["--serve-only"],
        ["--sweep-only", "--serve-only"],
        ["--update", "--sweep-only"],
        ["--update", "--sweep-report", "x.json"],
        ["--update", "--fastsim-report", "x.json"],
        ["--update", "--serve-report", "x.json"],
        ["--sweep-only", "--sweep-report", "s.json",
         "--fastsim-report", "x.json"],
        ["--sweep-only", "--sweep-report", "s.json",
         "--serve-report", "x.json"],
        ["--serve-only", "--serve-report", "s.json",
         "--sweep-report", "x.json"],
        ["--serve-only", "--serve-report", "s.json",
         "--fastsim-report", "x.json"],
    ],
)
def test_bad_mode_combinations_exit_2(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        check_regression.main(argv)
    assert excinfo.value.code == 2
    capsys.readouterr()
