"""Golden regression tests.

Every policy's exact miss count on a fixed, deterministic synthetic
trace and a fixed small LLC.  These pin the *behaviour* of the whole
stack — trace synthesis, geometry, sampling, counters, victim
selection — so that any semantic change to a policy or to the engine
shows up as a diff here even if all invariant tests still pass.

If a change is intentional, regenerate with::

    python tests/test_golden_regression.py

which prints the updated table to paste in.
"""

from __future__ import annotations

import pytest

from repro.config import CacheParams, KB, LLCConfig
from repro.core.registry import available_policies
from repro.sim.offline import simulate_trace
from repro.trace import synth

LLC = LLCConfig(params=CacheParams(32 * KB, ways=8), banks=2, sample_period=8)


def _golden_trace():
    base = synth.producer_consumer(
        num_blocks=256, rounds=4, consume_fraction=0.75, gap_blocks=1024
    )
    tail = synth.scan_with_working_set(
        working_blocks=64, scan_blocks=512, rounds=4
    )
    return base.concat(tail)


#: policy -> exact miss count on the golden trace (regenerate: see above).
GOLDEN_MISSES = {
    "belady": 6400,
    "bip": 6542,
    "brrip": 6618,
    "dip": 7869,
    "drrip": 7753,
    "drrip4": 7719,
    "gs-drrip": 7236,
    "gs-drrip4": 6881,
    "gspc": 7862,
    "gspc+bypass": 7851,
    "gspztc": 7921,
    "gspztc+tse": 7921,
    "lru": 7569,
    "nru": 7569,
    "ship-mem": 8188,
    "srrip": 7280,
}


def test_golden_table_covers_every_policy():
    assert set(GOLDEN_MISSES) == set(available_policies())


@pytest.mark.parametrize("policy", sorted(GOLDEN_MISSES))
def test_golden_miss_counts(policy):
    result = simulate_trace(_golden_trace(), policy, LLC)
    assert result.misses == GOLDEN_MISSES[policy], (
        f"{policy}: got {result.misses}, golden {GOLDEN_MISSES[policy]} — "
        "intentional behaviour change? regenerate the table "
        "(python tests/test_golden_regression.py)"
    )


def test_golden_belady_is_minimum():
    assert GOLDEN_MISSES["belady"] == min(GOLDEN_MISSES.values())


if __name__ == "__main__":
    trace = _golden_trace()
    print("GOLDEN_MISSES = {")
    for name in sorted(available_policies()):
        misses = simulate_trace(trace, name, LLC).misses
        print(f'    "{name}": {misses},')
    print("}")
