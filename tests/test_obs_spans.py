"""Span nesting, aggregation, and per-span event recording."""

import os

import pytest

from repro.errors import ObservabilityError
from repro.obs.spans import SpanRecorder, default_recorder, span
from repro.obs.tracing import TraceContext


class FakeClock:
    """Deterministic perf_counter: advances by `step` per reading."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def test_single_span_times_body():
    recorder = SpanRecorder(clock=FakeClock(step=1.0))
    with recorder.span("replay"):
        pass
    # Clock read at entry (0.0) and exit (1.0).
    assert recorder.seconds("replay") == pytest.approx(1.0)
    assert recorder.count("replay") == 1


def test_nesting_builds_paths():
    recorder = SpanRecorder(clock=FakeClock())
    with recorder.span("run"):
        with recorder.span("setup"):
            pass
        with recorder.span("replay"):
            pass
    flat = recorder.flat()
    assert set(flat) == {"run", "run/setup", "run/replay"}
    # Children accumulate under the parent, never as top-level entries.
    assert recorder.seconds("setup") == 0.0
    assert recorder.seconds("run", "setup") > 0.0


def test_repeated_entry_aggregates():
    recorder = SpanRecorder(clock=FakeClock(step=0.5))
    for _ in range(3):
        with recorder.span("replay"):
            pass
    assert recorder.count("replay") == 3
    assert recorder.seconds("replay") == pytest.approx(1.5)


def test_to_dict_tree_shape():
    recorder = SpanRecorder(clock=FakeClock())
    with recorder.span("run"):
        with recorder.span("replay"):
            pass
    tree = recorder.to_dict()
    assert tree["run"]["count"] == 1
    assert tree["run"]["children"]["replay"]["count"] == 1
    assert tree["run"]["children"]["replay"]["children"] == {}


def test_exception_still_closes_span():
    recorder = SpanRecorder(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with recorder.span("boom"):
            raise RuntimeError()
    assert recorder.depth == 0
    assert recorder.count("boom") == 1


def test_invalid_names_rejected():
    recorder = SpanRecorder()
    with pytest.raises(ObservabilityError):
        with recorder.span(""):
            pass
    with pytest.raises(ObservabilityError):
        with recorder.span("a/b"):
            pass


def test_reset_refuses_open_spans():
    recorder = SpanRecorder(clock=FakeClock())
    with recorder.span("open"):
        with pytest.raises(ObservabilityError):
            recorder.reset()
    recorder.reset()
    assert recorder.flat() == {}


def test_module_level_span_uses_default_recorder():
    before = default_recorder().count("module-span-test")
    with span("module-span-test"):
        pass
    assert default_recorder().count("module-span-test") == before + 1


# -- count / max aggregates ---------------------------------------------------

def test_max_seconds_tracks_longest_entry():
    clock = FakeClock(step=0.0)
    recorder = SpanRecorder(clock=clock)
    for duration in (1.0, 5.0, 2.0):
        clock.step = duration / 2  # entry + exit reads bracket the body
        with recorder.span("replay"):
            pass
    assert recorder.count("replay") == 3
    assert recorder.max_seconds("replay") == pytest.approx(2.5)
    flat = recorder.flat()["replay"]
    assert set(flat) == {"count", "seconds", "max_seconds"}
    assert flat["max_seconds"] == pytest.approx(2.5)
    tree = recorder.to_dict()
    assert tree["replay"]["max_seconds"] == pytest.approx(2.5)


# -- event recording ----------------------------------------------------------

def test_events_off_by_default():
    recorder = SpanRecorder(clock=FakeClock())
    with recorder.span("replay"):
        pass
    assert not recorder.events_enabled
    assert recorder.events_payload() == []


def test_events_record_shape_and_context():
    ctx = TraceContext.new_run("test").child("sim:x", attempt=2)
    recorder = SpanRecorder(record_events=True, context=ctx)
    with recorder.span("run"):
        with recorder.span("replay"):
            pass
    events = recorder.events_payload()
    assert [e["path"] for e in events] == ["run/replay", "run"]  # close order
    for event in events:
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 0.0
        assert event["ts"] > 0.0  # wall-clock anchored
        assert event["ctx"] == {
            "run_id": ctx.run_id, "job_id": "sim:x", "attempt": 2,
        }


def test_event_sampling_keeps_every_nth():
    recorder = SpanRecorder(record_events=True, sample_period=3)
    for _ in range(7):
        with recorder.span("replay"):
            pass
    # First span always kept, then every third: spans 1, 4, 7.
    assert len(recorder.events_payload()) == 3
    assert recorder.count("replay") == 7  # aggregates see everything


def test_event_buffer_is_bounded():
    recorder = SpanRecorder(record_events=True, max_events=2)
    for _ in range(5):
        with recorder.span("replay"):
            pass
    assert len(recorder.events_payload()) == 2
    assert recorder.dropped_events == 3


def test_enable_events_validates_knobs():
    recorder = SpanRecorder()
    with pytest.raises(ObservabilityError):
        recorder.enable_events(max_events=0)
    with pytest.raises(ObservabilityError):
        recorder.enable_events(sample_period=0)


def test_disable_events_forgets_buffer_keeps_aggregates():
    recorder = SpanRecorder(record_events=True)
    with recorder.span("replay"):
        pass
    recorder.disable_events()
    assert recorder.events_payload() == []
    assert not recorder.events_enabled
    assert recorder.count("replay") == 1


# -- span-leak regression (CLI exception paths) -------------------------------

def test_abandon_open_spans_closes_leaks_and_reset_succeeds():
    """A run that bails out mid-span (the CLI exception path) must be
    able to abandon the open spans so a later reset() cannot raise."""
    recorder = SpanRecorder(clock=FakeClock())
    outer = recorder.span("sweep")
    outer.__enter__()
    inner = recorder.span("run")
    inner.__enter__()
    # ...exception unwinds without ever calling __exit__...
    assert recorder.depth == 2
    assert recorder.abandon_open_spans() == 2
    assert recorder.depth == 0
    assert recorder.count("sweep") == 1
    assert recorder.count("sweep", "run") == 1
    recorder.reset()  # must not raise ObservabilityError
    assert recorder.flat() == {}
    assert recorder.abandon_open_spans() == 0  # idempotent on clean state


def test_close_after_abandon_is_noop():
    recorder = SpanRecorder(clock=FakeClock())
    guard = recorder.span("orphan")
    guard.__enter__()
    recorder.abandon_open_spans()
    guard.__exit__(None, None, None)  # late unwind must not double-close
    assert recorder.count("orphan") == 1
