"""Span nesting and aggregation."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.spans import SpanRecorder, default_recorder, span


class FakeClock:
    """Deterministic perf_counter: advances by `step` per reading."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def test_single_span_times_body():
    recorder = SpanRecorder(clock=FakeClock(step=1.0))
    with recorder.span("replay"):
        pass
    # Clock read at entry (0.0) and exit (1.0).
    assert recorder.seconds("replay") == pytest.approx(1.0)
    assert recorder.count("replay") == 1


def test_nesting_builds_paths():
    recorder = SpanRecorder(clock=FakeClock())
    with recorder.span("run"):
        with recorder.span("setup"):
            pass
        with recorder.span("replay"):
            pass
    flat = recorder.flat()
    assert set(flat) == {"run", "run/setup", "run/replay"}
    # Children accumulate under the parent, never as top-level entries.
    assert recorder.seconds("setup") == 0.0
    assert recorder.seconds("run", "setup") > 0.0


def test_repeated_entry_aggregates():
    recorder = SpanRecorder(clock=FakeClock(step=0.5))
    for _ in range(3):
        with recorder.span("replay"):
            pass
    assert recorder.count("replay") == 3
    assert recorder.seconds("replay") == pytest.approx(1.5)


def test_to_dict_tree_shape():
    recorder = SpanRecorder(clock=FakeClock())
    with recorder.span("run"):
        with recorder.span("replay"):
            pass
    tree = recorder.to_dict()
    assert tree["run"]["count"] == 1
    assert tree["run"]["children"]["replay"]["count"] == 1
    assert tree["run"]["children"]["replay"]["children"] == {}


def test_exception_still_closes_span():
    recorder = SpanRecorder(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with recorder.span("boom"):
            raise RuntimeError()
    assert recorder.depth == 0
    assert recorder.count("boom") == 1


def test_invalid_names_rejected():
    recorder = SpanRecorder()
    with pytest.raises(ObservabilityError):
        with recorder.span(""):
            pass
    with pytest.raises(ObservabilityError):
        with recorder.span("a/b"):
            pass


def test_reset_refuses_open_spans():
    recorder = SpanRecorder(clock=FakeClock())
    with recorder.span("open"):
        with pytest.raises(ObservabilityError):
            recorder.reset()
    recorder.reset()
    assert recorder.flat() == {}


def test_module_level_span_uses_default_recorder():
    before = default_recorder().count("module-span-test")
    with span("module-span-test"):
        pass
    assert default_recorder().count("module-span-test") == before + 1
