"""Next-use precomputation tests."""

import numpy as np

from repro.core.base import NEVER
from repro.sim.future import next_use_indices, trace_next_use
from repro.streams import Stream

from helpers import make_trace


def _reference(blocks):
    """O(n^2) reference implementation."""
    n = len(blocks)
    out = []
    for i in range(n):
        nxt = NEVER
        for j in range(i + 1, n):
            if blocks[j] == blocks[i]:
                nxt = j
                break
        out.append(nxt)
    return out


def test_simple_sequence():
    blocks = np.array([1, 2, 1, 3, 2, 1], dtype=np.uint64)
    assert next_use_indices(blocks).tolist() == [2, 4, 5, NEVER, NEVER, NEVER]


def test_matches_reference_on_random_input():
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 20, size=200).astype(np.uint64)
    assert next_use_indices(blocks).tolist() == _reference(blocks.tolist())


def test_all_unique():
    blocks = np.arange(50, dtype=np.uint64)
    assert (next_use_indices(blocks) == NEVER).all()


def test_all_same_block():
    blocks = np.zeros(5, dtype=np.uint64)
    assert next_use_indices(blocks).tolist() == [1, 2, 3, 4, NEVER]


def test_empty_and_single():
    assert next_use_indices(np.empty(0, dtype=np.uint64)).size == 0
    assert next_use_indices(np.zeros(1, dtype=np.uint64)).tolist() == [NEVER]


def test_trace_next_use_applies_block_granularity():
    # Two addresses in the same 64 B block are the same "block".
    trace = make_trace([(0, Stream.Z), (0, Stream.TEXTURE)])
    assert trace_next_use(trace).tolist() == [1, NEVER]
