"""Render-pass and draw-call description tests."""

from repro.workloads.passes import (
    DrawCall,
    Frame,
    RenderPass,
    TextureBinding,
    clip_region,
    full_screen_region,
)
from repro.workloads.surfaces import AddressSpace, allocate_surface, allocate_texture


def _surface(width=64, height=64):
    return allocate_surface(AddressSpace(), "s", width, height)


def test_full_screen_region():
    surface = _surface(64, 32)
    assert full_screen_region(surface) == (0, 0, 16, 8)


def test_clip_region():
    surface = _surface(64, 64)  # 16 x 16 tiles
    assert clip_region((-4, 2, 99, 10), surface) == (0, 2, 16, 10)


def test_draw_tile_count():
    assert DrawCall(region=(0, 0, 4, 3)).tile_count() == 12
    assert DrawCall(region=(5, 5, 5, 9)).tile_count() == 0
    assert DrawCall(region=(5, 5, 3, 9)).tile_count() == 0


def test_texture_binding_dynamic_flag():
    space = AddressSpace()
    static = TextureBinding(source=allocate_texture(space, "t", 32, 32))
    dynamic = TextureBinding(source=allocate_surface(space, "s", 32, 32))
    assert not static.is_dynamic
    assert dynamic.is_dynamic


def test_frame_draw_count():
    surface = _surface()
    frame = Frame(
        name="f",
        width_px=64,
        height_px=64,
        passes=(
            RenderPass("a", surface, draws=(DrawCall((0, 0, 1, 1)),)),
            RenderPass(
                "b",
                surface,
                draws=(DrawCall((0, 0, 1, 1)), DrawCall((0, 0, 2, 2))),
            ),
        ),
    )
    assert frame.num_draws == 3
