"""Cache-geometry tests: indexing, banking, sample-set selection."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.config import LLCConfig
from repro.errors import ConfigError


def test_paper_geometry_sample_ratio():
    geometry = CacheGeometry.from_config(LLCConfig())
    # "sixteen sets in every 1024 LLC sets" = 1/64.
    assert len(geometry.sample_sets) == geometry.num_sets // 64


def test_sample_sets_spread_over_banks():
    geometry = CacheGeometry.from_config(LLCConfig())
    banks = {geometry.bank_of_set[s] for s in geometry.sample_sets}
    assert banks == set(range(geometry.banks))


def test_address_decomposition():
    geometry = CacheGeometry(num_sets=64, ways=4, block_bytes=64)
    address = (5 << 6) | 3          # block 5, offset 3
    block = geometry.block_address(address)
    assert block == 5
    assert geometry.set_index(block) == 5
    assert geometry.tag(block) == 0
    far_block = geometry.block_address((64 * 7 + 5) * 64)
    assert geometry.set_index(far_block) == 5
    assert geometry.tag(far_block) == 7


def test_bank_interleaving_on_low_bits():
    geometry = CacheGeometry(num_sets=16, ways=2, banks=4)
    assert [geometry.bank_of_set[s] for s in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_sample_period_clamped_for_tiny_caches():
    geometry = CacheGeometry(num_sets=4, ways=2, sample_period=64)
    # Followers must remain the majority even at tiny sizes.
    assert 0 < len(geometry.sample_sets) < geometry.num_sets


def test_capacity():
    geometry = CacheGeometry(num_sets=64, ways=4, block_bytes=64)
    assert geometry.capacity_bytes == 64 * 4 * 64


def test_rejects_bad_geometry():
    with pytest.raises(ConfigError):
        CacheGeometry(num_sets=48, ways=4)  # sets not a power of two
    with pytest.raises(ConfigError):
        CacheGeometry(num_sets=16, ways=0)
    with pytest.raises(ConfigError):
        CacheGeometry(num_sets=4, ways=2, banks=8)  # banks > sets


def test_sampling_deterministic():
    a = CacheGeometry(num_sets=256, ways=4, sample_period=16)
    b = CacheGeometry(num_sets=256, ways=4, sample_period=16)
    assert a.sample_sets == b.sample_sets
