"""GSPZTC+TSE tests against Table 4 and the Figure-10 state machine."""

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.core.gspc_base import STATE_E0, STATE_E1, STATE_E2PLUS, STATE_RT
from repro.core.gspztc_tse import GSPZTCTSEPolicy
from repro.streams import Stream


def _bound(num_sets=16, ways=4, sample_period=8):
    policy = GSPZTCTSEPolicy()
    geometry = CacheGeometry(
        num_sets=num_sets, ways=ways, sample_period=sample_period
    )
    llc = LLC(geometry, policy)
    sample = geometry.sample_sets[0]
    follower = next(
        s for s in range(num_sets) if not geometry.is_sample_set[s]
    )
    return policy, llc, sample, follower


def _block_in(set_index, tag=0, num_sets=16):
    return (tag * num_sets + set_index) * 64


def _slot_of(policy, llc, address):
    block = address >> 6
    set_index = block & (llc.geometry.num_sets - 1)
    return policy._slot(set_index, llc.way_of(address))


class TestStateMachine:
    """The Figure-10 transitions: 00 -> 01 -> 10 (sticky), 11 = RT."""

    def test_tex_fill_enters_e0(self):
        policy, llc, _, follower = _bound()
        address = _block_in(follower)
        llc.access(address, Stream.TEXTURE)
        assert policy.state[_slot_of(policy, llc, address)] == STATE_E0

    def test_epoch_progression_on_hits(self):
        policy, llc, _, follower = _bound()
        address = _block_in(follower)
        llc.access(address, Stream.TEXTURE)
        llc.access(address, Stream.TEXTURE)
        assert policy.state[_slot_of(policy, llc, address)] == STATE_E1
        llc.access(address, Stream.TEXTURE)
        assert policy.state[_slot_of(policy, llc, address)] == STATE_E2PLUS
        llc.access(address, Stream.TEXTURE)
        assert policy.state[_slot_of(policy, llc, address)] == STATE_E2PLUS

    def test_rt_fill_enters_state_11(self):
        policy, llc, _, follower = _bound()
        address = _block_in(follower)
        llc.access(address, Stream.RT, is_write=True)
        assert policy.state[_slot_of(policy, llc, address)] == STATE_RT

    def test_consumption_restarts_at_e0(self):
        policy, llc, _, follower = _bound()
        address = _block_in(follower)
        llc.access(address, Stream.RT, is_write=True)
        llc.access(address, Stream.TEXTURE)
        assert policy.state[_slot_of(policy, llc, address)] == STATE_E0

    def test_rt_reacquisition_from_any_epoch(self):
        # "an existing render target object is reused by the DirectX
        # application for producing a new render target"
        policy, llc, _, follower = _bound()
        address = _block_in(follower)
        llc.access(address, Stream.TEXTURE)
        llc.access(address, Stream.TEXTURE)       # E1
        llc.access(address, Stream.RT, is_write=True)
        slot = _slot_of(policy, llc, address)
        assert policy.state[slot] == STATE_RT
        assert policy.rrpv[slot] == 0             # RT-hit RRPV rule


class TestSampleCounters:
    def test_tex_fill_increments_fill_e0(self):
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.TEXTURE)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["fill_e0"][bank] == 1

    def test_e0_hit_feeds_both_epoch_counters(self):
        # Table 4: "If state is 00 { HIT(0)++, FILL(1)++, state <- 01 }".
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.TEXTURE)
        llc.access(_block_in(sample), Stream.TEXTURE)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["hit_e0"][bank] == 1
        assert policy.counters["fill_e1"][bank] == 1

    def test_e1_hit_increments_hit_e1_only(self):
        policy, llc, sample, _ = _bound()
        for _ in range(3):
            llc.access(_block_in(sample), Stream.TEXTURE)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["hit_e1"][bank] == 1
        # E>=2 hits touch no epoch counters.
        llc.access(_block_in(sample), Stream.TEXTURE)
        assert policy.counters["hit_e1"][bank] == 1

    def test_consumption_counts_fill_e0(self):
        policy, llc, sample, _ = _bound()
        llc.access(_block_in(sample), Stream.RT, is_write=True)
        llc.access(_block_in(sample), Stream.TEXTURE)
        bank = llc.geometry.bank_of_set[sample]
        assert policy.counters["fill_e0"][bank] == 1


class TestFollowerRRPV:
    def test_e0_entry_uses_epoch0_probability(self):
        policy, llc, _, follower = _bound()
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["fill_e0"][bank] = 90
        policy.counters["hit_e0"][bank] = 1
        llc.access(_block_in(follower), Stream.TEXTURE)
        assert policy.get_rrpv(follower, llc.way_of(_block_in(follower))) == 3

    def test_e1_entry_uses_epoch1_probability(self):
        # Unlike DRRIP, a texture hit does NOT always promote to zero:
        # the E1 entry consults FILL(1)/HIT(1).
        policy, llc, _, follower = _bound()
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["fill_e1"][bank] = 90
        policy.counters["hit_e1"][bank] = 1
        address = _block_in(follower)
        llc.access(address, Stream.TEXTURE)       # fill (E0)
        llc.access(address, Stream.TEXTURE)       # hit -> E1 entry
        assert policy.get_rrpv(follower, llc.way_of(address)) == 3

    def test_e2_hit_promotes_to_zero(self):
        policy, llc, _, follower = _bound()
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["fill_e1"][bank] = 90   # would demote E1 entries
        address = _block_in(follower)
        for _ in range(3):
            llc.access(address, Stream.TEXTURE)
        assert policy.get_rrpv(follower, llc.way_of(address)) == 0

    def test_rt_fill_still_statically_protected(self):
        policy, llc, _, follower = _bound()
        llc.access(_block_in(follower), Stream.RT, is_write=True)
        assert policy.get_rrpv(follower, llc.way_of(_block_in(follower))) == 0

    def test_consumption_entry_uses_epoch0_probability(self):
        policy, llc, _, follower = _bound()
        bank = llc.geometry.bank_of_set[follower]
        policy.counters["fill_e0"][bank] = 90
        address = _block_in(follower)
        llc.access(address, Stream.RT, is_write=True)
        llc.access(address, Stream.TEXTURE)       # RT -> TEX
        assert policy.get_rrpv(follower, llc.way_of(address)) == 3
