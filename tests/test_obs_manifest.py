"""Run-manifest round trip, schema validation, and CLI emission."""

import dataclasses
import json
import os

import pytest

from repro.cli import main as sim_main
from repro.config import CacheParams, KB, LLCConfig
from repro.errors import ObservabilityError
from repro.gpu.timing import simulate_frame_timing
from repro.obs.events import SamplingObserver
from repro.obs.manifest import (
    SCHEMA_VERSION,
    check_manifest,
    experiment_manifest,
    load_manifest,
    main as manifest_main,
    manifest_filename,
    sim_manifest,
    timing_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.spans import SpanRecorder
from repro.sim.offline import simulate_trace
from repro.trace import synth

LLC = LLCConfig(params=CacheParams(32 * KB, ways=4), banks=1, sample_period=8)


@pytest.fixture
def sim_run():
    trace = synth.random_trace(3000, 1024, seed=11)
    observer = SamplingObserver(sample_period=4)
    spans = SpanRecorder()
    result = simulate_trace(trace, "drrip", LLC, observer=observer, spans=spans)
    return result, observer, spans


def test_sim_manifest_contents(sim_run):
    result, observer, spans = sim_run
    manifest = sim_manifest(
        result,
        config={"llc": dataclasses.asdict(LLC)},
        observer=observer,
        spans=spans,
    )
    assert manifest["schema_version"] == SCHEMA_VERSION
    assert manifest["kind"] == "offline-sim"
    assert manifest["policy"] == "drrip"
    assert manifest["trace"]["accesses"] == result.accesses
    assert manifest["metrics"]["misses"] == result.misses
    assert manifest["metrics"]["per_stream"]["TEX"]["hits"] >= 0
    phases = manifest["phases"]
    assert phases["setup_seconds"] >= 0
    assert phases["replay_seconds"] > 0
    assert phases["elapsed_seconds"] == pytest.approx(
        phases["setup_seconds"] + phases["replay_seconds"]
    )
    assert "replay" in phases["spans"]
    assert manifest["events"]["sample_period"] == 4
    assert validate_manifest(manifest) == []


def test_manifest_round_trip(tmp_path, sim_run):
    result, observer, spans = sim_run
    manifest = sim_manifest(result, config={}, observer=observer, spans=spans)
    path = write_manifest(manifest, str(tmp_path))
    assert os.path.basename(path) == manifest_filename(manifest)
    loaded = load_manifest(path)
    assert loaded == json.loads(json.dumps(manifest))
    assert validate_manifest(loaded) == []


def test_timing_manifest_valid():
    trace = synth.random_trace(3000, 1024, seed=2)
    timing = simulate_frame_timing(trace, "lru")
    manifest = timing_manifest(
        timing, config={}, trace_meta={"name": "synthetic"}
    )
    assert manifest["kind"] == "frame-timing"
    assert manifest["metrics"]["frame_ns"] > 0
    assert validate_manifest(manifest) == []


def test_experiment_manifest_valid():
    manifest = experiment_manifest(
        "fig01", "Motivation", config={"scale": 0.125}, elapsed_seconds=1.5
    )
    assert manifest["experiment"]["id"] == "fig01"
    assert manifest["phases"]["replay_seconds"] == 1.5
    assert validate_manifest(manifest) == []


def test_validation_catches_problems():
    assert validate_manifest({}) != []
    bad = {
        "schema_version": 99,
        "kind": "nonsense",
        "created_unix": 0,
        "config": {},
        "phases": {"setup_seconds": "x"},
    }
    problems = validate_manifest(bad)
    assert any("schema_version" in p for p in problems)
    assert any("kind" in p for p in problems)
    assert any("setup_seconds" in p for p in problems)
    with pytest.raises(ObservabilityError):
        check_manifest(bad)


def test_engine_field_validated(sim_run):
    result, observer, spans = sim_run
    manifest = sim_manifest(result, engine="fast")
    assert manifest["engine"] == "fast"
    assert validate_manifest(manifest) == []
    manifest["engine"] = "auto"  # only resolved engines may be recorded
    assert any("engine" in p for p in validate_manifest(manifest))
    without = sim_manifest(result)
    assert "engine" not in without
    assert validate_manifest(without) == []


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ObservabilityError):
        load_manifest(str(path))


def test_cli_emits_valid_manifest_per_policy(tmp_path, capsys):
    """The acceptance-criteria flow: gspc-sim --metrics-out DIR."""
    out_dir = tmp_path / "out"
    assert sim_main(
        [
            "--app", "AssnCreed", "--scale", "0.0625",
            "--policies", "drrip", "gspc+ucd",
            "--metrics-out", str(out_dir),
        ]
    ) == 0
    files = sorted(os.listdir(out_dir))
    assert len(files) == 2
    policies = set()
    for name in files:
        manifest = load_manifest(str(out_dir / name))
        assert validate_manifest(manifest) == []
        policies.add(manifest["policy"])
        assert manifest["config"]["llc"]["params"]["ways"] == 16
        assert manifest["trace"]["name"] == "AssnCreed#f0"
        assert manifest["metrics"]["accesses"] == manifest["trace"]["accesses"]
        assert manifest["phases"]["replay_seconds"] > 0
        assert manifest["events"]["sampled"]["events"]
    assert policies == {"drrip", "gspc+ucd"}


def test_cli_timing_manifest(tmp_path):
    out_dir = tmp_path / "out"
    assert sim_main(
        [
            "--app", "DMC", "--scale", "0.0625", "--policies", "lru",
            "--timing", "--metrics-out", str(out_dir),
        ]
    ) == 0
    kinds = set()
    for name in os.listdir(out_dir):
        manifest = load_manifest(str(out_dir / name))
        assert validate_manifest(manifest) == []
        kinds.add(manifest["kind"])
    assert kinds == {"offline-sim", "frame-timing"}


def test_manifest_cli_validator(tmp_path, capsys, sim_run):
    result, observer, spans = sim_run
    good = write_manifest(sim_manifest(result), str(tmp_path))
    assert manifest_main([good]) == 0
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert manifest_main([good, str(bad)]) == 1
