"""Characterization and table-rendering tests."""

import pytest

from repro.analysis.characterize import characterize_frame
from repro.analysis.tables import Table, format_table, mean
from repro.config import CacheParams, KB, LLCConfig
from repro.trace import synth


@pytest.fixture(scope="module")
def llc_config():
    return LLCConfig(params=CacheParams(16 * KB, ways=4), banks=1, sample_period=8)


def test_characterize_frame_fields(llc_config):
    trace = synth.producer_consumer(128, 4, consume_fraction=0.8, gap_blocks=64)
    char = characterize_frame(trace, "belady", llc_config)
    assert char.policy == "belady"
    assert char.trace_stats.accesses == len(trace)
    assert 0.0 <= char.tex_hit_rate <= 1.0
    assert 0.0 <= char.rt_consumption_rate <= 1.0
    assert char.tex_epochs.entered[0] > 0
    assert sum(char.stream_mix().values()) == pytest.approx(1.0)


def test_characterize_counts_inter_stream(llc_config):
    trace = synth.producer_consumer(64, 2, consume_fraction=1.0)
    char = characterize_frame(trace, "lru", llc_config)
    assert char.tex_inter_hits > 0


class TestTable:
    def test_render_contains_rows(self):
        table = Table("Demo", ["a", "b"])
        table.add_row("x", 1.23456)
        text = table.render()
        assert "Demo" in text
        assert "1.235" in text

    def test_column_extraction(self):
        table = Table("t", ["name", "value"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("value") == [1, 2]

    def test_none_rendered_as_dash(self):
        table = Table("t", ["x"])
        table.add_row(None)
        assert "-" in format_table(table)

    def test_notes_rendered(self):
        table = Table("t", ["x"], notes=["lower is better"])
        assert "note: lower is better" in table.render()

    def test_csv_escaping(self):
        table = Table("t", ["name", "v"])
        table.add_row('says "hi", ok', 1)
        csv = table.to_csv()
        assert '"says ""hi"", ok"' in csv
        assert csv.splitlines()[0] == "name,v"

    def test_csv_none_is_empty(self):
        table = Table("t", ["a", "b"])
        table.add_row(None, 2)
        assert table.to_csv().splitlines()[1] == ",2"


def test_mean_skips_none():
    assert mean([1.0, None, 3.0]) == 2.0
    assert mean([]) is None
