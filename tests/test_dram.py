"""DRAM timing-model tests."""

import pytest

from repro.config import DDR3_1600, DDR3_1867, DRAMConfig
from repro.gpu.dram import DRAMTimingModel


#: Blocks interleave over channels then banks; this stride returns to
#: channel 0 / bank 0 within the same DRAM row.
SAME_BANK_STRIDE = DDR3_1600.channels * DDR3_1600.banks_per_channel * 64


def test_row_hit_tracking():
    dram = DRAMTimingModel(DDR3_1600)
    dram.request(0)
    dram.request(SAME_BANK_STRIDE)  # same channel+bank, same row
    assert dram.total_row_hits == 1
    assert dram.row_hit_rate == pytest.approx(0.5)


def test_row_conflict_detected():
    dram = DRAMTimingModel(DDR3_1600)
    config = DDR3_1600
    dram.request(0)
    # Same channel and bank (block + channels*banks blocks), new row.
    far = config.row_bytes * config.channels * config.banks_per_channel
    dram.request(far)
    assert dram.total_row_hits == 0


def test_window_time_scales_with_requests():
    dram = DRAMTimingModel(DDR3_1600)
    for block in range(10):
        dram.request(block * 64)
    short = dram.drain_window_ns()
    for block in range(100):
        dram.request(block * 64)
    long = dram.drain_window_ns()
    assert long > short > 0.0


def test_drain_resets_window_but_keeps_rows_open():
    dram = DRAMTimingModel(DDR3_1600)
    dram.request(0)
    dram.drain_window_ns()
    assert dram.drain_window_ns() == 0.0
    dram.request(SAME_BANK_STRIDE)  # row stayed open across windows
    assert dram.total_row_hits == 1


def test_requests_spread_over_channels():
    dram = DRAMTimingModel(DDR3_1600)
    # Alternate channels: per-channel data time is half the total.
    for block in range(64):
        dram.request(block * 64)
    one_channel = DRAMTimingModel(DRAMConfig(channels=1))
    for block in range(64):
        one_channel.request(block * 64)
    assert dram.drain_window_ns() < one_channel.drain_window_ns()


def test_faster_part_is_faster():
    slow = DRAMTimingModel(DDR3_1600)
    fast = DRAMTimingModel(DDR3_1867)
    for block in range(0, 4096, 128):  # row misses
        slow.request(block * 64)
        fast.request(block * 64)
    assert fast.drain_window_ns() < slow.drain_window_ns()


def test_writeback_accounting():
    dram = DRAMTimingModel(DDR3_1600)
    dram.writeback()
    assert dram.total_requests == 1
    assert dram.drain_window_ns() > 0.0


def test_average_latency_between_hit_and_miss():
    dram = DRAMTimingModel(DDR3_1600)
    dram.request(0)
    dram.request(64)
    latency = dram.average_latency_ns()
    assert DDR3_1600.row_hit_ns() <= latency <= DDR3_1600.row_miss_ns()
