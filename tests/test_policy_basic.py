"""NRU, LRU, SRRIP, BRRIP behavioral tests."""

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.core.brrip import BIMODAL_PERIOD, BRRIPPolicy
from repro.core.lru import LRUPolicy
from repro.core.nru import NRUPolicy
from repro.core.srrip import SRRIPPolicy
from repro.streams import Stream


def _llc(policy, num_sets=1, ways=4):
    return LLC(CacheGeometry(num_sets=num_sets, ways=ways), policy)


def _fill_set(llc, count, start=0):
    for block in range(start, start + count):
        llc.access(block * 64, Stream.OTHER)


class TestNRU:
    def test_victimizes_lowest_unreferenced_way(self):
        llc = _llc(NRUPolicy(), ways=2)
        _fill_set(llc, 2)
        # Both referenced -> clear all, way 0 victimized.
        llc.access(2 * 64, Stream.OTHER)
        assert not llc.contains(0)
        assert llc.contains(64)

    def test_hit_protects_block_across_clear(self):
        llc = _llc(NRUPolicy(), ways=2)
        _fill_set(llc, 2)
        llc.access(2 * 64, Stream.OTHER)   # clears bits, evicts way 0
        llc.access(64, Stream.OTHER)       # hit: re-reference block 1
        llc.access(3 * 64, Stream.OTHER)   # must evict block 2, not block 1
        assert llc.contains(64)
        assert not llc.contains(2 * 64)


class TestLRU:
    def test_exact_lru_order(self):
        llc = _llc(LRUPolicy(), ways=3)
        _fill_set(llc, 3)
        llc.access(0, Stream.OTHER)       # order now: 1, 2, 0
        llc.access(3 * 64, Stream.OTHER)  # evicts block 1
        assert llc.contains(0)
        assert not llc.contains(64)
        assert llc.contains(2 * 64)

    def test_scan_evicts_everything(self):
        llc = _llc(LRUPolicy(), ways=4)
        _fill_set(llc, 4)
        _fill_set(llc, 4, start=4)
        for block in range(4):
            assert not llc.contains(block * 64)


class TestSRRIP:
    def test_insertion_rrpv_is_long(self):
        policy = SRRIPPolicy()
        llc = _llc(policy, ways=4)
        llc.access(0, Stream.Z)
        assert policy.get_rrpv(0, 0) == 2

    def test_hit_promotes_to_zero(self):
        policy = SRRIPPolicy()
        llc = _llc(policy, ways=4)
        llc.access(0, Stream.Z)
        llc.access(0, Stream.Z)
        assert policy.get_rrpv(0, 0) == 0

    def test_aging_on_victim_search(self):
        policy = SRRIPPolicy()
        llc = _llc(policy, ways=2)
        _fill_set(llc, 2)                  # both at RRPV 2
        llc.access(2 * 64, Stream.OTHER)   # age both to 3, evict way 0
        assert not llc.contains(0)
        # Survivor was aged to the distant RRPV.
        way = llc.way_of(64)
        assert policy.get_rrpv(0, way) == 3

    def test_hit_block_survives_scan_longer_than_lru(self):
        # A block at RRPV 0 needs 3 aging rounds to be evicted.
        policy = SRRIPPolicy()
        llc = _llc(policy, ways=2)
        llc.access(0, Stream.Z)
        llc.access(0, Stream.Z)            # RRPV 0
        llc.access(64, Stream.OTHER)
        llc.access(2 * 64, Stream.OTHER)   # evicts block 1 (RRPV 2->3)
        assert llc.contains(0)

    def test_tie_broken_by_lowest_way(self):
        policy = SRRIPPolicy()
        llc = _llc(policy, ways=4)
        _fill_set(llc, 4)
        llc.access(4 * 64, Stream.OTHER)
        assert not llc.contains(0)          # way 0 wins the tie


class TestBRRIP:
    def test_mostly_distant_insertion(self):
        policy = BRRIPPolicy()
        llc = _llc(policy, num_sets=1, ways=4)
        llc.access(0, Stream.Z)
        assert policy.get_rrpv(0, 0) == 3

    def test_one_in_period_inserted_long(self):
        policy = BRRIPPolicy()
        llc = _llc(policy, num_sets=64, ways=4)
        long_inserts = 0
        for block in range(2 * BIMODAL_PERIOD):
            llc.access(block * 64, Stream.Z)
            way = llc.way_of(block * 64)
            set_index = block % 64
            if policy.get_rrpv(set_index, way) == 2:
                long_inserts += 1
        assert long_inserts == 2

    def test_fill_counts_recorded(self):
        policy = BRRIPPolicy()
        llc = _llc(policy, num_sets=4, ways=4)
        for block in range(8):
            llc.access(block * 64, Stream.TEXTURE)
        assert sum(policy.fill_rrpv_counts[1]) == 8
