"""DIP / BIP baseline tests."""

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.config import CacheParams, KB, LLCConfig
from repro.core.brrip import BIMODAL_PERIOD
from repro.core.dip import BIPPolicy, DIPPolicy
from repro.sim.offline import simulate_trace
from repro.streams import Stream
from repro.trace import synth


def test_bip_inserts_at_lru():
    policy = BIPPolicy()
    llc = LLC(CacheGeometry(num_sets=1, ways=4), policy)
    for block in range(4):
        llc.access(block * 64, Stream.Z)
    # Next fill evicts the newest previous fill, not the oldest: blocks
    # land at LRU, so each new fill replaces the previous one.
    llc.access(4 * 64, Stream.Z)
    assert llc.contains(0)            # early fills survive
    assert not llc.contains(3 * 64)   # the most recent LRU-insert died


def test_bip_hit_promotes_to_mru():
    policy = BIPPolicy()
    llc = LLC(CacheGeometry(num_sets=1, ways=2), policy)
    llc.access(0, Stream.Z)
    llc.access(64, Stream.Z)
    llc.access(64, Stream.Z)        # promote block 1
    llc.access(128, Stream.Z)       # evicts block 0
    assert llc.contains(64)
    assert not llc.contains(0)


def test_bip_occasionally_inserts_mru():
    policy = BIPPolicy()
    llc = LLC(CacheGeometry(num_sets=64, ways=2), policy)
    mru_inserts = 0
    for block in range(BIMODAL_PERIOD * 2):
        set_index = block % 64
        base = set_index * 2
        before = max(policy.stamps[base : base + 2])
        llc.access(block * 64, Stream.Z)
        way = llc.way_of(block * 64)
        if policy.stamps[base + way] > before:
            mru_inserts += 1
    assert mru_inserts == 2


def test_bip_beats_lru_on_thrash():
    config = LLCConfig(params=CacheParams(8 * KB, ways=4), banks=1,
                       sample_period=8)
    trace = synth.cyclic_scan(num_blocks=512, repetitions=10)
    bip = simulate_trace(trace, "bip", config)
    lru = simulate_trace(trace, "lru", config)
    assert bip.misses < lru.misses


def test_dip_tracks_better_component():
    config = LLCConfig(params=CacheParams(8 * KB, ways=4), banks=1,
                       sample_period=8)
    thrash = synth.cyclic_scan(num_blocks=512, repetitions=10)
    friendly = synth.cyclic_scan(num_blocks=64, repetitions=10)
    for trace in (thrash, friendly):
        dip = simulate_trace(trace, "dip", config).misses
        lru = simulate_trace(trace, "lru", config).misses
        bip = simulate_trace(trace, "bip", config).misses
        assert dip <= max(lru, bip)


def test_dip_leader_sets_fixed_behavior():
    policy = DIPPolicy()
    LLC(CacheGeometry(num_sets=64, ways=4), policy)
    assert policy.roles.count(1) == policy.roles.count(2) > 0
