"""Shared fixtures: small cache configurations and traces that keep the
test suite fast while still exercising every code path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.config import KB, CacheParams, LLCConfig
from repro.streams import Stream
from repro.trace.record import Trace


@pytest.fixture
def tiny_llc_config() -> LLCConfig:
    """A 16 KB, 4-way LLC (64 sets) with frequent sample sets."""
    return LLCConfig(
        params=CacheParams(16 * KB, ways=4), banks=2, sample_period=8
    )


@pytest.fixture
def tiny_geometry(tiny_llc_config) -> CacheGeometry:
    return CacheGeometry.from_config(tiny_llc_config)


@pytest.fixture
def small_llc_config() -> LLCConfig:
    """A 64 KB, 8-way LLC, closer to experiment scale."""
    return LLCConfig(
        params=CacheParams(64 * KB, ways=8), banks=2, sample_period=16
    )


from helpers import make_trace  # noqa: E402  (re-exported for fixtures)


@pytest.fixture
def sequential_trace() -> Trace:
    """256 distinct blocks, one stream, no reuse."""
    return make_trace((i, Stream.OTHER) for i in range(256))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
