"""SamplingObserver correctness and ring-buffer behaviour."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import FILL, HIT, EventRing, SamplingObserver
from repro.sim.offline import simulate_trace
from repro.streams import Stream
from repro.trace import synth


def test_ring_keeps_newest():
    ring = EventRing(4)
    for i in range(10):
        ring.push((i, HIT, 0, 0))
    assert len(ring) == 4
    assert ring.pushed == 10
    assert [event[0] for event in ring.events()] == [6, 7, 8, 9]


def test_ring_before_wrap():
    ring = EventRing(8)
    for i in range(3):
        ring.push((i, FILL, 1, 2))
    assert [event[0] for event in ring.events()] == [0, 1, 2]


def test_ring_rejects_bad_capacity():
    with pytest.raises(ObservabilityError):
        EventRing(0)


def test_observer_rejects_bad_period():
    with pytest.raises(ObservabilityError):
        SamplingObserver(sample_period=0)


def test_period_one_matches_exact_cache_stats(small_llc_config):
    """With every access forwarded, observer counts equal LLCStats."""
    trace = synth.random_trace(6000, 2048, seed=7)
    observer = SamplingObserver(sample_period=1, ring_capacity=64)
    result = simulate_trace(
        trace, "drrip", small_llc_config, observer=observer
    )
    stats = result.stats
    for stream in Stream:
        assert observer.hits_of(stream) == stats.per_stream[stream].hits
    assert sum(observer.fills_of(s) for s in Stream) == stats.fills
    assert sum(observer.evictions_of(s) for s in Stream) == stats.evictions
    assert observer.sampled_events == stats.hits + stats.fills + stats.evictions


def test_sampling_period_decimates_accesses(small_llc_config):
    """Period N forwards the events of every N-th access only."""
    trace = synth.random_trace(6400, 2048, seed=3)
    observer = SamplingObserver(sample_period=64, ring_capacity=10_000)
    simulate_trace(trace, "lru", small_llc_config, observer=observer)
    sampled_accesses = {event[0] for event in observer.ring.events()}
    assert 0 < len(sampled_accesses) <= len(trace) // 64 + 1
    # The engine decimates per access, so a sampled miss contributes its
    # fill (and possibly evict) under one access index.
    assert observer.estimated_events == observer.sampled_events * 64


def test_summary_shape(small_llc_config):
    trace = synth.random_trace(3000, 1024, seed=5)
    observer = SamplingObserver(sample_period=4)
    simulate_trace(trace, "lru", small_llc_config, observer=observer)
    summary = observer.summary(max_samples=16)
    assert summary["sample_period"] == 4
    assert summary["events"] == observer.sampled_events
    assert summary["events_estimated"] == observer.sampled_events * 4
    assert set(summary["per_stream"]) == {s.short_name for s in Stream}
    assert len(summary["sampled"]["events"]) <= 16
    for event in summary["sampled"]["events"]:
        assert event["kind"] in ("hit", "fill", "evict")
    assert summary["hot_sets"] == observer.hot_sets()
    assert summary["sets_sampled"] >= len(summary["hot_sets"])


def test_hot_sets_ranked_by_activity():
    observer = SamplingObserver(sample_period=1)

    class Ctx:
        index = 0
        stream = int(Stream.TEXTURE)
        set_index = 0

    ctx = Ctx()
    for set_index, events in ((3, 5), (9, 2)):
        ctx.set_index = set_index
        for _ in range(events):
            observer.on_hit(ctx, slot=0, was_rt=False)
    hot = observer.hot_sets(top=2)
    assert [entry["set"] for entry in hot] == [3, 9]
    assert hot[0]["hits"] == 5


def test_full_reuse_has_no_evictions(small_llc_config):
    trace = synth.cyclic_scan(num_blocks=64, repetitions=4)
    observer = SamplingObserver(sample_period=1)
    result = simulate_trace(trace, "lru", small_llc_config, observer=observer)
    assert sum(observer.evictions_of(s) for s in Stream) == 0
    assert sum(observer.fills_of(s) for s in Stream) == result.misses
