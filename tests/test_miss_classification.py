"""Miss-classification tests."""

from repro.analysis.misses import classify_misses
from repro.config import CacheParams, KB, LLCConfig
from repro.streams import Stream
from repro.trace import synth

from helpers import make_trace

TINY = LLCConfig(params=CacheParams(2 * KB, ways=2), banks=1, sample_period=4)
CAPACITY_BLOCKS = 2 * KB // 64  # 32


def test_sequential_trace_all_cold():
    trace = make_trace([(i, Stream.Z) for i in range(100)])
    breakdown = classify_misses(trace, "lru", TINY)
    assert breakdown.cold == 100
    assert breakdown.capacity == 0
    assert breakdown.conflict == 0
    assert breakdown.miss_rate == 1.0


def test_capacity_misses_on_big_cycle():
    trace = synth.cyclic_scan(num_blocks=CAPACITY_BLOCKS * 4, repetitions=2)
    breakdown = classify_misses(trace, "lru", TINY)
    assert breakdown.cold == CAPACITY_BLOCKS * 4
    assert breakdown.capacity == CAPACITY_BLOCKS * 4  # the second lap
    assert breakdown.conflict == 0


def test_small_working_set_hits():
    trace = synth.cyclic_scan(num_blocks=8, repetitions=10)
    breakdown = classify_misses(trace, "lru", TINY)
    assert breakdown.cold == 8
    assert breakdown.hits == 72


def test_conflict_misses_detected():
    """Blocks mapping to one set overflow its ways while the cache as a
    whole has room: conflict, not capacity."""
    sets = TINY.num_sets
    conflicting = [0, sets, 2 * sets, 3 * sets]  # same set, 4 > 2 ways
    entries = []
    for _ in range(4):
        entries.extend((block, Stream.Z) for block in conflicting)
    breakdown = classify_misses(make_trace(entries), "lru", TINY)
    assert breakdown.cold == 4
    assert breakdown.conflict > 0
    assert breakdown.capacity == 0


def test_totals_match_plain_simulation():
    from repro.sim.offline import simulate_trace

    trace = synth.random_trace(length=2000, footprint_blocks=256, seed=11)
    breakdown = classify_misses(trace, "drrip", TINY)
    result = simulate_trace(trace, "drrip", TINY)
    assert breakdown.misses == result.misses
    assert breakdown.hits == result.hits


def test_belady_reduces_conflict_bucket():
    trace = synth.random_trace(length=3000, footprint_blocks=128, seed=2)
    lru = classify_misses(trace, "lru", TINY)
    opt = classify_misses(trace, "belady", TINY)
    assert opt.misses <= lru.misses
    assert opt.cold == lru.cold  # cold misses are policy-independent


def test_fractions():
    trace = make_trace([(0, Stream.Z), (1, Stream.Z)])
    breakdown = classify_misses(trace, "lru", TINY)
    assert breakdown.fraction("cold") == 1.0
    assert breakdown.fraction("conflict") == 0.0
