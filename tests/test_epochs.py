"""Epoch tracker tests (Section 2.3 definitions)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import LLC
from repro.core.lru import LRUPolicy
from repro.sim.epochs import EpochStats, EpochTracker, MultiEpochTracker
from repro.streams import Stream, StreamClass


def _tracked_llc(sclass=StreamClass.TEX, num_sets=4, ways=2):
    tracker = EpochTracker(sclass, num_sets * ways)
    llc = LLC(CacheGeometry(num_sets=num_sets, ways=ways), LRUPolicy(),
              observer=tracker)
    return tracker, llc


def test_fill_enters_e0():
    tracker, llc = _tracked_llc()
    llc.access(0, Stream.TEXTURE)
    assert tracker.entered[0] == 1


def test_hits_advance_epochs():
    tracker, llc = _tracked_llc()
    for _ in range(4):
        llc.access(0, Stream.TEXTURE)
    assert tracker.entered == [1, 1, 1, 1]
    assert tracker.hits_from == [1, 1, 1, 0]


def test_epoch_cap_accumulates_hits():
    tracker, llc = _tracked_llc()
    for _ in range(7):
        llc.access(0, Stream.TEXTURE)
    # Entered each epoch once; extra hits pile into E>=3.
    assert tracker.entered == [1, 1, 1, 1]
    assert tracker.hits_from == [1, 1, 1, 3]


def test_rt_consumption_starts_texture_life():
    tracker, llc = _tracked_llc()
    llc.access(0, Stream.RT, is_write=True)
    assert tracker.entered[0] == 0       # RT fill is not a texture life
    llc.access(0, Stream.TEXTURE)        # consumption -> E0
    assert tracker.entered[0] == 1
    llc.access(0, Stream.TEXTURE)        # first intra hit
    assert tracker.hits_from[0] == 1


def test_conversion_ends_life():
    tracker, llc = _tracked_llc()
    llc.access(0, Stream.TEXTURE)
    llc.access(0, Stream.RT, is_write=True)  # texture life converted
    assert tracker.conversions == 1


def test_z_tracker_ignores_texture():
    tracker, llc = _tracked_llc(sclass=StreamClass.Z)
    llc.access(0, Stream.TEXTURE)
    llc.access(64, Stream.Z)
    assert tracker.entered[0] == 1


def test_death_ratio_counts_evictions():
    tracker, llc = _tracked_llc(num_sets=1, ways=1)
    llc.access(0, Stream.TEXTURE)      # life 1: dies in E0
    llc.access(64, Stream.TEXTURE)     # evicts life 1; life 2
    llc.access(64, Stream.TEXTURE)     # life 2 -> E1
    llc.access(128, Stream.TEXTURE)    # evicts life 2; life 3 (alive)
    stats = tracker.finalize()
    # entered E0: 3, entered E1: 1, still alive in E0: 1
    assert stats.entered[0] == 3
    assert stats.entered[1] == 1
    assert stats.still_alive[0] == 1
    # Of the two concluded E0 lives, one died: ratio 0.5.
    assert stats.death_ratio(0) == pytest.approx(0.5)


def test_death_ratio_with_survivors_included():
    stats = EpochStats(
        entered=(4, 1, 0, 0), hits_from=(1, 0, 0, 0),
        still_alive=(1, 0, 0, 0), conversions=0,
    )
    assert stats.death_ratio(0, exclude_survivors=False) == pytest.approx(3 / 4)
    assert stats.death_ratio(0) == pytest.approx(2 / 3)


def test_reuse_probability_is_complement():
    stats = EpochStats(
        entered=(10, 3, 0, 0), hits_from=(3, 0, 0, 0),
        still_alive=(0, 0, 0, 0), conversions=0,
    )
    assert stats.reuse_probability(0) == pytest.approx(0.3)


def test_hit_distribution_sums_to_one():
    stats = EpochStats(
        entered=(10, 5, 2, 1), hits_from=(5, 2, 1, 2),
        still_alive=(0, 0, 0, 0), conversions=0,
    )
    assert sum(stats.hit_distribution()) == pytest.approx(1.0)


def test_death_ratio_bad_epoch_rejected():
    stats = EpochStats((1, 0, 0, 0), (0, 0, 0, 0), (0, 0, 0, 0), 0)
    with pytest.raises(IndexError):
        stats.death_ratio(3)


def test_multi_tracker_fans_out():
    tex = EpochTracker(StreamClass.TEX, 8)
    z = EpochTracker(StreamClass.Z, 8)
    llc = LLC(
        CacheGeometry(num_sets=4, ways=2),
        LRUPolicy(),
        observer=MultiEpochTracker([tex, z]),
    )
    llc.access(0, Stream.TEXTURE)
    llc.access(64, Stream.Z)
    assert tex.entered[0] == 1
    assert z.entered[0] == 1


def test_untracked_hits_counted():
    tracker, llc = _tracked_llc()
    llc.access(0, Stream.Z)          # fills as Z (untracked by TEX)
    llc.access(0, Stream.TEXTURE)    # TEX hit on an untracked life
    assert tracker.untracked_hits == 1
