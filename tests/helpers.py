"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

from repro.trace.record import Trace, TraceBuilder


def make_trace(entries) -> Trace:
    """Build a trace from (block_index, stream[, is_write]) tuples."""
    builder = TraceBuilder({"name": "test"})
    for entry in entries:
        block, stream = entry[0], entry[1]
        write = entry[2] if len(entry) > 2 else False
        builder.append(block * 64, stream, write)
    return builder.build()
