"""Experiment-runner CLI tests."""

import os

import pytest

from repro.experiments.runner import build_parser, main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig12" in out and "table1" in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "Available experiments" in capsys.readouterr().out


def test_run_table1_with_csv(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["table1", "--no-cache", "--csv", "out"]) == 0
    out = capsys.readouterr().out
    assert "Details of the DirectX applications" in out
    assert os.path.exists(tmp_path / "out" / "table1_0.csv")


def test_unknown_experiment_exits_2(capsys):
    assert main(["nonsense", "fig01", "alsobad"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment id(s): alsobad, nonsense" in err
    assert "valid ids:" in err and "fig01" in err


def test_progress_lines_and_manifest(tmp_path, capsys):
    out_dir = tmp_path / "metrics"
    assert main(
        ["table1", "--no-cache", "--metrics-out", str(out_dir)]
    ) == 0
    out = capsys.readouterr().out
    assert "[1/1] table1:" in out
    assert "completed in" in out
    files = os.listdir(out_dir)
    assert len(files) == 1 and files[0].startswith("experiment_table1")


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.frames_per_app == 1
    assert args.jobs == 1
    assert not args.full
    assert args.scale == pytest.approx(0.125)
    assert args.engine == "auto"


def test_unknown_engine_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["fig01", "--engine", "turbo"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_negative_jobs_rejected(capsys):
    assert main(["fig01", "--jobs", "-1"]) == 2
    assert "--jobs must be >= 0" in capsys.readouterr().err


def test_unwritable_csv_dir_fails_before_running(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    assert main(["fig01", "--csv", str(blocker / "out")]) == 2
    captured = capsys.readouterr()
    assert "cannot create --csv directory" in captured.err
    # Failed up front: no experiment banner was printed.
    assert "[1/1] fig01" not in captured.out


def test_unwritable_metrics_dir_fails_before_running(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    assert main(["fig01", "--metrics-out", str(blocker / "out")]) == 2
    assert "cannot create --metrics-out directory" in capsys.readouterr().err


def test_jobs_two_runs_and_records_parallel_manifest(tmp_path, capsys):
    import json

    monkey_dir = tmp_path / "work"
    monkey_dir.mkdir()
    cwd = os.getcwd()
    os.chdir(monkey_dir)
    try:
        assert main(
            ["fig08", "--scale", "0.03125", "--jobs", "2",
             "--csv", "csv", "--metrics-out", "metrics"]
        ) == 0
    finally:
        os.chdir(cwd)
    out = capsys.readouterr().out
    assert "parallel:" in out and "jobs over 2 workers" in out
    # Per-job progress counters appear in order.
    positions = [out.index(f"[{k}/") for k in range(1, 4)]
    assert positions == sorted(positions)
    [manifest_name] = os.listdir(monkey_dir / "metrics")
    manifest = json.loads((monkey_dir / "metrics" / manifest_name).read_text())
    parallel = manifest["parallel"]
    assert parallel["workers"] == 2
    assert parallel["jobs"] == len(parallel["per_job"])
    assert parallel["serial_seconds_estimate"] > 0


def test_parser_full_flag():
    args = build_parser().parse_args(["fig01", "--full"])
    assert args.full and args.experiments == ["fig01"]
