"""Experiment-runner CLI tests."""

import os

import pytest

from repro.experiments.runner import build_parser, main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig12" in out and "table1" in out


def test_no_args_lists(capsys):
    assert main([]) == 0
    assert "Available experiments" in capsys.readouterr().out


def test_run_table1_with_csv(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["table1", "--no-cache", "--csv", "out"]) == 0
    out = capsys.readouterr().out
    assert "Details of the DirectX applications" in out
    assert os.path.exists(tmp_path / "out" / "table1_0.csv")


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.frames_per_app == 1
    assert not args.full
    assert args.scale == pytest.approx(0.125)


def test_parser_full_flag():
    args = build_parser().parse_args(["fig01", "--full"])
    assert args.full and args.experiments == ["fig01"]
