"""Fast replay engine: dispatch rules and reference equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import KB, CacheParams, LLCConfig
from repro.errors import SimulationError
from repro.fastsim import (
    ENGINES,
    FAST_POLICIES,
    choose_engine,
    fast_simulate_trace,
    supports_policy,
)
from repro.fastsim.kernels import kernel_for, kernel_source
from repro.obs.events import SamplingObserver
from repro.sim.offline import simulate_trace
from repro.streams import Stream
from repro.trace import synth
from repro.trace.record import Trace

TINY = LLCConfig(params=CacheParams(2 * KB, ways=2), banks=1, sample_period=4)

small_traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),  # block
        st.integers(min_value=0, max_value=7),  # stream
        st.booleans(),  # write
    ),
    min_size=1,
    max_size=300,
)


def _trace_from(entries) -> Trace:
    addresses = np.array([b * 64 for b, _, _ in entries], dtype=np.uint64)
    streams = np.array([s for _, s, _ in entries], dtype=np.uint8)
    writes = np.array([w for _, _, w in entries], dtype=bool)
    return Trace(addresses, streams, writes, {"name": "hyp"})


def _fingerprint(result):
    return (
        result.policy,
        result.accesses,
        result.stats.snapshot(),
        result.extras,
    )


# -- equivalence with the reference engine ------------------------------------


@settings(max_examples=25, deadline=None)
@given(entries=small_traces, policy=st.sampled_from(FAST_POLICIES))
def test_fast_engine_matches_reference(entries, policy):
    """Identical SimResult stats/extras on arbitrary small traces."""
    trace = _trace_from(entries)
    reference = simulate_trace(trace, policy, TINY, engine="reference")
    fast = simulate_trace(trace, policy, TINY, engine="fast")
    assert _fingerprint(fast) == _fingerprint(reference)


@pytest.mark.parametrize("policy", [name + "+ucd" for name in FAST_POLICIES])
def test_fast_engine_matches_reference_with_uncached_streams(policy):
    """Static color/depth bypass accounting matches per stream."""
    trace = synth.interleaved_streams(
        96, 3, streams=(Stream.Z, Stream.RT, Stream.TEXTURE, Stream.DISPLAY)
    )
    reference = simulate_trace(trace, policy, TINY, engine="reference")
    fast = simulate_trace(trace, policy, TINY, engine="fast")
    assert _fingerprint(fast) == _fingerprint(reference)


_GSPC_GEOMETRIES = (
    LLCConfig(params=CacheParams(2 * KB, ways=2), banks=1, sample_period=4),
    LLCConfig(params=CacheParams(4 * KB, ways=4), banks=2, sample_period=4),
    LLCConfig(params=CacheParams(8 * KB, ways=4), banks=4, sample_period=8),
)


@settings(max_examples=40, deadline=None)
@given(
    entries=small_traces,
    policy=st.sampled_from(("gspc", "gspztc", "gspztc+tse")),
    geometry=st.sampled_from(_GSPC_GEOMETRIES),
    ucd=st.booleans(),
)
def test_gspc_family_matches_reference(entries, policy, geometry, ucd):
    """Epoch/TSE state machine and PROD/CONS protection survive the
    kernel specialization across stream mixes, geometries, and ucd."""
    trace = _trace_from(entries)
    name = policy + "+ucd" if ucd else policy
    reference = simulate_trace(trace, name, geometry, engine="reference")
    fast = simulate_trace(trace, name, geometry, engine="fast")
    assert _fingerprint(fast) == _fingerprint(reference)


def test_fast_engine_matches_reference_on_rt_tex_pattern():
    """RT->TEX consumption counters survive the kernel specialization."""
    trace = synth.producer_consumer(24, 4, consume_fraction=0.8)
    for policy in ("drrip", "srrip"):
        reference = simulate_trace(trace, policy, TINY, engine="reference")
        fast = simulate_trace(trace, policy, TINY, engine="fast")
        assert _fingerprint(fast) == _fingerprint(reference)
        assert reference.stats.rt_consumed > 0  # the pattern fired at all


def test_fast_result_reports_timing_and_meta():
    trace = synth.cyclic_scan(64, 3)
    result = fast_simulate_trace(trace, "lru", TINY)
    assert result.accesses == len(trace)
    assert result.trace_meta["name"] == "cyclic_scan(64x3)"
    assert result.elapsed_seconds >= result.replay_seconds >= 0.0


# -- dispatch rules -----------------------------------------------------------


def test_engines_tuple_and_coverage():
    assert ENGINES == ("reference", "fast", "auto")
    for policy in FAST_POLICIES:
        assert supports_policy(policy)
        assert supports_policy(policy + "+ucd")
    for policy in ("gspc", "gspc+ucd", "gspztc", "gspztc+tse"):
        assert supports_policy(policy)
    for policy in ("gspc+bypass", "ship-mem", "gs-drrip", "brrip", "dip"):
        assert not supports_policy(policy)


def test_fast_policies_derived_from_registry():
    """The covered list tracks the registry, not a hand-written tuple."""
    from repro.core.registry import available_policies

    assert set(FAST_POLICIES) <= set(available_policies())
    assert "gspc" in FAST_POLICIES
    assert "gspc+bypass" not in FAST_POLICIES


def test_choose_engine_auto_falls_back_for_uncovered_policy():
    assert choose_engine("auto", "gspc+bypass") == "reference"
    assert choose_engine("auto", "drrip") == "fast"
    assert choose_engine("auto", "gspc") == "fast"


def test_choose_engine_auto_falls_back_under_observer():
    observer = SamplingObserver()
    assert choose_engine("auto", "drrip", observer) == "reference"


def test_choose_engine_reference_always_allowed():
    assert choose_engine("reference", "gspc") == "reference"
    assert choose_engine("reference", "drrip") == "reference"


def test_choose_engine_rejects_unknown_engine():
    with pytest.raises(SimulationError, match="unknown engine"):
        choose_engine("turbo", "drrip")


def test_choose_engine_fast_rejects_uncovered_policy():
    with pytest.raises(SimulationError) as excinfo:
        choose_engine("fast", "gspc+bypass")
    message = str(excinfo.value)
    assert "not covered" in message
    # The message enumerates the covered policies dynamically.
    for name in FAST_POLICIES:
        assert name in message


def test_gspc_subclass_with_overridden_hooks_takes_reference_path():
    """Exact-type dispatch: a subclass's hook overrides must run."""
    from repro.core.gspc import GSPCPolicy

    class TweakedGSPC(GSPCPolicy):
        def on_hit(self, ctx):  # pragma: no cover - never simulated
            super().on_hit(ctx)

    assert supports_policy(GSPCPolicy())
    assert not supports_policy(TweakedGSPC())
    assert choose_engine("auto", TweakedGSPC()) == "reference"
    assert not supports_policy("gspc+bypass")  # registry-named subclass


def test_choose_engine_fast_rejects_observer():
    with pytest.raises(SimulationError, match="observer"):
        choose_engine("fast", "drrip", SamplingObserver())


def test_fast_simulate_trace_rejects_uncovered_policy():
    trace = synth.cyclic_scan(8, 1)
    with pytest.raises(SimulationError, match="no fast kernel"):
        fast_simulate_trace(trace, "gspc+bypass", TINY)


def test_simulate_trace_unknown_engine_raises():
    trace = synth.cyclic_scan(8, 1)
    with pytest.raises(SimulationError, match="unknown engine"):
        simulate_trace(trace, "drrip", TINY, engine="turbo")


# -- generated kernels --------------------------------------------------------


def test_kernel_source_is_compilable_python():
    for kind in (
        "nru",
        "lru",
        "srrip",
        "drrip",
        "belady",
        "gspztc",
        "gspztc_tse",
        "gspc",
    ):
        source = kernel_source(kind)
        assert source.startswith("def replay(")
        compile(source, f"<{kind}>", "exec")


def test_kernel_for_caches_and_records_source():
    kernel = kernel_for("nru")
    assert kernel is kernel_for("nru")
    assert kernel.__name__ == "replay_nru"
    assert "referenced.index(False, base, end)" in kernel.__source__


def test_kernel_source_rejects_unknown_kind():
    with pytest.raises(SimulationError, match="no fast kernel"):
        kernel_source("plru")
