"""End-to-end gspc-sweep runs: tiny real sweeps, the exit-code
contract, crash/resume byte-equivalence, and every fault kind."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.manifest import load_manifest, validate_manifest
from repro.sweep.cli import main

#: Small enough that a full sweep is a second or two.
BASE = [
    "--policies", "lru", "drrip",
    "--apps", "DMC",
    "--scale", "0.03125",
    "--backoff-base", "0.01",
]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("trace-cache"))


def run_cli(*argv):
    return main([str(arg) for arg in argv])


def read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def test_full_sweep_writes_artifacts(tmp_path, cache_dir):
    out = str(tmp_path / "sweep")
    assert run_cli("--out", out, "--cache-dir", cache_dir, *BASE) == 0
    manifest = load_manifest(os.path.join(out, "manifest.json"))
    assert validate_manifest(manifest) == []
    assert manifest["sweep"]["failed"] == 0
    assert manifest["sweep"]["total_jobs"] == 3  # 1 trace + 2 sims
    csv = read(os.path.join(out, "results.csv"))
    assert len(csv.strip().split("\n")) == 3  # header + 2 sims
    assert not os.path.exists(os.path.join(out, "failures.json"))
    # The journal replays clean: one attempt per job.
    assert all(
        entry["attempts"] == 1 and not entry["resumed"]
        for entry in manifest["jobs"]
    )


def test_usage_errors_exit_2(tmp_path, cache_dir):
    out = str(tmp_path / "sweep")
    # A fresh sweep with no grid at all.
    assert run_cli("--out", out) == 2
    # Unknown policy, bad fault spec, bad timeout.
    assert run_cli("--out", out, "--policies", "nosuch") == 2
    assert run_cli(
        "--out", out, *BASE, "--inject-fault", "job=1,kind=meteor"
    ) == 2
    assert run_cli("--out", out, *BASE, "--timeout", "0") == 2
    # Resuming a directory that was never a sweep.
    assert run_cli("--resume", str(tmp_path / "nothere")) == 2


def test_fresh_out_refuses_existing_journal(tmp_path, cache_dir):
    out = str(tmp_path / "sweep")
    assert run_cli("--out", out, "--cache-dir", cache_dir, *BASE) == 0
    assert run_cli("--out", out, "--cache-dir", cache_dir, *BASE) == 2


def test_crash_resume_equivalence(tmp_path, cache_dir, capsys):
    """The ISSUE's core contract: a sweep that crashes permanently on
    one job (exit 3), then resumes cleanly (exit 0), produces final
    artifacts byte-identical to an uninterrupted run — and the resumed
    invocation re-executes only the failed job."""
    clean = str(tmp_path / "clean")
    faulty = str(tmp_path / "faulty")
    assert run_cli("--out", clean, "--cache-dir", cache_dir, *BASE) == 0

    assert run_cli(
        "--out", faulty, "--cache-dir", cache_dir, *BASE,
        "--inject-fault", "job=2,kind=crash,attempt=*",
        "--max-attempts", "2",
    ) == 3
    report = json.loads(read(os.path.join(faulty, "failures.json")))
    assert report["failed_jobs"] == 1
    [(job_id, failure)] = report["failures"].items()
    assert failure["last_kind"] == "crash"
    assert failure["attempts"] == 2
    # Partial results: the CSV is missing exactly the failed sim.
    assert len(read(os.path.join(faulty, "results.csv")).strip().split("\n")) == 2

    assert run_cli("--resume", faulty, "--cache-dir", cache_dir) == 0
    assert read(os.path.join(faulty, "results.csv")) == read(
        os.path.join(clean, "results.csv")
    )
    clean_manifest = load_manifest(os.path.join(clean, "manifest.json"))
    resumed_manifest = load_manifest(os.path.join(faulty, "manifest.json"))
    assert resumed_manifest["metrics"] == clean_manifest["metrics"]
    assert resumed_manifest["config"] == clean_manifest["config"]
    # Completed jobs were not re-executed; only the crashed one ran.
    jobs = {entry["job"]: entry for entry in resumed_manifest["jobs"]}
    assert jobs[job_id]["executed_attempts"] == 1
    assert jobs[job_id]["attempts"] == 3
    for other_id, entry in jobs.items():
        if other_id != job_id:
            assert entry["resumed"] is True
            assert entry["executed_attempts"] == 0
    assert not os.path.exists(os.path.join(faulty, "failures.json"))


def test_family_crash_resume_equivalence(tmp_path, cache_dir):
    """The extended family presets (coherent/graph/compute) ride the
    sweep workload axis under the same crash/resume byte-equivalence
    contract as the Table 1 apps."""
    fam = [
        "--policies", "lru", "gspc",
        "--apps", "coh-hi", "graph-bfs", "comp-stream",
        "--scale", "0.03125",
        "--backoff-base", "0.01",
    ]
    clean = str(tmp_path / "clean")
    faulty = str(tmp_path / "faulty")
    assert run_cli("--out", clean, "--cache-dir", cache_dir, *fam) == 0
    # Plan: 3 trace jobs then 6 sims; ordinal 4 is a sim job.
    assert run_cli(
        "--out", faulty, "--cache-dir", cache_dir, *fam,
        "--inject-fault", "job=4,kind=crash,attempt=*",
        "--max-attempts", "2",
    ) == 3
    assert run_cli("--resume", faulty, "--cache-dir", cache_dir) == 0
    assert read(os.path.join(faulty, "results.csv")) == read(
        os.path.join(clean, "results.csv")
    )
    manifest = load_manifest(os.path.join(faulty, "manifest.json"))
    assert manifest["sweep"]["failed"] == 0
    assert manifest["sweep"]["total_jobs"] == 9
    assert not os.path.exists(os.path.join(faulty, "failures.json"))


def test_resume_rejects_conflicting_spec(tmp_path, cache_dir):
    out = str(tmp_path / "sweep")
    assert run_cli("--out", out, "--cache-dir", cache_dir, *BASE) == 0
    assert run_cli(
        "--resume", out, "--cache-dir", cache_dir,
        "--policies", "lru",  # narrower grid than the journal's
        "--apps", "DMC", "--scale", "0.03125",
    ) == 2


def test_corrupt_payload_is_rejected_and_retried(tmp_path, cache_dir):
    out = str(tmp_path / "sweep")
    assert run_cli(
        "--out", out, "--cache-dir", cache_dir, *BASE,
        "--inject-fault", "job=2,kind=corrupt",
    ) == 0
    manifest = load_manifest(os.path.join(out, "manifest.json"))
    jobs = {entry["job"]: entry for entry in manifest["jobs"]}
    # Plan ordinal 2 is the first sim job: attempt 1 shipped a mangled
    # payload, the checksum rejected it, attempt 2 succeeded.
    victims = [e for e in jobs.values() if e["attempts"] == 2]
    assert len(victims) == 1 and victims[0]["status"] == "ok"
    # And its metrics match an untouched sibling run's shape.
    assert victims[0]["job"] in manifest["metrics"]


def test_hang_hits_timeout_and_retry_succeeds(tmp_path, cache_dir):
    out = str(tmp_path / "sweep")
    assert run_cli(
        "--out", out, "--cache-dir", cache_dir, *BASE,
        "--inject-fault", "job=1,kind=hang",
        "--timeout", "1.5",
    ) == 0
    manifest = load_manifest(os.path.join(out, "manifest.json"))
    victims = [e for e in manifest["jobs"] if e["attempts"] == 2]
    assert len(victims) == 1 and victims[0]["status"] == "ok"


def test_fault_spec_honoured_from_environment(tmp_path, cache_dir, monkeypatch):
    out = str(tmp_path / "sweep")
    monkeypatch.setenv(
        "REPRO_FAULT_SPEC", "job=1,kind=crash,attempt=*"
    )
    assert run_cli(
        "--out", out, "--cache-dir", cache_dir, *BASE, "--max-attempts", "2"
    ) == 3


def test_traced_parallel_sweep_acceptance(tmp_path, cache_dir):
    """The PR's acceptance criterion: a --jobs >= 2 sweep with
    --trace-out produces one Chrome/Perfetto-loadable trace that
    validates, with spans from >= 2 distinct worker pids all correlated
    to the parent run id."""
    from repro.obs.traceexport import load_trace_file, validate_trace

    out = str(tmp_path / "sweep")
    trace_path = os.path.join(out, "trace.json")
    assert run_cli(
        "--out", out, "--cache-dir", cache_dir, *BASE,
        "--jobs", "2", "--trace-out", trace_path,
    ) == 0
    trace = load_trace_file(trace_path)
    assert validate_trace(trace) == []
    run_id = trace["metadata"]["run_id"]
    assert run_id.startswith("gspc-sweep-")

    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    # Orchestrator phases are present...
    names = {e["name"] for e in spans}
    assert {"sweep", "plan", "run", "reports"} <= names
    # ...plus one attempt span per job, in the orchestrator's track.
    orchestrator_pid = next(e["pid"] for e in spans if e["name"] == "sweep")
    attempts = [e for e in spans if e["name"].startswith("sim:")
                or e["name"].startswith("trace:")]
    assert len(attempts) == 3  # 1 trace + 2 sims
    assert all(e["pid"] == orchestrator_pid for e in attempts)
    # Worker spans come from the per-attempt processes: every attempt
    # is its own process, so three jobs mean >= 2 distinct worker pids.
    worker_pids = {e["pid"] for e in spans} - {orchestrator_pid}
    assert len(worker_pids) >= 2
    # Every span that names a run belongs to this run.
    assert {e["args"]["run_id"] for e in spans
            if "run_id" in e["args"]} == {run_id}
    # Worker-side spans carry job ids + attempt numbers for correlation.
    worker_spans = [e for e in spans if e["pid"] in worker_pids]
    assert worker_spans
    assert all(e["args"].get("job_id") for e in worker_spans)

    # Tracing must not perturb results: the CSV matches an untraced run.
    plain = str(tmp_path / "plain")
    assert run_cli("--out", plain, "--cache-dir", cache_dir, *BASE) == 0
    assert read(os.path.join(out, "results.csv")) == read(
        os.path.join(plain, "results.csv")
    )


def test_sweep_metrics_text_dump(tmp_path, cache_dir):
    out = str(tmp_path / "sweep")
    metrics_path = os.path.join(out, "metrics.prom")
    assert run_cli(
        "--out", out, "--cache-dir", cache_dir, *BASE,
        "--metrics-text", metrics_path,
    ) == 0
    with open(metrics_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert "# TYPE repro_sweep_jobs_total counter" in text
    assert "repro_sweep_jobs_total" in text
    assert "repro_sweep_attempt_seconds_count" in text
    assert 'run_id="gspc-sweep-' in text


def test_trace_sample_validated(tmp_path, cache_dir):
    out = str(tmp_path / "sweep")
    assert run_cli(
        "--out", out, "--cache-dir", cache_dir, *BASE,
        "--trace-sample", "0",
    ) == 2


def test_parallel_sweep_matches_serial_artifacts(tmp_path, cache_dir):
    serial = str(tmp_path / "serial")
    fanned = str(tmp_path / "fanned")
    assert run_cli("--out", serial, "--cache-dir", cache_dir, *BASE) == 0
    assert run_cli(
        "--out", fanned, "--cache-dir", cache_dir, *BASE, "--jobs", "2"
    ) == 0
    assert read(os.path.join(serial, "results.csv")) == read(
        os.path.join(fanned, "results.csv")
    )
    left = load_manifest(os.path.join(serial, "manifest.json"))
    right = load_manifest(os.path.join(fanned, "manifest.json"))
    assert left["metrics"] == right["metrics"]
