"""Policy registry tests."""

import pytest

from repro.core.registry import available_policies, make_policy, policy_spec
from repro.errors import PolicyError
from repro.streams import Stream


def test_all_table6_policies_available():
    names = available_policies()
    for required in (
        "drrip",
        "nru",
        "ship-mem",
        "gs-drrip",
        "gspztc",
        "gspztc+tse",
        "gspc",
    ):
        assert required in names


def test_make_policy_builds_instances():
    for name in available_policies():
        policy = make_policy(name)
        assert policy.name == name


def test_ucd_suffix_sets_uncached_display():
    spec = policy_spec("gspc+ucd")
    assert spec.uncached_streams == frozenset({Stream.DISPLAY})
    assert spec.base_name == "gspc"
    assert spec.name == "gspc+ucd"
    assert "uncached displayable color" in spec.description


def test_plain_name_has_no_uncached_streams():
    assert policy_spec("gspc").uncached_streams == frozenset()


def test_ucd_policy_instance_named_with_suffix():
    assert policy_spec("drrip+ucd").build().name == "drrip+ucd"


def test_case_and_whitespace_insensitive():
    assert policy_spec("  GSPC+UCD ").base_name == "gspc"


def test_unknown_policy_raises():
    with pytest.raises(PolicyError):
        policy_spec("clairvoyant")


def test_four_bit_variants():
    assert make_policy("drrip4").max_rrpv == 15
    assert make_policy("gs-drrip4").max_rrpv == 15


def test_every_policy_runs_on_a_trace(small_llc_config):
    from repro.sim.offline import simulate_trace
    from repro.trace import synth

    trace = synth.random_trace(length=500, footprint_blocks=256, seed=3)
    for name in available_policies():
        result = simulate_trace(trace, name, small_llc_config)
        assert result.accesses == 500
        assert result.hits + result.misses == 500
