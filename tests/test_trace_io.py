"""Trace persistence tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.streams import Stream
from repro.trace.io import load_trace, save_trace
from repro.trace.record import TraceBuilder


def _sample_trace():
    builder = TraceBuilder({"name": "io-test", "frame": 3, "scale": 0.125})
    for index in range(500):
        builder.append(index * 64, Stream(index % 8), index % 3 == 0)
    return builder.build()


def test_round_trip(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert len(loaded) == len(trace)
    assert np.array_equal(loaded.addresses, trace.addresses)
    assert np.array_equal(loaded.streams, trace.streams)
    assert np.array_equal(loaded.writes, trace.writes)
    assert loaded.meta == trace.meta


def test_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "trace.npz"
    save_trace(_sample_trace(), path)
    assert path.exists()


def test_missing_file_raises_trace_error(tmp_path):
    with pytest.raises(TraceError):
        load_trace(tmp_path / "nope.npz")


def test_corrupt_file_raises_trace_error(tmp_path):
    path = tmp_path / "bad.npz"
    path.write_bytes(b"this is not a numpy archive")
    with pytest.raises(TraceError):
        load_trace(path)


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "old.npz"
    trace = _sample_trace()
    np.savez_compressed(
        path,
        version=np.int64(999),
        addresses=trace.addresses,
        streams=trace.streams,
        writes=trace.writes,
        meta=np.frombuffer(b"{}", dtype=np.uint8),
    )
    with pytest.raises(TraceError):
        load_trace(path)


def test_empty_trace_round_trip(tmp_path):
    trace = TraceBuilder({"name": "empty"}).build()
    path = tmp_path / "empty.npz"
    save_trace(trace, path)
    assert len(load_trace(path)) == 0
