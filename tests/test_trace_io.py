"""Trace persistence tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.streams import Stream
from repro.trace.io import load_trace, save_trace
from repro.trace.record import TraceBuilder


def _sample_trace():
    builder = TraceBuilder({"name": "io-test", "frame": 3, "scale": 0.125})
    for index in range(500):
        builder.append(index * 64, Stream(index % 8), index % 3 == 0)
    return builder.build()


def test_round_trip(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "trace.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert len(loaded) == len(trace)
    assert np.array_equal(loaded.addresses, trace.addresses)
    assert np.array_equal(loaded.streams, trace.streams)
    assert np.array_equal(loaded.writes, trace.writes)
    assert loaded.meta == trace.meta


def test_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "trace.npz"
    save_trace(_sample_trace(), path)
    assert path.exists()


def test_missing_file_raises_trace_error(tmp_path):
    with pytest.raises(TraceError):
        load_trace(tmp_path / "nope.npz")


def test_corrupt_file_raises_trace_error(tmp_path):
    path = tmp_path / "bad.npz"
    path.write_bytes(b"this is not a numpy archive")
    with pytest.raises(TraceError):
        load_trace(path)


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "old.npz"
    trace = _sample_trace()
    np.savez_compressed(
        path,
        version=np.int64(999),
        addresses=trace.addresses,
        streams=trace.streams,
        writes=trace.writes,
        meta=np.frombuffer(b"{}", dtype=np.uint8),
    )
    with pytest.raises(TraceError):
        load_trace(path)


def test_empty_trace_round_trip(tmp_path):
    trace = TraceBuilder({"name": "empty"}).build()
    path = tmp_path / "empty.npz"
    save_trace(trace, path)
    assert len(load_trace(path)) == 0


# -- columnar (.gsct) format ---------------------------------------------------


def test_columnar_round_trip(tmp_path):
    from repro.trace.columnar import load_columnar, save_columnar

    trace = _sample_trace()
    path = tmp_path / "trace.gsct"
    save_columnar(trace, path)
    loaded = load_columnar(path)
    assert np.array_equal(loaded.addresses, trace.addresses)
    assert np.array_equal(loaded.streams, trace.streams)
    assert np.array_equal(loaded.writes, trace.writes)
    assert loaded.meta == trace.meta


def _backing_memmap(array):
    """The memmap at the end of ``array``'s view chain, or None."""
    while array is not None:
        if isinstance(array, np.memmap):
            return array
        array = array.base
    return None


def test_columnar_load_is_memmapped(tmp_path):
    from repro.trace.columnar import ALIGNMENT, save_columnar, load_columnar

    trace = _sample_trace()
    path = tmp_path / "trace.gsct"
    save_columnar(trace, path)
    loaded = load_columnar(path)
    for column in (loaded.addresses, loaded.streams, loaded.writes):
        mapped = _backing_memmap(column)
        assert mapped is not None  # zero-copy: no inflate, no array copy
        # Columns land on the aligned offsets the header promises.
        assert mapped.offset % ALIGNMENT == 0


def test_columnar_load_without_mmap(tmp_path):
    from repro.trace.columnar import load_columnar, save_columnar

    trace = _sample_trace()
    path = tmp_path / "trace.gsct"
    save_columnar(trace, path)
    loaded = load_columnar(path, mmap=False)
    assert not isinstance(loaded.addresses, np.memmap)
    assert np.array_equal(loaded.addresses, trace.addresses)


def test_columnar_rejects_bad_magic(tmp_path):
    from repro.trace.columnar import load_columnar

    path = tmp_path / "bad.gsct"
    path.write_bytes(b"NOPE" + b"\x00" * 64)
    with pytest.raises(TraceError, match="magic"):
        load_columnar(path)


def test_columnar_rejects_wrong_version(tmp_path):
    from repro.trace.columnar import load_columnar, save_columnar

    path = tmp_path / "v999.gsct"
    save_columnar(_sample_trace(), path)
    blob = bytearray(path.read_bytes())
    blob[4:8] = np.array([999], dtype="<u4").tobytes()
    path.write_bytes(bytes(blob))
    with pytest.raises(TraceError, match="version"):
        load_columnar(path)


def test_columnar_rejects_truncated_file(tmp_path):
    from repro.trace.columnar import load_columnar, save_columnar

    path = tmp_path / "cut.gsct"
    save_columnar(_sample_trace(), path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(TraceError):
        load_columnar(path)


def test_columnar_empty_trace_round_trip(tmp_path):
    from repro.trace.columnar import load_columnar, save_columnar

    path = tmp_path / "empty.gsct"
    save_columnar(TraceBuilder({"name": "empty"}).build(), path)
    assert len(load_columnar(path)) == 0


def test_save_load_trace_dispatch_on_gsct_extension(tmp_path):
    trace = _sample_trace()
    path = tmp_path / "trace.gsct"
    save_trace(trace, path)
    assert path.read_bytes()[:4] == b"GSCT"
    loaded = load_trace(path)
    assert _backing_memmap(loaded.addresses) is not None
    assert np.array_equal(loaded.addresses, trace.addresses)
    assert loaded.meta == trace.meta


def test_columnar_trace_replays_identically(tmp_path):
    """A memmapped trace drives both engines like the in-memory one."""
    from repro.config import KB, CacheParams, LLCConfig
    from repro.sim.offline import simulate_trace

    trace = _sample_trace()
    path = tmp_path / "trace.gsct"
    save_trace(trace, path)
    loaded = load_trace(path)
    llc = LLCConfig(params=CacheParams(2 * KB, ways=2), banks=1, sample_period=4)
    for engine in ("reference", "fast"):
        memory = simulate_trace(trace, "gspc", llc, engine=engine)
        mapped = simulate_trace(loaded, "gspc", llc, engine=engine)
        assert memory.stats.snapshot() == mapped.stats.snapshot()
