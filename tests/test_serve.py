"""Tests for the simulation service (repro.serve).

Service-level tests inject a fake compute callable so they exercise the
coalescing / memoization / failure state machine without running sims;
the end-to-end test runs a real (tiny) sweep through the full HTTP
stack and checks the served CSV is byte-identical to what a direct
``gspc-sweep`` run of the same spec writes.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ServeError
from repro.obs.manifest import serve_manifest, validate_manifest
from repro.serve.cli import main as serve_main
from repro.serve.http import start_http_server
from repro.serve.service import SimulationService
from repro.serve.store import ResultStore, code_version, result_key
from repro.sweep.spec import SweepSpec

SPEC = {
    "name": "t",
    "policies": ["drrip"],
    "apps": ["DMC"],
    "scale": 0.0625,
    "llc_mb": [8],
}


def spec_key(spec_data=None) -> str:
    spec = SweepSpec.from_dict(spec_data or SPEC)
    return result_key(spec.to_dict(), spec.engine, code_version())


def make_service(tmp_path, compute=None, **kwargs):
    store = ResultStore(str(tmp_path / "store"))
    return SimulationService(
        store,
        scratch_dir=str(tmp_path / "scratch"),
        cache_dir=str(tmp_path / "cache"),
        compute=compute,
        **kwargs,
    )


def instant_compute(calls=None):
    def compute(spec, key, trace_ctx):
        if calls is not None:
            calls.append(key)
        return {"key": key, "spec": spec.to_dict(), "results_csv": "csv"}

    return compute


# -- service state machine ----------------------------------------------------

def test_submit_coalesces_concurrent_duplicates(tmp_path):
    gate = threading.Event()
    calls = []

    def slow_compute(spec, key, trace_ctx):
        calls.append(key)
        assert gate.wait(timeout=30)
        return {"key": key}

    async def scenario():
        service = make_service(tmp_path, compute=slow_compute)
        first = service.submit(SPEC)
        await asyncio.sleep(0.05)  # let the computation start
        second = service.submit(SPEC)
        assert second is first
        assert first.coalesced == 1 and first.submissions == 2
        gate.set()
        await service.drain()
        assert first.status == "done"
        stats = service.stats()
        assert stats["computed"] == 1
        assert stats["coalesced"] == 1
        assert stats["submitted"] == 2
        assert service.result(first.key) == {"key": first.key}
        service.close()

    asyncio.run(scenario())
    assert calls == [spec_key()]


def test_resubmit_after_done_counts_a_cache_hit(tmp_path):
    calls = []

    async def scenario():
        service = make_service(tmp_path, compute=instant_compute(calls))
        entry = service.submit(SPEC)
        await service.drain()
        assert entry.status == "done"
        again = service.submit(SPEC)
        assert again.status == "done"
        assert service.stats()["cache_hits"] == 1
        service.close()

    asyncio.run(scenario())
    assert len(calls) == 1


def test_cache_hit_across_service_restarts(tmp_path):
    """A second service over the same store serves without computing —
    the in-process analogue of CI's kill -9 + restart gate."""

    async def first_life():
        service = make_service(tmp_path, compute=instant_compute())
        service.submit(SPEC)
        await service.drain()
        service.close()

    asyncio.run(first_life())

    def never_compute(spec, key, trace_ctx):  # pragma: no cover
        raise AssertionError("restart recomputed a stored result")

    async def second_life():
        service = make_service(tmp_path, compute=never_compute)
        entry = service.submit(SPEC)
        assert entry.status == "done" and entry.cached
        assert service.stats()["cache_hits"] == 1
        # status() also resolves keys it never saw submitted.
        assert service.status(spec_key()).status == "done"
        service.close()

    asyncio.run(second_life())


def test_failed_compute_marks_failed_then_retry_succeeds(tmp_path):
    attempts = []

    def flaky_compute(spec, key, trace_ctx):
        attempts.append(key)
        if len(attempts) == 1:
            raise ServeError("transient failure")
        return {"key": key}

    async def scenario():
        service = make_service(tmp_path, compute=flaky_compute)
        entry = service.submit(SPEC)
        await service.drain()
        assert entry.status == "failed"
        assert "transient failure" in entry.error
        assert service.stats()["failed"] == 1
        assert service.result(entry.key) is None
        retry = service.submit(SPEC)
        assert retry is not entry
        await service.drain()
        assert retry.status == "done"
        service.close()

    asyncio.run(scenario())
    assert len(attempts) == 2


def test_submit_rejects_invalid_spec(tmp_path):
    async def scenario():
        service = make_service(tmp_path, compute=instant_compute())
        with pytest.raises(ServeError, match="invalid sweep spec"):
            service.submit({"policies": ["no-such-policy"]})
        service.close()

    asyncio.run(scenario())


def test_serve_manifest_round_trip(tmp_path):
    async def scenario():
        service = make_service(tmp_path, compute=instant_compute())
        service.submit(SPEC)
        await service.drain()
        service.observe_request("submit", 0.001)
        manifest = serve_manifest(
            config={"store": str(tmp_path / "store")},
            serve=service.stats(),
            metrics=service.registry.snapshot(),
            wall_seconds=0.1,
        )
        validate_manifest(manifest)
        service.close()

    asyncio.run(scenario())


# -- HTTP API -----------------------------------------------------------------

async def http(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(data)}\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + data)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    return int(head_bytes.split(b" ")[1]), json.loads(body_bytes)


def test_http_api_round_trip(tmp_path):
    async def scenario():
        service = make_service(tmp_path, compute=instant_compute())
        server, port = await start_http_server(service, "127.0.0.1", 0)

        status, body = await http(port, "GET", "/v1/healthz")
        assert (status, body["ok"]) == (200, True)

        status, entry = await http(port, "POST", "/v1/jobs", {"spec": SPEC})
        assert status in (200, 202)
        key = entry["key"]
        await service.drain()

        status, entry = await http(port, "GET", f"/v1/jobs/{key}")
        assert (status, entry["status"]) == (200, "done")

        status, result = await http(port, "GET", f"/v1/jobs/{key}/result")
        assert status == 200 and result["key"] == key

        status, stats = await http(port, "GET", "/v1/stats")
        assert status == 200 and stats["computed"] == 1

        status, _ = await http(port, "GET", f"/v1/jobs/{'0' * 64}")
        assert status == 404
        status, _ = await http(port, "GET", "/v1/nope")
        assert status == 404
        status, _ = await http(port, "POST", "/v1/healthz")
        assert status == 405
        # Bad JSON body -> 400, connection still served.
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 4\r\n\r\n{oop"
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        assert b" 400 " in raw.split(b"\r\n")[0]

        status, body = await http(port, "POST", "/v1/shutdown")
        assert status == 200 and service.stop_event.is_set()

        assert service.requests.snapshot() >= 9
        server.close()
        await server.wait_closed()
        service.close()

    asyncio.run(scenario())


# -- CLI contract -------------------------------------------------------------

def test_cli_usage_errors_exit_2(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert serve_main(["--store", store, "--pool", "0"]) == 2
    assert serve_main(["--store", store, "--sweep-jobs", "0"]) == 2
    assert serve_main(["--store", store, "--port", "70000"]) == 2
    with pytest.raises(SystemExit) as excinfo:
        serve_main([])  # --store is required
    assert excinfo.value.code == 2
    capsys.readouterr()


# -- the fork-from-pool-thread regression -------------------------------------

def test_worker_process_forked_from_pool_thread_exits_cleanly(tmp_path):
    """The serve pool forks sweep workers from ThreadPoolExecutor
    threads; the forked child must not inherit the pool's shutdown hook
    (it used to make every worker report exit code 1 — a silent crash)."""
    from repro.sweep.spec import expand
    from repro.sweep.worker import job_payload, result_filename, load_result
    from repro.sweep.worker import run_job_in_worker

    spec = SweepSpec.from_dict(SPEC)
    trace_job = next(job for job in expand(spec) if job.kind == "trace")
    payload = job_payload(trace_job, spec, str(tmp_path / "cache"))
    out_path = str(tmp_path / result_filename(trace_job.job_id, 1))

    def fork_and_join():
        process = multiprocessing.Process(
            target=run_job_in_worker, args=(payload, out_path), daemon=True
        )
        process.start()
        process.join()
        return process.exitcode

    with ThreadPoolExecutor(max_workers=1) as pool:
        exitcode = pool.submit(fork_and_join).result()
    assert exitcode == 0
    assert load_result(out_path, trace_job.job_id)["payload"]


# -- end to end: served result == direct gspc-sweep ---------------------------

def test_served_result_matches_direct_sweep_bytes(tmp_path):
    """Real compute through the service equals a direct gspc-sweep run
    of the same spec, byte for byte on results.csv."""
    from repro.sweep.cli import main as sweep_main

    async def scenario():
        service = make_service(tmp_path)  # real compute_sweep
        entry = service.submit(SPEC)
        await service.drain()
        assert entry.status == "done", entry.error
        payload = service.result(entry.key)
        service.close()
        return payload

    payload = asyncio.run(scenario())
    assert payload["jobs"] == {"total": 2, "sims": 1}

    spec_path = str(tmp_path / "spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(SPEC, handle)
    out_dir = str(tmp_path / "direct")
    assert sweep_main(
        ["--spec", spec_path, "--out", out_dir,
         "--cache-dir", str(tmp_path / "cache")]
    ) == 0
    with open(os.path.join(out_dir, "results.csv"), encoding="utf-8") as handle:
        direct_csv = handle.read()
    assert payload["results_csv"] == direct_csv
