"""gspc-report: collection sniffing, report sections, and the CLI."""

import json
import os

import pytest

from repro.obs.manifest import sweep_manifest
from repro.obs.report import collect, main, render_report
from repro.obs.tracing import make_event
from repro.obs.traceexport import build_chrome_trace, write_trace_file
from repro.sweep.journal import seal

RUN_ID = "gspc-sweep-abc123def456"
JOB_A = "sim:DMC:f0:lru:llc8"
JOB_B = "sim:DMC:f0:drrip:llc8"


@pytest.fixture()
def run_dir(tmp_path):
    """A synthetic sweep directory: manifest + journal + trace file."""
    directory = tmp_path / "sweep"
    directory.mkdir()

    manifest = sweep_manifest(
        {"name": "tiny"},
        sweep={
            "name": "tiny", "total_jobs": 3, "completed": 3, "failed": 0,
            "resumed": 0, "workers": 2,
        },
        metrics={
            JOB_A: {
                "policy": "lru", "llc_mb": 8, "accesses": 1000,
                "metrics": {"misses": 100, "hit_rate": 0.9},
            },
            JOB_B: {
                "policy": "drrip", "llc_mb": 8, "accesses": 1000,
                "metrics": {"misses": 80, "hit_rate": 0.92},
            },
        },
        jobs=[
            {"job": JOB_A, "status": "ok", "attempts": 1,
             "executed_attempts": 1, "resumed": False},
            {"job": JOB_B, "status": "ok", "attempts": 2,
             "executed_attempts": 2, "resumed": False},
        ],
        wall_seconds=4.0,
    )
    with open(directory / "manifest.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)

    records = [
        {"v": 1, "job": JOB_A, "status": "ok", "attempt": 1,
         "seconds": 2.0, "unix": 1000.0, "payload": {"job": JOB_A}},
        {"v": 1, "job": JOB_B, "status": "failed", "attempt": 1,
         "kind": "crash", "error": "worker crashed", "unix": 1001.0},
        {"v": 1, "job": JOB_B, "status": "ok", "attempt": 2,
         "seconds": 2.5, "unix": 1004.0, "payload": {"job": JOB_B}},
    ]
    with open(directory / "journal.jsonl", "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(seal(record) + "\n")

    ctx = {"run_id": RUN_ID}
    events = [
        make_event("sweep", 1000.0, 5.0, pid=10, ctx=ctx),
        make_event("sim", 1000.5, 2.0, pid=11,
                   ctx={**ctx, "job_id": JOB_A}),
        make_event("replay", 1001.0, 1.0, pid=11, path="sim/replay",
                   ctx={**ctx, "job_id": JOB_A}),
        make_event("sim", 1002.0, 2.5, pid=12,
                   ctx={**ctx, "job_id": JOB_B, "attempt": 2}),
    ]
    write_trace_file(
        build_chrome_trace(
            events, RUN_ID, process_names={10: "gspc-sweep orchestrator"}
        ),
        str(directory / "trace.json"),
    )
    return str(directory)


def test_collect_sniffs_every_kind(run_dir):
    data = collect([run_dir])
    assert data.problems == []
    assert len(data.manifests) == 1
    assert len(data.traces) == 1
    assert len(data.journals) == 1
    [(_, records)] = data.journals
    assert len(records) == 3  # verified, in append order


def test_collect_reports_missing_and_invalid_inputs(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"kind": "sweep"}')  # invalid manifest
    data = collect([str(tmp_path / "nothere"), str(bogus)])
    assert data.empty
    assert len(data.problems) == 2
    assert any("no such file" in problem for problem in data.problems)


def test_report_sections(run_dir):
    report = render_report(collect([run_dir]))
    assert "Run overview" in report
    assert "tiny: 3/3 jobs ok" in report
    assert f"run {RUN_ID}: 4 spans across 3 process(es)" in report
    # Phase breakdown prefers the trace file; mean and max per phase.
    assert "Phase breakdown" in report
    assert "sim/replay" in report
    # Throughput joins manifest payloads with journal seconds.
    assert "Per-policy throughput" in report
    assert "lru" in report and "drrip" in report
    # Utilization: one row per pid, orchestrator named.
    assert "Worker utilization" in report
    assert "gspc-sweep orchestrator" in report
    assert "busy time counts root spans only" in report
    # Retry timeline shows the failed attempt and both successes.
    assert "Attempt timeline" in report
    assert "crash: worker crashed" in report
    assert "+0.00s" in report and "+4.00s" in report


def test_throughput_math(run_dir):
    report = render_report(collect([run_dir]))
    # lru: 1000 accesses over 2.0 journal seconds = 500/s.
    lru_line = next(
        line for line in report.splitlines()
        if line.strip().startswith("lru")
    )
    assert "500" in lru_line


def test_cli_writes_report_file(run_dir, tmp_path, capsys):
    out = str(tmp_path / "report.txt")
    assert main([run_dir, "--out", out]) == 0
    printed = capsys.readouterr().out
    assert "Run overview" in printed
    with open(out, "r", encoding="utf-8") as handle:
        assert "Run overview" in handle.read()


def test_cli_exit_codes(tmp_path, capsys):
    assert main([str(tmp_path / "empty-nothing")]) == 1  # nothing usable
    capsys.readouterr()
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main([str(empty)]) == 1


def test_cli_accepts_single_trace_file(run_dir, capsys):
    assert main([os.path.join(run_dir, "trace.json")]) == 0
    out = capsys.readouterr().out
    assert "Worker utilization" in out
    assert "Per-policy throughput" not in out  # no manifest given
