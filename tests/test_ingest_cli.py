"""End-to-end tests for gspc-ingest and the --trace-source CLI plumbing."""

import json

import numpy as np
import pytest

from repro.cli import main as sim_main
from repro.obs.manifest import validate_manifest
from repro.streams import Stream
from repro.trace.record import TraceBuilder
from repro.trace.sources import clear_resolved_sources
from repro.trace.sources.capture import export_capture
from repro.trace.sources.envelope import MIN_ACCESSES
from repro.trace.sources.ingest import main as ingest_main
from repro.trace.sources.replaydir import load_replay_manifest


@pytest.fixture(autouse=True)
def _fresh_sources():
    clear_resolved_sources()
    yield
    clear_resolved_sources()


def _conformant_capture(path, accesses=600, workload="capdemo",
                        frame_index=0):
    mix = [Stream.Z] + [Stream.TEXTURE] * 4 + [Stream.RT] * 3 \
        + [Stream.VERTEX] + [Stream.RT]
    builder = TraceBuilder()
    for index in range(accesses):
        builder.append((index % 131) * 64, mix[index % len(mix)],
                       index % 5 == 0)
    export_capture(builder.build(), str(path), workload=workload,
                   frame_index=frame_index)
    return str(path)


def _skewed_capture(path):
    header = {"capture": "gspc-capture", "version": 1, "workload": "skew",
              "frame": 0, "accesses": MIN_ACCESSES + 10}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for index in range(MIN_ACCESSES + 10):
            handle.write(json.dumps(
                {"addr": index * 64, "stream": "tex", "write": False}
            ) + "\n")
    return str(path)


def test_ingest_happy_path(tmp_path, capsys):
    capture = _conformant_capture(tmp_path / "capdemo_f0.jsonl.gz")
    out = tmp_path / "replay"
    metrics = tmp_path / "manifests"
    code = ingest_main(["--capture", capture, "--out", str(out),
                        "--metrics-out", str(metrics)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "envelope=ok" in stdout
    assert f"--trace-source replay:{out}" in stdout
    manifest = json.load(open(out / "ingest.json"))
    validate_manifest(manifest)
    assert manifest["kind"] == "ingest"
    assert manifest["metrics"] == {
        "frames": 1, "accesses": 600, "unknown_tags": 0,
        "envelope_violations": 0,
    }
    assert manifest["frames"][0]["conformant"]
    replay = load_replay_manifest(str(out))
    assert replay["frames"][0]["workload"] == "capdemo"
    assert (out / "capdemo_f0.gsct").exists()
    # The --metrics-out copy uses the canonical manifest filename.
    copies = list(metrics.glob("ingest_*.json"))
    assert len(copies) == 1
    validate_manifest(json.load(open(copies[0])))


def test_ingest_unreadable_capture_exits_1(tmp_path, capsys):
    missing = tmp_path / "nope_f0.jsonl"
    assert ingest_main(
        ["--capture", str(missing), "--out", str(tmp_path / "r")]
    ) == 1
    assert "error:" in capsys.readouterr().err


def test_ingest_bad_out_exits_2(tmp_path, capsys):
    capture = _conformant_capture(tmp_path / "capdemo_f0.jsonl")
    blocker = tmp_path / "file"
    blocker.write_text("x")
    assert ingest_main(
        ["--capture", capture, "--out", str(blocker)]
    ) == 2
    assert "error:" in capsys.readouterr().err


def test_ingest_envelope_violation_exits_3_with_artifacts(tmp_path, capsys):
    capture = _skewed_capture(tmp_path / "skew_f0.jsonl")
    out = tmp_path / "replay"
    assert ingest_main(["--capture", capture, "--out", str(out)]) == 3
    captured = capsys.readouterr()
    assert "envelope=FAIL" in captured.out
    assert "outside the Table 1" in captured.err
    # Conversion artifacts are still written and internally consistent.
    assert (out / "skew_f0.gsct").exists()
    manifest = json.load(open(out / "ingest.json"))
    validate_manifest(manifest)
    assert manifest["metrics"]["envelope_violations"] == 1
    assert not manifest["frames"][0]["conformant"]
    assert manifest["frames"][0]["violations"]
    load_replay_manifest(str(out))


def test_ingest_no_check_waives_envelope(tmp_path, capsys):
    capture = _skewed_capture(tmp_path / "skew_f0.jsonl")
    out = tmp_path / "replay"
    assert ingest_main(
        ["--capture", capture, "--out", str(out), "--no-check"]
    ) == 0
    assert "envelope=SKIPPED" in capsys.readouterr().out
    manifest = json.load(open(out / "ingest.json"))
    assert manifest["metrics"]["envelope_violations"] == 0


def test_ingest_lenient_counts_unknown_tags(tmp_path, capsys):
    path = tmp_path / "odd_f0.jsonl"
    header = {"capture": "gspc-capture", "version": 1, "workload": "odd",
              "frame": 0, "accesses": 3}
    records = [
        {"addr": 0, "stream": "tex"},
        {"addr": 64, "stream": "mystery"},
        {"addr": 128, "stream": "mystery"},
    ]
    path.write_text(
        "\n".join(json.dumps(x) for x in [header] + records) + "\n"
    )
    out = tmp_path / "replay"
    # Strict mode refuses the foreign tag outright.
    assert ingest_main(
        ["--capture", str(path), "--out", str(out)]
    ) == 1
    assert "mystery" in capsys.readouterr().err
    # Lenient mode maps it to OTHER and records the count.
    assert ingest_main(
        ["--capture", str(path), "--out", str(out), "--lenient",
         "--no-check"]
    ) == 0
    manifest = json.load(open(out / "ingest.json"))
    assert manifest["metrics"]["unknown_tags"] == 2
    assert manifest["frames"][0]["unknown_tags"] == {"mystery": 2}


def test_ingest_directory_of_captures(tmp_path):
    _conformant_capture(tmp_path / "caps" / "a_f0.jsonl", workload="a",
                        frame_index=0)
    _conformant_capture(tmp_path / "caps" / "a_f1.jsonl", workload="a",
                        frame_index=1)
    out = tmp_path / "replay"
    assert ingest_main(
        ["--capture", str(tmp_path / "caps"), "--out", str(out)]
    ) == 0
    manifest = json.load(open(out / "ingest.json"))
    assert manifest["metrics"]["frames"] == 2
    names = sorted(entry["file"] for entry in manifest["frames"])
    assert names == ["a_f0.gsct", "a_f1.gsct"]


# -- gspc-sim source plumbing --------------------------------------------------


def test_sim_cli_rejects_bad_source_spec(capsys):
    assert sim_main(
        ["--app", "DMC", "--trace-source", "ftp:nope"]
    ) == 2
    assert "trace source" in capsys.readouterr().err


def test_sim_cli_rejects_unknown_trace_extension(tmp_path, capsys):
    assert sim_main(["--trace", str(tmp_path / "t.weird")]) == 2
    assert "extension" in capsys.readouterr().err


def test_sim_cli_missing_capture_exits_1(tmp_path, capsys):
    assert sim_main(
        ["--app", "x", "--trace-source", f"capture:{tmp_path}/nope.jsonl",
         "--policies", "drrip"]
    ) == 1
    assert "error:" in capsys.readouterr().err


def test_sim_cli_replays_capture_source(tmp_path, capsys):
    capture = _conformant_capture(tmp_path / "capdemo_f0.jsonl")
    code = sim_main(
        ["--app", "capdemo", "--trace-source", f"capture:{capture}",
         "--policies", "drrip", "lru", "--llc-mb", "1"]
    )
    assert code == 0
    stdout = capsys.readouterr().out
    assert "capdemo#f0" in stdout
    assert "DRRIP" in stdout and "LRU" in stdout


def test_sim_cli_replay_source_matches_capture_source(tmp_path, capsys):
    capture = _conformant_capture(tmp_path / "capdemo_f0.jsonl")
    replay = tmp_path / "replay"
    assert ingest_main(
        ["--capture", capture, "--out", str(replay)]
    ) == 0
    capsys.readouterr()
    outputs = {}
    for spec in (f"capture:{capture}", f"replay:{replay}"):
        assert sim_main(
            ["--app", "capdemo", "--trace-source", spec,
             "--policies", "gspc", "--llc-mb", "1"]
        ) == 0
        outputs[spec] = capsys.readouterr().out
    ref, rep = outputs.values()
    assert ref == rep


def test_replayed_trace_bytes_match_capture(tmp_path):
    """The .gsct written by gspc-ingest replays the exact capture."""
    from repro.trace.io import load_trace
    from repro.trace.sources.capture import read_capture

    capture = _conformant_capture(tmp_path / "capdemo_f0.jsonl")
    replay = tmp_path / "replay"
    assert ingest_main(["--capture", capture, "--out", str(replay)]) == 0
    direct, _ = read_capture(capture)
    converted = load_trace(replay / "capdemo_f0.gsct")
    assert np.array_equal(converted.addresses, direct.addresses)
    assert np.array_equal(converted.streams, direct.streams)
    assert np.array_equal(converted.writes, direct.writes)
