"""Tests for the pluggable trace-source layer (repro.trace.sources)."""

import gzip
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SourceError, SweepError
from repro.experiments.common import ExperimentConfig, frame_trace
from repro.streams import Stream
from repro.trace.record import TraceBuilder
from repro.trace.sources import (
    SOURCE_SYNTHETIC,
    SourceWorkload,
    clear_resolved_sources,
    resolve_source,
    validate_source_spec,
)
from repro.trace.sources.capture import (
    MODE_LENIENT,
    MODE_STRICT,
    CaptureSource,
    export_capture,
    read_capture,
)
from repro.trace.sources.envelope import (
    MIN_ACCESSES,
    characterize_capture,
    check_envelope,
)
from repro.trace.sources.replaydir import (
    ReplaySource,
    load_replay_manifest,
    write_replay_manifest,
)


@pytest.fixture(autouse=True)
def _fresh_sources():
    clear_resolved_sources()
    yield
    clear_resolved_sources()


def _mixed_trace(accesses=1000, salt=0):
    """A capture-shaped trace whose stream mix sits inside the envelope:
    10% Z, 40% TEX, 35% RT, 15% VERTEX (OTHER class), 20% writes."""
    mix = [Stream.Z] + [Stream.TEXTURE] * 4 + [Stream.RT] * 3 \
        + [Stream.VERTEX] + [Stream.RT]
    builder = TraceBuilder()
    for index in range(accesses):
        builder.append(
            (index % 97 + salt * 1000) * 64,
            mix[index % len(mix)],
            index % 5 == 0,
        )
    return builder.build()


def _write_capture(path, trace, workload="capdemo", frame_index=0):
    export_capture(trace, str(path), workload=workload,
                   frame_index=frame_index)
    return str(path)


# -- capture round trips -------------------------------------------------------


@pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz", ".csv", ".csv.gz"])
def test_capture_round_trip(tmp_path, suffix):
    trace = _mixed_trace()
    path = _write_capture(tmp_path / f"capdemo_f0{suffix}", trace)
    loaded, stats = read_capture(path, MODE_STRICT)
    assert np.array_equal(loaded.addresses, trace.addresses)
    assert np.array_equal(loaded.streams, trace.streams)
    assert np.array_equal(loaded.writes, trace.writes)
    assert stats.accesses == len(trace)
    assert stats.unknown_count == 0
    assert loaded.meta["workload"] == "capdemo"
    assert loaded.meta["frame"] == 0


def test_capture_identity_prefers_header_over_filename(tmp_path):
    path = _write_capture(
        tmp_path / "ondisk_f9.jsonl", _mixed_trace(),
        workload="realname", frame_index=3,
    )
    loaded, _ = read_capture(path)
    assert loaded.meta["workload"] == "realname"
    assert loaded.meta["frame"] == 3


def test_empty_capture_rejected(tmp_path):
    path = tmp_path / "empty_f0.jsonl"
    header = {"capture": "gspc-capture", "version": 1, "accesses": 0}
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(SourceError, match="no accesses"):
        read_capture(str(path))


def test_unknown_stream_tag_strict_vs_lenient(tmp_path):
    path = tmp_path / "odd_f0.jsonl"
    header = {"capture": "gspc-capture", "version": 1, "accesses": 2}
    records = [
        {"addr": 0, "stream": "tex", "write": False},
        {"addr": 64, "stream": "blorp", "write": True},
    ]
    path.write_text(
        "\n".join(json.dumps(x) for x in [header] + records) + "\n"
    )
    with pytest.raises(SourceError, match="blorp"):
        read_capture(str(path), MODE_STRICT)
    loaded, stats = read_capture(str(path), MODE_LENIENT)
    assert stats.unknown_tags == {"blorp": 1}
    assert loaded.streams[1] == int(Stream.OTHER)
    assert loaded.meta["unknown_stream_tags"] == {"blorp": 1}


def test_declared_count_mismatch_rejected(tmp_path):
    path = _write_capture(tmp_path / "cut_f0.jsonl", _mixed_trace(300))
    lines = open(path).read().splitlines()
    with open(path, "w") as handle:
        handle.write("\n".join(lines[:-7]) + "\n")
    with pytest.raises(SourceError, match="declares 300"):
        read_capture(path)


@settings(max_examples=40, deadline=None)
@given(fraction=st.floats(min_value=0.0, max_value=1.0))
def test_truncated_jsonl_capture_rejected(tmp_path_factory, fraction):
    """Cutting a capture at any byte inside its content must raise."""
    tmp_path = tmp_path_factory.mktemp("trunc")
    path = _write_capture(tmp_path / "t_f0.jsonl", _mixed_trace(300))
    blob = open(path, "rb").read()
    header_end = blob.index(b"\n") + 1
    # len - 2 at most: cutting only the trailing newline is still valid.
    offset = header_end + int(fraction * (len(blob) - 2 - header_end))
    cut = tmp_path / "cut_f0.jsonl"
    cut.write_bytes(blob[:offset])
    with pytest.raises(SourceError):
        read_capture(str(cut))


@settings(max_examples=25, deadline=None)
@given(fraction=st.floats(min_value=0.0, max_value=1.0))
def test_truncated_gzip_capture_rejected(tmp_path_factory, fraction):
    tmp_path = tmp_path_factory.mktemp("gztrunc")
    path = _write_capture(tmp_path / "t_f0.jsonl.gz", _mixed_trace(300))
    blob = open(path, "rb").read()
    offset = int(fraction * (len(blob) - 1))
    cut = tmp_path / "cut_f0.jsonl.gz"
    cut.write_bytes(blob[:offset])
    with pytest.raises(SourceError):
        read_capture(str(cut))


def test_capture_addr_formats(tmp_path):
    path = tmp_path / "hex_f0.jsonl"
    header = {"capture": "gspc-capture", "version": 1, "accesses": 3}
    records = [
        {"addr": "0x1F40", "stream": "z"},
        {"addr": "8000", "stream": 4},
        {"addr": 64, "stream": "rt", "write": 1},
    ]
    path.write_text(
        "\n".join(json.dumps(x) for x in [header] + records) + "\n"
    )
    loaded, _ = read_capture(str(path))
    assert loaded.addresses.tolist() == [0x1F40, 8000, 64]
    assert loaded.streams.tolist() == [int(Stream.Z), int(Stream.RT),
                                       int(Stream.RT)]
    assert loaded.writes.tolist() == [False, False, True]


# -- source specs and resolution -----------------------------------------------


def test_validate_source_spec():
    assert validate_source_spec("synthetic") == SOURCE_SYNTHETIC
    validate_source_spec("capture:some/path.jsonl")
    validate_source_spec("replay:some/dir")
    for bad in ("", "nosuch", "ftp:whatever", "capture:", "replay:"):
        with pytest.raises(SourceError):
            validate_source_spec(bad)


def test_resolve_source_memoised(tmp_path):
    first = resolve_source("synthetic")
    assert resolve_source("synthetic") is first
    clear_resolved_sources()
    assert resolve_source("synthetic") is not first


def test_source_workload_duck_types_app_profile():
    workload = SourceWorkload(name="capdemo", num_frames=2)
    assert workload.abbrev == "capdemo"


# -- CaptureSource / ReplaySource ----------------------------------------------


def test_capture_source_over_directory(tmp_path):
    _write_capture(tmp_path / "a_f0.jsonl", _mixed_trace(400), "a", 0)
    _write_capture(tmp_path / "a_f1.jsonl", _mixed_trace(400, 1), "a", 1)
    _write_capture(tmp_path / "b_f0.jsonl", _mixed_trace(400, 2), "b", 0)
    source = CaptureSource(str(tmp_path))
    assert [w.name for w in source.workloads()] == ["a", "b"]
    assert [w.num_frames for w in source.workloads()] == [2, 1]
    assert len(source.frames()) == 3
    assert source.cache_token().startswith("cap")
    trace = source.frame_trace("a", 1, scale=1.0)
    assert len(trace) == 400


def test_capture_source_duplicate_frame_rejected(tmp_path):
    _write_capture(tmp_path / "a_f0.jsonl", _mixed_trace(300), "a", 0)
    _write_capture(tmp_path / "a_f0.csv", _mixed_trace(300), "a", 0)
    with pytest.raises(SourceError, match="duplicate"):
        CaptureSource(str(tmp_path))


def test_capture_source_identity_tracks_content(tmp_path):
    dir_a = tmp_path / "a"
    dir_b = tmp_path / "b"
    dir_a.mkdir()
    dir_b.mkdir()
    _write_capture(dir_a / "capdemo_f0.jsonl", _mixed_trace(300, 0))
    _write_capture(dir_b / "capdemo_f0.jsonl", _mixed_trace(300, 5))
    token_a = CaptureSource(str(dir_a)).cache_token()
    token_b = CaptureSource(str(dir_b)).cache_token()
    assert token_a != token_b


def test_replay_source_round_trip(tmp_path):
    from repro.trace.io import save_trace

    trace = _mixed_trace(500)
    replay = tmp_path / "replay"
    replay.mkdir()
    save_trace(trace, replay / "capdemo_f0.gsct")
    from repro.trace.sources.capture import _file_sha256

    write_replay_manifest(
        str(replay),
        [{"workload": "capdemo", "frame": 0, "file": "capdemo_f0.gsct",
          "sha256": _file_sha256(str(replay / "capdemo_f0.gsct")),
          "accesses": len(trace)}],
        origin="test",
        mode=MODE_STRICT,
    )
    manifest = load_replay_manifest(str(replay))
    assert manifest["frames"][0]["workload"] == "capdemo"
    source = ReplaySource(str(replay))
    assert source.cache_token() is None
    loaded = source.frame_trace("capdemo", 0, scale=1.0)
    assert np.array_equal(loaded.addresses, trace.addresses)


def test_replay_source_missing_manifest(tmp_path):
    with pytest.raises(SourceError, match="source.json"):
        ReplaySource(str(tmp_path))


def test_replay_source_missing_trace_file(tmp_path):
    write_replay_manifest(
        str(tmp_path),
        [{"workload": "x", "frame": 0, "file": "x_f0.gsct",
          "sha256": "0" * 64, "accesses": 10}],
        origin="test",
        mode=MODE_STRICT,
    )
    with pytest.raises(SourceError, match="x_f0.gsct"):
        ReplaySource(str(tmp_path))


# -- frame-trace cache namespacing ---------------------------------------------


def test_frame_cache_keys_on_source_identity(tmp_path):
    """Two captures with identical workload/frame names but different
    content must not collide in the on-disk frame-trace cache."""
    dir_a = tmp_path / "a"
    dir_b = tmp_path / "b"
    dir_a.mkdir()
    dir_b.mkdir()
    _write_capture(dir_a / "capdemo_f0.jsonl", _mixed_trace(300, 0))
    _write_capture(dir_b / "capdemo_f0.jsonl", _mixed_trace(300, 9))
    cache = tmp_path / "cache"
    traces = {}
    for key, directory in (("a", dir_a), ("b", dir_b)):
        config = ExperimentConfig(
            cache_dir=str(cache), source=f"capture:{directory}"
        )
        spec = resolve_source(config.source).frame_spec("capdemo", 0)
        traces[key] = frame_trace(spec, config)
        # Warm-cache read must return the same bytes.
        again = frame_trace(spec, config)
        assert np.array_equal(again.addresses, traces[key].addresses)
    assert not np.array_equal(
        traces["a"].addresses, traces["b"].addresses
    )
    subdirs = sorted(os.listdir(cache / "traces"))
    assert len(subdirs) == 2
    assert all(d.startswith("cap") for d in subdirs)


def test_synthetic_source_uses_flat_cache_layout(tmp_path):
    config = ExperimentConfig(
        cache_dir=str(tmp_path / "cache"), scale=0.03125
    )
    spec = resolve_source("synthetic").frame_spec("DMC", 0)
    frame_trace(spec, config)
    entries = os.listdir(tmp_path / "cache" / "traces")
    assert any(entry.endswith(".gsct") for entry in entries)


# -- envelope ------------------------------------------------------------------


def test_envelope_accepts_mixed_trace():
    characterization = characterize_capture(_mixed_trace())
    assert check_envelope(characterization) == []
    classes = characterization["classes"]
    assert abs(classes["TEX"] - 0.4) < 0.01
    assert abs(classes["Z"] - 0.1) < 0.01


def test_envelope_flags_skewed_mix():
    builder = TraceBuilder()
    for index in range(MIN_ACCESSES + 10):
        builder.append(index * 64, Stream.TEXTURE, False)
    violations = check_envelope(characterize_capture(builder.build()))
    text = "\n".join(violations)
    assert "TEX" in text
    assert "Z" in text and "RT" in text


def test_envelope_short_capture_short_circuits():
    builder = TraceBuilder()
    for index in range(10):
        builder.append(index * 64, Stream.TEXTURE, False)
    violations = check_envelope(characterize_capture(builder.build()))
    assert len(violations) == 1
    assert str(MIN_ACCESSES) in violations[0]


# -- sweep spec source axis ----------------------------------------------------


def test_sweep_spec_source_round_trips():
    from repro.sweep.spec import SweepSpec

    spec = SweepSpec(
        name="s", policies=("drrip",), llc_mb=(8,),
        source="capture:/nonexistent/ok-at-parse-time",
    )
    assert spec.to_dict()["source"] == "capture:/nonexistent/ok-at-parse-time"
    restored = SweepSpec.from_dict(spec.to_dict())
    assert restored.source == spec.source
    legacy = {
        key: value for key, value in spec.to_dict().items()
        if key != "source"
    }
    assert SweepSpec.from_dict(legacy).source == SOURCE_SYNTHETIC


def test_sweep_spec_rejects_bad_source():
    from repro.sweep.spec import SweepSpec

    with pytest.raises(SweepError):
        SweepSpec(name="s", policies=("drrip",), source="ftp:bad")


def test_sweep_spec_frames_from_capture_source(tmp_path):
    from repro.sweep.spec import SweepSpec

    _write_capture(tmp_path / "w_f0.jsonl", _mixed_trace(300), "w", 0)
    _write_capture(tmp_path / "w_f1.jsonl", _mixed_trace(300, 1), "w", 1)
    spec = SweepSpec(
        name="s", policies=("drrip",), frames_per_app=1,
        source=f"capture:{tmp_path}",
    )
    frames = spec.frames()
    assert [(f.app.abbrev, f.frame_index) for f in frames] == [("w", 0)]
    with pytest.raises(SweepError, match="nosuch"):
        SweepSpec(
            name="s", policies=("drrip",), apps=("nosuch",),
            source=f"capture:{tmp_path}",
        ).frames()


# -- gzip transparency ---------------------------------------------------------


def test_gzip_and_plain_captures_read_identically(tmp_path):
    trace = _mixed_trace(200)
    plain = _write_capture(tmp_path / "p_f0.jsonl", trace)
    zipped = _write_capture(tmp_path / "z_f0.jsonl.gz", trace)
    with gzip.open(zipped, "rt") as handle:
        assert handle.read() == open(plain).read()
