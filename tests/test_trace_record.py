"""Trace container tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.streams import Stream
from repro.trace.record import Access, Trace, TraceBuilder


def test_access_block_address():
    assert Access(0, Stream.Z).block_address == 0
    assert Access(63, Stream.Z).block_address == 0
    assert Access(64, Stream.Z).block_address == 1


def test_builder_round_trip():
    builder = TraceBuilder({"name": "t"})
    builder.append(128, Stream.RT, True)
    builder.append(0, Stream.TEXTURE)
    trace = builder.build()
    assert len(trace) == 2
    first = trace[0]
    assert first.address == 128
    assert first.stream is Stream.RT
    assert first.is_write
    assert not trace[1].is_write


def test_builder_growth_beyond_initial_capacity():
    builder = TraceBuilder()
    for index in range(10_000):
        builder.append(index * 64, Stream.Z)
    trace = builder.build()
    assert len(trace) == 10_000
    assert trace[9_999].address == 9_999 * 64


def test_builder_extend_batches():
    builder = TraceBuilder()
    addresses = np.arange(100, dtype=np.uint64) * 64
    builder.extend(addresses, Stream.TEXTURE)
    builder.extend(addresses, Stream.RT, is_write=True)
    trace = builder.build()
    assert len(trace) == 200
    assert int(trace.stream_mask(Stream.TEXTURE).sum()) == 100
    assert int(trace.writes.sum()) == 100


def test_mismatched_arrays_rejected():
    with pytest.raises(TraceError):
        Trace(
            np.zeros(3, np.uint64), np.zeros(2, np.uint8), np.zeros(3, bool)
        )


def test_out_of_range_stream_rejected():
    with pytest.raises(TraceError):
        Trace(
            np.zeros(1, np.uint64),
            np.array([99], np.uint8),
            np.zeros(1, bool),
        )


def test_block_addresses_shift():
    trace = Trace(
        np.array([0, 64, 127, 128], np.uint64),
        np.zeros(4, np.uint8),
        np.zeros(4, bool),
    )
    assert trace.block_addresses().tolist() == [0, 1, 1, 2]


def test_slice_shares_metadata():
    builder = TraceBuilder({"name": "parent"})
    for index in range(10):
        builder.append(index * 64, Stream.Z)
    trace = builder.build()
    part = trace.slice(2, 5)
    assert len(part) == 3
    assert part.meta["name"] == "parent"
    assert part[0].address == 2 * 64


def test_concat():
    a = TraceBuilder({"name": "a"})
    a.append(0, Stream.Z)
    b = TraceBuilder({"name": "b"})
    b.append(64, Stream.RT)
    joined = a.build().concat(b.build())
    assert len(joined) == 2
    assert joined.meta["name"] == "a"


def test_iteration_yields_accesses():
    builder = TraceBuilder()
    builder.append(64, Stream.HIZ)
    accesses = list(builder.build())
    assert accesses == [Access(64, Stream.HIZ, False)]
