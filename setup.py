"""Setuptools shim.

Kept so that ``pip install -e . --no-use-pep517`` works on environments
whose setuptools cannot build PEP 660 editable wheels (no ``wheel``
package available offline).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
