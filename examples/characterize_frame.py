"""Section-2-style characterization of one rendered frame.

Prints the stream access mix, per-stream hit rates under OPT/DRRIP/NRU,
the inter- vs intra-stream texture reuse split, and the texture and Z
epoch death ratios — the measurements that motivated GSPC's design.

Run:  python examples/characterize_frame.py [app] [frame]
"""

import sys

from repro import app_by_name, generate_frame_trace
from repro.analysis.characterize import characterize_frame
from repro.config import paper_baseline
from repro.streams import ALL_STREAMS

SCALE = 0.125


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "BioShock"
    frame_index = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    system = paper_baseline(llc_mb=8, scale=SCALE)
    app = app_by_name(app_name)
    trace = generate_frame_trace(app, frame_index, scale=SCALE)

    print(f"Frame {trace.meta['name']}: {len(trace):,} LLC accesses\n")

    characterizations = {
        policy: characterize_frame(trace, policy, system.llc)
        for policy in ("belady", "drrip", "nru")
    }
    reference = characterizations["belady"]

    print("Stream access mix (cf. Figure 4):")
    for stream in ALL_STREAMS:
        fraction = reference.stream_mix()[stream]
        bar = "#" * int(50 * fraction)
        print(f"  {stream.short_name:5s} {100 * fraction:5.1f}%  {bar}")

    print("\nPer-stream hit rates (cf. Figure 5):")
    print(f"  {'policy':8s} {'TEX':>7s} {'RT':>7s} {'Z':>7s}")
    for policy, char in characterizations.items():
        print(
            f"  {policy:8s} {char.tex_hit_rate:7.3f} "
            f"{char.rt_hit_rate:7.3f} {char.z_hit_rate:7.3f}"
        )

    print("\nTexture reuse (cf. Figure 6):")
    for policy, char in characterizations.items():
        print(
            f"  {policy:8s} inter-stream hits {char.tex_inter_hits:7,d}  "
            f"intra {char.tex_intra_hits:7,d}  "
            f"RT->TEX consumption {char.rt_consumption_rate:.1%}"
        )

    print("\nEpoch death ratios under OPT (cf. Figures 7 and 9):")
    tex, z = reference.tex_epochs, reference.z_epochs
    for label, epochs in (("texture", tex), ("Z", z)):
        ratios = "  ".join(
            f"E{e}={epochs.death_ratio(e):.2f}" for e in range(3)
        )
        print(f"  {label:8s} {ratios}")
    distribution = tex.hit_distribution()
    print(
        "  texture hits by epoch: "
        + "  ".join(
            f"{label}={100 * value:.0f}%"
            for label, value in zip(("E0", "E1", "E2", "E3+"), distribution)
        )
    )


if __name__ == "__main__":
    main()
