"""Plugging a custom replacement policy into the simulator.

The library's policy interface (bind / on_hit / on_fill / select_victim
/ on_evict) accepts any object — here we build a toy "stream-pinning"
policy that statically protects render-target blocks and treats
everything else as FIFO, and race it against the built-ins on a
render-to-texture workload.

Run:  python examples/custom_policy.py
"""

from repro import simulate_trace
from repro.config import KB, CacheParams, LLCConfig
from repro.core.base import AccessContext, ReplacementPolicy
from repro.streams import StreamClass
from repro.trace import synth


class StreamPinningPolicy(ReplacementPolicy):
    """Protect RT blocks; evict everything else in fill order.

    A deliberately simple illustration of the hook interface: per-block
    metadata is allocated in ``bind`` and updated in the fill/hit/evict
    hooks; ``select_victim`` may consult any of it.
    """

    name = "stream-pin"

    def bind(self, geometry):
        super().bind(geometry)
        blocks = geometry.num_sets * geometry.ways
        self._pinned = [False] * blocks
        self._fill_order = [0] * blocks
        self._tick = 0

    def _slot(self, ctx, way):
        return ctx.set_index * self.geometry.ways + way

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        slot = self._slot(ctx, way)
        self._pinned[slot] = ctx.sclass == int(StreamClass.RT)
        self._tick += 1
        self._fill_order[slot] = self._tick

    def on_hit(self, ctx: AccessContext, way: int) -> None:
        slot = self._slot(ctx, way)
        if ctx.sclass == int(StreamClass.TEX):
            # Consumed render targets lose their pin (like GSPC's
            # state-11 -> state-00 transition).
            self._pinned[slot] = False

    def select_victim(self, ctx: AccessContext) -> int:
        base = ctx.set_index * self.geometry.ways
        candidates = [
            way
            for way in range(self.geometry.ways)
            if not self._pinned[base + way]
        ] or list(range(self.geometry.ways))
        return min(candidates, key=lambda way: self._fill_order[base + way])


def main() -> None:
    llc = LLCConfig(
        params=CacheParams(64 * KB, ways=8), banks=1, sample_period=16
    )
    # A producer/consumer trace with scan interference: render targets
    # must survive a long gap to be consumed as textures.
    trace = synth.producer_consumer(
        num_blocks=512, rounds=6, consume_fraction=0.8, gap_blocks=2048
    )

    print(f"{'policy':12s} {'misses':>8s} {'RT->TEX consumption':>20s}")
    for policy in ("lru", "drrip", "gspc", StreamPinningPolicy()):
        result = simulate_trace(trace, policy, llc)
        print(
            f"{result.policy:12s} {result.misses:8,d} "
            f"{result.stats.rt_consumption_rate:20.3f}"
        )
    print(
        "\nThe pinning policy holds render targets until consumption, "
        "like GSPC's\nRRPV-0 insertion — but with no adaptivity it can "
        "lose badly when\nconsumption never comes (try consume_fraction=0)."
    )


if __name__ == "__main__":
    main()
