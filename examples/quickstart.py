"""Quickstart: render one synthetic frame, compare GSPC with DRRIP.

Run:  python examples/quickstart.py
"""

from repro import app_by_name, generate_frame_trace, simulate_trace
from repro.config import paper_baseline

# The simulated system of the paper's Section 4, shrunk 8x linearly
# (capacities scale with pixel count) so it runs in seconds.
SCALE = 0.125
system = paper_baseline(llc_mb=8, scale=SCALE)

print(f"LLC: {system.llc.params.capacity_bytes // 1024} KB, "
      f"{system.llc.ways}-way, {system.llc.num_sets} sets")

# Synthesize one Assassin's Creed frame — the paper's heaviest
# render-to-texture workload — and replay its LLC access trace.
app = app_by_name("AssnCreed")
trace = generate_frame_trace(app, frame_index=0, scale=SCALE)
print(f"\nFrame {trace.meta['name']}: {len(trace):,} LLC accesses "
      f"({trace.meta['raw_accesses']:,} raw, before the render caches)")

baseline = simulate_trace(trace, "drrip", system.llc)
gspc = simulate_trace(trace, "gspc+ucd", system.llc)

print(f"\n{'policy':10s} {'misses':>8s} {'hit rate':>9s} "
      f"{'tex hit':>8s} {'RT->TEX':>8s}")
for result in (baseline, gspc):
    stats = result.stats
    print(
        f"{result.policy:10s} {result.misses:8,d} {stats.hit_rate:9.3f} "
        f"{stats.tex_hit_rate:8.3f} {stats.rt_consumption_rate:8.3f}"
    )

saving = 1.0 - gspc.misses_normalized_to(baseline)
print(f"\nGSPC+UCD saves {saving:.1%} of LLC misses vs two-bit DRRIP "
      f"on this frame.")
