"""Building a workload by hand with the pass/draw API.

Instead of using the twelve packaged application profiles, this example
constructs a minimal three-pass frame directly — render a scene, blur
it into a half-resolution target, composite — and shows how uncached
displayable color (UCD) and render-target protection interact.

Run:  python examples/render_to_texture.py
"""

import numpy as np

from repro import simulate_trace
from repro.cache.hierarchy import RenderCacheFrontEnd
from repro.config import KB, CacheParams, LLCConfig, RenderCachesConfig
from repro.trace.record import TraceBuilder
from repro.workloads.passes import DrawCall, RenderPass, TextureBinding
from repro.workloads.raster import emit_pass
from repro.workloads.surfaces import AddressSpace, allocate_surface, allocate_texture


def build_frame_trace():
    space = AddressSpace()
    scene = allocate_surface(space, "scene", 256, 160)
    depth = allocate_surface(space, "depth", 256, 160)
    blur = allocate_surface(space, "blur", 128, 80)
    back = allocate_surface(space, "back", 256, 160)
    display = allocate_surface(space, "display", 256, 160)
    bricks = allocate_texture(space, "bricks", 256, 256)
    vertex_base = space.allocate(256 * 64)
    rng = np.random.default_rng(7)

    geometry_pass = RenderPass(
        name="geometry",
        color_target=scene,
        depth_target=depth,
        draws=tuple(
            DrawCall(
                region=(x, y, min(64, x + 24), min(40, y + 16)),
                coverage=0.9,
                textures=(
                    TextureBinding(
                        source=bricks, samples_per_tile=2.0, hot_probability=0.2
                    ),
                ),
                vertex_blocks=8,
                uv_phase=index * 997,
            )
            for index, (x, y) in enumerate(
                [(0, 0), (20, 8), (40, 16), (8, 24), (32, 4), (48, 20)]
            )
        ),
        early_z_reject=0.2,
    )
    blur_pass = RenderPass(
        name="blur",
        color_target=blur,
        draws=(
            DrawCall(
                region=(0, 0, blur.tiles_x, blur.tiles_y),
                textures=(
                    TextureBinding(
                        source=scene, samples_per_tile=4.0, screen_mapped=True
                    ),
                ),
                depth_test=False,
            ),
        ),
    )
    composite_pass = RenderPass(
        name="composite",
        color_target=back,
        draws=(
            DrawCall(
                region=(0, 0, back.tiles_x, back.tiles_y),
                textures=(
                    TextureBinding(
                        source=blur, samples_per_tile=1.0, screen_mapped=True
                    ),
                ),
                blend=True,
                depth_test=False,
            ),
        ),
        resolve_to=display,
    )

    builder = TraceBuilder({"name": "hand-built"})
    front = RenderCacheFrontEnd(RenderCachesConfig().scaled(1 / 64), builder)
    for render_pass in (geometry_pass, blur_pass, composite_pass):
        emit_pass(front, render_pass, rng, vertex_base, space.allocate(64 * 64), 16)
    return builder.build()


def main() -> None:
    trace = build_frame_trace()
    llc = LLCConfig(params=CacheParams(128 * KB, ways=16), banks=1,
                    sample_period=16)
    print(f"hand-built frame: {len(trace):,} LLC accesses\n")
    print(f"{'policy':12s} {'misses':>8s} {'RT->TEX':>8s}")
    for policy in ("drrip", "drrip+ucd", "gspztc", "gspc+ucd", "belady"):
        result = simulate_trace(trace, policy, llc)
        print(
            f"{result.policy:12s} {result.misses:8,d} "
            f"{result.stats.rt_consumption_rate:8.3f}"
        )


if __name__ == "__main__":
    main()
