"""Reuse-distance and miss-classification diagnostics for one frame.

Shows the policy-independent structure of a frame's LLC trace — the
reuse-distance histogram (what *any* cache of a given capacity could
catch) and the cold/capacity/conflict decomposition of each policy's
misses — the analyses used to calibrate the synthetic workloads against
the paper's characterization.

Run:  python examples/reuse_diagnostics.py [app]
"""

import sys

from repro import app_by_name, generate_frame_trace
from repro.analysis.misses import classify_misses
from repro.analysis.reuse import compute_reuse_profile
from repro.config import paper_baseline
from repro.streams import Stream

SCALE = 0.125


def main() -> None:
    app = app_by_name(sys.argv[1] if len(sys.argv) > 1 else "HAWX")
    system = paper_baseline(llc_mb=8, scale=SCALE)
    capacity = system.llc.num_sets * system.llc.ways
    trace = generate_frame_trace(app, 0, scale=SCALE)

    print(f"{trace.meta['name']}: {len(trace):,} LLC accesses, "
          f"LLC capacity {capacity:,} blocks\n")

    print("Reuse-distance histogram (all streams):")
    profile = compute_reuse_profile(trace)
    print(f"  cold (first touch): {profile.cold_fraction:6.1%}")
    previous = 0
    for bound, count in profile.histogram:
        label = f"[{previous}, {bound:g})"
        bar = "#" * int(60 * count / profile.accesses)
        print(f"  {label:18s} {count / profile.accesses:6.1%}  {bar}")
        previous = bound if bound != float("inf") else previous
    print(f"  fully-assoc LRU hit rate at LLC capacity: "
          f"{profile.hit_rate_at_capacity(capacity):.1%}")

    print("\nPer-stream texture profile:")
    tex = compute_reuse_profile(trace, stream=Stream.TEXTURE)
    print(f"  cold {tex.cold_fraction:.1%}, median warm distance "
          f"{tex.median_distance:,.0f} blocks")

    print("\nMiss classification (cold / capacity / conflict-or-policy):")
    print(f"  {'policy':10s} {'misses':>8s} {'cold':>7s} {'capacity':>9s} "
          f"{'conflict':>9s}")
    for policy in ("lru", "drrip", "gspc+ucd", "belady"):
        breakdown = classify_misses(trace, policy, system.llc)
        print(
            f"  {policy:10s} {breakdown.misses:8,d} "
            f"{breakdown.fraction('cold'):7.1%} "
            f"{breakdown.fraction('capacity'):9.1%} "
            f"{breakdown.fraction('conflict'):9.1%}"
        )
    print(
        "\nOnly the conflict/policy bucket (and, for far-sighted "
        "policies, part of\nthe capacity bucket) is addressable by "
        "replacement decisions."
    )


if __name__ == "__main__":
    main()
