"""Policy shootout: misses and frame rate for every evaluated policy.

Reproduces the flavour of the paper's Figures 12 and 15 on a handful of
applications, printing both normalized miss counts and the modeled
frames-per-second speedups.

Run:  python examples/policy_shootout.py [--apps N] [--scale S]
"""

import argparse

from repro import generate_frame_trace, simulate_trace
from repro.config import paper_baseline
from repro.analysis.tables import Table
from repro.gpu.timing import FrameTimingSimulator
from repro.workloads.apps import ALL_APPS

MISS_POLICIES = (
    "nru", "ship-mem", "gs-drrip", "gspztc", "gspztc+tse", "gspc+ucd",
)
PERF_POLICIES = ("nru+ucd", "gs-drrip+ucd", "gspc+ucd")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", type=int, default=4,
                        help="number of applications (default 4)")
    parser.add_argument("--scale", type=float, default=0.125)
    args = parser.parse_args()

    system = paper_baseline(llc_mb=8, scale=args.scale)
    simulator = FrameTimingSimulator(system)

    misses = Table(
        "LLC misses normalized to DRRIP (cf. Figure 12)",
        ["Application"] + [p.upper() for p in MISS_POLICIES],
    )
    perf = Table(
        "Speedup over DRRIP+UCD (cf. Figure 15)",
        ["Application"] + [p.upper() for p in PERF_POLICIES] + ["FPS"],
    )

    for app in ALL_APPS[: args.apps]:
        trace = generate_frame_trace(app, 0, scale=args.scale)
        baseline = simulate_trace(trace, "drrip", system.llc)
        misses.add_row(
            app.abbrev,
            *[
                simulate_trace(trace, p, system.llc).misses_normalized_to(
                    baseline
                )
                for p in MISS_POLICIES
            ],
        )
        timing_base = simulator.run(trace, "drrip+ucd")
        timings = [simulator.run(trace, p) for p in PERF_POLICIES]
        perf.add_row(
            app.abbrev,
            *[t.speedup_over(timing_base) for t in timings],
            timings[-1].fps_full_scale,
        )

    print(misses.render())
    print()
    print(perf.render())


if __name__ == "__main__":
    main()
