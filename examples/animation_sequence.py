"""Multi-frame animation sequences (a beyond-the-paper extension).

The paper evaluates 52 discrete frames.  With a shared resource
allocation, consecutive frames of one application exhibit *cross-frame*
reuse — static textures and shadow maps re-touched every frame — which
gives every policy more far-flung reuse to manage.  This example renders
a three-frame sequence and compares per-frame versus whole-sequence
policy behaviour.

Run:  python examples/animation_sequence.py
"""

from repro import simulate_trace
from repro.config import paper_baseline
from repro.workloads.apps import app_by_name
from repro.workloads.framegen import generate_frame_trace
from repro.workloads.sequence import generate_sequence_trace

SCALE = 0.125
POLICIES = ("drrip", "nru", "gspztc+tse", "gspc+ucd", "belady")


def main() -> None:
    system = paper_baseline(llc_mb=8, scale=SCALE)
    app = app_by_name("LostPlanet")

    sequence = generate_sequence_trace(app, num_frames=3, scale=SCALE)
    single = generate_frame_trace(app, 0, scale=SCALE)
    print(
        f"{app.abbrev}: single frame {len(single):,} accesses, "
        f"3-frame sequence {len(sequence):,} accesses\n"
    )

    print(f"{'policy':12s} {'frame miss%':>12s} {'sequence miss%':>15s} "
          f"{'seq/frame':>10s}")
    frame_base = None
    sequence_base = None
    for policy in POLICIES:
        frame_result = simulate_trace(single, policy, system.llc)
        sequence_result = simulate_trace(sequence, policy, system.llc)
        if policy == "drrip":
            frame_base, sequence_base = frame_result, sequence_result
        frame_ratio = frame_result.misses / frame_base.misses
        sequence_ratio = sequence_result.misses / sequence_base.misses
        print(
            f"{policy:12s} {100 * frame_result.misses / len(single):11.1f}% "
            f"{100 * sequence_result.misses / len(sequence):14.1f}% "
            f"   x{sequence_ratio / frame_ratio:.3f}"
        )
    print(
        "\nThe last column shows each policy's normalized misses on the "
        "sequence\nrelative to its single-frame value: below 1.0 means "
        "the policy benefits\nfrom the additional cross-frame reuse."
    )


if __name__ == "__main__":
    main()
