"""Worker-pool execution of :class:`~repro.parallel.jobs.SimJob` plans.

The pool runs a plan in two waves (trace generation, then
simulation/characterization) over a :class:`ProcessPoolExecutor` and
reports per-job wall times back to the caller.  Merging is trivially
deterministic: workers only *warm caches*; the experiment itself then
runs serially against those caches, so completion order can never leak
into tables, CSVs, or manifests.

``[k/N]`` progress lines are emitted from the parent process with a
monotonically increasing counter assigned at completion time, so they
stay ordered however the workers interleave.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.experiments.common import ExperimentConfig
from repro.faults import FaultSpec
from repro.obs.tracing import TraceContext
from repro.parallel.jobs import JobOutcome, SimJob, execute_job

#: progress callback: (completed_count, total, outcome)
ProgressFn = Callable[[int, int, JobOutcome], None]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Validate a ``--jobs`` value; ``0`` means one worker per CPU."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ParallelError(
            f"--jobs must be >= 0 (0 = one worker per CPU), got {jobs}"
        )
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclasses.dataclass
class ParallelReport:
    """Everything observable about one parallel execution."""

    workers: int
    wall_seconds: float
    outcomes: List[JobOutcome]

    @property
    def serial_seconds_estimate(self) -> float:
        """Sum of per-job wall times ≈ what a serial run would cost."""
        return sum(outcome.seconds for outcome in self.outcomes)

    @property
    def speedup(self) -> float:
        if self.wall_seconds <= 0:
            return 1.0
        return self.serial_seconds_estimate / self.wall_seconds

    def manifest_section(self) -> dict:
        """The run manifest's ``parallel`` section."""
        return {
            "workers": self.workers,
            "jobs": len(self.outcomes),
            "wall_seconds": self.wall_seconds,
            "serial_seconds_estimate": self.serial_seconds_estimate,
            "speedup": self.speedup,
            "per_job": [
                {
                    "job": outcome.job.label,
                    "seconds": outcome.seconds,
                    "spans": outcome.spans,
                }
                for outcome in self.outcomes
            ],
        }

    def events(self) -> List[dict]:
        """Every span event the workers shipped back, in plan order."""
        return [
            event for outcome in self.outcomes for event in outcome.events
        ]


def _waves(jobs: Sequence[SimJob]) -> List[List[SimJob]]:
    traces = [job for job in jobs if job.kind == "trace"]
    rest = [job for job in jobs if job.kind != "trace"]
    return [wave for wave in (traces, rest) if wave]


def run_jobs(
    jobs: Sequence[SimJob],
    config: ExperimentConfig,
    workers: int,
    progress: Optional[ProgressFn] = None,
    fault: Optional[FaultSpec] = None,
    trace_ctx: Optional[TraceContext] = None,
    trace_sample: int = 1,
) -> ParallelReport:
    """Execute ``jobs`` over ``workers`` processes.

    Jobs within a wave run concurrently; the trace wave completes
    before the sim/char wave starts so every frame is generated exactly
    once.  Outcomes are returned in plan order regardless of completion
    order.  ``workers == 1`` degenerates to in-process serial execution
    through the identical code path.

    ``fault`` injects a deterministic failure into the matching job's
    worker (testing only).  The pool has **no** recovery machinery: a
    crashed worker takes the whole run down with ``BrokenProcessPool``
    (and with ``workers == 1``, the calling process itself) — exactly
    the failure mode :mod:`repro.sweep` exists to survive.

    ``trace_ctx`` propagates the run's trace context into every worker;
    each outcome then carries the worker's span events
    (:meth:`ParallelReport.events` merges them for the trace exporter).
    """
    if workers < 1:
        raise ParallelError(f"worker count must be >= 1, got {workers}")
    started = time.perf_counter()
    outcomes: List[JobOutcome] = []
    total = len(jobs)
    completed = 0
    order = {job: ordinal for ordinal, job in enumerate(jobs, start=1)}

    def injection(job: SimJob) -> Optional[str]:
        if fault is not None and fault.matches(order[job], job.job_id, 1):
            return fault.kind
        return None

    def record(outcome: JobOutcome) -> None:
        nonlocal completed
        completed += 1
        outcomes.append(outcome)
        if progress is not None:
            progress(completed, total, outcome)

    if workers == 1:
        for job in jobs:
            record(
                execute_job(
                    job, config, injection(job), trace_ctx, trace_sample
                )
            )
    else:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            for wave in _waves(jobs):
                pending = {
                    executor.submit(
                        execute_job, job, config, injection(job), trace_ctx,
                        trace_sample,
                    )
                    for job in wave
                }
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        record(future.result())
    outcomes.sort(key=lambda outcome: order[outcome.job])
    return ParallelReport(
        workers=workers,
        wall_seconds=time.perf_counter() - started,
        outcomes=outcomes,
    )


# -- per-policy simulation fan-out (gspc-sim) --------------------------------

def _simulate_policy(
    trace,
    policy: str,
    llc_config,
    telemetry: bool,
    engine: str,
    trace_ctx: Optional[TraceContext] = None,
    trace_sample: int = 1,
) -> Tuple[str, object, Optional[dict], Optional[dict], str, list]:
    """Worker: replay one policy; returns pickled-down telemetry."""
    from repro.fastsim.dispatch import ENGINE_FAST, choose_engine
    from repro.obs.events import SamplingObserver
    from repro.obs.spans import SpanRecorder
    from repro.sim.offline import simulate_trace

    # An explicit --engine fast wins over telemetry: the fast kernels
    # have no observer hooks, so such runs record spans but no events.
    # Under auto, telemetry keeps the observer and therefore routes the
    # policy to the reference engine.
    observer = (
        SamplingObserver() if telemetry and engine != ENGINE_FAST else None
    )
    spans = SpanRecorder() if telemetry or trace_ctx is not None else None
    if trace_ctx is not None and spans is not None:
        from repro.obs import tracing

        child = trace_ctx.child(f"sim:{policy}")
        tracing.activate(child)
        spans.enable_events(context=child, sample_period=trace_sample)
    engine_used = choose_engine(engine, policy, observer)
    if trace_ctx is not None and spans is not None:
        # Root span = the worker's busy time, one top-level track event.
        with spans.span("sim"):
            result = simulate_trace(
                trace, policy, llc_config, observer=observer, spans=spans,
                engine=engine,
            )
    else:
        result = simulate_trace(
            trace, policy, llc_config, observer=observer, spans=spans,
            engine=engine,
        )
    return (
        result.policy,
        result,
        observer.summary() if observer is not None else None,
        spans.flat() if telemetry and spans is not None else None,
        engine_used,
        spans.events_payload() if spans is not None else [],
    )


def run_policy_sims(
    trace,
    policies: Sequence[str],
    llc_config,
    workers: int,
    telemetry: bool = False,
    engine: str = "auto",
    trace_ctx: Optional[TraceContext] = None,
    trace_sample: int = 1,
) -> List[Tuple[str, object, Optional[dict], Optional[dict], str, list]]:
    """Replay ``trace`` under each policy, fanned out over ``workers``.

    Results come back in ``policies`` order (not completion order), each
    as ``(resolved_name, SimResult, events_summary, spans_flat,
    engine_used, trace_events)`` where ``engine_used`` is
    ``"reference"`` or ``"fast"`` (the resolved choice, never
    ``"auto"``) and ``trace_events`` is the worker's span-event list
    (empty without a ``trace_ctx``).
    """
    if workers <= 1 or len(policies) <= 1:
        return [
            _simulate_policy(
                trace, policy, llc_config, telemetry, engine, trace_ctx,
                trace_sample,
            )
            for policy in policies
        ]
    with ProcessPoolExecutor(max_workers=min(workers, len(policies))) as pool:
        futures = [
            pool.submit(
                _simulate_policy, trace, policy, llc_config, telemetry,
                engine, trace_ctx, trace_sample,
            )
            for policy in policies
        ]
        return [future.result() for future in futures]
