"""Job decomposition for parallel experiment execution.

An experiment's expensive work is almost entirely per-(app, frame,
policy) offline simulations that share nothing with each other, so it
decomposes into independent :class:`SimJob` payloads:

* ``trace`` — generate (and disk-cache) one frame's LLC trace;
* ``sim`` — replay one frame under one policy (:func:`frame_result`);
* ``char`` — characterize one frame under one policy
  (:func:`frame_characterization`).

:func:`plan_for_experiment` derives the job list from the declarations
an experiment makes at :func:`~repro.experiments.common.register` time.
The plan is deduplicated and deterministically ordered; trace jobs form
a first *wave* so that every frame is generated exactly once before the
sim/char wave fans out (workers then load it from the on-disk cache
instead of regenerating it per policy).

Every payload here is spawn-safe: :func:`execute_job` is a module-level
function and both :class:`SimJob` and
:class:`~repro.experiments.common.ExperimentConfig` are small frozen
dataclasses, so they pickle cleanly under any multiprocessing start
method.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence

from repro.errors import ParallelError
from repro.experiments.common import (
    Experiment,
    ExperimentConfig,
    frame_spec_for,
    frame_trace,
    seed_frame_characterization,
    seed_frame_result,
)
from repro.obs.spans import SpanRecorder
from repro.obs.tracing import TraceContext
from repro.workloads.apps import FrameSpec, app_by_name

#: Job kinds in wave order: traces first, then simulations.
JOB_KINDS = ("trace", "sim", "char")


@dataclasses.dataclass(frozen=True, order=True)
class SimJob:
    """One independent unit of experiment work."""

    kind: str
    #: Application abbreviation (Table 1 name).
    app: str
    frame_index: int
    #: Policy name; empty for ``trace`` jobs.
    policy: str = ""

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ParallelError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if self.kind != "trace" and not self.policy:
            raise ParallelError(f"{self.kind} job needs a policy: {self}")

    @property
    def label(self) -> str:
        suffix = f" {self.policy}" if self.policy else ""
        return f"{self.kind} {self.app} f{self.frame_index}{suffix}"

    @property
    def job_id(self) -> str:
        """Stable, filesystem/journal-safe identity of this job.

        Used as the key of the sweep engine's result journal, so it must
        never depend on anything run-specific (ordering, timing, worker).
        """
        suffix = f":{self.policy}" if self.policy else ""
        return f"{self.kind}:{self.app}:f{self.frame_index}{suffix}"

    def spec(self, config: Optional[ExperimentConfig] = None) -> FrameSpec:
        """The frame this job targets, resolved through ``config``'s
        trace source (Table 1 synthesis when no config is given)."""
        if config is not None:
            return frame_spec_for(self.app, self.frame_index, config)
        return FrameSpec(app_by_name(self.app), self.frame_index)


@dataclasses.dataclass
class JobOutcome:
    """What one worker reported back for one job."""

    job: SimJob
    #: ``SimResult`` / ``FrameCharacterization`` / ``None`` for traces.
    value: object
    seconds: float
    #: Flat span breakdown recorded inside the worker.
    spans: dict
    #: Individual span events (see :mod:`repro.obs.tracing`); empty
    #: unless the caller passed a trace context to :func:`execute_job`.
    events: list = dataclasses.field(default_factory=list)


def plan_for_experiment(
    experiment: Experiment, config: ExperimentConfig
) -> List[SimJob]:
    """The deduplicated, deterministically ordered job list.

    Returns an empty list when the experiment declares no
    parallelizable work (it then runs serially, unchanged).
    """
    frames = config.frames() if experiment.needs_traces else []
    jobs: List[SimJob] = []
    if frames and config.cache_dir is not None:
        # Wave 1: each frame generated exactly once, published via the
        # concurrency-safe disk cache.  Pointless without a cache — the
        # generated trace could not reach the other workers.
        jobs.extend(
            SimJob("trace", spec.app.abbrev, spec.frame_index)
            for spec in frames
        )
    for policy in experiment.sim_policies:
        jobs.extend(
            SimJob("sim", spec.app.abbrev, spec.frame_index, policy)
            for spec in frames
        )
    for policy in experiment.char_policies:
        jobs.extend(
            SimJob("char", spec.app.abbrev, spec.frame_index, policy)
            for spec in frames
        )
    # Dedup preserving wave order; sort within a kind for determinism.
    unique = sorted(set(jobs), key=lambda j: (JOB_KINDS.index(j.kind), j))
    return unique


def execute_job(
    job: SimJob,
    config: ExperimentConfig,
    inject: Optional[str] = None,
    trace_ctx: Optional[TraceContext] = None,
    trace_sample: int = 1,
) -> JobOutcome:
    """Run one job to completion (worker-process entry point).

    ``inject`` threads deterministic fault injection (see
    :mod:`repro.faults`) through the entry point: ``"crash"`` hard-exits
    the process, ``"hang"`` sleeps past any deadline.  ``"corrupt"`` is
    payload-level and ignored here — only the sweep worker, which owns a
    serialized result payload, can apply it.

    ``trace_ctx`` switches the recorder into event mode: every span this
    job runs (wrapped under a root span named after the job kind, so the
    worker's busy time has one top-level event) comes back in
    :attr:`JobOutcome.events`, stamped with a per-job child context —
    the raw material of the run's merged Chrome/Perfetto timeline.
    ``trace_sample`` keeps every N-th completed span (overhead knob).
    """
    if inject in ("crash", "hang"):
        from repro import faults

        faults.fire(inject)
    spans = SpanRecorder()
    if trace_ctx is not None:
        from repro.obs import tracing

        child = trace_ctx.child(job.job_id) if not trace_ctx.job_id else trace_ctx
        tracing.activate(child)
        spans.enable_events(context=child, sample_period=trace_sample)
    started = time.perf_counter()
    spec = job.spec(config)
    with spans.span(job.kind):
        if job.kind == "trace":
            with spans.span("trace"):
                frame_trace(spec, config)
            value: object = None
        elif job.kind == "sim":
            from repro.sim.offline import simulate_trace

            with spans.span("trace"):
                trace = frame_trace(spec, config)
            value = simulate_trace(
                trace, job.policy, config.llc(), spans=spans,
                engine=config.engine,
            )
        else:  # char
            from repro.analysis.characterize import characterize_frame

            with spans.span("trace"):
                trace = frame_trace(spec, config)
            with spans.span("characterize"):
                value = characterize_frame(trace, job.policy, config.llc())
    seconds = time.perf_counter() - started
    return JobOutcome(
        job, value, seconds, spans.flat(), spans.events_payload()
    )


def seed_outcomes(
    outcomes: Sequence[JobOutcome], config: ExperimentConfig
) -> None:
    """Publish worker results into the in-process experiment caches.

    After seeding, a serial :meth:`Experiment.run` resolves every
    declared :func:`frame_result` / :func:`frame_characterization` call
    from cache — so its tables are byte-identical to a fully serial run
    by construction, independent of worker count or completion order.
    """
    for outcome in outcomes:
        if outcome.value is None:
            continue
        spec = outcome.job.spec(config)
        if outcome.job.kind == "sim":
            seed_frame_result(spec, outcome.job.policy, config, outcome.value)
        elif outcome.job.kind == "char":
            seed_frame_characterization(
                spec, outcome.job.policy, config, outcome.value
            )
