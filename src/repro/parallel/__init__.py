"""Parallel experiment execution (the ``--jobs`` engine).

Decomposes experiments into independent (app, frame, policy) simulation
jobs, fans them out over a process pool, and publishes the results into
the in-process experiment caches so the subsequent serial table build is
byte-identical to a fully serial run.  See ``docs/parallel.md``.
"""

from repro.parallel.jobs import (
    JobOutcome,
    SimJob,
    execute_job,
    plan_for_experiment,
    seed_outcomes,
)
from repro.parallel.pool import (
    ParallelReport,
    resolve_jobs,
    run_jobs,
    run_policy_sims,
)

__all__ = [
    "JobOutcome",
    "ParallelReport",
    "SimJob",
    "execute_job",
    "plan_for_experiment",
    "resolve_jobs",
    "run_jobs",
    "run_policy_sims",
    "seed_outcomes",
]
