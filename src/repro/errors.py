"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent.

    Raised eagerly at construction/validation time (e.g. a cache whose
    capacity is not a multiple of ``ways * block_bytes``), never lazily in
    the middle of a simulation.
    """


class TraceError(ReproError):
    """A trace file or trace container is malformed."""


class PolicyError(ReproError):
    """A replacement policy was misused or could not be constructed.

    Examples: requesting an unknown policy name from the registry, or
    running Belady's OPT without precomputed next-use information.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This always indicates a bug in the library (an invariant violation),
    not bad user input; it is raised instead of silently corrupting
    results.
    """


class WorkloadError(ReproError):
    """A synthetic workload description is invalid or cannot be generated."""


class ObservabilityError(ReproError):
    """The observability layer was misused (bad metric kind, invalid
    span nesting, malformed run manifest)."""


class ParallelError(ReproError):
    """The parallel execution engine was misconfigured (invalid worker
    count, unplannable job, or a worker returned an inconsistent
    result)."""


class WALError(ReproError):
    """A write-ahead log file could not be read (I/O failure — torn or
    corrupt *records* are rejected during replay, never raised)."""


class SweepError(ReproError):
    """A sweep specification, journal, fault spec, or retry policy is
    invalid, or a sweep worker shipped back an unusable result payload
    (missing file, corrupt JSON, checksum mismatch)."""


class ServeError(ReproError):
    """The simulation service was misconfigured, a submitted job spec is
    invalid, or a service-side computation failed permanently."""


class SourceError(ReproError):
    """A trace source is misconfigured or a capture cannot be ingested.

    Covers malformed source specifications (``"capture:..."`` /
    ``"replay:..."``), unreadable or truncated capture files, unknown
    stream tags under strict ingestion, and replay directories without a
    valid ``source.json`` manifest."""
