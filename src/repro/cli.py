"""gspc-sim — one-shot simulation CLI.

Simulate a trace (a saved ``.npz`` LLC trace, or a synthesized frame of
one of the twelve applications) under one or more policies and print
miss counts, per-stream hit rates, and optionally modeled FPS.

Examples::

    gspc-sim --app AssnCreed --policies drrip gspc+ucd belady
    gspc-sim --trace frame.npz --policies drrip gspc+ucd --llc-mb 16
    gspc-sim --app HAWX --frame 2 --scale 0.0625 --timing
    gspc-sim --app DMC --save-trace dmc0.npz
    gspc-sim --app AssnCreed --policies drrip gspc+ucd --metrics-out out/
    gspc-sim --app Heaven --policies drrip nru gspc belady --jobs 4
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from typing import List, Optional

from repro.analysis.tables import Table
from repro.config import DEFAULT_SCALE, paper_baseline
from repro.core.registry import available_policies
from repro.errors import ReproError
from repro.gpu.timing import FrameTimingSimulator
from repro.obs import log as obs_log
from repro.fastsim.dispatch import ENGINE_AUTO, ENGINES
from repro.obs.manifest import sim_manifest, timing_manifest, write_manifest
from repro.parallel import resolve_jobs, run_policy_sims
from repro.trace.io import load_trace, save_trace, trace_format
from repro.trace.record import Trace
from repro.trace.sources import SOURCE_SYNTHETIC, resolve_source, \
    validate_source_spec

#: Process exit-code convention shared by every gspc-* entry point
#: (see docs/observability.md): success, runtime failure, usage error,
#: partial failure (some jobs failed but the run completed gracefully).
EXIT_OK = 0
EXIT_RUNTIME = 1
EXIT_USAGE = 2
EXIT_PARTIAL = 3


def ensure_directory(directory: str, option: str) -> Optional[str]:
    """Create an output directory up front; error message on failure.

    Entry points call this before any simulation work so a bad ``--csv``
    / ``--metrics-out`` / ``--out`` path fails in milliseconds, not
    minutes in.  Returns ``None`` on success; the caller picks the exit
    code (conventions differ per entry point and are frozen).
    """
    try:
        os.makedirs(directory, exist_ok=True)
        return None
    except OSError as exc:
        return f"cannot create {option} directory {directory!r}: {exc}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gspc-sim", description="Simulate LLC policies on one trace."
    )
    source = parser.add_mutually_exclusive_group(required=False)
    source.add_argument(
        "--trace", help="path to a saved .gsct/.npz LLC trace"
    )
    source.add_argument(
        "--app",
        help="simulate a frame of this workload (a Table 1 name for the "
        "synthetic source, a captured workload name otherwise)",
    )
    parser.add_argument(
        "--trace-source",
        default=SOURCE_SYNTHETIC,
        metavar="SPEC",
        help="where frames come from: 'synthetic' (default), "
        "'capture:PATH' (ingest a capture on the fly) or 'replay:DIR' "
        "(gspc-ingest output); see docs/traces.md",
    )
    parser.add_argument("--frame", type=int, default=0, help="frame index")
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, help="linear frame scale"
    )
    parser.add_argument(
        "--policies",
        nargs="+",
        default=["drrip", "gspc+ucd"],
        help="policy names (first one is the normalization baseline)",
    )
    parser.add_argument("--llc-mb", type=int, default=8, help="LLC size in MB")
    parser.add_argument(
        "--timing", action="store_true", help="also run the frame-timing model"
    )
    parser.add_argument(
        "--save-trace", metavar="PATH", help="save the input trace and exit"
    )
    parser.add_argument(
        "--list-policies", action="store_true", help="list known policies"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate policies in N worker processes "
        "(0 = one per CPU; default: serial)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=ENGINE_AUTO,
        help="replay engine: the specialized fast kernels, the reference "
        "hook-driven simulator, or auto (fast whenever the policy is "
        "covered; identical results either way)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="DIR",
        help="write one JSON run manifest per policy into DIR",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write one merged Chrome/Perfetto trace JSON for the run "
        "(each policy simulation as its own track)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="keep every N-th span event (default 1 = all)",
    )
    parser.add_argument(
        "--metrics-text",
        metavar="FILE",
        help="also dump run metrics in Prometheus text format to FILE",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="logging level (default: $REPRO_LOG_LEVEL or WARNING)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug logging (shorthand for --log-level DEBUG)",
    )
    return parser


def _resolve_trace(args: argparse.Namespace) -> Trace:
    if args.trace:
        return load_trace(args.trace)
    source = resolve_source(args.trace_source)
    if args.app:
        workload = args.app
    elif args.trace_source == SOURCE_SYNTHETIC:
        workload = "BioShock"
    else:
        workload = source.workloads()[0].name
    return source.frame_trace(workload, args.frame, args.scale)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        obs_log.configure("DEBUG" if args.verbose else args.log_level)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    logger = obs_log.get_logger("cli")
    try:
        workers = resolve_jobs(args.jobs)
        if args.trace_sample < 1:
            raise ReproError(
                f"--trace-sample must be >= 1, got {args.trace_sample}"
            )
        validate_source_spec(args.trace_source)
        # Unknown trace extensions are caller mistakes; fail as usage
        # errors before any simulation work.
        if args.trace:
            trace_format(args.trace)
        if args.save_trace:
            trace_format(args.save_trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.obs import tracing

    ctx = tracing.activate(tracing.TraceContext.new_run("gspc-sim"))
    if args.list_policies:
        for name in available_policies():
            print(f"{name}  (also {name}+ucd)")
        return 0
    try:
        trace = _resolve_trace(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    logger.info(
        "trace %s ready: %d accesses", trace.meta.get("name", "?"), len(trace)
    )
    if args.save_trace:
        save_trace(trace, args.save_trace)
        print(f"saved {len(trace):,} accesses to {args.save_trace}")
        return 0
    if args.metrics_out:
        # Fail before simulating, not after, if the directory is unusable.
        problem = ensure_directory(args.metrics_out, "--metrics-out")
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return EXIT_RUNTIME

    system = paper_baseline(llc_mb=args.llc_mb, scale=args.scale)
    print(
        f"trace {trace.meta.get('name', '?')}: {len(trace):,} accesses; "
        f"LLC {system.llc.params.capacity_bytes // 1024} KB "
        f"{system.llc.ways}-way"
    )
    table = Table(
        "Offline simulation",
        ["Policy", "Misses", "vs baseline", "Hit rate", "TEX hit", "RT->TEX"],
    )
    baseline = None
    #: policy -> (SimResult, events summary, flat spans) for manifests.
    telemetry = {}
    if workers > 1:
        print(f"parallel: {len(args.policies)} policies over {workers} workers")
    wall_started = time.perf_counter()
    try:
        # Fans out over worker processes when --jobs > 1; results come
        # back in --policies order either way, so the table (and the
        # baseline normalization) is identical to a serial run.
        outcomes = run_policy_sims(
            trace,
            args.policies,
            system.llc,
            workers,
            telemetry=bool(args.metrics_out),
            engine=args.engine,
            trace_ctx=ctx if args.trace_out else None,
            trace_sample=args.trace_sample,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    wall_seconds = time.perf_counter() - wall_started
    for name, result, events_summary, spans_flat, engine_used, _ in outcomes:
        logger.info(
            "%s: %d misses, %.0f accesses/s replay",
            result.policy,
            result.misses,
            result.replay_accesses_per_second,
        )
        if baseline is None:
            baseline = result
        if args.metrics_out:
            telemetry[result.policy] = (
                result,
                events_summary,
                spans_flat,
                engine_used,
            )
        stats = result.stats
        table.add_row(
            result.policy.upper(),
            result.misses,
            result.misses_normalized_to(baseline),
            stats.hit_rate,
            stats.tex_hit_rate,
            stats.rt_consumption_rate,
        )
    parallel_section = None
    if workers > 1:
        serial_estimate = sum(
            result.elapsed_seconds for _, result, _, _, _, _ in outcomes
        )
        parallel_section = {
            "workers": workers,
            "jobs": len(outcomes),
            "wall_seconds": wall_seconds,
            "serial_seconds_estimate": serial_estimate,
            "speedup": (
                serial_estimate / wall_seconds if wall_seconds > 0 else 1.0
            ),
            "per_job": [
                {"job": f"sim {result.workload_name} {name}",
                 "seconds": result.elapsed_seconds}
                for name, result, _, _, _, _ in outcomes
            ],
        }
    print()
    print(table.render())
    manifest_config = {
        "llc": dataclasses.asdict(system.llc),
        "llc_mb": args.llc_mb,
        "scale": args.scale,
    }
    timings = {}
    if args.timing:
        simulator = FrameTimingSimulator(system)
        timing_table = Table(
            "Frame timing", ["Policy", "Frame ms", "FPS (full scale)", "Speedup"]
        )
        base_timing = None
        for policy in args.policies:
            timing = simulator.run(trace, policy)
            if base_timing is None:
                base_timing = timing
            timings[timing.policy] = timing
            timing_table.add_row(
                timing.policy.upper(),
                timing.frame_ns / 1e6,
                timing.fps_full_scale,
                timing.speedup_over(base_timing),
            )
        print()
        print(timing_table.render())
    if args.metrics_out:
        for policy, (
            result,
            events_summary,
            spans_flat,
            engine_used,
        ) in telemetry.items():
            manifest = sim_manifest(
                result,
                config=manifest_config,
                events_summary=events_summary,
                spans_flat=spans_flat,
                parallel=parallel_section,
                engine=engine_used,
            )
            path = write_manifest(manifest, args.metrics_out)
            print(f"wrote {path}")
        for policy, timing in timings.items():
            manifest = timing_manifest(
                timing, config=manifest_config, trace_meta=trace.meta
            )
            path = write_manifest(manifest, args.metrics_out)
            print(f"wrote {path}")
    if args.trace_out:
        from repro.obs.traceexport import build_chrome_trace, write_trace_file

        events = [
            event for _, _, _, _, _, trace_events in outcomes
            for event in trace_events
        ]
        chrome = build_chrome_trace(
            events,
            ctx.run_id,
            process_names={os.getpid(): "gspc-sim"},
            extra_metadata={"trace_name": trace.meta.get("name", "?")},
        )
        write_trace_file(chrome, args.trace_out)
        print(f"wrote trace: {args.trace_out} ({len(events)} events)")
    if args.metrics_text:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.traceexport import write_metrics_text

        registry = MetricsRegistry()
        registry.counter("sim.policies").inc(len(outcomes))
        registry.counter("sim.trace.accesses").inc(len(trace))
        registry.gauge("sim.wall_seconds").set(wall_seconds)
        replay_rate = registry.histogram("sim.replay_seconds")
        for _, result, _, _, _, _ in outcomes:
            registry.counter(f"sim.misses.{result.policy}").inc(result.misses)
            replay_rate.observe(result.replay_seconds)
        write_metrics_text(
            registry.snapshot(), args.metrics_text, {"run_id": ctx.run_id}
        )
        print(f"wrote metrics: {args.metrics_text}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
