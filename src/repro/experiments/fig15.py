"""Figure 15: rendering performance on the 8 MB LLC.

Frames-per-second of NRU, GS-DRRIP and GSPC normalized to DRRIP (all
with uncached displayable color, per Section 5.2).  Paper: NRU -7%,
GS-DRRIP +0.8%, GSPC +8.0% on average; GSPC delivers 26.1 FPS.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.tables import Table, mean
from repro.config import SystemConfig
from repro.experiments.common import (
    ExperimentConfig,
    frame_trace,
    group_frames_by_app,
    register,
)
from repro.gpu.timing import FrameTiming, FrameTimingSimulator

#: Per Section 5.2, the performance figures use the UCD variants.
POLICIES = ("nru+ucd", "gs-drrip+ucd", "gspc+ucd")
BASELINE = "drrip+ucd"


def performance_table(
    title: str,
    config: ExperimentConfig,
    system: SystemConfig,
    policies: Sequence[str] = POLICIES,
    baseline: str = BASELINE,
) -> Table:
    """Shared implementation for Figures 15-17."""
    simulator = FrameTimingSimulator(system)
    table = Table(
        title, ["Application"] + [p.upper() for p in policies] + ["FPS(best)"]
    )
    totals: Dict[str, List[float]] = {policy: [] for policy in policies}
    best_fps: List[float] = []
    for app, frames in group_frames_by_app(config.frames()).items():
        per_policy: Dict[str, List[float]] = {policy: [] for policy in policies}
        fps_app: List[float] = []
        for spec in frames:
            trace = frame_trace(spec, config)
            base = simulator.run(trace, baseline)
            timings: Dict[str, FrameTiming] = {
                policy: simulator.run(trace, policy) for policy in policies
            }
            for policy in policies:
                per_policy[policy].append(timings[policy].speedup_over(base))
            fps_app.append(timings[policies[-1]].fps_full_scale)
        table.add_row(
            app,
            *[mean(per_policy[policy]) for policy in policies],
            mean(fps_app),
        )
        for policy in policies:
            totals[policy].extend(per_policy[policy])
        best_fps.extend(fps_app)
    table.add_row(
        "Average", *[mean(totals[policy]) for policy in policies], mean(best_fps)
    )
    table.notes.append(
        f"speedups are relative to {baseline.upper()}; FPS column reports "
        f"{policies[-1].upper()} corrected to full frame resolution"
    )
    return table


@register(
    "fig15",
    "Performance on the 8 MB 16-way LLC (normalized to DRRIP)",
    "NRU loses ~7%; GS-DRRIP's miss savings barely convert (+0.8%); "
    "GSPC gains 8% on average.",
)
def run(config: ExperimentConfig) -> List[Table]:
    return [
        performance_table(
            "Figure 15: performance vs DRRIP (8 MB LLC)",
            config,
            config.system(),
        )
    ]
