"""Figure 1: LLC misses of NRU and Belady's OPT normalized to DRRIP.

Paper: NRU increases misses by 6.2% on average; Belady's OPT saves
36.6%, showing the headroom that motivates the study.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_result,
    group_frames_by_app,
    register,
)

POLICIES = ("nru", "belady")


@register(
    "fig01",
    "NRU and Belady's OPT misses normalized to DRRIP (8 MB, 16-way)",
    "NRU averages +6.2% misses vs DRRIP; Belady's optimal saves 36.6%.",
    sim_policies=("drrip",) + POLICIES,
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table(
        "Figure 1: LLC misses normalized to two-bit DRRIP",
        ["Application", "NRU", "Belady-OPT"],
    )
    columns = {policy: [] for policy in POLICIES}
    for app, frames in group_frames_by_app(config.frames()).items():
        per_policy = {policy: [] for policy in POLICIES}
        for spec in frames:
            baseline = frame_result(spec, "drrip", config)
            for policy in POLICIES:
                ratio = frame_result(spec, policy, config).misses_normalized_to(
                    baseline
                )
                per_policy[policy].append(ratio)
        row = [app] + [mean(per_policy[policy]) for policy in POLICIES]
        for policy in POLICIES:
            columns[policy].extend(per_policy[policy])
        table.add_row(*row)
    table.add_row("Average", *[mean(columns[policy]) for policy in POLICIES])
    table.notes.append("values < 1.0 mean fewer LLC misses than DRRIP")
    return [table]
