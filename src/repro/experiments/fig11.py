"""Figure 11: GSPZTC sensitivity to the threshold parameter t.

Paper: with t in {2, 4, 8, 16} the average miss count barely moves, but
a few applications suffer with t = 2 or 4; t = 8 is the most robust
and is the default throughout the paper (and this library).
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.core.gspztc import GSPZTCPolicy
from repro.experiments.common import (
    ExperimentConfig,
    frame_trace,
    group_frames_by_app,
    register,
)
from repro.sim.offline import simulate_trace

T_VALUES = (2, 4, 8, 16)
REFERENCE_T = 16


@register(
    "fig11",
    "GSPZTC miss-count sensitivity to t (relative to t=16)",
    "All four power-of-two t values are close on average; t=8 is the "
    "most robust across applications.",
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table(
        "Figure 11: percent change in LLC misses vs t=16 (GSPZTC)",
        ["Application"] + [f"t={t}" for t in T_VALUES],
    )
    totals = {t: [] for t in T_VALUES}
    llc = config.llc()
    for app, frames in group_frames_by_app(config.frames()).items():
        per_t = {t: [] for t in T_VALUES}
        for spec in frames:
            trace = frame_trace(spec, config)
            misses = {
                t: simulate_trace(trace, GSPZTCPolicy(t=t), llc).misses
                for t in T_VALUES
            }
            reference = max(1, misses[REFERENCE_T])
            for t in T_VALUES:
                per_t[t].append(100.0 * (misses[t] - reference) / reference)
        table.add_row(app, *[mean(per_t[t]) for t in T_VALUES])
        for t in T_VALUES:
            totals[t].extend(per_t[t])
    table.add_row("Average", *[mean(totals[t]) for t in T_VALUES])
    table.notes.append("positive = more misses than t=16")
    return [table]
