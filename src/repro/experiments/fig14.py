"""Figure 14: iso-overhead comparison at four replacement-state bits.

GSPC needs four state bits per block (two RRPV + two stream-state), so
the paper compares it against LRU, four-bit DRRIP and four-bit GS-DRRIP
(paper: LRU +7.2%, DRRIP4 -0.4%, GS-DRRIP4 -1.7%, GSPC -11.8% misses
vs two-bit DRRIP).
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_result,
    group_frames_by_app,
    register,
)

POLICIES = ("lru", "drrip4", "gs-drrip4", "gspc+ucd")


@register(
    "fig14",
    "Iso-overhead policies (4 replacement-state bits) vs two-bit DRRIP",
    "At equal state cost, GSPC far outperforms LRU and the four-bit "
    "RRIP variants.",
    sim_policies=("drrip",) + POLICIES,
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table(
        "Figure 14: LLC misses normalized to two-bit DRRIP "
        "(iso-overhead: 4 state bits/block)",
        ["Application"] + [p.upper() for p in POLICIES],
    )
    totals = {policy: [] for policy in POLICIES}
    for app, frames in group_frames_by_app(config.frames()).items():
        per_policy = {policy: [] for policy in POLICIES}
        for spec in frames:
            baseline = frame_result(spec, "drrip", config)
            for policy in POLICIES:
                per_policy[policy].append(
                    frame_result(spec, policy, config).misses_normalized_to(
                        baseline
                    )
                )
        table.add_row(app, *[mean(per_policy[policy]) for policy in POLICIES])
        for policy in POLICIES:
            totals[policy].extend(per_policy[policy])
    table.add_row("Average", *[mean(totals[policy]) for policy in POLICIES])
    return [table]
