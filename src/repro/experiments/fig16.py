"""Figure 16: rendering performance on a 16 MB LLC.

Paper: the trends of Figure 15 persist and GSPC's average speedup grows
to 11.8% vs DRRIP (and its absolute frame rate improves 24.1% over its
own 8 MB result).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig, register
from repro.experiments.fig15 import performance_table


@register(
    "fig16",
    "Performance on a 16 MB 16-way LLC (normalized to DRRIP)",
    "A larger LLC preserves the policy ordering; GSPC still wins.",
)
def run(config: ExperimentConfig) -> List[Table]:
    big = dataclasses.replace(config, llc_mb=16)
    return [
        performance_table(
            "Figure 16: performance vs DRRIP (16 MB LLC)",
            big,
            big.system(),
        )
    ]
