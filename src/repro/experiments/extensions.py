"""Extension experiments beyond the paper's evaluation.

* **Texture bypass** — GSPC already inserts probably-dead textures at
  the distant RRPV; the bypass extension refuses to install them at
  all (legal in a non-inclusive LLC).  How much further does that go?
* **Multi-frame sequences** — the paper evaluates discrete frames;
  across consecutive frames of an animation, persistent resources give
  every policy more far reuse to protect.  Does the policy ordering
  survive?
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import ExperimentConfig, frame_result, register
from repro.sim.offline import simulate_trace
from repro.workloads.apps import ALL_APPS
from repro.workloads.sequence import generate_sequence_trace

SEQ_POLICIES = ("drrip", "nru", "gspztc+tse", "gspc+ucd", "belady")


@register(
    "extensions",
    "Beyond the paper: texture bypass and multi-frame sequences",
    "Extensions enabled by this library; not results from the paper.",
    sim_policies=(
        "drrip", "gspc", "gspc+bypass", "gspc+ucd", "gspc+bypass+ucd"
    ),
)
def run(config: ExperimentConfig) -> List[Table]:
    frames = config.frames()

    bypass = Table(
        "Extension A: dead-texture bypass (misses normalized to DRRIP)",
        ["Policy", "Normalized misses"],
    )
    for policy in ("gspc", "gspc+bypass", "gspc+ucd", "gspc+bypass+ucd"):
        ratios = []
        for spec in frames:
            baseline = frame_result(spec, "drrip", config)
            ratios.append(
                frame_result(spec, policy, config).misses_normalized_to(baseline)
            )
        bypass.add_row(policy.upper(), mean(ratios))

    sequences = Table(
        "Extension B: two-frame animation sequences "
        "(misses normalized to DRRIP)",
        ["Application"] + [p.upper() for p in SEQ_POLICIES if p != "drrip"],
    )
    totals = {policy: [] for policy in SEQ_POLICIES if policy != "drrip"}
    llc = config.llc()
    for app in ALL_APPS[:: max(1, len(ALL_APPS) // 6)]:
        trace = generate_sequence_trace(app, num_frames=2, scale=config.scale)
        baseline = simulate_trace(trace, "drrip", llc)
        row = [app.abbrev]
        for policy in totals:
            ratio = simulate_trace(trace, policy, llc).misses_normalized_to(
                baseline
            )
            totals[policy].append(ratio)
            row.append(ratio)
        sequences.add_row(*row)
    sequences.add_row(
        "Average", *[mean(totals[policy]) for policy in totals]
    )
    return [bypass, sequences]
