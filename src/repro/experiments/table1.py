"""Table 1: details of the DirectX applications."""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table
from repro.experiments.common import ExperimentConfig, register
from repro.workloads.apps import ALL_APPS


@register(
    "table1",
    "Details of the DirectX applications",
    "Twelve applications (eight games, four benchmarks), DirectX 10/11, "
    "three resolutions, 52 frames total.",
    needs_traces=False,
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table(
        "Table 1: Details of the DirectX applications",
        ["Application", "Abbrev", "DirectX", "Resolution", "Frames"],
    )
    for app in ALL_APPS:
        table.add_row(
            app.name,
            app.abbrev,
            app.dx_version,
            f"{app.width_px}x{app.height_px}",
            app.num_frames,
        )
    table.add_row("Total", "", "", "", sum(a.num_frames for a in ALL_APPS))
    if config.scale != 1.0:
        table.notes.append(
            f"frames are synthesized at linear scale {config.scale:g}; "
            "the resolutions above are the paper-scale targets"
        )
    return [table]
