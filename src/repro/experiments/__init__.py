"""Reproduction of every table and figure in the paper's evaluation.

Each ``figNN``/``tableN`` module exposes ``run(config) -> Table`` (or a
list of Tables) printing the same rows/series the paper reports; the
``runner`` module provides the command-line entry point
(``python -m repro.experiments.runner --list``).
"""

from repro.experiments.common import ExperimentConfig, EXPERIMENTS, get_experiment

__all__ = ["ExperimentConfig", "EXPERIMENTS", "get_experiment"]
