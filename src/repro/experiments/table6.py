"""Table 6: the evaluated policies."""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table
from repro.core.registry import policy_spec
from repro.experiments.common import ExperimentConfig, register

EVALUATED = [
    "drrip",
    "nru",
    "ship-mem",
    "gs-drrip",
    "gspztc",
    "gspztc+tse",
    "gspc",
    "gspc+ucd",
    "drrip+ucd",
]


@register(
    "table6",
    "Evaluated policies",
    "The policy roster of Table 6.",
    needs_traces=False,
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table("Table 6: Evaluated policies", ["Policy", "Description"])
    for name in EVALUATED:
        spec = policy_spec(name)
        table.add_row(spec.name.upper(), spec.description)
    return [table]
