"""Command-line experiment runner.

Examples::

    gspc-experiments --list
    gspc-experiments fig12
    gspc-experiments fig12 --jobs 4
    gspc-experiments fig01 fig05 --frames-per-app 2 --scale 0.125
    gspc-experiments --all --full --csv out/ --jobs 0
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.config import DEFAULT_SCALE
from repro.errors import ReproError
from repro.experiments.common import (
    ExperimentConfig,
    all_experiments,
    get_experiment,
)
from repro.fastsim.dispatch import ENGINE_AUTO, ENGINES
from repro.obs import log as obs_log
from repro.obs.manifest import experiment_manifest, write_manifest
from repro.obs.spans import SpanRecorder
from repro.parallel import (
    plan_for_experiment,
    resolve_jobs,
    run_jobs,
    seed_outcomes,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gspc-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig01, fig04, ..., table1, table6)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--all", action="store_true", help="run everything")
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"linear frame scale (default {DEFAULT_SCALE}; 1.0 = paper)",
    )
    parser.add_argument(
        "--frames-per-app",
        type=int,
        default=1,
        help="frames per application (default 1)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use all 52 frames (overrides --frames-per-app)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the trace cache"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes (0 = one per CPU; default: serial)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=ENGINE_AUTO,
        help="replay engine for offline simulations (auto picks the fast "
        "kernels whenever the policy is covered; results are identical)",
    )
    parser.add_argument(
        "--trace-source",
        default="synthetic",
        metavar="SPEC",
        help="where frame traces come from: 'synthetic' (default), "
        "'capture:PATH' or 'replay:DIR' (see docs/traces.md)",
    )
    parser.add_argument(
        "--csv", metavar="DIR", help="also write each table as CSV into DIR"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="DIR",
        help="write one JSON run manifest per experiment into DIR",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write one merged Chrome/Perfetto trace JSON covering every "
        "experiment in this invocation",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="keep every N-th span event (default 1 = all)",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="logging level (default: $REPRO_LOG_LEVEL or WARNING)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug logging (shorthand for --log-level DEBUG)",
    )
    return parser


def _job_progress(completed: int, total: int, outcome) -> None:
    """Ordered ``[k/N]`` per-job line (counter assigned at completion)."""
    print(f"  [{completed}/{total}] {outcome.job.label} ({outcome.seconds:.2f}s)")


def run_experiments(
    ids: List[str],
    config: ExperimentConfig,
    csv_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    workers: int = 1,
    trace_out: Optional[str] = None,
    trace_sample: int = 1,
) -> int:
    logger = obs_log.get_logger("experiments")
    from repro.obs import tracing

    ctx = tracing.activate(tracing.TraceContext.new_run("gspc-experiments"))
    collected_events: List[dict] = []
    total = len(ids)
    for position, experiment_id in enumerate(ids, start=1):
        experiment = get_experiment(experiment_id)
        print(f"\n[{position}/{total}] {experiment.id}: {experiment.title}")
        print(f"paper claim: {experiment.paper_claim}")
        logger.info("starting %s (%d/%d)", experiment.id, position, total)
        spans = SpanRecorder()
        if trace_out:
            spans.enable_events(
                sample_period=trace_sample,
                context=ctx.child(experiment.id),
            )
        started = time.perf_counter()
        report = None
        # try/finally so an experiment that raises cannot leave the
        # recorder with open spans (and skew the others' aggregates).
        try:
            if workers > 1:
                plan = plan_for_experiment(experiment, config)
                if plan:
                    logger.info(
                        "%s: fanning %d jobs over %d workers",
                        experiment.id, len(plan), workers,
                    )
                    print(f"parallel: {len(plan)} jobs over {workers} workers")
                    with spans.span("parallel"):
                        report = run_jobs(
                            plan, config, workers, progress=_job_progress,
                            trace_ctx=ctx if trace_out else None,
                            trace_sample=trace_sample,
                        )
                    seed_outcomes(report.outcomes, config)
                    logger.info(
                        "%s: parallel wave done in %.2fs (serial estimate "
                        "%.2fs, speedup %.2fx)",
                        experiment.id,
                        report.wall_seconds,
                        report.serial_seconds_estimate,
                        report.speedup,
                    )
            with spans.span("run"):
                tables = experiment.run(config)
        finally:
            spans.abandon_open_spans()
            if trace_out:
                collected_events.extend(spans.events_payload())
                if report is not None:
                    collected_events.extend(report.events())
        elapsed = time.perf_counter() - started
        for table_index, table in enumerate(tables):
            print()
            print(table.render())
            if csv_dir:
                os.makedirs(csv_dir, exist_ok=True)
                path = os.path.join(
                    csv_dir, f"{experiment.id}_{table_index}.csv"
                )
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(table.to_csv())
        if metrics_dir:
            manifest = experiment_manifest(
                experiment.id,
                experiment.title,
                config=config,
                elapsed_seconds=elapsed,
                tables=tables,
                spans=spans,
                parallel=report.manifest_section() if report else None,
            )
            path = write_manifest(manifest, metrics_dir)
            print(f"wrote {path}")
        print(f"[{position}/{total}] {experiment.id} completed in {elapsed:.1f}s")
    if trace_out:
        from repro.obs.traceexport import build_chrome_trace, write_trace_file

        chrome = build_chrome_trace(
            collected_events,
            ctx.run_id,
            process_names={os.getpid(): "gspc-experiments"},
            extra_metadata={"experiments": list(ids)},
        )
        write_trace_file(chrome, trace_out)
        print(f"wrote trace: {trace_out} ({len(collected_events)} events)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        obs_log.configure("DEBUG" if args.verbose else args.log_level)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = all_experiments()
    if args.list or (not args.experiments and not args.all):
        print("Available experiments:")
        for experiment in sorted(registry.values(), key=lambda e: e.id):
            print(f"  {experiment.id:8s} {experiment.title}")
        return 0
    ids = sorted(registry) if args.all else args.experiments
    unknown = [id for id in ids if id.strip().lower() not in registry]
    if unknown:
        print(
            "error: unknown experiment id(s): " + ", ".join(sorted(unknown)),
            file=sys.stderr,
        )
        print(
            "valid ids: " + ", ".join(sorted(registry)), file=sys.stderr
        )
        return 2
    try:
        workers = resolve_jobs(args.jobs)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Fail before running experiments — not minutes into a simulation —
    # if an output directory cannot be created.
    from repro.cli import EXIT_USAGE, ensure_directory

    for option, directory in (("--csv", args.csv),
                              ("--metrics-out", args.metrics_out)):
        if not directory:
            continue
        problem = ensure_directory(directory, option)
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return EXIT_USAGE
    if args.trace_sample < 1:
        print(
            f"error: --trace-sample must be >= 1, got {args.trace_sample}",
            file=sys.stderr,
        )
        return 2
    from repro.trace.sources import validate_source_spec

    try:
        validate_source_spec(args.trace_source)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    config = ExperimentConfig(
        scale=args.scale,
        frames_per_app=None if args.full else args.frames_per_app,
        cache_dir=None if args.no_cache else ".repro_cache",
        engine=args.engine,
        source=args.trace_source,
    )
    return run_experiments(
        ids,
        config,
        args.csv,
        args.metrics_out,
        workers=workers,
        trace_out=args.trace_out,
        trace_sample=args.trace_sample,
    )


if __name__ == "__main__":
    sys.exit(main())
