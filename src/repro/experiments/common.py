"""Shared infrastructure for the experiment modules.

* :class:`ExperimentConfig` — scale, frame selection, LLC size, cache
  directory.
* Frame-trace caching — synthetic frames are deterministic, so they are
  generated once per (app, frame, scale) and memoised on disk.
* Result caching — offline simulation results are memoised in-process so
  experiments that share (frame, policy) runs do not recompute them.
* The experiment registry used by the CLI runner and the benchmarks.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.characterize import FrameCharacterization, characterize_frame
from repro.analysis.tables import Table
from repro.config import DEFAULT_SCALE, LLCConfig, SystemConfig, paper_baseline
from repro.errors import ReproError
from repro.sim.offline import simulate_trace
from repro.sim.results import SimResult
from repro.trace.io import load_trace, save_trace
from repro.trace.record import Trace
from repro.trace.sources import SOURCE_SYNTHETIC, resolve_source
from repro.workloads.apps import FrameSpec


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment."""

    #: Linear frame scale (1.0 = the paper's resolutions).
    scale: float = DEFAULT_SCALE
    #: Frames per application (None = every frame; 52 total).
    frames_per_app: Optional[int] = 1
    #: LLC capacity in MB before scaling (8 MB baseline, 16 MB Fig 16).
    llc_mb: int = 8
    #: Directory for memoised frame traces (None disables the cache).
    cache_dir: Optional[str] = ".repro_cache"
    #: Replay engine for offline simulations ("reference", "fast", or
    #: "auto").  Deliberately absent from the result-cache key: engines
    #: are result-identical, so cached entries are engine-agnostic.
    engine: str = "auto"
    #: Trace source spec: ``"synthetic"`` (the built-in renderer),
    #: ``"capture:PATH"`` or ``"replay:DIR"``
    #: (see :mod:`repro.trace.sources`).
    source: str = SOURCE_SYNTHETIC

    def system(self) -> SystemConfig:
        return paper_baseline(llc_mb=self.llc_mb, scale=self.scale)

    def llc(self) -> LLCConfig:
        return self.system().llc

    def trace_source(self):
        """The resolved :class:`~repro.trace.sources.TraceSource`."""
        return resolve_source(self.source)

    def frames(self) -> List[FrameSpec]:
        frames = self.trace_source().frames()
        if self.frames_per_app is None:
            return frames
        taken: Dict[str, int] = {}
        limited: List[FrameSpec] = []
        for spec in frames:
            count = taken.get(spec.app.abbrev, 0)
            if count < self.frames_per_app:
                limited.append(spec)
                taken[spec.app.abbrev] = count + 1
        return limited


# -- frame trace cache ---------------------------------------------------------

def frame_trace(spec: FrameSpec, config: ExperimentConfig) -> Trace:
    """The LLC trace of one frame, memoised on disk.

    The cache namespace keys on the source's content identity
    (:meth:`~repro.trace.sources.TraceSource.cache_token`): the
    synthetic source keeps the legacy flat layout, capture sources get
    a per-digest subdirectory (so two captures sharing workload/frame
    names never collide), and sources whose files are already
    replay-ready (``replay:``) bypass the cache entirely.
    """
    source = config.trace_source()
    token = source.cache_token()
    if config.cache_dir is None or token is None:
        return source.frame_trace(spec.app.abbrev, spec.frame_index, config.scale)
    stem = f"{spec.app.abbrev}_f{spec.frame_index}_s{config.scale:g}"
    traces_dir = os.path.join(config.cache_dir, "traces")
    if token:
        traces_dir = os.path.join(traces_dir, token)
    path = os.path.join(traces_dir, stem + ".gsct")
    # Columnar entries memmap zero-copy; pre-columnar caches left behind
    # ``.npz`` entries, which stay readable instead of being regenerated.
    legacy = os.path.join(traces_dir, stem + ".npz")
    for candidate in (path, legacy):
        if os.path.exists(candidate):
            try:
                return load_trace(candidate)
            except ReproError:
                pass  # stale/corrupt cache entry: regenerate below
    trace = source.frame_trace(spec.app.abbrev, spec.frame_index, config.scale)
    save_trace(trace, path)
    return trace


def frame_spec_for(
    workload: str, frame_index: int, config: ExperimentConfig
) -> FrameSpec:
    """Resolve a (workload, frame) pair through the config's source.

    The source-aware replacement for ``app_by_name`` + ``FrameSpec`` —
    capture/replay workloads are not Table 1 applications.
    """
    return config.trace_source().frame_spec(workload, frame_index)


# -- in-process result caches ----------------------------------------------------

_SIM_CACHE: Dict[Tuple, SimResult] = {}
_CHAR_CACHE: Dict[Tuple, FrameCharacterization] = {}


def _cache_key(spec: FrameSpec, policy: str, config: ExperimentConfig) -> Tuple:
    return (
        config.source,
        spec.app.abbrev,
        spec.frame_index,
        policy,
        config.scale,
        config.llc_mb,
    )


def frame_result(
    spec: FrameSpec, policy: str, config: ExperimentConfig
) -> SimResult:
    """Offline simulation of one (frame, policy), memoised in-process."""
    key = _cache_key(spec, policy, config)
    if key not in _SIM_CACHE:
        _SIM_CACHE[key] = simulate_trace(
            frame_trace(spec, config), policy, config.llc(), engine=config.engine
        )
    return _SIM_CACHE[key]


def frame_characterization(
    spec: FrameSpec, policy: str, config: ExperimentConfig
) -> FrameCharacterization:
    """Characterization of one (frame, policy), memoised in-process."""
    key = _cache_key(spec, policy, config)
    if key not in _CHAR_CACHE:
        _CHAR_CACHE[key] = characterize_frame(
            frame_trace(spec, config), policy, config.llc()
        )
    return _CHAR_CACHE[key]


def seed_frame_result(
    spec: FrameSpec, policy: str, config: ExperimentConfig, result: SimResult
) -> None:
    """Inject a precomputed :func:`frame_result` into the in-process cache.

    Used by :mod:`repro.parallel` to publish worker-process results so a
    subsequent serial :meth:`Experiment.run` replays entirely from cache.
    """
    _SIM_CACHE[_cache_key(spec, policy, config)] = result


def seed_frame_characterization(
    spec: FrameSpec,
    policy: str,
    config: ExperimentConfig,
    characterization: FrameCharacterization,
) -> None:
    """Inject a precomputed :func:`frame_characterization` (see above)."""
    _CHAR_CACHE[_cache_key(spec, policy, config)] = characterization


def clear_result_caches() -> None:
    _SIM_CACHE.clear()
    _CHAR_CACHE.clear()


def app_average(values_by_frame: Dict[str, List[float]]) -> Dict[str, float]:
    """Collapse per-frame values into per-application averages."""
    return {
        app: sum(values) / len(values)
        for app, values in values_by_frame.items()
        if values
    }


def group_frames_by_app(
    frames: Sequence[FrameSpec],
) -> Dict[str, List[FrameSpec]]:
    grouped: Dict[str, List[FrameSpec]] = {}
    for spec in frames:
        grouped.setdefault(spec.app.abbrev, []).append(spec)
    return grouped


# -- experiment registry -----------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Experiment:
    """A registered reproduction of one paper table/figure.

    ``sim_policies`` / ``char_policies`` declare the per-frame
    :func:`frame_result` / :func:`frame_characterization` calls the
    experiment will issue, so :mod:`repro.parallel` can precompute them
    in worker processes.  ``needs_traces`` marks experiments that read
    frame traces at all (``False`` for pure-metadata tables), letting
    the planner skip the trace-generation wave entirely.  Declarations
    are an optimization hint, never a correctness requirement: anything
    undeclared simply runs serially inside :meth:`run`.
    """

    id: str
    title: str
    paper_claim: str
    run: Callable[[ExperimentConfig], List[Table]]
    #: Policies simulated per frame via :func:`frame_result`.
    sim_policies: Tuple[str, ...] = ()
    #: Policies characterized per frame via :func:`frame_characterization`.
    char_policies: Tuple[str, ...] = ()
    #: Whether the experiment reads frame traces at all.
    needs_traces: bool = True


EXPERIMENTS: Dict[str, Experiment] = {}


def register(
    id: str,
    title: str,
    paper_claim: str,
    sim_policies: Sequence[str] = (),
    char_policies: Sequence[str] = (),
    needs_traces: bool = True,
):
    """Decorator registering an experiment entry point."""

    def wrap(func: Callable[[ExperimentConfig], List[Table]]) -> Callable:
        EXPERIMENTS[id] = Experiment(
            id,
            title,
            paper_claim,
            func,
            sim_policies=tuple(sim_policies),
            char_policies=tuple(char_policies),
            needs_traces=needs_traces,
        )
        return func

    return wrap


def get_experiment(id: str) -> Experiment:
    key = id.strip().lower()
    if key not in EXPERIMENTS:
        # Import the experiment modules lazily so the registry fills in.
        _import_all()
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(f"unknown experiment {id!r}; known: {known}")
    return EXPERIMENTS[key]


def _import_all() -> None:
    from repro.experiments import (  # noqa: F401
        ablation,
        extensions,
        fig01,
        fig04,
        fig05,
        fig06,
        fig07,
        fig08,
        fig09,
        fig11,
        fig12,
        fig13,
        fig14,
        fig15,
        fig16,
        fig17,
        table1,
        table6,
        timing_models,
    )


def all_experiments() -> Dict[str, Experiment]:
    _import_all()
    return dict(EXPERIMENTS)
