"""Figure 4: stream-wise distribution of LLC accesses.

Paper: render target ~40% and texture sampler ~34% dominate; Z is the
only other stream above 10%; HiZ ~7%, vertex ~4%, the rest ~2%.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_trace,
    group_frames_by_app,
    register,
)
from repro.streams import ALL_STREAMS
from repro.trace.stats import compute_trace_stats


@register(
    "fig04",
    "Stream-wise distribution of LLC accesses",
    "RT ~40%, TEX ~34%, Z >=10%, HiZ ~7%, VTX ~4%, rest ~2%.",
)
def run(config: ExperimentConfig) -> List[Table]:
    headers = ["Application"] + [s.short_name for s in ALL_STREAMS]
    table = Table("Figure 4: LLC access mix (%)", headers)
    totals = {stream: [] for stream in ALL_STREAMS}
    for app, frames in group_frames_by_app(config.frames()).items():
        per_stream = {stream: [] for stream in ALL_STREAMS}
        for spec in frames:
            stats = compute_trace_stats(frame_trace(spec, config))
            for stream in ALL_STREAMS:
                per_stream[stream].append(100.0 * stats.stream_fraction(stream))
        row = [app] + [mean(per_stream[stream]) for stream in ALL_STREAMS]
        for stream in ALL_STREAMS:
            totals[stream].extend(per_stream[stream])
        table.add_row(*row)
    table.add_row("Average", *[mean(totals[stream]) for stream in ALL_STREAMS])
    return [table]
