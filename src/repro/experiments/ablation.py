"""Ablation study of GSPC's design choices.

Not a paper figure — this dissects *why* GSPC works by toggling one
ingredient at a time, all measured as misses normalized to DRRIP:

* the policy ladder itself (GS-DRRIP -> GSPZTC -> +TSE -> GSPC -> +UCD),
  isolating the contribution of each Section-3 refinement;
* the sampling ratio (how many dedicated SRRIP sets feed the counters);
* the counter width (8-bit FILL/HIT vs narrower);
* static texture insertion choices (the paper's "filling it with RRPV
  two hurts performance" claim for texture blocks).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.analysis.tables import Table, mean
from repro.core.gspztc import GSPZTCPolicy
from repro.experiments.common import (
    ExperimentConfig,
    frame_result,
    frame_trace,
    register,
)
from repro.sim.offline import simulate_trace

LADDER = ("gs-drrip", "gspztc", "gspztc+tse", "gspc", "gspc+ucd")


class _TexRRPV2GSPZTC(GSPZTCPolicy):
    """GSPZTC variant inserting protected textures at RRPV 2 instead of
    0 — the alternative the paper explicitly rejects in Section 3."""

    name = "gspztc-tex2"

    def on_fill(self, ctx, way):
        super().on_fill(ctx, way)
        if not ctx.is_sample and ctx.sclass == 1:  # TEX
            slot = ctx.set_index * self.geometry.ways + way
            if self.rrpv[slot] == 0:
                self.rrpv[slot] = self.long_rrpv


@register(
    "ablation",
    "Ablation of GSPC's design ingredients",
    "Each Section-3 refinement contributes; sampled probabilities need "
    "enough sample sets; protected textures must enter at RRPV 0.",
    sim_policies=("drrip",) + LADDER,
)
def run(config: ExperimentConfig) -> List[Table]:
    frames = config.frames()
    llc = config.llc()

    ladder = Table(
        "Ablation A: the policy ladder (misses normalized to DRRIP)",
        ["Policy", "Normalized misses"],
    )
    for policy in LADDER:
        ratios = []
        for spec in frames:
            baseline = frame_result(spec, "drrip", config)
            ratios.append(
                frame_result(spec, policy, config).misses_normalized_to(baseline)
            )
        ladder.add_row(policy.upper(), mean(ratios))

    sampling = Table(
        "Ablation B: sample-set period (GSPZTC misses vs DRRIP)",
        ["Sample period", "Sample sets", "Normalized misses"],
    )
    for period in (4, 8, 16, 32):
        if period > llc.num_sets // 2:
            continue
        variant = dataclasses.replace(llc, sample_period=period)
        ratios = []
        for spec in frames:
            trace = frame_trace(spec, config)
            baseline = simulate_trace(trace, "drrip", variant)
            result = simulate_trace(trace, "gspztc", variant)
            ratios.append(result.misses_normalized_to(baseline))
        sampling.add_row(period, llc.num_sets // period, mean(ratios))

    counters = Table(
        "Ablation C: counter width (GSPZTC misses vs DRRIP)",
        ["FILL/HIT bits", "Normalized misses"],
    )
    for bits in (4, 6, 8):
        ratios = []
        for spec in frames:
            trace = frame_trace(spec, config)
            baseline = simulate_trace(trace, "drrip", llc)
            result = simulate_trace(
                trace, GSPZTCPolicy(counter_bits=bits), llc
            )
            ratios.append(result.misses_normalized_to(baseline))
        counters.add_row(bits, mean(ratios))

    tex_insert = Table(
        "Ablation D: protected-texture insertion RRPV (Section 3 claim)",
        ["Variant", "Normalized misses"],
    )
    for label, policy in (
        ("TEX at RRPV 0 (paper)", "gspztc"),
        ("TEX at RRPV 2", None),
    ):
        ratios = []
        for spec in frames:
            trace = frame_trace(spec, config)
            baseline = simulate_trace(trace, "drrip", llc)
            instance = policy if policy else _TexRRPV2GSPZTC()
            result = simulate_trace(trace, instance, llc)
            ratios.append(result.misses_normalized_to(baseline))
        tex_insert.add_row(label, mean(ratios))

    render_caches = _render_cache_ablation(config)

    return [ladder, sampling, counters, tex_insert, render_caches]


def _render_cache_ablation(config: ExperimentConfig) -> Table:
    """Replay identical command streams through render caches of
    different sizes: how much short-range reuse do they keep away from
    the LLC, and how does that change GSPC's edge?"""
    from repro.config import RenderCachesConfig
    from repro.workloads.apps import ALL_APPS
    from repro.workloads.replay import capture_frame_commands, replay_command_list

    table = Table(
        "Ablation E: render-cache capacity "
        "(same command streams, different filtering)",
        ["Render caches", "LLC accesses", "GSPC+UCD vs DRRIP"],
    )
    apps = ALL_APPS[:: max(1, len(ALL_APPS) // 4)]
    command_lists = [
        capture_frame_commands(app, 0, scale=config.scale) for app in apps
    ]
    llc = config.llc()
    reference = config.scale**1.25
    for label, factor in (
        ("quarter", reference / 4),
        ("baseline", reference),
        ("4x", min(1.0, reference * 4)),
    ):
        caches = RenderCachesConfig().scaled(factor)
        lengths = []
        ratios = []
        for command_list in command_lists:
            trace = replay_command_list(command_list, caches)
            lengths.append(len(trace))
            baseline = simulate_trace(trace, "drrip", llc)
            result = simulate_trace(trace, "gspc+ucd", llc)
            ratios.append(result.misses_normalized_to(baseline))
        table.add_row(label, int(mean(lengths)), mean(ratios))
    return table
