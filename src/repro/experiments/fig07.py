"""Figure 7: texture epochs under Belady's OPT.

Upper panel: distribution of intra-stream texture hits over epochs
(paper: E0 79%, E1 15%, E2 4%, E>=3 2%).  Lower panel: death ratio of
each epoch (paper: E0 0.81, E1 0.73, E2 0.53).
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_characterization,
    group_frames_by_app,
    register,
)

EPOCH_LABELS = ("E0", "E1", "E2", "E>=3")


@register(
    "fig07",
    "Texture epochs under OPT: hit distribution and death ratios",
    "Most intra-stream texture hits come from E0, yet E0/E1 death "
    "ratios are high (0.81/0.73) and only E2 is ~half alive.",
    char_policies=("belady",),
)
def run(config: ExperimentConfig) -> List[Table]:
    grouped = group_frames_by_app(config.frames())
    upper = Table(
        "Figure 7 upper: intra-stream texture hits by epoch (%)",
        ["Application"] + list(EPOCH_LABELS),
    )
    lower = Table(
        "Figure 7 lower: texture epoch death ratios",
        ["Application", "E0", "E1", "E2"],
    )
    hit_totals = [[] for _ in EPOCH_LABELS]
    death_totals = [[] for _ in range(3)]
    for app, frames in grouped.items():
        hits_app = [[] for _ in EPOCH_LABELS]
        deaths_app = [[] for _ in range(3)]
        for spec in frames:
            epochs = frame_characterization(spec, "belady", config).tex_epochs
            distribution = epochs.hit_distribution()
            for index in range(len(EPOCH_LABELS)):
                hits_app[index].append(100.0 * distribution[index])
            for epoch in range(3):
                deaths_app[epoch].append(epochs.death_ratio(epoch))
        upper.add_row(app, *[mean(h) for h in hits_app])
        lower.add_row(app, *[mean(d) for d in deaths_app])
        for index in range(len(EPOCH_LABELS)):
            hit_totals[index].extend(hits_app[index])
        for epoch in range(3):
            death_totals[epoch].extend(deaths_app[epoch])
    upper.add_row("Average", *[mean(h) for h in hit_totals])
    lower.add_row("Average", *[mean(d) for d in death_totals])
    return [upper, lower]
