"""Cross-validation of the two GPU timing models.

The windowed throughput model (:mod:`repro.gpu.timing`) and the
event-driven queueing model (:mod:`repro.gpu.detailed`) make different
simplifications; the reproduction's performance claims (Figures 15-17)
should not depend on which one is used.  This experiment reports both
models' speedups for the key policies side by side.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import ExperimentConfig, frame_trace, register
from repro.gpu.detailed import DetailedGPUSimulator
from repro.gpu.timing import FrameTimingSimulator

POLICIES = ("nru+ucd", "gspc+ucd", "belady+ucd")
BASELINE = "drrip+ucd"


@register(
    "timing",
    "Windowed vs event-driven timing model cross-validation",
    "Both timing models must agree on the direction of every speedup.",
)
def run(config: ExperimentConfig) -> List[Table]:
    system = config.system()
    windowed = FrameTimingSimulator(system)
    detailed = DetailedGPUSimulator(system)
    table = Table(
        "Timing-model cross-validation: speedup over DRRIP+UCD",
        ["Policy", "Windowed model", "Detailed model", "FPS (win)", "FPS (det)"],
    )
    frames = config.frames()
    per_policy = {
        policy: {"w": [], "d": [], "wf": [], "df": []} for policy in POLICIES
    }
    for spec in frames:
        trace = frame_trace(spec, config)
        base_w = windowed.run(trace, BASELINE)
        base_d = detailed.run(trace, BASELINE)
        for policy in POLICIES:
            timing_w = windowed.run(trace, policy)
            timing_d = detailed.run(trace, policy)
            bucket = per_policy[policy]
            bucket["w"].append(timing_w.speedup_over(base_w))
            bucket["d"].append(timing_d.speedup_over(base_d))
            bucket["wf"].append(timing_w.fps_full_scale)
            bucket["df"].append(timing_d.fps_full_scale)
    for policy in POLICIES:
        bucket = per_policy[policy]
        table.add_row(
            policy.upper(),
            mean(bucket["w"]),
            mean(bucket["d"]),
            mean(bucket["wf"]),
            mean(bucket["df"]),
        )
    table.notes.append(
        "speedups > 1.0 mean faster than the DRRIP+UCD baseline"
    )
    return [table]
