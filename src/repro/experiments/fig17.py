"""Figure 17: sensitivity to faster DRAM and a weaker GPU.

Upper panel: dual-channel DDR3-1867 10-10-10 (paper: GSPC +7.1%, NRU
-7%).  Lower panel: a less aggressive GPU with 512 thread contexts and
eight samplers (paper: GSPC +5.9%, NRU -5.3%) — internal bottlenecks
damp memory-system sensitivity, but GSPC keeps winning.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.analysis.tables import Table
from repro.config import DDR3_1867, GPU_SMALL
from repro.experiments.common import ExperimentConfig, register
from repro.experiments.fig15 import performance_table

POLICIES = ("nru+ucd", "gspc+ucd")


@register(
    "fig17",
    "Sensitivity: DDR3-1867 DRAM and a 64-core / 8-sampler GPU",
    "GSPC's speedup shrinks but survives under faster DRAM and a "
    "weaker GPU; NRU keeps losing.",
)
def run(config: ExperimentConfig) -> List[Table]:
    fast_dram = dataclasses.replace(config.system(), dram=DDR3_1867)
    small_gpu = dataclasses.replace(config.system(), gpu=GPU_SMALL)
    return [
        performance_table(
            "Figure 17 upper: performance vs DRRIP (DDR3-1867 10-10-10)",
            config,
            fast_dram,
            policies=POLICIES,
        ),
        performance_table(
            "Figure 17 lower: performance vs DRRIP (64 cores, 8 samplers)",
            config,
            small_gpu,
            policies=POLICIES,
        ),
    ]
