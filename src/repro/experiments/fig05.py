"""Figure 5: per-stream hit rates under OPT, DRRIP, and NRU.

Paper averages: texture 53.4 / 22.0 / 18.4 %, render target
59.8 / 50.1 / 41.5 %, Z 77.1 / ~58 / ~58 % for OPT / DRRIP / NRU.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_result,
    group_frames_by_app,
    register,
)

POLICIES = ("belady", "drrip", "nru")
PANELS = (
    ("tex_hit_rate", "texture sampler"),
    ("rt_hit_rate", "render target"),
    ("z_hit_rate", "Z"),
)


@register(
    "fig05",
    "Texture / render-target / Z hit rates for OPT, DRRIP, NRU",
    "OPT's texture hit rate dwarfs DRRIP/NRU; the RT gap is small; the "
    "Z gap is moderate.",
    sim_policies=POLICIES,
)
def run(config: ExperimentConfig) -> List[Table]:
    tables: List[Table] = []
    grouped = group_frames_by_app(config.frames())
    for attribute, label in PANELS:
        table = Table(
            f"Figure 5 ({label} hit rate, %)",
            ["Application"] + [p.upper() for p in POLICIES],
        )
        totals = {policy: [] for policy in POLICIES}
        for app, frames in grouped.items():
            per_policy = {policy: [] for policy in POLICIES}
            for spec in frames:
                for policy in POLICIES:
                    stats = frame_result(spec, policy, config).stats
                    per_policy[policy].append(100.0 * getattr(stats, attribute))
            table.add_row(
                app, *[mean(per_policy[policy]) for policy in POLICIES]
            )
            for policy in POLICIES:
                totals[policy].extend(per_policy[policy])
        table.add_row("Average", *[mean(totals[policy]) for policy in POLICIES])
        tables.append(table)
    return tables
