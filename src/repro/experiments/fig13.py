"""Figure 13: how the policies move the four key rates.

Texture-sampler hit rate, render-target-to-texture consumption rate,
render-target (blending) hit rate and Z hit rate, averaged over all
frames, for the policy progression DRRIP -> GS-DRRIP -> GSPZTC ->
GSPZTC+TSE -> GSPC -> GSPC+UCD (paper: the texture and consumption
rates climb through the GSPC family; GSPC's RT hit rate approaches
Belady's).
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import ExperimentConfig, frame_result, register

POLICIES = (
    "belady",
    "drrip",
    "nru",
    "gs-drrip",
    "gspztc",
    "gspztc+tse",
    "gspc",
    "gspc+ucd",
)
METRICS = (
    ("tex_hit_rate", "TEX hit rate"),
    ("rt_consumption_rate", "RT->TEX consumption"),
    ("rt_hit_rate", "RT (blending) hit rate"),
    ("z_hit_rate", "Z hit rate"),
)


@register(
    "fig13",
    "Texture/consumption/RT/Z rates per policy (averaged over frames)",
    "The GSPC family raises texture hit and RT-consumption rates; GSPC "
    "recovers the Z hit rate that static RT protection costs.",
    sim_policies=POLICIES,
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table(
        "Figure 13: key rates per policy (%, averaged over frames)",
        ["Policy"] + [label for _, label in METRICS],
    )
    frames = config.frames()
    for policy in POLICIES:
        values = {attribute: [] for attribute, _ in METRICS}
        for spec in frames:
            stats = frame_result(spec, policy, config).stats
            for attribute, _ in METRICS:
                values[attribute].append(100.0 * getattr(stats, attribute))
        table.add_row(
            policy.upper(), *[mean(values[attribute]) for attribute, _ in METRICS]
        )
    return [table]
