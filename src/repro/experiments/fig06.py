"""Figure 6: inter- vs intra-stream texture reuse.

Upper panel: texture hits split into inter-stream (render-target
consumption) and intra-stream, normalized to OPT's texture hits.
Lower panel: percentage of render-target blocks consumed by the
samplers through LLC hits (paper: OPT 51%, DRRIP 16%, NRU 13% average;
Assassin's Creed up to 90% potential).
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_result,
    group_frames_by_app,
    register,
)

POLICIES = ("belady", "drrip", "nru")


@register(
    "fig06",
    "Inter- vs intra-stream texture hits; RT-to-TEX consumption",
    "~55% of OPT's texture hits are inter-stream; OPT consumes ~51% of "
    "render targets, DRRIP 16%, NRU 13%.",
    sim_policies=POLICIES,
)
def run(config: ExperimentConfig) -> List[Table]:
    grouped = group_frames_by_app(config.frames())
    upper = Table(
        "Figure 6 upper: texture hits by reuse type "
        "(fraction of OPT's texture hits)",
        ["Application"]
        + [f"{p.upper()}-{kind}" for p in POLICIES for kind in ("inter", "intra")],
    )
    lower = Table(
        "Figure 6 lower: render targets consumed as texture (%)",
        ["Application"] + [p.upper() for p in POLICIES],
    )
    upper_totals = {(p, k): [] for p in POLICIES for k in ("inter", "intra")}
    lower_totals = {policy: [] for policy in POLICIES}
    for app, frames in grouped.items():
        upper_app = {key: [] for key in upper_totals}
        lower_app = {policy: [] for policy in POLICIES}
        for spec in frames:
            opt_hits = max(
                1,
                frame_result(spec, "belady", config).stats.tex_inter_hits
                + frame_result(spec, "belady", config).stats.tex_intra_hits,
            )
            for policy in POLICIES:
                stats = frame_result(spec, policy, config).stats
                upper_app[(policy, "inter")].append(
                    stats.tex_inter_hits / opt_hits
                )
                upper_app[(policy, "intra")].append(
                    stats.tex_intra_hits / opt_hits
                )
                lower_app[policy].append(100.0 * stats.rt_consumption_rate)
        upper.add_row(app, *[mean(upper_app[key]) for key in upper_totals])
        lower.add_row(app, *[mean(lower_app[policy]) for policy in POLICIES])
        for key in upper_totals:
            upper_totals[key].extend(upper_app[key])
        for policy in POLICIES:
            lower_totals[policy].extend(lower_app[policy])
    upper.add_row("Average", *[mean(upper_totals[key]) for key in upper_totals])
    lower.add_row("Average", *[mean(lower_totals[policy]) for policy in POLICIES])
    return [upper, lower]
