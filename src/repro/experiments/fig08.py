"""Figure 8: render-target and texture fills at the distant RRPV in DRRIP.

Paper: two-bit DRRIP fills ~36% of texture blocks and ~25% of render
target blocks with RRPV = 3 — the texture percentage "needs to be much
higher", the render-target one hurts inter-stream reuse.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_result,
    group_frames_by_app,
    register,
)
from repro.streams import StreamClass


@register(
    "fig08",
    "Percentage of RT and TEX fills with RRPV=3 under two-bit DRRIP",
    "DRRIP inserts ~36% of texture and ~25% of render-target fills at "
    "the distant RRPV.",
    sim_policies=("drrip",),
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table(
        "Figure 8: fills at RRPV=3 in two-bit DRRIP (%)",
        ["Application", "RT fills", "TEX fills"],
    )
    rt_totals, tex_totals = [], []
    for app, frames in group_frames_by_app(config.frames()).items():
        rt_app, tex_app = [], []
        for spec in frames:
            fractions = frame_result(spec, "drrip", config).extras[
                "fill_distant_fraction"
            ]
            rt_app.append(100.0 * fractions[StreamClass.RT.name])
            tex_app.append(100.0 * fractions[StreamClass.TEX.name])
        table.add_row(app, mean(rt_app), mean(tex_app))
        rt_totals.extend(rt_app)
        tex_totals.extend(tex_app)
    table.add_row("Average", mean(rt_totals), mean(tex_totals))
    return [table]
