"""Figure 12: LLC misses of all evaluated policies normalized to DRRIP.

The paper's central miss-count comparison: NRU +6.2%, SHiP-mem ~0,
GS-DRRIP -2.9%, GSPZTC -4.8%, GSPZTC+TSE -11.5%, GSPC -11.7%,
GSPC+UCD -13.1%, DRRIP+UCD ~0 on average across 52 frames.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_result,
    group_frames_by_app,
    register,
)

POLICIES = (
    "nru",
    "ship-mem",
    "gs-drrip",
    "gspztc",
    "gspztc+tse",
    "gspc",
    "gspc+ucd",
    "drrip+ucd",
)


@register(
    "fig12",
    "LLC misses of all policies normalized to two-bit DRRIP",
    "GSPC+UCD saves the most misses; each GSPC refinement helps; NRU "
    "hurts; SHiP-mem and DRRIP+UCD are ~neutral.",
    sim_policies=("drrip",) + POLICIES,
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table(
        "Figure 12: LLC misses normalized to DRRIP",
        ["Application"] + [p.upper() for p in POLICIES],
    )
    totals = {policy: [] for policy in POLICIES}
    for app, frames in group_frames_by_app(config.frames()).items():
        per_policy = {policy: [] for policy in POLICIES}
        for spec in frames:
            baseline = frame_result(spec, "drrip", config)
            for policy in POLICIES:
                per_policy[policy].append(
                    frame_result(spec, policy, config).misses_normalized_to(
                        baseline
                    )
                )
        table.add_row(app, *[mean(per_policy[policy]) for policy in POLICIES])
        for policy in POLICIES:
            totals[policy].extend(per_policy[policy])
    table.add_row("Average", *[mean(totals[policy]) for policy in POLICIES])
    table.notes.append("values < 1.0 mean fewer LLC misses than DRRIP")
    return [table]
