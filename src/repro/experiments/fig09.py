"""Figure 9: Z-stream epoch death ratios under Belady's OPT.

Paper: E0 0.61, E1 0.38, E2 0.26 — unlike textures, only the youngest
Z blocks die often, so GSPC tracks a single collective Z probability.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table, mean
from repro.experiments.common import (
    ExperimentConfig,
    frame_characterization,
    group_frames_by_app,
    register,
)


@register(
    "fig09",
    "Z-stream epoch death ratios under OPT",
    "Z death ratios fall quickly with epoch (0.61 / 0.38 / 0.26): "
    "Z blocks that survive one reuse keep being reused.",
    char_policies=("belady",),
)
def run(config: ExperimentConfig) -> List[Table]:
    table = Table(
        "Figure 9: Z epoch death ratios (Belady's OPT)",
        ["Application", "E0", "E1", "E2"],
    )
    totals = [[] for _ in range(3)]
    for app, frames in group_frames_by_app(config.frames()).items():
        per_epoch = [[] for _ in range(3)]
        for spec in frames:
            epochs = frame_characterization(spec, "belady", config).z_epochs
            for epoch in range(3):
                per_epoch[epoch].append(epochs.death_ratio(epoch))
        table.add_row(app, *[mean(values) for values in per_epoch])
        for epoch in range(3):
            totals[epoch].extend(per_epoch[epoch])
    table.add_row("Average", *[mean(values) for values in totals])
    return [table]
