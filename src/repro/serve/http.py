"""A minimal asyncio HTTP/1.1 JSON server — no dependencies.

Just enough HTTP for the service's API: request line, headers,
``Content-Length`` body, one request per connection (``Connection:
close``).  Bounded reads throughout, so a misbehaving client cannot
balloon memory.  JSON in, JSON out.

Routes (see :mod:`repro.serve.service` for semantics):

========  =========================  ===========================================
method    path                       meaning
========  =========================  ===========================================
POST      /v1/jobs                   submit a sweep spec (``{"spec": {...}}``
                                     or the bare spec object)
GET       /v1/jobs/<key>             job status
GET       /v1/jobs/<key>/result      finished result payload
GET       /v1/stats                  service counters + store stats
GET       /v1/healthz                liveness probe
POST      /v1/shutdown               graceful shutdown
========  =========================  ===========================================
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from typing import Dict, Optional, Tuple

from repro.errors import ServeError
from repro.serve.service import SimulationService

#: Upper bounds on what one request may ship.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the handful of statuses the API uses.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


@dataclasses.dataclass
class Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        if not self.body:
            raise ServeError("request body is empty, expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Request:
    """Parse one HTTP/1.1 request (raises ServeError on anything off)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        raise ServeError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ServeError("request head exceeds the size limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ServeError("request head exceeds the size limit")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ServeError(f"malformed request line {lines[0]!r}")
    method, path, _ = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ServeError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ServeError(f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ServeError(f"unacceptable Content-Length {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ServeError("connection closed mid-body") from exc
    return Request(method, path, headers, body)


def encode_response(status: int, payload: object) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def route(
    service: SimulationService, request: Request
) -> Tuple[int, object, str]:
    """Dispatch one request; returns (status, payload, route label)."""
    method, path = request.method, request.path.split("?", 1)[0]
    if path == "/v1/healthz":
        if method != "GET":
            return 405, {"error": "use GET"}, "healthz"
        return 200, {"ok": True, "run_id": service.ctx.run_id}, "healthz"
    if path == "/v1/stats":
        if method != "GET":
            return 405, {"error": "use GET"}, "stats"
        return 200, service.stats(), "stats"
    if path == "/v1/shutdown":
        if method != "POST":
            return 405, {"error": "use POST"}, "shutdown"
        service.stop_event.set()
        return 200, {"ok": True, "stopping": True}, "shutdown"
    if path == "/v1/jobs":
        if method != "POST":
            return 405, {"error": "use POST"}, "submit"
        data = request.json()
        spec = data.get("spec", data) if isinstance(data, dict) else data
        entry = service.submit(spec)
        status = 200 if entry.status == "done" else 202
        return status, entry.view(), "submit"
    if path.startswith("/v1/jobs/"):
        rest = path[len("/v1/jobs/"):]
        key, _, tail = rest.partition("/")
        if tail == "" and method == "GET":
            entry = service.status(key)
            if entry is None:
                return 404, {"error": f"unknown job {key!r}"}, "status"
            return 200, entry.view(), "status"
        if tail == "result" and method == "GET":
            entry = service.status(key)
            if entry is None:
                return 404, {"error": f"unknown job {key!r}"}, "result"
            if entry.status == "failed":
                return 409, entry.view(), "result"
            payload = service.result(key)
            if payload is None:
                return 409, entry.view(), "result"
            return 200, payload, "result"
        return 404, {"error": f"no route for {method} {path}"}, "unknown"
    return 404, {"error": f"no route for {method} {path}"}, "unknown"


async def handle_connection(
    service: SimulationService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    started = time.perf_counter()
    label = "bad-request"
    try:
        try:
            request = await read_request(reader)
        except ServeError as exc:
            writer.write(encode_response(400, {"error": str(exc)}))
        else:
            try:
                status, payload, label = route(service, request)
            except ServeError as exc:
                status, payload, label = 400, {"error": str(exc)}, "error"
            except Exception as exc:  # pragma: no cover - defensive
                status, payload, label = (
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                    "error",
                )
            writer.write(encode_response(status, payload))
        await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        service.observe_request(label, time.perf_counter() - started)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_http_server(
    service: SimulationService, host: str, port: int
) -> Tuple[asyncio.AbstractServer, int]:
    """Bind and start serving; returns (server, bound port)."""

    async def handler(reader, writer):
        await handle_connection(service, reader, writer)

    try:
        server = await asyncio.start_server(
            handler, host, port, limit=MAX_HEADER_BYTES
        )
    except OSError as exc:
        raise ServeError(f"cannot bind {host}:{port}: {exc}") from exc
    bound: Optional[int] = None
    for sock in server.sockets:
        bound = sock.getsockname()[1]
        break
    if bound is None:  # pragma: no cover - start_server always binds
        raise ServeError(f"no socket bound for {host}:{port}")
    return server, bound


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "Request",
    "encode_response",
    "handle_connection",
    "read_request",
    "route",
    "start_http_server",
]
