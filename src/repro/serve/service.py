"""The simulation service: job lifecycle, memoization, coalescing.

:class:`SimulationService` is the event-loop-side state machine behind
``gspc-serve``.  A submitted sweep spec is hashed to its content
address (:func:`repro.serve.store.result_key`); the service then

* serves the result straight from the :class:`~repro.serve.store.ResultStore`
  when the key is already stored (*cache hit* — nothing runs);
* attaches the submission to the in-flight computation when the same
  key is already being computed (*coalescing* — identical concurrent
  submissions compute exactly once);
* otherwise schedules one computation on a bounded worker pool.

Computations run :func:`compute_sweep` — the exact
:class:`~repro.sweep.exec.SweepRunner` + per-attempt worker-process
stack ``gspc-sweep`` uses, journal included — in a pool thread, so the
event loop never blocks and a crash mid-computation leaves a resumable
journal behind.  The finished payload is durably stored (WAL first)
*before* the job flips to ``done``, which makes the service crash-safe
by construction: any result a client ever saw as done survives a
``kill -9``.

All service state is mutated only from the event-loop thread; pool
threads hand results back through ``run_in_executor`` futures.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import shutil
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional

from repro.errors import ReproError, ServeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceCollector, TraceContext
from repro.serve.store import ResultStore, code_version, result_key
from repro.sweep.exec import ProcessLauncher, RetryPolicy, SweepRunner
from repro.sweep.journal import Journal, journal_path, replay
from repro.sweep.report import results_csv
from repro.sweep.spec import SweepSpec, expand

#: Job states a client can observe.
JOB_STATUSES = ("running", "done", "failed")


def compute_sweep(
    spec: SweepSpec,
    key: str,
    scratch_root: str,
    cache_dir: Optional[str],
    workers: int = 1,
    trace_ctx: Optional[TraceContext] = None,
    retry: RetryPolicy = RetryPolicy(),
) -> Dict[str, object]:
    """Run one sweep to completion and shape its service result payload.

    The scratch directory is keyed by the cache key, so a computation
    killed mid-run resumes from its own journal on the next submission
    of the same spec — completed jobs are never re-executed even when
    the *result* never made it to the store.  The scratch tree is
    removed once the payload is built (the store holds the result from
    then on).
    """
    sweep_dir = os.path.join(scratch_root, key[:16])
    jobs = expand(spec)
    state = replay(journal_path(sweep_dir))
    launcher = ProcessLauncher(
        spec,
        cache_dir,
        os.path.join(sweep_dir, "tmp"),
        trace_ctx=trace_ctx,
    )
    with Journal(journal_path(sweep_dir)) as journal:
        outcome = SweepRunner(
            jobs, journal=journal, launcher=launcher,
            workers=workers, retry=retry,
        ).run(state)
    if outcome.failures:
        job_id, failure = next(iter(outcome.failures.items()))
        raise ServeError(
            f"{len(outcome.failures)} of {len(jobs)} jobs failed permanently "
            f"(first: {job_id}: {failure.get('kind')}: {failure.get('error')})"
        )
    payload: Dict[str, object] = {
        "key": key,
        "spec": spec.to_dict(),
        "engine": spec.engine,
        "code_version": code_version(),
        "jobs": {
            "total": len(jobs),
            "sims": sum(1 for job in jobs if job.kind == "sim"),
        },
        # Deterministic per-job payloads in plan order — the same dicts
        # a gspc-sweep manifest carries in its ``metrics`` section.
        "results": {
            job.job_id: outcome.completed[job.job_id]
            for job in jobs
            if job.kind == "sim"
        },
        # Byte-identical to the results.csv a direct gspc-sweep run of
        # this spec writes (same plan order, same payloads, same
        # formatter) — CI's serve-smoke gate diffs exactly this.
        "results_csv": results_csv(jobs, outcome.completed),
    }
    shutil.rmtree(sweep_dir, ignore_errors=True)
    return payload


@dataclasses.dataclass
class JobEntry:
    """One submitted key's lifecycle, as clients observe it."""

    key: str
    spec: SweepSpec
    status: str = "running"
    #: Result came straight from the store, nothing computed.
    cached: bool = False
    #: Later submissions that attached to this in-flight computation.
    coalesced: int = 0
    #: Total submissions that resolved to this entry.
    submissions: int = 1
    seconds: float = 0.0
    error: str = ""
    submitted_unix: float = dataclasses.field(default_factory=time.time)

    def view(self) -> Dict[str, object]:
        """The JSON shape of this entry on the status endpoints."""
        data: Dict[str, object] = {
            "key": self.key,
            "status": self.status,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "submissions": self.submissions,
            "seconds": self.seconds,
            "submitted_unix": self.submitted_unix,
            "spec": self.spec.to_dict(),
        }
        if self.error:
            data["error"] = self.error
        return data


class SimulationService:
    """Event-loop-side job manager over a bounded computation pool."""

    def __init__(
        self,
        store: ResultStore,
        *,
        scratch_dir: str,
        cache_dir: Optional[str] = None,
        pool_size: int = 2,
        sweep_workers: int = 1,
        ctx: Optional[TraceContext] = None,
        compute: Optional[
            Callable[[SweepSpec, str, Optional[TraceContext]], Dict[str, object]]
        ] = None,
    ) -> None:
        if pool_size < 1:
            raise ServeError(f"pool size must be >= 1, got {pool_size}")
        if sweep_workers < 1:
            raise ServeError(
                f"sweep worker count must be >= 1, got {sweep_workers}"
            )
        self.store = store
        self.scratch_dir = scratch_dir
        self.cache_dir = cache_dir
        self.pool_size = pool_size
        self.sweep_workers = sweep_workers
        self.ctx = ctx or TraceContext.new_run("gspc-serve")
        self.collector = TraceCollector(self.ctx)
        self._compute = compute or self._compute_sweep
        self._executor = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="gspc-serve-pool"
        )
        #: key -> in-flight entry (status "running").
        self._inflight: Dict[str, JobEntry] = {}
        #: key -> terminal entry this process has seen ("done"/"failed").
        self._settled: Dict[str, JobEntry] = {}
        self.registry = MetricsRegistry()
        self.requests = self.registry.counter("serve.http.requests")
        self.submitted = self.registry.counter("serve.jobs.submitted")
        self.cache_hits = self.registry.counter("serve.jobs.cache_hits")
        self.coalesced = self.registry.counter("serve.jobs.coalesced")
        self.computed = self.registry.counter("serve.jobs.computed")
        self.failed = self.registry.counter("serve.jobs.failed")
        self.latency = self.registry.histogram("serve.request_seconds")
        self.started_unix = time.time()
        self.stop_event = asyncio.Event()
        self._request_serial = 0

    # -- request-facing operations -------------------------------------------

    def submit(self, spec_data: object) -> JobEntry:
        """Resolve one submission to an entry (raises ServeError on a
        bad spec; never blocks on computation)."""
        try:
            spec = SweepSpec.from_dict(spec_data)
        except ReproError as exc:
            raise ServeError(f"invalid sweep spec: {exc}") from exc
        key = result_key(spec.to_dict(), spec.engine, code_version())
        self.submitted.inc()
        entry = self._inflight.get(key)
        if entry is not None:
            entry.coalesced += 1
            entry.submissions += 1
            self.coalesced.inc()
            return entry
        payload = self.store.get(key)
        if payload is not None:
            self.cache_hits.inc()
            entry = self._settled.get(key)
            if entry is None or entry.status != "done":
                entry = JobEntry(key, spec, status="done", cached=True)
                self._settled[key] = entry
            else:
                entry.submissions += 1
            return entry
        # A previously failed entry is superseded by the fresh attempt.
        self._settled.pop(key, None)
        entry = JobEntry(key, spec)
        self._inflight[key] = entry
        asyncio.ensure_future(self._run(entry))
        return entry

    def status(self, key: str) -> Optional[JobEntry]:
        """The entry for ``key``, consulting the store for results that
        finished in an earlier process life."""
        entry = self._inflight.get(key) or self._settled.get(key)
        if entry is not None:
            return entry
        payload = self.store.get(key)
        if payload is None:
            return None
        try:
            spec = SweepSpec.from_dict(payload.get("spec"))
        except ReproError:
            return None
        entry = JobEntry(key, spec, status="done", cached=True, submissions=0)
        self._settled[key] = entry
        return entry

    def result(self, key: str) -> Optional[Dict[str, object]]:
        """The stored result payload for ``key``, if finished."""
        return self.store.get(key)

    def stats(self) -> Dict[str, object]:
        """The /v1/stats view (also the manifest's ``serve`` section)."""
        return {
            "requests": self.requests.snapshot(),
            "submitted": self.submitted.snapshot(),
            "cache_hits": self.cache_hits.snapshot(),
            "coalesced": self.coalesced.snapshot(),
            "computed": self.computed.snapshot(),
            "failed": self.failed.snapshot(),
            "inflight": len(self._inflight),
            "pool_size": self.pool_size,
            "sweep_workers": self.sweep_workers,
            "uptime_seconds": time.time() - self.started_unix,
            "run_id": self.ctx.run_id,
            "code_version": code_version(),
            "store": self.store.stats(),
        }

    def observe_request(self, route: str, seconds: float) -> None:
        """Per-request telemetry: counter, latency, one request span."""
        self.requests.inc()
        self.latency.observe(seconds)
        self._request_serial += 1
        self.collector.add_span(
            route,
            time.time() - seconds,
            seconds,
            path=f"http/{route}",
            ctx=self.ctx.child(f"req-{self._request_serial}"),
        )

    # -- computation ----------------------------------------------------------

    def _compute_sweep(
        self, spec: SweepSpec, key: str, trace_ctx: Optional[TraceContext]
    ) -> Dict[str, object]:
        return compute_sweep(
            spec,
            key,
            self.scratch_dir,
            self.cache_dir,
            workers=self.sweep_workers,
            trace_ctx=trace_ctx,
        )

    def _compute_and_store(
        self, spec: SweepSpec, key: str, trace_ctx: Optional[TraceContext]
    ) -> Dict[str, object]:
        """Pool-thread body: compute, then make the result durable.

        The store put happens *before* the event loop flips the entry
        to done, so "done" always implies "survives kill -9".
        """
        payload = self._compute(spec, key, trace_ctx)
        self.store.put(key, payload)
        return payload

    async def _run(self, entry: JobEntry) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        trace_ctx = self.ctx.child(entry.key[:16])
        try:
            await loop.run_in_executor(
                self._executor,
                self._compute_and_store,
                entry.spec,
                entry.key,
                trace_ctx,
            )
        except ReproError as exc:
            entry.status = "failed"
            entry.error = str(exc)
            self.failed.inc()
        except Exception as exc:  # pragma: no cover - defensive
            entry.status = "failed"
            entry.error = f"{type(exc).__name__}: {exc}"
            self.failed.inc()
        else:
            entry.status = "done"
            self.computed.inc()
        entry.seconds = time.perf_counter() - started
        self.collector.add_span(
            "compute",
            time.time() - entry.seconds,
            entry.seconds,
            path="compute" if entry.status == "done" else "compute/failed",
            ctx=self.ctx.child(entry.key[:16]),
            args={"key": entry.key, "status": entry.status},
        )
        self._inflight.pop(entry.key, None)
        self._settled[entry.key] = entry

    async def drain(self) -> None:
        """Wait until no computation is in flight (tests, shutdown)."""
        while self._inflight:
            await asyncio.sleep(0.01)

    def close(self) -> None:
        """Stop accepting pool work; queued computations are abandoned
        (their journals make them resumable on resubmission)."""
        self._executor.shutdown(wait=False, cancel_futures=True)


__all__ = [
    "JOB_STATUSES",
    "JobEntry",
    "SimulationService",
    "compute_sweep",
]
