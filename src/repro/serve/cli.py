"""gspc-serve — persistent simulation service with a memoized store.

Serve sweep computations over HTTP/JSON: clients submit declarative
sweep specs (the same JSON ``gspc-sweep --spec`` accepts), the service
computes each distinct (spec, engine, code version) exactly once on a
bounded worker pool, and every finished result is memoized in a
crash-safe content-addressed store — identical submissions, concurrent
or days apart, are served from cache.  Kill the process at any instant
and a restart recovers the store from its write-ahead log and resumes
interrupted computations from their journals.

Examples::

    gspc-serve --store results/store
    gspc-serve --store /var/lib/gspc --host 0.0.0.0 --port 8787 \\
        --pool 4 --sweep-jobs 2
    gspc-serve --store store --port 0 --port-file serve.port  # tests/CI

Exit codes (docs/observability.md): 0 clean shutdown, 1 runtime
failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
import threading
from typing import List, Optional

from repro.cli import EXIT_OK, EXIT_RUNTIME, EXIT_USAGE, ensure_directory
from repro.errors import ReproError
from repro.obs import log as obs_log
from repro.obs import tracing
from repro.obs.manifest import serve_manifest, write_manifest
from repro.obs.tracing import TraceContext
from repro.serve.http import start_http_server
from repro.serve.service import SimulationService
from repro.serve.store import ResultStore
from repro.wal import write_atomic

#: Scratch directory for in-flight computations, inside the store root.
SCRATCH_DIRNAME = "scratch"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gspc-serve",
        description="Serve memoized sweep simulations over HTTP/JSON.",
    )
    parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="content-addressed result store directory (created if missing)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port (0 = ephemeral; default 8787)",
    )
    parser.add_argument(
        "--port-file",
        metavar="FILE",
        help="write the bound host:port here once listening "
        "(for --port 0 callers)",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=2,
        metavar="N",
        help="concurrent sweep computations (default 2)",
    )
    parser.add_argument(
        "--sweep-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per sweep computation (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        metavar="DIR",
        help="shared trace cache (default: .repro_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the trace cache"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="DIR",
        help="write a 'serve' run manifest into DIR on shutdown",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="logging level (default: $REPRO_LOG_LEVEL or WARNING)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug logging (shorthand for --log-level DEBUG)",
    )
    return parser


async def run_server(
    args: argparse.Namespace, ctx: TraceContext, logger
) -> SimulationService:
    """Start the store + service + HTTP server and run until shutdown."""
    store = ResultStore(args.store)
    recovery = store.recover()
    service = SimulationService(
        store,
        scratch_dir=os.path.join(args.store, SCRATCH_DIRNAME),
        cache_dir=None if args.no_cache else args.cache_dir,
        pool_size=args.pool,
        sweep_workers=args.sweep_jobs,
        ctx=ctx,
    )
    server, port = await start_http_server(service, args.host, args.port)
    if args.port_file:
        write_atomic(args.port_file, f"{args.host}:{port}\n")
    print(
        f"gspc-serve {ctx.run_id} listening on {args.host}:{port} "
        f"(store {args.store}: {recovery.keys} cached result(s)"
        + (f", {recovery.healed} healed" if recovery.healed else "")
        + (
            f", {recovery.rejected_lines} corrupt WAL line(s) rejected"
            if recovery.rejected_lines
            else ""
        )
        + f"; pool {args.pool} x {args.sweep_jobs} worker(s))"
    )
    logger.info(
        "run %s listening on %s:%d (%d cached results)",
        ctx.run_id,
        args.host,
        port,
        recovery.keys,
    )

    loop = asyncio.get_running_loop()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, service.stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    try:
        await service.stop_event.wait()
    finally:
        server.close()
        await server.wait_closed()
        service.close()
    print(
        f"gspc-serve {ctx.run_id} stopped: "
        f"{service.requests.snapshot()} request(s), "
        f"{service.computed.snapshot()} computed, "
        f"{service.cache_hits.snapshot()} cache hit(s), "
        f"{service.coalesced.snapshot()} coalesced"
    )
    return service


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        obs_log.configure("DEBUG" if args.verbose else args.log_level)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    logger = obs_log.get_logger("serve")
    try:
        if args.pool < 1:
            raise ReproError(f"--pool must be >= 1, got {args.pool}")
        if args.sweep_jobs < 1:
            raise ReproError(
                f"--sweep-jobs must be >= 1, got {args.sweep_jobs}"
            )
        if not (0 <= args.port <= 65535):
            raise ReproError(f"--port must be in [0, 65535], got {args.port}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    problem = ensure_directory(args.store, "--store")
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return EXIT_USAGE
    if args.metrics_out:
        problem = ensure_directory(args.metrics_out, "--metrics-out")
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return EXIT_USAGE

    ctx = tracing.activate(TraceContext.new_run("gspc-serve"))
    try:
        try:
            service = asyncio.run(run_server(args, ctx, logger))
        except KeyboardInterrupt:  # bare ^C before the handler is armed
            print("interrupted", file=sys.stderr)
            return EXIT_OK
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RUNTIME

    if args.metrics_out:
        manifest = serve_manifest(
            config={
                "store": args.store,
                "host": args.host,
                "pool": args.pool,
                "sweep_jobs": args.sweep_jobs,
            },
            serve=service.stats(),
            metrics=service.registry.snapshot(),
            wall_seconds=service.stats()["uptime_seconds"],
        )
        path = write_manifest(
            manifest, args.metrics_out, filename=f"serve_{ctx.run_id}.json"
        )
        print(f"wrote manifest: {path}")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
