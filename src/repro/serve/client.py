"""Tiny stdlib client for the gspc-serve API.

Used by the test-suite, the CI serve-smoke gate, and the load-test
harness (``benchmarks/bench_serve.py``) — one connection per request,
JSON in, JSON out, no dependencies beyond :mod:`http.client`.

    client = ServeClient("127.0.0.1:8787")
    entry = client.submit({"name": "s", "policies": ["drrip"]})
    entry = client.wait(entry["key"])
    result = client.result(entry["key"])
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Optional, Tuple

from repro.errors import ServeError


def read_port_file(path: str) -> str:
    """The ``host:port`` a server wrote via ``--port-file``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            address = handle.read().strip()
    except OSError as exc:
        raise ServeError(f"cannot read port file {path}: {exc}") from exc
    if not address:
        raise ServeError(f"port file {path} is empty")
    return address


class ServeClient:
    """Blocking JSON client for one gspc-serve endpoint."""

    def __init__(self, address: str, timeout: float = 60.0):
        address = address.strip()
        for prefix in ("http://", "https://"):
            if address.startswith(prefix):
                address = address[len(prefix):]
        address = address.rstrip("/")
        host, sep, port_text = address.rpartition(":")
        if not sep:
            raise ServeError(
                f"serve address must be host:port, got {address!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ServeError(f"bad port in serve address {address!r}") from None
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self, method: str, path: str, body: Optional[object] = None
    ) -> Tuple[int, Dict[str, object]]:
        """One round trip; returns (HTTP status, decoded JSON payload)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            encoded = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if encoded else {}
            try:
                connection.request(method, path, body=encoded, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"request {method} {path} to "
                    f"{self.host}:{self.port} failed: {exc}"
                ) from exc
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError(
                    f"non-JSON response for {method} {path}: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise ServeError(
                    f"unexpected response shape for {method} {path}: "
                    f"{type(payload).__name__}"
                )
            return response.status, payload
        finally:
            connection.close()

    # -- API calls ------------------------------------------------------------

    def health(self) -> bool:
        try:
            status, payload = self.request("GET", "/v1/healthz")
        except ServeError:
            return False
        return status == 200 and bool(payload.get("ok"))

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        status, payload = self.request("POST", "/v1/jobs", {"spec": spec})
        if status not in (200, 202):
            raise ServeError(
                f"submit rejected ({status}): {payload.get('error', payload)}"
            )
        return payload

    def status(self, key: str) -> Dict[str, object]:
        status, payload = self.request("GET", f"/v1/jobs/{key}")
        if status != 200:
            raise ServeError(
                f"status for {key} failed ({status}): "
                f"{payload.get('error', payload)}"
            )
        return payload

    def result(self, key: str) -> Dict[str, object]:
        status, payload = self.request("GET", f"/v1/jobs/{key}/result")
        if status != 200:
            raise ServeError(
                f"result for {key} unavailable ({status}): "
                f"{payload.get('error', payload)}"
            )
        return payload

    def stats(self) -> Dict[str, object]:
        status, payload = self.request("GET", "/v1/stats")
        if status != 200:
            raise ServeError(f"stats failed ({status})")
        return payload

    def shutdown(self) -> None:
        self.request("POST", "/v1/shutdown")

    def wait(
        self, key: str, timeout: float = 600.0, poll: float = 0.05
    ) -> Dict[str, object]:
        """Poll until ``key`` is done; raises on failure or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            entry = self.status(key)
            state = entry.get("status")
            if state == "done":
                return entry
            if state == "failed":
                raise ServeError(
                    f"job {key} failed: {entry.get('error', 'unknown error')}"
                )
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout:g}s waiting for job {key}"
                )
            time.sleep(poll)

    def wait_until_up(self, timeout: float = 30.0, poll: float = 0.1) -> None:
        """Block until the server answers its health probe."""
        deadline = time.monotonic() + timeout
        while not self.health():
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"server {self.host}:{self.port} not up "
                    f"after {timeout:g}s"
                )
            time.sleep(poll)


__all__ = ["ServeClient", "read_port_file"]
