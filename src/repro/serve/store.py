"""Content-addressed result store for the simulation service.

The store memoizes finished sweep results under a deterministic cache
*key*: the SHA-256 of the canonical JSON of ``(spec, engine, code
version)``.  Identical submissions — today, tomorrow, or from another
process — hash to the same key, so the service never computes the same
work twice (the same never-refetch-what-you-hold rule the paper applies
to the LLC itself).

Layout under the store root, sharded by key prefix so concurrent
writers touch disjoint files::

    store/
      objects/<key[:w]>/<key>.json   # one finished result, atomic write
      wal/<key[:w]>.jsonl            # checksummed write-ahead log shard

Every :meth:`ResultStore.put` appends a sealed record to the shard WAL
*first* (open-append-fsync-close, safe for concurrent writer processes)
and only then publishes the object file via atomic tmp+fsync+rename.
The WAL is therefore always at least as complete as the object tree:

* a reader never observes a torn object (rename is atomic);
* a crash between the WAL append and the object write is healed on the
  next :meth:`get` or :meth:`recover` by replaying the shard WAL;
* two writers racing on one key produce two valid WAL records and two
  atomic renames — replay takes the first record, readers of the object
  file see exactly one writer's payload, never an interleaving.

This is the sweep journal's durability recipe (:mod:`repro.wal`)
generalized from per-attempt job records to content-addressed results.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Iterator, Mapping, Optional

from repro import wal
from repro.errors import ServeError

#: Default shard width: two hex chars, 256 shards.
DEFAULT_SHARD_WIDTH = 2

#: Statuses a store WAL record may carry (only finished results today;
#: the enum leaves room for tombstones without a version bump).
RECORD_STATUSES = ("ok",)


def result_key(
    spec: Mapping[str, object], engine: str, code_version: str
) -> str:
    """The content address of one (spec, engine, code version) result."""
    if not isinstance(spec, Mapping):
        raise ServeError(
            f"result key needs a spec object, got {type(spec).__name__}"
        )
    return wal.checksum(
        {
            "spec": dict(spec),
            "engine": str(engine),
            "code_version": str(code_version),
        }
    )


def code_version() -> str:
    """The code identity baked into every cache key.

    Defaults to the package version; ``REPRO_CODE_VERSION`` overrides it
    so deployments tracking unreleased commits can fence their cache
    (e.g. export the git SHA) without touching the package metadata.
    """
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    from repro import __version__

    return __version__


def verify(data: object) -> Optional[Dict[str, object]]:
    """The store record inside a parsed WAL line, or None if invalid."""
    body = wal.verify_sealed(data)
    if body is None:
        return None
    key = body.get("key")
    if not isinstance(key, str) or not _is_hex_key(key):
        return None
    if body.get("status") not in RECORD_STATUSES:
        return None
    if not isinstance(body.get("payload"), dict):
        return None
    return body


def _is_hex_key(key: str) -> bool:
    return len(key) == 64 and all(c in "0123456789abcdef" for c in key)


@dataclasses.dataclass
class RecoveryReport:
    """What :meth:`ResultStore.recover` found and fixed."""

    #: Keys with a valid WAL record (the store's authoritative contents).
    keys: int = 0
    #: Object files rewritten from the WAL (missing or corrupt).
    healed: int = 0
    #: WAL lines dropped as torn/corrupt/checksum-mismatched.
    rejected_lines: int = 0


class ResultStore:
    """Durable, sharded, content-addressed result cache."""

    def __init__(self, root: str, shard_width: int = DEFAULT_SHARD_WIDTH):
        if not (0 <= shard_width <= 8):
            raise ServeError(
                f"shard width must be in [0, 8], got {shard_width}"
            )
        self.root = root
        self.shard_width = shard_width
        try:
            os.makedirs(self.objects_dir, exist_ok=True)
            os.makedirs(self.wal_dir, exist_ok=True)
        except OSError as exc:
            raise ServeError(
                f"cannot create store directories under {root!r}: {exc}"
            ) from exc

    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    @property
    def wal_dir(self) -> str:
        return os.path.join(self.root, "wal")

    def _shard(self, key: str) -> str:
        return key[: self.shard_width] or "all"

    def object_path(self, key: str) -> str:
        self._check_key(key)
        return os.path.join(self.objects_dir, self._shard(key), f"{key}.json")

    def wal_path(self, key: str) -> str:
        self._check_key(key)
        return os.path.join(self.wal_dir, f"{self._shard(key)}.jsonl")

    @staticmethod
    def _check_key(key: str) -> None:
        if not isinstance(key, str) or not _is_hex_key(key):
            raise ServeError(f"malformed store key {key!r}")

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for ``key``, or None.

        Reads the object file (atomic rename means it is whole or
        absent); a missing or corrupt object falls back to the shard
        WAL, and a WAL hit heals the object file on the way out — so a
        crash between WAL append and object publish self-repairs on the
        first read after restart.
        """
        payload = self._read_object(key)
        if payload is not None:
            return payload
        record = self._wal_record(key)
        if record is None:
            return None
        payload = dict(record["payload"])  # type: ignore[arg-type]
        self._write_object(key, payload)
        return payload

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def _read_object(self, key: str) -> Optional[Dict[str, object]]:
        try:
            with open(self.object_path(key), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def _wal_record(self, key: str) -> Optional[Dict[str, object]]:
        """First valid WAL record for ``key`` (first writer wins)."""
        state = wal.replay(self.wal_path(key), validator=verify)
        for record in state.records:
            if record["key"] == key:
                return record
        return None

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, payload: Mapping[str, object]) -> None:
        """Durably store ``payload`` under ``key`` (WAL first, then object)."""
        self._check_key(key)
        if not isinstance(payload, Mapping):
            raise ServeError(
                f"store payload must be an object, got {type(payload).__name__}"
            )
        record = {
            "v": wal.RECORD_VERSION,
            "key": key,
            "status": "ok",
            "payload": dict(payload),
        }
        wal.append_once(self.wal_path(key), record)
        self._write_object(key, dict(payload))

    def _write_object(self, key: str, payload: Dict[str, object]) -> None:
        wal.write_atomic(
            self.object_path(key),
            wal.canonical_json(payload) + "\n",
        )

    # -- maintenance ----------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Every key with a valid WAL record, in shard + WAL order."""
        seen = set()
        for shard_path in self._wal_shards():
            state = wal.replay(shard_path, validator=verify)
            for record in state.records:
                key = str(record["key"])
                if key not in seen:
                    seen.add(key)
                    yield key

    def recover(self) -> RecoveryReport:
        """Replay every WAL shard and heal missing/corrupt objects.

        Run at service start so a ``kill -9`` at any instant leaves at
        worst one result to recompute (the one whose WAL record never
        finished), never a torn store.
        """
        report = RecoveryReport()
        winners: Dict[str, Dict[str, object]] = {}
        for shard_path in self._wal_shards():
            state = wal.replay(shard_path, validator=verify)
            report.rejected_lines += state.rejected_lines
            for record in state.records:
                winners.setdefault(str(record["key"]), record)
        report.keys = len(winners)
        for key, record in winners.items():
            if self._read_object(key) is None:
                self._write_object(
                    key, dict(record["payload"])  # type: ignore[arg-type]
                )
                report.healed += 1
        return report

    def stats(self) -> Dict[str, int]:
        """Cheap counters for the service's /v1/stats endpoint."""
        objects = 0
        for _, _, files in os.walk(self.objects_dir):
            objects += sum(1 for name in files if name.endswith(".json"))
        shards = sum(1 for _ in self._wal_shards())
        return {"objects": objects, "wal_shards": shards}

    def _wal_shards(self) -> Iterator[str]:
        try:
            names = sorted(os.listdir(self.wal_dir))
        except OSError:
            return
        for name in names:
            if name.endswith(".jsonl"):
                yield os.path.join(self.wal_dir, name)


__all__ = [
    "DEFAULT_SHARD_WIDTH",
    "RecoveryReport",
    "ResultStore",
    "code_version",
    "result_key",
    "verify",
]
