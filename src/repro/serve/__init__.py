"""Persistent simulation service (``gspc-serve``).

An async HTTP/JSON front end over the sweep engine with a
content-addressed result store: every distinct (spec, engine, code
version) is computed at most once — concurrent duplicates coalesce onto
one in-flight computation, repeats are served from the crash-safe
store.  See ``docs/serving.md``.
"""

from repro.serve.client import ServeClient, read_port_file
from repro.serve.service import JobEntry, SimulationService, compute_sweep
from repro.serve.store import ResultStore, code_version, result_key

__all__ = [
    "JobEntry",
    "ResultStore",
    "ServeClient",
    "SimulationService",
    "code_version",
    "compute_sweep",
    "read_port_file",
    "result_key",
]
