"""Bit-manipulation helpers used by cache indexing and sampling logic."""

from __future__ import annotations

from repro.errors import ConfigError


def is_power_of_two(value: int) -> bool:
    """True for positive integer powers of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Exact integer log2; raises :class:`ConfigError` otherwise.

    Cache geometry (sets, ways, banks, block size) must be a power of two
    so that address decomposition is pure bit slicing, as in hardware.
    """
    if not is_power_of_two(value):
        raise ConfigError(f"{value} is not a power of two")
    return value.bit_length() - 1


def mix_bits(value: int) -> int:
    """Cheap deterministic 64-bit integer hash (splitmix64 finalizer).

    Used to hash region identifiers (SHiP-mem) and to derive per-set
    pseudo-random decisions without any global RNG state.
    """
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)
