"""Saturating counters.

Section 3 of the paper uses per-bank 8-bit saturating FILL/HIT/PROD/CONS
counters and a 7-bit ACC(ALL) counter whose saturation triggers halving of
the others.  :class:`SaturatingCounter` models one such hardware counter.
"""

from __future__ import annotations

from repro.errors import ConfigError


class SaturatingCounter:
    """An unsigned saturating counter with a fixed bit width.

    The counter increments up to ``2**bits - 1`` and decrements down to
    zero; both operations saturate instead of wrapping.  ``halve()``
    implements the aging used by the paper when ACC(ALL) saturates.
    """

    __slots__ = ("bits", "max_value", "value")

    def __init__(self, bits: int, value: int = 0) -> None:
        if bits < 1:
            raise ConfigError(f"counter width must be >= 1 bit, got {bits}")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        if not 0 <= value <= self.max_value:
            raise ConfigError(
                f"initial value {value} out of range for {bits}-bit counter"
            )
        self.value = value

    def increment(self, amount: int = 1) -> bool:
        """Add ``amount``, saturating at the maximum.

        Returns True if the counter is saturated after the increment —
        callers use this to trigger the halve-and-reset aging step.
        """
        self.value = min(self.value + amount, self.max_value)
        return self.value == self.max_value

    def decrement(self, amount: int = 1) -> bool:
        """Subtract ``amount``, saturating at zero.

        Returns True if the counter is zero after the decrement.
        """
        self.value = max(self.value - amount, 0)
        return self.value == 0

    def halve(self) -> None:
        """Age the counter by halving (floor division) its value."""
        self.value >>= 1

    def reset(self) -> None:
        self.value = 0

    @property
    def is_saturated(self) -> bool:
        return self.value == self.max_value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"
