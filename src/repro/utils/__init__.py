"""Small shared utilities: saturating counters and bit manipulation."""

from repro.utils.counters import SaturatingCounter
from repro.utils.bitops import is_power_of_two, ilog2, mix_bits

__all__ = ["SaturatingCounter", "is_power_of_two", "ilog2", "mix_bits"]
