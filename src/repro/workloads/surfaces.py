"""GPU surfaces and their tiled address layouts.

Render targets, depth buffers and textures are stored *tiled*: a 64 B
cache block holds a 4x4 block of 32-bit pixels (or an 8x8 block of 8-bit
stencil values), the standard layout GPUs use so that a triangle's
screen-space footprint maps to a compact set of cache blocks.  The
address of tile (tx, ty) is a simple row-major function of the tile
coordinates, which lets the rasterizer compute block addresses for whole
coverage grids with vectorized numpy arithmetic.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.errors import WorkloadError

BLOCK_BYTES = 64
#: Surfaces are allocated on 4 KB page boundaries.
PAGE_BYTES = 4096


class AddressSpace:
    """A bump allocator for the GPU's flat physical address space."""

    def __init__(self, base: int = 1 << 32) -> None:
        # Starting high keeps workload addresses disjoint from the tiny
        # synthetic traces used in tests, which start at zero.
        self._next = base

    def allocate(self, size_bytes: int) -> int:
        """Reserve ``size_bytes`` and return the page-aligned base."""
        if size_bytes <= 0:
            raise WorkloadError(f"allocation size must be positive: {size_bytes}")
        base = self._next
        pages = -(-size_bytes // PAGE_BYTES)
        self._next += pages * PAGE_BYTES
        return base


@dataclasses.dataclass(frozen=True)
class Surface:
    """A 2D tiled surface (render target, depth, stencil, or texture mip).

    ``tile_px`` is the pixel width/height covered by one 64 B block:
    4 for 32-bit formats, 8 for 8-bit formats.
    """

    name: str
    base: int
    width_px: int
    height_px: int
    tile_px: int = 4

    def __post_init__(self) -> None:
        if self.width_px <= 0 or self.height_px <= 0:
            raise WorkloadError(f"surface {self.name!r} has empty extent")

    @property
    def tiles_x(self) -> int:
        return -(-self.width_px // self.tile_px)

    @property
    def tiles_y(self) -> int:
        return -(-self.height_px // self.tile_px)

    @property
    def num_blocks(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * BLOCK_BYTES

    def block_address(self, tile_x: int, tile_y: int) -> int:
        """Byte address of the block holding tile (tile_x, tile_y)."""
        if not (0 <= tile_x < self.tiles_x and 0 <= tile_y < self.tiles_y):
            raise WorkloadError(
                f"tile ({tile_x}, {tile_y}) outside surface {self.name!r}"
            )
        return self.base + (tile_y * self.tiles_x + tile_x) * BLOCK_BYTES

    def block_addresses(self, tiles_x: np.ndarray, tiles_y: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_address` (inputs are clipped in-range)."""
        tx = np.clip(tiles_x, 0, self.tiles_x - 1).astype(np.int64)
        ty = np.clip(tiles_y, 0, self.tiles_y - 1).astype(np.int64)
        return (self.base + (ty * self.tiles_x + tx) * BLOCK_BYTES).astype(np.uint64)

    def linear_blocks(self, start: int, count: int) -> np.ndarray:
        """``count`` consecutive block addresses starting at block ``start``
        (wrapping around the surface)."""
        indices = (start + np.arange(count, dtype=np.int64)) % self.num_blocks
        return (self.base + indices * BLOCK_BYTES).astype(np.uint64)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size_bytes


@dataclasses.dataclass(frozen=True)
class MipmappedTexture:
    """A MIP pyramid: one :class:`Surface` per level, halving each step."""

    name: str
    levels: List[Surface]

    @property
    def base_level(self) -> Surface:
        return self.levels[0]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def total_blocks(self) -> int:
        return sum(level.num_blocks for level in self.levels)

    def level(self, lod: int) -> Surface:
        return self.levels[min(max(lod, 0), self.num_levels - 1)]


def allocate_surface(
    space: AddressSpace,
    name: str,
    width_px: int,
    height_px: int,
    tile_px: int = 4,
) -> Surface:
    surface = Surface(
        name=name, base=0, width_px=width_px, height_px=height_px, tile_px=tile_px
    )
    base = space.allocate(surface.num_blocks * BLOCK_BYTES)
    return dataclasses.replace(surface, base=base)


def allocate_texture(
    space: AddressSpace,
    name: str,
    width_px: int,
    height_px: int,
    max_levels: int = 8,
) -> MipmappedTexture:
    """Allocate a texture with a full MIP chain down to one tile."""
    levels: List[Surface] = []
    w, h = width_px, height_px
    for lod in range(max_levels):
        levels.append(allocate_surface(space, f"{name}.mip{lod}", w, h))
        if w <= 4 and h <= 4:
            break
        w = max(4, w // 2)
        h = max(4, h // 2)
    return MipmappedTexture(name=name, levels=levels)
