"""The tile rasterizer: turns draw calls into memory accesses.

Rasterization is approximated at 4x4-pixel tile granularity, the unit of
one 64 B cache block.  For each draw call the covered tiles are visited
in screen (row-major) order in small batches; each batch issues the
accesses a real pipeline would interleave: vertex fetches, HiZ test
reads, Z reads/writes, stencil tests, texture samples, and render-target
blends/writes.  All addresses are computed with vectorized numpy and
pushed through the :class:`~repro.cache.hierarchy.RenderCacheFrontEnd`,
whose misses form the LLC trace.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cache.hierarchy import RenderCacheFrontEnd
from repro.streams import Stream
from repro.workloads.passes import DrawCall, RenderPass, TextureBinding, clip_region
from repro.workloads.surfaces import BLOCK_BYTES, Surface

#: Tiles per emission batch — large enough to amortize numpy overhead,
#: small enough that streams stay interleaved as in a real pipeline.
BATCH_TILES = 256

#: One HiZ entry holds the min/max depth of a 2x2-pixel quad; a 64 B
#: block covers a 2x2 group of color tiles.
HIZ_TILES_PER_BLOCK_EDGE = 2

#: Shader code/constant reads issued per draw call (the OTHER stream).
SHADER_READS_PER_DRAW = 3

#: Exponent of the power-law popularity inside a texture's hot set.
HOT_SKEW = 3.0


def covered_tiles(
    draw: DrawCall, target: Surface, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-major (x, y) tile coordinates covered by a draw call."""
    x0, y0, x1, y1 = clip_region(draw.region, target)
    if x1 <= x0 or y1 <= y0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    ys, xs = np.mgrid[y0:y1, x0:x1]
    xs = xs.ravel()
    ys = ys.ravel()
    if draw.coverage < 1.0:
        mask = rng.random(xs.size) < draw.coverage
        xs, ys = xs[mask], ys[mask]
    return xs, ys


def _static_sample_addresses(
    binding: TextureBinding,
    xs: np.ndarray,
    ys: np.ndarray,
    draw: DrawCall,
    rng: np.random.Generator,
) -> np.ndarray:
    """Texel-block addresses for a static (MIP-mapped) texture.

    Samples are a mixture of a *hot set* (popular texels reused across
    draws and passes: lightmaps, atlases, UI) and a *cold sweep* (an
    affine screen-to-UV mapping that walks fresh texels as the camera
    moves), reproducing the skewed texture reuse of Section 2.3: most
    texture blocks die in E0, but blocks that survive to E2 keep being
    reused.
    """
    level = binding.source.level(binding.lod)
    blocks = level.num_blocks
    if xs.size == 0:
        return np.empty(0, np.uint64)
    # Multi-texturing reads *different* texture layers (albedo, normal,
    # specular...), each its own region of the atlas: replicate the
    # covered tiles once per layer with a large per-layer offset, so
    # multi-sampling never produces duplicate block reads by itself.
    layers = max(1, int(np.ceil(binding.samples_per_tile)))
    keep_probability = binding.samples_per_tile / layers
    x0, y0, x1, _y1 = draw.region
    rect_width = max(1, x1 - x0)
    # Spread draw phases proportionally around each MIP level so that
    # small levels do not alias every draw onto the same texel region.
    uv_phase = (draw.uv_phase * blocks) >> 14
    parts = []
    for layer in range(layers):
        tx, ty = xs, ys
        if keep_probability < 1.0:
            mask = rng.random(xs.size) < keep_probability
            tx, ty = xs[mask], ys[mask]
        if tx.size == 0:
            continue
        # Dense screen-to-UV map: the draw's rectangle packs into a
        # compact texel region starting at uv_phase, so a draw's texture
        # footprint matches its covered area and different draws read
        # disjoint regions (until the texture wraps — far-flung reuse).
        linear = (
            (tx - x0)
            + (ty - y0) * rect_width
            + uv_phase
            + layer * 7919
            + rng.integers(0, 2, tx.size)
        ) % blocks
        hot = rng.random(tx.size) < binding.hot_probability
        hot_count = int(hot.sum())
        if hot_count:
            hot_blocks = max(1, int(blocks * binding.hot_fraction))
            # Power-law popularity inside the hot set: most hot blocks
            # recur a few times far apart (E1 lives), a small head recurs
            # constantly (the long-lived E>=2 blocks of Figure 7).
            skewed = rng.random(hot_count) ** HOT_SKEW
            linear[hot] = (skewed * hot_blocks).astype(np.int64)
        parts.append(linear)
    if not parts:
        return np.empty(0, np.uint64)
    linear = np.concatenate(parts)
    return (level.base + linear.astype(np.int64) * BLOCK_BYTES).astype(np.uint64)


def _dynamic_sample_addresses(
    binding: TextureBinding,
    xs: np.ndarray,
    ys: np.ndarray,
    target: Surface,
    rng: np.random.Generator,
) -> np.ndarray:
    """Texel-block addresses for a dynamic texture (a rendered surface).

    Post-processing and render-to-texture consumers map screen tiles to
    source tiles with a separable scale (identity for same-size
    surfaces), so the consumed blocks are exactly the blocks the
    producing pass wrote — the inter-stream reuse of Figure 6.
    """
    source: Surface = binding.source
    if xs.size == 0:
        return np.empty(0, np.uint64)
    sx = source.tiles_x / max(1, target.tiles_x)
    sy = source.tiles_y / max(1, target.tiles_y)
    # Multi-sample consumers (downsampling reads a 2x2 source group,
    # blur kernels read neighbours) visit *adjacent distinct* source
    # blocks, never the same block twice per destination tile.
    layers = max(1, int(np.ceil(binding.samples_per_tile)))
    keep_probability = binding.samples_per_tile / layers
    parts = []
    for layer in range(layers):
        tx, ty = xs, ys
        if keep_probability < 1.0:
            mask = rng.random(xs.size) < keep_probability
            tx, ty = xs[mask], ys[mask]
        if tx.size == 0:
            continue
        dx, dy = layer & 1, (layer >> 1) & 1
        src_x = (tx * sx).astype(np.int64) + dx
        src_y = (ty * sy).astype(np.int64) + dy
        parts.append(source.block_addresses(src_x, src_y))
    if not parts:
        return np.empty(0, np.uint64)
    return np.concatenate(parts)


def emit_draw(
    front: RenderCacheFrontEnd,
    render_pass: RenderPass,
    draw: DrawCall,
    rng: np.random.Generator,
    vertex_base: int,
    shader_base: int,
    shader_blocks: int,
) -> None:
    """Generate all memory accesses of one draw call."""
    target = render_pass.color_target
    xs, ys = covered_tiles(draw, target, rng)
    if xs.size == 0:
        return
    # Input assembler: sequential vertex/index fetches for this draw.
    if draw.vertex_blocks:
        vertex_addresses = (
            vertex_base
            + (
                (draw.vertex_phase + np.arange(draw.vertex_blocks, dtype=np.int64))
                * BLOCK_BYTES
            )
        ).astype(np.uint64)
        front.access_blocks(vertex_addresses, Stream.VERTEX)
    # Shader code / constants for this draw's pipeline state.
    shader_addresses = (
        shader_base
        + rng.integers(0, shader_blocks, size=SHADER_READS_PER_DRAW) * BLOCK_BYTES
    ).astype(np.uint64)
    front.access_blocks(shader_addresses, Stream.OTHER)

    depth = render_pass.depth_target
    hiz = render_pass.hiz_target
    stencil = render_pass.stencil_target

    for start in range(0, xs.size, BATCH_TILES):
        bx = xs[start : start + BATCH_TILES]
        by = ys[start : start + BATCH_TILES]
        survivors_x, survivors_y = bx, by
        if draw.depth_test and depth is not None:
            if hiz is not None:
                hiz_addresses = _hiz_addresses(hiz, bx, by)
                front.access_blocks(hiz_addresses, Stream.HIZ)
            if render_pass.early_z_reject > 0.0:
                keep = rng.random(bx.size) >= render_pass.early_z_reject
                survivors_x, survivors_y = bx[keep], by[keep]
            if survivors_x.size:
                z_addresses = depth.block_addresses(survivors_x, survivors_y)
                front.access_blocks(z_addresses, Stream.Z)
                if draw.depth_write:
                    passed = rng.random(survivors_x.size) < render_pass.depth_pass_rate
                    if passed.any():
                        front.access_blocks(
                            z_addresses[passed], Stream.Z, is_write=True
                        )
                        if hiz is not None:
                            # Passing depth writes update the HiZ summary.
                            front.access_blocks(
                                _hiz_addresses(
                                    hiz, survivors_x[passed], survivors_y[passed]
                                ),
                                Stream.HIZ,
                                is_write=True,
                            )
        if survivors_x.size == 0:
            continue
        if draw.stencil_test and stencil is not None:
            stencil_addresses = stencil.block_addresses(
                survivors_x // 2, survivors_y // 2
            )
            front.access_blocks(stencil_addresses, Stream.STENCIL)
        for binding in draw.textures:
            if binding.is_dynamic and binding.full_read:
                continue  # consumed whole, once, after the batch loop
            if binding.is_dynamic:
                sample_addresses = _dynamic_sample_addresses(
                    binding, survivors_x, survivors_y, target, rng
                )
            else:
                sample_addresses = _static_sample_addresses(
                    binding, survivors_x, survivors_y, draw, rng
                )
            if sample_addresses.size:
                front.access_blocks(sample_addresses, Stream.TEXTURE)
        rt_addresses = target.block_addresses(survivors_x, survivors_y)
        if draw.blend:
            front.access_blocks(rt_addresses, Stream.RT)
        front.access_blocks(rt_addresses, Stream.RT, is_write=True)

    for binding in draw.textures:
        if binding.is_dynamic and binding.full_read:
            source: Surface = binding.source
            front.access_blocks(
                source.linear_blocks(0, source.num_blocks), Stream.TEXTURE
            )


def _hiz_addresses(hiz: Surface, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    return hiz.block_addresses(
        xs // HIZ_TILES_PER_BLOCK_EDGE, ys // HIZ_TILES_PER_BLOCK_EDGE
    )


def emit_pass(
    front: RenderCacheFrontEnd,
    render_pass: RenderPass,
    rng: np.random.Generator,
    vertex_base: int,
    shader_base: int,
    shader_blocks: int,
) -> None:
    """Generate all memory accesses of one render pass."""
    for draw in render_pass.draws:
        emit_draw(
            front, render_pass, draw, rng, vertex_base, shader_base, shader_blocks
        )
    if render_pass.resolve_to is not None:
        # The final displayable color values, written once and never
        # reused (Section 2.2) — the stream the UCD variants bypass.
        display = render_pass.resolve_to
        front.access_blocks(
            display.linear_blocks(0, display.num_blocks),
            Stream.DISPLAY,
            is_write=True,
        )
