"""The twelve DirectX applications of Table 1 as synthetic profiles.

Each :class:`AppProfile` parameterizes the frame generator so that the
application's memory behaviour matches its public rendering
characteristics: resolution and DirectX version come straight from
Table 1; pass structure, overdraw, blending, texture footprint and
render-to-texture intensity are chosen per title (e.g. Assassin's Creed
has the heaviest dynamic-texture consumption in the paper's Figure 6;
the 3DMark and Unigine benchmarks are post-processing heavy; HAWX and
Heaven are geometry/tessellation heavy).  52 frames total are defined,
as in the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.errors import TraceError, WorkloadError


@dataclasses.dataclass(frozen=True)
class AppProfile:
    """Synthetic workload parameters for one application (at paper scale)."""

    name: str
    abbrev: str
    dx_version: int
    width_px: int
    height_px: int
    num_frames: int
    seed: int
    # Pass structure
    main_passes: int = 4
    draws_per_pass: int = 14
    overdraw: float = 2.5
    post_passes: int = 3
    aux_targets: int = 1
    shadow_maps: int = 1
    shadow_map_px: int = 512
    shadow_draws: int = 5
    # Depth/stencil behaviour
    early_z_reject: float = 0.35
    stencil_fraction: float = 0.1
    # Color behaviour
    blend_fraction: float = 0.3
    # Texturing
    texture_count: int = 5
    texture_px: int = 1536
    samples_per_tile: float = 2.0
    hot_probability: float = 0.45
    hot_fraction: float = 0.1
    #: Fraction of geometry draws bound to "hot" materials (lightmaps,
    #: atlases, UI) whose texels recur across draws and passes; the rest
    #: cold-sweep fresh texels.  This burstiness is what lets sampled
    #: probabilistic policies learn phase-dependent texture deadness.
    hot_draw_fraction: float = 0.08
    shadow_sample_probability: float = 0.5
    #: Small dynamic textures (impostors, particle buffers, water
    #: refraction copies) rendered and consumed *throughout* the main
    #: passes; they keep render-to-texture reuse flowing all frame long.
    dyntex_count: int = 4
    dyntex_px: int = 512
    dyntex_probability: float = 0.9
    post_samples_per_tile: float = 1.2
    # Geometry
    vertex_buffer_blocks: int = 90000

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise WorkloadError(f"{self.name}: needs at least one frame")
        if not 0.0 <= self.early_z_reject < 1.0:
            raise WorkloadError(f"{self.name}: bad early-Z reject rate")


@dataclasses.dataclass(frozen=True)
class FrameSpec:
    """One of the 52 evaluated frames."""

    app: AppProfile
    frame_index: int

    @property
    def name(self) -> str:
        return f"{self.app.abbrev}#f{self.frame_index}"


ALL_APPS: Tuple[AppProfile, ...] = (
    AppProfile(
        name="3D Mark Vantage GT1",
        abbrev="3DMarkVAGT1",
        dx_version=10,
        width_px=1920,
        height_px=1200,
        num_frames=4,
        seed=101,
        main_passes=4,
        post_passes=5,
        overdraw=2.2,
        texture_count=5,
        samples_per_tile=4.2,
        blend_fraction=0.35,
        post_samples_per_tile=1.4,
    ),
    AppProfile(
        name="3D Mark Vantage GT2",
        abbrev="3DMarkVAGT2",
        dx_version=10,
        width_px=1920,
        height_px=1200,
        num_frames=4,
        seed=102,
        main_passes=4,
        post_passes=6,
        overdraw=2.4,
        texture_count=6,
        samples_per_tile=4.4,
        shadow_maps=2,
        post_samples_per_tile=1.3,
    ),
    AppProfile(
        name="Assassin's Creed",
        abbrev="AssnCreed",
        dx_version=10,
        width_px=1680,
        height_px=1050,
        num_frames=5,
        seed=103,
        main_passes=4,
        post_passes=6,
        overdraw=1.8,          # low overdraw: most produced RT blocks survive
        aux_targets=0,         # virtually everything rendered gets consumed
        shadow_maps=2,
        shadow_sample_probability=0.8,
        texture_count=4,
        samples_per_tile=3.8,
        hot_probability=0.55,
        post_samples_per_tile=1.5,
        blend_fraction=0.25,
    ),
    AppProfile(
        name="BioShock",
        abbrev="BioShock",
        dx_version=10,
        width_px=1920,
        height_px=1200,
        num_frames=4,
        seed=104,
        main_passes=4,
        post_passes=2,
        overdraw=2.8,
        aux_targets=1,
        texture_count=6,
        samples_per_tile=4.0,
        blend_fraction=0.4,    # water/glass effects blend heavily
        stencil_fraction=0.2,
    ),
    AppProfile(
        name="Devil May Cry 4",
        abbrev="DMC",
        dx_version=10,
        width_px=1680,
        height_px=1050,
        num_frames=5,
        seed=105,
        main_passes=4,
        post_passes=3,
        overdraw=3.0,
        aux_targets=1,
        texture_count=5,
        samples_per_tile=4.2,
        hot_probability=0.35,  # fast scene churn: colder textures
        blend_fraction=0.35,
    ),
    AppProfile(
        name="Civilization V",
        abbrev="Civilization",
        dx_version=11,
        width_px=1920,
        height_px=1200,
        num_frames=4,
        seed=106,
        main_passes=4,
        draws_per_pass=22,     # many small terrain/unit draws
        overdraw=2.0,
        post_passes=2,
        texture_count=8,       # large terrain texture set
        texture_px=1536,
        samples_per_tile=4.4,
        hot_probability=0.5,
        hot_fraction=0.15,
        vertex_buffer_blocks=264000,
    ),
    AppProfile(
        name="Dirt 2",
        abbrev="Dirt",
        dx_version=11,
        width_px=1680,
        height_px=1050,
        num_frames=4,
        seed=107,
        main_passes=4,
        post_passes=4,         # motion blur / color grading chain
        overdraw=2.6,
        aux_targets=2,         # reflection/environment targets
        texture_count=5,
        samples_per_tile=4.0,
        blend_fraction=0.3,
        post_samples_per_tile=1.6,
    ),
    AppProfile(
        name="HAWX 2",
        abbrev="HAWX",
        dx_version=11,
        width_px=1920,
        height_px=1200,
        num_frames=4,
        seed=108,
        main_passes=4,
        draws_per_pass=16,
        overdraw=1.8,          # open sky: little overdraw
        post_passes=2,
        aux_targets=1,
        texture_count=6,
        texture_px=1536,       # terrain streaming
        samples_per_tile=4.6,
        hot_probability=0.3,   # streaming terrain: cold-dominated
        vertex_buffer_blocks=360000,  # tessellated terrain geometry
    ),
    AppProfile(
        name="Unigine Heaven 2.1",
        abbrev="Heaven",
        dx_version=11,
        width_px=2560,
        height_px=1600,
        num_frames=5,
        seed=109,
        main_passes=4,
        draws_per_pass=18,
        overdraw=2.4,
        post_passes=3,
        texture_count=6,
        samples_per_tile=4.0,
        vertex_buffer_blocks=408000,  # heavy tessellation
        stencil_fraction=0.15,
    ),
    AppProfile(
        name="Lost Planet 2",
        abbrev="LostPlanet",
        dx_version=11,
        width_px=1920,
        height_px=1200,
        num_frames=5,
        seed=110,
        main_passes=4,
        post_passes=3,
        overdraw=2.8,
        aux_targets=1,
        shadow_maps=2,
        texture_count=5,
        samples_per_tile=4.2,
        hot_probability=0.4,
        blend_fraction=0.35,
    ),
    AppProfile(
        name="Stalker COP",
        abbrev="StalkerCOP",
        dx_version=11,
        width_px=1680,
        height_px=1050,
        num_frames=4,
        seed=111,
        main_passes=5,         # deferred renderer: fat G-buffer passes
        post_passes=4,         # deferred lighting + post as RT->TEX chain
        overdraw=2.2,
        aux_targets=1,
        shadow_maps=2,
        shadow_sample_probability=0.7,
        texture_count=5,
        samples_per_tile=4.0,
        post_samples_per_tile=1.4,
    ),
    AppProfile(
        name="Unigine 3D engine",
        abbrev="Unigine",
        dx_version=11,
        width_px=1920,
        height_px=1200,
        num_frames=4,
        seed=112,
        main_passes=4,
        post_passes=4,
        overdraw=2.3,
        texture_count=6,
        samples_per_tile=4.1,
        vertex_buffer_blocks=288000,
        post_samples_per_tile=1.3,
    ),
)

_APPS_BY_NAME: Dict[str, AppProfile] = {}
for _app in ALL_APPS:
    _APPS_BY_NAME[_app.name.lower()] = _app
    _APPS_BY_NAME[_app.abbrev.lower()] = _app


def app_by_name(name: str) -> AppProfile:
    """Look an application up by full name or abbreviation."""
    key = name.strip().lower()
    if key not in _APPS_BY_NAME:
        known = ", ".join(app.abbrev for app in ALL_APPS)
        raise WorkloadError(f"unknown application {name!r}; known: {known}")
    return _APPS_BY_NAME[key]


def frames_for_app(app: AppProfile) -> List[FrameSpec]:
    """Every evaluated frame of one application (or family workload).

    ``AppProfile.__post_init__`` rejects non-positive frame counts, but
    duck-typed workloads (``SourceWorkload``, family presets, test
    doubles) reach here unvalidated — a workload with no frames would
    silently contribute an empty trace plan, which downstream layers
    report as a mysteriously missing result.  Fail loudly instead:
    CLIs map the typed :class:`TraceError` to exit 2 (usage).
    """
    num_frames = int(getattr(app, "num_frames", 0) or 0)
    if num_frames < 1:
        label = getattr(app, "abbrev", None) or getattr(app, "name", repr(app))
        raise TraceError(
            f"workload {label!r} defines no frames; nothing to trace"
        )
    return [FrameSpec(app, index) for index in range(num_frames)]


def all_frames() -> List[FrameSpec]:
    """The 52 evaluated frames (Section 4)."""
    frames: List[FrameSpec] = []
    for app in ALL_APPS:
        frames.extend(frames_for_app(app))
    if not frames:
        raise TraceError("no application defines any frames")
    return frames


TOTAL_FRAMES = sum(app.num_frames for app in ALL_APPS)
assert TOTAL_FRAMES == 52, f"expected 52 frames, profiles define {TOTAL_FRAMES}"
