"""Frame-coherence workload family.

Anglada et al.'s Dynamic Sampling Rate observation (PAPERS.md) is that
consecutive frames of a real-time rendering workload are highly
similar: the camera moves a little, a few objects animate, and the
bulk of each frame re-renders the same geometry into the same surfaces
with the same textures.  The paper evaluates 52 *discrete* frames, so
its policies never face (or exploit) that temporal axis.

:class:`CoherentProfile` turns the inter-frame similarity into a
measurable knob.  Every frame of one profile renders the *same*
resource allocation (surfaces, textures, vertex buffers are rebuilt
bit-identically from the profile seed) and starts from the *same* base
draw list; a per-frame perturbation pass then models scene motion:

* ``similarity`` — probability that a draw survives a frame transition
  untouched (its covered region, texture phase, and rasterization are
  byte-identical across frames).
* ``delta_fraction`` — of the draws that *do* change, the fraction that
  is fully re-randomized (new screen region, fresh texel working set:
  objects entering/leaving the view) rather than merely jittered by a
  small camera pan.
* ``order_jitter`` — attempted adjacent draw swaps per pass (draw-order
  perturbation from state sorting / visibility changes), each applied
  with probability ``1 - similarity``.

Perturbations preserve every draw's covered-rectangle *size*, so the
rasterizer consumes its RNG stream identically for touched and
untouched draws alike — an unperturbed draw produces byte-identical
accesses in every frame, which is what makes the similarity knob
trustworthy instead of drowned in generator noise.

Frames are independently generatable (``frame_trace(workload, k)`` for
any ``k`` without rendering frames ``0..k-1``), so the family drops
into the existing per-frame trace cache, sweep DAG, and both replay
engines unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, List, Tuple

import numpy as np

from repro.cache.hierarchy import RenderCacheFrontEnd
from repro.config import RenderCachesConfig
from repro.errors import WorkloadError
from repro.trace.record import Trace, TraceBuilder
from repro.workloads.apps import app_by_name
from repro.workloads.framegen import (
    SHADER_BLOCKS,
    build_frame_passes,
    build_resources,
)
from repro.workloads.passes import DrawCall, RenderPass


@dataclasses.dataclass(frozen=True)
class CoherentProfile:
    """A sequence of consecutive, controllably similar frames."""

    name: str
    abbrev: str
    #: Table 1 application whose renderer parameterization is reused.
    base_app: str
    num_frames: int
    seed: int
    #: Probability a draw survives a frame transition untouched.
    similarity: float = 0.85
    #: Fraction of touched draws fully re-randomized (vs jittered).
    delta_fraction: float = 0.5
    #: Attempted adjacent draw swaps per pass (draw-order perturbation).
    order_jitter: int = 2

    family: ClassVar[str] = "coherent"

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise WorkloadError(f"{self.name}: needs at least one frame")
        if not 0.0 <= self.similarity <= 1.0:
            raise WorkloadError(f"{self.name}: similarity must be in [0, 1]")
        if not 0.0 <= self.delta_fraction <= 1.0:
            raise WorkloadError(
                f"{self.name}: delta_fraction must be in [0, 1]"
            )
        if self.order_jitter < 0:
            raise WorkloadError(f"{self.name}: order_jitter must be >= 0")

    # -- generation -----------------------------------------------------------

    def _perturb_pass(
        self, render_pass: RenderPass, rng: np.random.Generator
    ) -> RenderPass:
        """Apply one frame's scene motion to one pass.

        Only draw *positions* and texture *phases* change — never the
        covered-rectangle size — so the rasterizer's data-dependent RNG
        consumption stays aligned across frames (see module docstring).
        """
        draws: List[DrawCall] = list(render_pass.draws)
        target = render_pass.color_target
        for _ in range(self.order_jitter):
            if len(draws) > 1 and rng.random() >= self.similarity:
                at = int(rng.integers(0, len(draws) - 1))
                draws[at], draws[at + 1] = draws[at + 1], draws[at]
        for index, draw in enumerate(draws):
            if rng.random() < self.similarity:
                continue
            x0, y0, x1, y1 = draw.region
            width, height = x1 - x0, y1 - y0
            max_x = max(0, target.tiles_x - width)
            max_y = max(0, target.tiles_y - height)
            if rng.random() < self.delta_fraction:
                # Fresh content: new region, new texel working set.
                new_x = int(rng.integers(0, max_x + 1))
                new_y = int(rng.integers(0, max_y + 1))
                phase = int(rng.integers(0, 1 << 14))
            else:
                # Camera pan: small spatial and texel-phase drift.
                new_x = min(max(0, x0 + int(rng.integers(-2, 3))), max_x)
                new_y = min(max(0, y0 + int(rng.integers(-2, 3))), max_y)
                phase = draw.uv_phase + int(rng.integers(1, 64))
            draws[index] = dataclasses.replace(
                draw,
                region=(new_x, new_y, new_x + width, new_y + height),
                uv_phase=phase,
            )
        return dataclasses.replace(render_pass, draws=tuple(draws))

    def base_passes(self, scale: float) -> Tuple[list, "object"]:
        """The frame-independent pass list and resources."""
        app = app_by_name(self.base_app)
        base_rng = np.random.default_rng(self.seed << 8)
        resources = build_resources(app, scale, base_rng)
        passes = build_frame_passes(app, resources, 0, base_rng)
        return passes, resources

    def generate(self, frame_index: int, scale: float) -> Trace:
        """Render one frame of the coherent sequence."""
        if frame_index < 0:
            raise WorkloadError(
                f"frame index must be non-negative: {frame_index}"
            )
        from repro.workloads.raster import emit_pass  # avoid import cycle

        passes, resources = self.base_passes(scale)
        frame_rng = np.random.default_rng(
            (self.seed << 8) ^ (0x5EED + 2654435761 * (frame_index + 1))
        )
        passes = [self._perturb_pass(p, frame_rng) for p in passes]
        caches = RenderCachesConfig().scaled(scale**1.25)
        builder = TraceBuilder(
            {
                "name": f"{self.abbrev}#f{frame_index}",
                "app": self.name,
                "abbrev": self.abbrev,
                "family": self.family,
                "base_app": self.base_app,
                "frame": frame_index,
                "scale": scale,
                "similarity": self.similarity,
                "delta_fraction": self.delta_fraction,
            }
        )
        front = RenderCacheFrontEnd(caches, builder)
        for pass_index, render_pass in enumerate(passes):
            # One RNG per pass, seeded frame-independently: unperturbed
            # passes rasterize byte-identically in every frame.
            emit_rng = np.random.default_rng(
                (self.seed << 16) ^ (7919 * pass_index + 1)
            )
            emit_pass(
                front,
                render_pass,
                emit_rng,
                resources.vertex_base,
                resources.shader_base,
                SHADER_BLOCKS,
            )
        trace = builder.build()
        trace.meta["raw_accesses"] = front.raw_accesses
        return trace


def inter_frame_overlap(
    profile: CoherentProfile, scale: float, frame_a: int = 0, frame_b: int = 1
) -> float:
    """Fraction of frame ``a``'s touched blocks also touched by ``b``.

    The characterization benchmark uses this to demonstrate that the
    similarity knob actually moves temporal reuse: ``coh-hi`` overlaps
    far more than ``coh-lo`` at the same scale.
    """
    blocks_a = np.unique(profile.generate(frame_a, scale).block_addresses())
    blocks_b = np.unique(profile.generate(frame_b, scale).block_addresses())
    if blocks_a.size == 0:
        return 0.0
    return float(np.isin(blocks_a, blocks_b).mean())
