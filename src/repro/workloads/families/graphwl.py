"""Irregular graph / big-data workload family.

Jamet et al.'s LLC characterization of graph workloads (PAPERS.md)
shows access patterns almost perfectly hostile to rendering-tuned
policies: power-law degree distributions concentrate reuse on a few
hub vertices while the long tail streams through the cache once, and
pointer chasing serializes dependent misses.  GSPC's stream taxonomy
was never meant to see this traffic — which is exactly why it makes a
good out-of-envelope probe.

:class:`GraphProfile` builds a deterministic CSR graph (Zipf-like
degrees, degree-biased edge targets — a preferential-attachment
sketch) and replays one of three access idioms per "frame":

* ``bfs`` — frontier supersteps over a random vertex subset: offset
  reads, sequential edge-list reads, scattered neighbor-value gathers,
  per-vertex updates.
* ``pr`` — PageRank-style full sweeps: the same shape with the
  frontier pinned to every vertex, so hub values dominate reuse.
* ``chase`` — parallel pointer-chasing walks: chains of dependent
  edge reads and value gathers with a visited-bitmap write per hop.

Stream mapping is deliberately honest *and* deliberately wrong for
the Table 1 envelope: index structures (offsets, edge lists) emit as
``VERTEX``, value gathers as ``TEXTURE``, updates and bitmaps as
``OTHER`` — so the depth (Z) and render-target (RT) classes are empty
and the OTHER class dominates.  `gspc-workloads check graph-*` exits 3
on the envelope gate, and CI asserts that it does.

Graph traffic bypasses the render-cache front end (these kernels do
not use rasterizer caches); accesses reach the LLC raw.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.streams import Stream
from repro.trace.record import Trace, TraceBuilder

#: Disjoint GB-aligned regions so streams never alias each other.
META_BASE = 0x2000_0000
OFFSETS_BASE = 0x4000_0000
EDGES_BASE = 0x8000_0000
VALUES_BASE = 0xC000_0000

_MODES = ("bfs", "pr", "chase")


@dataclasses.dataclass(frozen=True)
class GraphProfile:
    """A deterministic power-law graph replayed with one access idiom."""

    name: str
    abbrev: str
    mode: str
    num_frames: int
    seed: int
    #: Vertex count at scale 1.0 (scales as ``scale**2``, floor 512).
    nodes: int = 3_000_000
    avg_degree: int = 16
    #: Degree skew: weight of rank ``r`` vertex is ``(r + 1) ** -alpha``.
    zipf_alpha: float = 0.9
    #: ``bfs`` only: fraction of vertices active per superstep.
    frontier_fraction: float = 0.35
    #: ``bfs``/``pr``: supersteps per frame.
    supersteps: int = 2
    #: ``chase`` only: concurrent walks at scale 1.0 (scales as ``scale``).
    chains: int = 4096
    #: ``chase`` only: hops per walk.
    chain_length: int = 96
    #: Vertices per emission batch (stream-interleaving granularity).
    batch: int = 256

    family: ClassVar[str] = "graph"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise WorkloadError(
                f"{self.name}: unknown graph mode {self.mode!r} "
                f"(expected one of {_MODES})"
            )
        if self.num_frames < 1:
            raise WorkloadError(f"{self.name}: needs at least one frame")
        if self.nodes < 2 or self.avg_degree < 1:
            raise WorkloadError(f"{self.name}: degenerate graph shape")
        if not 0.0 < self.frontier_fraction <= 1.0:
            raise WorkloadError(
                f"{self.name}: frontier_fraction must be in (0, 1]"
            )

    # -- graph construction ---------------------------------------------------

    def effective_nodes(self, scale: float) -> int:
        return max(512, int(self.nodes * scale**2))

    def build_graph(
        self, scale: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(degrees, offsets, targets)`` — frame-independent CSR arrays."""
        n = self.effective_nodes(scale)
        rng = np.random.default_rng(self.seed << 8)
        weights = (np.arange(n, dtype=np.float64) + 1.0) ** -self.zipf_alpha
        rng.shuffle(weights)  # decorrelate degree from vertex id
        total_edges = n * self.avg_degree
        degrees = np.maximum(
            1, np.rint(weights * (total_edges / weights.sum())).astype(np.int64)
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        # Degree-biased targets: hubs attract edges, as in scale-free graphs.
        targets = rng.choice(
            n, size=int(offsets[-1]), p=degrees / degrees.sum()
        ).astype(np.int64)
        return degrees, offsets, targets

    # -- emission -------------------------------------------------------------

    def _emit_sweep(
        self,
        builder: TraceBuilder,
        frontier: np.ndarray,
        degrees: np.ndarray,
        offsets: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        """One superstep: process ``frontier`` vertices in batches."""
        for start in range(0, len(frontier), self.batch):
            nodes = frontier[start : start + self.batch]
            counts = degrees[nodes]
            begins = offsets[nodes]
            total = int(counts.sum())
            # Edge-array indices: for each vertex its contiguous CSR run.
            runs = np.repeat(
                begins - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            ) + np.arange(total, dtype=np.int64)
            builder.extend(OFFSETS_BASE + 8 * nodes, Stream.VERTEX)
            builder.extend(EDGES_BASE + 8 * runs, Stream.VERTEX)
            builder.extend(VALUES_BASE + 64 * targets[runs], Stream.TEXTURE)
            builder.extend(VALUES_BASE + 64 * nodes, Stream.OTHER, True)

    def _emit_chase(
        self,
        builder: TraceBuilder,
        rng: np.random.Generator,
        degrees: np.ndarray,
        offsets: np.ndarray,
        targets: np.ndarray,
        scale: float,
    ) -> None:
        """Parallel dependent walks with a visited-bitmap write per hop."""
        n = len(degrees)
        walks = max(64, int(self.chains * scale))
        current = rng.integers(0, n, size=walks)
        for _ in range(self.chain_length):
            slots = offsets[current] + rng.integers(0, 1 << 30, size=walks) % (
                degrees[current]
            )
            nxt = targets[slots]
            builder.extend(EDGES_BASE + 8 * slots, Stream.VERTEX)
            builder.extend(VALUES_BASE + 64 * nxt, Stream.TEXTURE)
            builder.extend(META_BASE + 64 * (nxt // 512), Stream.OTHER, True)
            current = nxt

    def generate(self, frame_index: int, scale: float) -> Trace:
        """Replay one frame (iteration) of the graph workload."""
        if frame_index < 0:
            raise WorkloadError(
                f"frame index must be non-negative: {frame_index}"
            )
        degrees, offsets, targets = self.build_graph(scale)
        n = len(degrees)
        frame_rng = np.random.default_rng(
            (self.seed << 8) ^ (0x6EED + 2654435761 * (frame_index + 1))
        )
        builder = TraceBuilder(
            {
                "name": f"{self.abbrev}#f{frame_index}",
                "app": self.name,
                "abbrev": self.abbrev,
                "family": self.family,
                "mode": self.mode,
                "frame": frame_index,
                "scale": scale,
                "nodes": n,
                "edges": int(offsets[-1]),
            }
        )
        if self.mode == "chase":
            self._emit_chase(
                builder, frame_rng, degrees, offsets, targets, scale
            )
        else:
            for _ in range(self.supersteps):
                if self.mode == "pr":
                    frontier = np.arange(n, dtype=np.int64)
                else:
                    mask = frame_rng.random(n) < self.frontier_fraction
                    frontier = np.flatnonzero(mask)
                    if frontier.size == 0:
                        frontier = frame_rng.integers(0, n, size=1)
                self._emit_sweep(builder, frontier, degrees, offsets, targets)
        trace = builder.build()
        trace.meta["raw_accesses"] = len(trace)
        return trace
