"""Workload families beyond the paper's Table 1 applications.

The paper evaluates GSPC on 12 discrete rendering frames.  This
package grows the workload axis along three directions named by the
related work (PAPERS.md, ROADMAP.md):

``coherent``
    Consecutive-frame sequences with a controllable inter-frame
    similarity knob (Anglada et al.) — *inside* the rendering
    envelope, probing temporal reuse the discrete frames cannot.
``graph``
    Irregular pointer-chasing / power-law graph streams (Jamet et
    al.) — deliberately *outside* the Table 1 envelope.
``compute``
    GPGPU kernel graphs — streaming, stencil, reduction — via the
    graph-based caching formulation of Li et al.; no depth traffic,
    so also outside the envelope.

Family workloads duck-type :class:`~repro.workloads.apps.AppProfile`
where the rest of the system cares (``name``, ``abbrev``,
``num_frames``, ``seed``) and add ``generate(frame_index, scale) ->
Trace``.  They resolve by name through ``SyntheticSource`` (and thus
the frame-trace cache, both engines, `gspc-sweep`, and `gspc-serve`)
but are *not* enumerated by ``workloads()``/``frames()`` — the
paper's 12-app × 52-frame experiment set stays exactly as published,
and families opt in by being named on a CLI's ``--apps`` axis.

Run ``python -m repro.workloads.families list`` for the preset table
and ``... check NAME`` for the Table 1 envelope verdict (exit 0
conformant, 3 violating — the same contract as `gspc-ingest`).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.errors import WorkloadError
from repro.workloads.families.compute import ComputeProfile
from repro.workloads.families.coherent import CoherentProfile
from repro.workloads.families.graphwl import GraphProfile

FamilyWorkload = Union[CoherentProfile, GraphProfile, ComputeProfile]

#: Family name -> whether its presets are expected to conform to the
#: Table 1 envelope (`check_envelope`); CI pins both directions.
FAMILY_ENVELOPE_CONFORMANT = {
    "coherent": True,
    "graph": False,
    "compute": False,
}

_PRESETS: List[FamilyWorkload] = [
    # Frame-coherence: one preset per similarity regime, each borrowing a
    # different Table 1 app's renderer parameterization.
    CoherentProfile(
        name="coherent-high",
        abbrev="coh-hi",
        base_app="Assassin's Creed",
        num_frames=4,
        seed=101,
        similarity=0.95,
        delta_fraction=0.3,
    ),
    CoherentProfile(
        name="coherent-medium",
        abbrev="coh-med",
        base_app="Devil May Cry 4",
        num_frames=4,
        seed=102,
        similarity=0.70,
        delta_fraction=0.5,
    ),
    CoherentProfile(
        name="coherent-low",
        abbrev="coh-lo",
        base_app="BioShock",
        num_frames=4,
        seed=103,
        similarity=0.35,
        delta_fraction=0.8,
        order_jitter=4,
    ),
    # Graph / big-data: three access idioms over the same CSR shape.
    GraphProfile(
        name="graph-bfs",
        abbrev="graph-bfs",
        mode="bfs",
        num_frames=4,
        seed=201,
    ),
    GraphProfile(
        name="graph-pagerank",
        abbrev="graph-pr",
        mode="pr",
        num_frames=4,
        seed=202,
        supersteps=1,
    ),
    GraphProfile(
        name="graph-pointer-chase",
        abbrev="graph-chase",
        mode="chase",
        num_frames=4,
        seed=203,
    ),
    # GPGPU compute: three kernel-graph shapes.
    ComputeProfile(
        name="compute-stream",
        abbrev="comp-stream",
        mode="stream",
        num_frames=4,
        seed=301,
    ),
    ComputeProfile(
        name="compute-stencil",
        abbrev="comp-stencil",
        mode="stencil",
        num_frames=4,
        seed=302,
    ),
    ComputeProfile(
        name="compute-reduce",
        abbrev="comp-reduce",
        mode="reduce",
        num_frames=4,
        seed=303,
    ),
]

FAMILY_WORKLOADS: Dict[str, FamilyWorkload] = {}
for _preset in _PRESETS:
    for _key in {_preset.name, _preset.abbrev}:
        if _key in FAMILY_WORKLOADS:
            raise WorkloadError(f"duplicate family workload name: {_key}")
        FAMILY_WORKLOADS[_key] = _preset


def all_families() -> List[str]:
    """The family identifiers, in presentation order."""
    return list(FAMILY_ENVELOPE_CONFORMANT)


def family_workloads(family: str) -> List[FamilyWorkload]:
    """All presets of one family, in registration order."""
    if family not in FAMILY_ENVELOPE_CONFORMANT:
        raise WorkloadError(
            f"unknown workload family: {family!r} "
            f"(expected one of {all_families()})"
        )
    return [p for p in _PRESETS if p.family == family]


def family_by_name(name: str) -> FamilyWorkload:
    """Look up a family workload by ``name`` or ``abbrev``."""
    try:
        return FAMILY_WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown family workload: {name!r} "
            f"(known: {', '.join(sorted({p.abbrev for p in _PRESETS}))})"
        ) from None


def is_family_workload(name: str) -> bool:
    """True if ``name`` resolves to a family workload."""
    return name in FAMILY_WORKLOADS


__all__ = [
    "CoherentProfile",
    "ComputeProfile",
    "FAMILY_ENVELOPE_CONFORMANT",
    "FAMILY_WORKLOADS",
    "FamilyWorkload",
    "GraphProfile",
    "all_families",
    "family_by_name",
    "family_workloads",
    "is_family_workload",
]
