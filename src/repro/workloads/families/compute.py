"""GPGPU-compute workload family.

Li et al. (PAPERS.md) formulate GPGPU cache management over a *kernel
graph*: kernels are nodes, arrays are edges from producer to consumer,
and the LLC's job is to carry producer→consumer working sets across
kernel boundaries.  :class:`ComputeProfile` instantiates that
formulation as three classic kernel-graph shapes:

* ``stream`` — ``C = A + B`` then ``D = C * s``: a two-kernel chain
  whose only temporal reuse is the intermediate ``C`` crossing the
  kernel boundary.
* ``stencil`` — ping-pong 3-row stencil sweeps: each output row reads
  three input rows, so rows are re-read with short, regular reuse
  distances inside a sweep and the whole array is re-read across
  sweeps.
* ``reduce`` — a tree reduction: each level reads the previous level's
  partials and writes half as many, shrinking the live working set
  geometrically.

Stream mapping follows the taxonomy's semantics rather than its
rendering origins: array loads emit as ``TEXTURE`` (the sampler path
is how GPGPU kernels read memory), intermediate array stores as ``RT``
(shader output path), kernel-descriptor fetches as ``OTHER``, and the
*final* kernel's output as ``DISPLAY`` — it is consumed by the host,
never re-read by the GPU, which is precisely the write-once pattern
the paper's ``+ucd`` variant exists to bypass.  With no depth traffic
at all, the Z class is empty and every compute preset sits outside
the Table 1 envelope by construction.

Like the graph family, compute traffic bypasses the render-cache
front end; coalesced global accesses are modelled at 64 B block
granularity.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar

import numpy as np

from repro.errors import WorkloadError
from repro.streams import Stream
from repro.trace.record import Trace, TraceBuilder

#: Array slots live in disjoint 256 MB regions.
ARRAY_BASE = 0x1000_0000
ARRAY_STRIDE = 0x1000_0000
DESC_BASE = 0x800_0000

_MODES = ("stream", "stencil", "reduce")


def _array_blocks(slot: int, blocks: np.ndarray) -> np.ndarray:
    """Byte addresses of 64 B blocks inside array ``slot``."""
    return ARRAY_BASE + slot * ARRAY_STRIDE + 64 * blocks


@dataclasses.dataclass(frozen=True)
class ComputeProfile:
    """A small kernel graph replayed at block granularity."""

    name: str
    abbrev: str
    mode: str
    num_frames: int
    seed: int
    #: Per-array size in MiB at scale 1.0 (scales as ``scale**2``).
    array_mb: float = 96.0
    #: Blocks per emission chunk (stream-interleaving granularity).
    chunk: int = 512
    #: ``stencil`` only: blocks per row.
    row_blocks: int = 64
    #: ``stencil`` only: ping-pong sweeps per frame.
    sweeps: int = 2
    #: ``stream`` only: time steps per frame (iterative solvers re-read
    #: their operand arrays every step — cyclic reuse the LLC can carry).
    iterations: int = 2

    family: ClassVar[str] = "compute"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise WorkloadError(
                f"{self.name}: unknown compute mode {self.mode!r} "
                f"(expected one of {_MODES})"
            )
        if self.num_frames < 1:
            raise WorkloadError(f"{self.name}: needs at least one frame")
        if self.array_mb <= 0:
            raise WorkloadError(f"{self.name}: array_mb must be positive")

    def blocks_per_array(self, scale: float) -> int:
        return max(256, int(self.array_mb * (1 << 20) * scale**2) // 64)

    # -- kernels --------------------------------------------------------------

    def _emit_kernel(
        self,
        builder: TraceBuilder,
        reads: list,
        write_slot: int,
        write_blocks: np.ndarray,
        final: bool,
        kernel_id: int,
        frame_index: int,
    ) -> None:
        """One kernel launch: chunked loads, stores, descriptor fetches.

        ``reads`` is a list of ``(slot, blocks)`` input gathers; all inputs
        and the output are walked chunk-by-chunk so streams interleave the
        way warps actually issue them.
        """
        out_stream = Stream.DISPLAY if final else Stream.RT
        n = len(write_blocks)
        for start in range(0, n, self.chunk):
            stop = min(start + self.chunk, n)
            # One descriptor line per chunk: grid/arg fetch on the OTHER
            # stream, distinct per frame and kernel.
            builder.append(
                DESC_BASE + 64 * (kernel_id * 4096 + frame_index * 64 + start // self.chunk % 64),
                Stream.OTHER,
            )
            for slot, blocks in reads:
                lo = start * len(blocks) // n
                hi = stop * len(blocks) // n
                builder.extend(
                    _array_blocks(slot, blocks[lo:hi]), Stream.TEXTURE
                )
            builder.extend(
                _array_blocks(write_slot, write_blocks[start:stop]),
                out_stream,
                True,
            )

    def _emit_stream(
        self, builder: TraceBuilder, blocks: np.ndarray, frame_index: int
    ) -> None:
        # Per time step — kernel 0: C = A + B; kernel 1: D = C * s
        # (re-reads C across the kernel boundary).  Steps after the first
        # re-read A and B cyclically, as an iterative solver would.
        for step in range(max(1, self.iterations)):
            final = step == max(1, self.iterations) - 1
            self._emit_kernel(
                builder,
                [(0, blocks), (1, blocks)],
                2,
                blocks,
                False,
                2 * step,
                frame_index,
            )
            self._emit_kernel(
                builder, [(2, blocks)], 3, blocks, final, 2 * step + 1, frame_index
            )

    def _emit_stencil(
        self, builder: TraceBuilder, blocks: np.ndarray, frame_index: int
    ) -> None:
        n = len(blocks)
        rows = n // self.row_blocks
        row = np.arange(self.row_blocks, dtype=np.int64)
        src, dst = 0, 1
        for sweep in range(self.sweeps):
            final = sweep == self.sweeps - 1
            for r in range(rows):
                above = max(0, r - 1) * self.row_blocks + row
                here = r * self.row_blocks + row
                below = min(rows - 1, r + 1) * self.row_blocks + row
                self._emit_kernel(
                    builder,
                    [(src, above), (src, here), (src, below)],
                    dst if not final else 2,
                    here,
                    final,
                    2 + sweep,
                    frame_index,
                )
            src, dst = dst, src

    def _emit_reduce(
        self, builder: TraceBuilder, blocks: np.ndarray, frame_index: int
    ) -> None:
        level = 0
        live = blocks
        while len(live) > 16:
            half = live[: max(16, len(live) // 2)]
            final = len(half) <= 16
            self._emit_kernel(
                builder,
                [(level % 2, live)],
                (level + 1) % 2 if not final else 2,
                half,
                final,
                8 + level,
                frame_index,
            )
            live = half
            level += 1

    # -- entry point ----------------------------------------------------------

    def generate(self, frame_index: int, scale: float) -> Trace:
        """Replay one frame (one launch of the kernel graph)."""
        if frame_index < 0:
            raise WorkloadError(
                f"frame index must be non-negative: {frame_index}"
            )
        n = self.blocks_per_array(scale)
        # Successive frames of an iterative computation start their tiling
        # at a rotated phase — frames differ without changing the working
        # set (same arrays, same kernels).
        phase = (self.seed + frame_index * 97) % n
        blocks = (np.arange(n, dtype=np.int64) + phase) % n
        builder = TraceBuilder(
            {
                "name": f"{self.abbrev}#f{frame_index}",
                "app": self.name,
                "abbrev": self.abbrev,
                "family": self.family,
                "mode": self.mode,
                "frame": frame_index,
                "scale": scale,
                "blocks_per_array": n,
            }
        )
        if self.mode == "stream":
            self._emit_stream(builder, blocks, frame_index)
        elif self.mode == "stencil":
            self._emit_stencil(builder, blocks, frame_index)
        else:
            self._emit_reduce(builder, blocks, frame_index)
        trace = builder.build()
        trace.meta["raw_accesses"] = len(trace)
        return trace
