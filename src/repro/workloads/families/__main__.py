"""``python -m repro.workloads.families`` — list and envelope-check presets.

Subcommands
-----------
``list``
    Print the preset table (family, name, abbrev, frames, knobs).
``check NAME [NAME ...]``
    Generate one frame per named preset (``--frame``/``--scale``) and
    check it against the Table 1 characterization envelope.  Exit-code
    contract matches ``gspc-ingest``: 0 every checked preset conforms,
    2 usage error, 3 at least one envelope violation.  ``--expect``
    inverts the gate for CI legs that pin deliberate non-conformance.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cli import EXIT_OK, EXIT_PARTIAL, EXIT_USAGE
from repro.errors import ReproError
from repro.trace.sources.envelope import characterize_capture, check_envelope
from repro.workloads.families import (
    FAMILY_WORKLOADS,
    all_families,
    family_by_name,
    family_workloads,
)


def _knobs(workload) -> str:
    if workload.family == "coherent":
        return (
            f"base={workload.base_app!r} similarity={workload.similarity:g} "
            f"delta={workload.delta_fraction:g} jitter={workload.order_jitter}"
        )
    if workload.family == "graph":
        return (
            f"mode={workload.mode} nodes={workload.nodes} "
            f"degree={workload.avg_degree} alpha={workload.zipf_alpha:g}"
        )
    return f"mode={workload.mode} array_mb={workload.array_mb:g}"


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for family in all_families():
        for workload in family_workloads(family):
            rows.append(
                {
                    "family": family,
                    "name": workload.name,
                    "abbrev": workload.abbrev,
                    "num_frames": workload.num_frames,
                    "knobs": _knobs(workload),
                }
            )
    if args.json:
        json.dump(rows, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return EXIT_OK
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        print(
            f"{row['family']:<9} {row['name']:<{width}} "
            f"({row['abbrev']}, {row['num_frames']} frames)  {row['knobs']}"
        )
    return EXIT_OK


def _cmd_check(args: argparse.Namespace) -> int:
    violating = 0
    report = []
    for name in args.names:
        workload = family_by_name(name)
        trace = workload.generate(args.frame, args.scale)
        characterization = characterize_capture(trace)
        violations = check_envelope(characterization)
        report.append(
            {
                "name": workload.name,
                "family": workload.family,
                "accesses": characterization["accesses"],
                "classes": characterization["classes"],
                "violations": violations,
            }
        )
        verdict = "CONFORMS" if not violations else "VIOLATES"
        print(
            f"{workload.name}: {verdict} "
            f"({characterization['accesses']} accesses)"
        )
        for violation in violations:
            print(f"  - {violation}")
        if violations:
            violating += 1
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    conformant = violating == 0
    if args.expect == "violate":
        return EXIT_OK if not conformant else EXIT_PARTIAL
    return EXIT_OK if conformant else EXIT_PARTIAL


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gspc-workloads",
        description="List and envelope-check the extended workload families.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    list_parser = sub.add_parser("list", help="print the preset table")
    list_parser.add_argument("--json", action="store_true")
    list_parser.set_defaults(func=_cmd_list)
    check_parser = sub.add_parser(
        "check", help="check presets against the Table 1 envelope"
    )
    check_parser.add_argument(
        "names",
        nargs="+",
        metavar="NAME",
        help=f"preset name or abbrev (known: {', '.join(sorted(set(w.abbrev for w in FAMILY_WORKLOADS.values())))})",
    )
    check_parser.add_argument("--frame", type=int, default=0)
    check_parser.add_argument("--scale", type=float, default=0.0625)
    check_parser.add_argument(
        "--expect",
        choices=["conform", "violate"],
        default="conform",
        help="invert the gate: exit 0 only when presets violate the envelope",
    )
    check_parser.add_argument(
        "--json-out", default=None, help="write the characterization report"
    )
    check_parser.set_defaults(func=_cmd_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_USAGE if exc.code not in (0, None) else EXIT_OK
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
