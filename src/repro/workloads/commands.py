"""DirectX-style command streams.

The paper's methodology is "trace the DirectX calls generated while
rendering each frame and replay this trace through a detailed
simulator".  This module is the analogous layer for the synthetic
workloads: a frame is *captured* once as a flat list of commands —
render-target binds, pipeline-state changes, draws, and a final present
— that can be serialized, inspected, and *replayed* against any memory
hierarchy (see :mod:`repro.workloads.replay`).

Replaying a captured command list is deterministic and independent of
the cache configuration, which is what makes render-cache ablations
meaningful: the same "API calls", different memory systems.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import WorkloadError
from repro.workloads.passes import DrawCall, RenderPass, TextureBinding
from repro.workloads.surfaces import MipmappedTexture, Surface


@dataclasses.dataclass(frozen=True)
class SetTargets:
    """Bind the output surfaces (OMSetRenderTargets analogue)."""

    color: str
    depth: Optional[str] = None
    hiz: Optional[str] = None
    stencil: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class SetPipelineState:
    """Per-pass rasterizer/depth state."""

    early_z_reject: float = 0.0
    depth_pass_rate: float = 0.6


@dataclasses.dataclass(frozen=True)
class BindTexture:
    """Bind one sampler slot (PSSetShaderResources analogue)."""

    slot: int
    surface: str                 #: surface or texture name
    samples_per_tile: float = 1.0
    lod: int = 0
    screen_mapped: bool = False
    full_read: bool = False
    hot_probability: float = 0.5
    hot_fraction: float = 0.15


@dataclasses.dataclass(frozen=True)
class Draw:
    """One draw call over a tile region of the bound color target."""

    region: Tuple[int, int, int, int]
    coverage: float = 1.0
    blend: bool = False
    depth_test: bool = True
    depth_write: bool = True
    stencil_test: bool = False
    vertex_blocks: int = 0
    vertex_phase: int = 0
    uv_phase: int = 0


@dataclasses.dataclass(frozen=True)
class Present:
    """Resolve the bound color target into the displayable surface."""

    display: str


Command = Union[SetTargets, SetPipelineState, BindTexture, Draw, Present]

_COMMAND_TYPES: Dict[str, type] = {
    "set_targets": SetTargets,
    "set_state": SetPipelineState,
    "bind_texture": BindTexture,
    "draw": Draw,
    "present": Present,
}
_TYPE_NAMES = {cls: name for name, cls in _COMMAND_TYPES.items()}


@dataclasses.dataclass(frozen=True)
class SurfaceDecl:
    """Declaration of a surface in a command list's resource table."""

    name: str
    base: int
    width_px: int
    height_px: int
    tile_px: int = 4
    #: MIP levels (bases descend from ``base``); 1 = plain surface.
    levels: int = 1

    def to_surface(self) -> Surface:
        return Surface(self.name, self.base, self.width_px, self.height_px,
                       self.tile_px)


@dataclasses.dataclass
class CommandList:
    """A captured frame: resource table + ordered commands."""

    surfaces: List[SurfaceDecl] = dataclasses.field(default_factory=list)
    commands: List[Command] = dataclasses.field(default_factory=list)
    meta: Dict[str, object] = dataclasses.field(default_factory=dict)

    def surface_table(self) -> Dict[str, SurfaceDecl]:
        return {declaration.name: declaration for declaration in self.surfaces}

    def draw_count(self) -> int:
        return sum(1 for command in self.commands if isinstance(command, Draw))

    # -- serialization ----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "meta": self.meta,
            "surfaces": [dataclasses.asdict(s) for s in self.surfaces],
            "commands": [
                {"op": _TYPE_NAMES[type(c)], **dataclasses.asdict(c)}
                for c in self.commands
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "CommandList":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"malformed command list: {exc}") from exc
        if payload.get("version") != 1:
            raise WorkloadError(
                f"unsupported command-list version {payload.get('version')}"
            )
        surfaces = [SurfaceDecl(**entry) for entry in payload["surfaces"]]
        commands: List[Command] = []
        for entry in payload["commands"]:
            entry = dict(entry)
            op = entry.pop("op", None)
            if op not in _COMMAND_TYPES:
                raise WorkloadError(f"unknown command op {op!r}")
            if op == "draw" and "region" in entry:
                entry["region"] = tuple(entry["region"])
            commands.append(_COMMAND_TYPES[op](**entry))
        return cls(surfaces=surfaces, commands=commands,
                   meta=dict(payload.get("meta", {})))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "CommandList":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as exc:
            raise WorkloadError(f"cannot read command list {path}: {exc}") from exc


# -- capture: passes -> commands ---------------------------------------------------


def _declare(declarations: Dict[str, SurfaceDecl], source) -> str:
    """Register a surface or texture in the resource table; return name."""
    if isinstance(source, MipmappedTexture):
        base_level = source.base_level
        declarations.setdefault(
            source.name,
            SurfaceDecl(
                name=source.name,
                base=base_level.base,
                width_px=base_level.width_px,
                height_px=base_level.height_px,
                tile_px=base_level.tile_px,
                levels=source.num_levels,
            ),
        )
        return source.name
    declarations.setdefault(
        source.name,
        SurfaceDecl(
            name=source.name,
            base=source.base,
            width_px=source.width_px,
            height_px=source.height_px,
            tile_px=source.tile_px,
        ),
    )
    return source.name


def capture_commands(passes: List[RenderPass], meta=None) -> CommandList:
    """Flatten a pass list into a serializable command list."""
    declarations: Dict[str, SurfaceDecl] = {}
    commands: List[Command] = []
    for render_pass in passes:
        commands.append(
            SetTargets(
                color=_declare(declarations, render_pass.color_target),
                depth=_declare(declarations, render_pass.depth_target)
                if render_pass.depth_target
                else None,
                hiz=_declare(declarations, render_pass.hiz_target)
                if render_pass.hiz_target
                else None,
                stencil=_declare(declarations, render_pass.stencil_target)
                if render_pass.stencil_target
                else None,
            )
        )
        commands.append(
            SetPipelineState(
                early_z_reject=render_pass.early_z_reject,
                depth_pass_rate=render_pass.depth_pass_rate,
            )
        )
        for draw in render_pass.draws:
            for slot, binding in enumerate(draw.textures):
                commands.append(
                    BindTexture(
                        slot=slot,
                        surface=_declare(declarations, binding.source),
                        samples_per_tile=binding.samples_per_tile,
                        lod=binding.lod,
                        screen_mapped=binding.screen_mapped,
                        full_read=binding.full_read,
                        hot_probability=binding.hot_probability,
                        hot_fraction=binding.hot_fraction,
                    )
                )
            commands.append(
                Draw(
                    region=draw.region,
                    coverage=draw.coverage,
                    blend=draw.blend,
                    depth_test=draw.depth_test,
                    depth_write=draw.depth_write,
                    stencil_test=draw.stencil_test,
                    vertex_blocks=draw.vertex_blocks,
                    vertex_phase=draw.vertex_phase,
                    uv_phase=draw.uv_phase,
                )
            )
        if render_pass.resolve_to is not None:
            commands.append(
                Present(display=_declare(declarations, render_pass.resolve_to))
            )
    return CommandList(
        surfaces=list(declarations.values()),
        commands=commands,
        meta=dict(meta or {}),
    )


# -- reconstruction: commands -> passes (used by the replayer) ---------------------


def _mip_chain(declaration: SurfaceDecl) -> MipmappedTexture:
    """Rebuild the MIP pyramid layout of a multi-level declaration.

    Levels were allocated contiguously by
    :func:`repro.workloads.surfaces.allocate_texture`; recompute each
    level's base from the page-aligned sizes.
    """
    from repro.workloads.surfaces import PAGE_BYTES

    levels: List[Surface] = []
    base = declaration.base
    width, height = declaration.width_px, declaration.height_px
    for level_index in range(declaration.levels):
        level = Surface(
            f"{declaration.name}.mip{level_index}", base, width, height,
            declaration.tile_px,
        )
        levels.append(level)
        pages = -(-level.size_bytes // PAGE_BYTES)
        base += pages * PAGE_BYTES
        width = max(4, width // 2)
        height = max(4, height // 2)
    return MipmappedTexture(name=declaration.name, levels=levels)


def passes_from_commands(command_list: CommandList) -> List[RenderPass]:
    """Rebuild an executable pass list from a captured command stream."""
    table = command_list.surface_table()
    cache: Dict[str, object] = {}

    def resolve(name: str, as_texture: bool):
        key = ("tex" if as_texture else "surf", name)
        if key not in cache:
            declaration = table.get(name)
            if declaration is None:
                raise WorkloadError(f"command references unknown surface {name!r}")
            if as_texture and declaration.levels > 1:
                cache[key] = _mip_chain(declaration)
            else:
                cache[key] = declaration.to_surface()
        return cache[key]

    passes: List[RenderPass] = []
    current_targets: Optional[SetTargets] = None
    current_state = SetPipelineState()
    pending_bindings: Dict[int, TextureBinding] = {}
    draws: List[DrawCall] = []
    resolve_to: Optional[str] = None

    def flush() -> None:
        nonlocal draws, resolve_to
        if current_targets is None or (not draws and resolve_to is None):
            draws = []
            resolve_to = None
            return
        passes.append(
            RenderPass(
                name=f"replay{len(passes)}",
                color_target=resolve(current_targets.color, False),
                depth_target=resolve(current_targets.depth, False)
                if current_targets.depth
                else None,
                hiz_target=resolve(current_targets.hiz, False)
                if current_targets.hiz
                else None,
                stencil_target=resolve(current_targets.stencil, False)
                if current_targets.stencil
                else None,
                draws=tuple(draws),
                early_z_reject=current_state.early_z_reject,
                depth_pass_rate=current_state.depth_pass_rate,
                resolve_to=resolve(resolve_to, False) if resolve_to else None,
            )
        )
        draws = []
        resolve_to = None

    for command in command_list.commands:
        if isinstance(command, SetTargets):
            flush()
            current_targets = command
        elif isinstance(command, SetPipelineState):
            current_state = command
        elif isinstance(command, BindTexture):
            declaration = table.get(command.surface)
            as_texture = declaration is not None and declaration.levels > 1
            pending_bindings[command.slot] = TextureBinding(
                source=resolve(command.surface, as_texture),
                samples_per_tile=command.samples_per_tile,
                lod=command.lod,
                screen_mapped=command.screen_mapped,
                full_read=command.full_read,
                hot_probability=command.hot_probability,
                hot_fraction=command.hot_fraction,
            )
        elif isinstance(command, Draw):
            bindings = tuple(
                pending_bindings[slot] for slot in sorted(pending_bindings)
            )
            pending_bindings.clear()
            draws.append(
                DrawCall(
                    region=command.region,
                    coverage=command.coverage,
                    textures=bindings,
                    blend=command.blend,
                    depth_test=command.depth_test,
                    depth_write=command.depth_write,
                    stencil_test=command.stencil_test,
                    vertex_blocks=command.vertex_blocks,
                    vertex_phase=command.vertex_phase,
                    uv_phase=command.uv_phase,
                )
            )
        elif isinstance(command, Present):
            resolve_to = command.display
        else:  # pragma: no cover - exhaustive by construction
            raise WorkloadError(f"unknown command {command!r}")
    flush()
    return passes
