"""Frame synthesis: application profile -> render passes -> LLC trace.

``generate_frame_trace`` is the entry point used by the experiments: it
builds a frame's resources (back buffer, depth/stencil/HiZ buffers,
shadow maps, post-processing ping-pong targets, static MIP textures),
constructs the pass list (shadow -> main geometry -> post-processing ->
final + display resolve), rasterizes every draw, filters the raw
accesses through the render caches, and returns the resulting LLC
access trace.

Frames are deterministic: the RNG is seeded from (application, frame
index), and per-frame phase shifts model camera/scene movement so that
different frames of one application touch shifted texture and vertex
regions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.hierarchy import RenderCacheFrontEnd
from repro.config import RenderCachesConfig
from repro.errors import WorkloadError
from repro.trace.record import Trace, TraceBuilder
from repro.workloads.apps import AppProfile
from repro.workloads.passes import (
    DrawCall,
    RenderPass,
    TextureBinding,
    full_screen_region,
)
from repro.workloads.surfaces import (
    AddressSpace,
    MipmappedTexture,
    Surface,
    allocate_surface,
    allocate_texture,
)

#: Blocks of shader code/constants shared by a frame's draws.
SHADER_BLOCKS = 64


def _scaled_px(value: int, scale: float, minimum: int = 32) -> int:
    """Scale a pixel extent, rounding to a multiple of 4 (one tile)."""
    scaled = int(round(value * scale / 4)) * 4
    return max(minimum, scaled)


@dataclasses.dataclass
class FrameResources:
    """Everything a frame renders into or samples from."""

    space: AddressSpace
    back_buffer: Surface
    display: Surface
    depth: Surface
    hiz: Surface
    stencil: Surface
    scene_color: Surface
    aux_targets: List[Surface]
    post_targets: List[Surface]
    dyntex_targets: List[Surface]
    shadow_maps: List[Surface]
    shadow_depth: Optional[Surface]
    textures: List[MipmappedTexture]
    vertex_base: int
    vertex_blocks: int
    shader_base: int


def build_resources(
    app: AppProfile, scale: float, rng: np.random.Generator
) -> FrameResources:
    """Allocate all surfaces of one frame at the given scale."""
    space = AddressSpace()
    width = _scaled_px(app.width_px, scale)
    height = _scaled_px(app.height_px, scale)
    back_buffer = allocate_surface(space, "back_buffer", width, height)
    display = allocate_surface(space, "display", width, height)
    depth = allocate_surface(space, "depth", width, height)
    # One HiZ entry per 2x2-pixel quad (see raster.HIZ_TILES_PER_BLOCK_EDGE).
    hiz = allocate_surface(
        space, "hiz", max(4, width // 2), max(4, height // 2)
    )
    stencil = allocate_surface(space, "stencil", width, height, tile_px=8)
    scene_color = allocate_surface(space, "scene_color", width, height)
    aux_targets = [
        allocate_surface(space, f"aux{i}", width, height)
        for i in range(app.aux_targets)
    ]
    # Post-processing ping-pong targets run at half resolution (bloom,
    # blur and tone-mapping chains do in real engines), which makes their
    # producer->consumer distance short enough for online policies.
    post_targets = [
        allocate_surface(
            space, f"post{i}", max(16, width // 2), max(16, height // 2)
        )
        for i in range(2)
    ]
    dyntex_px = _scaled_px(app.dyntex_px, scale, minimum=16)
    dyntex_targets = [
        allocate_surface(space, f"dyntex{i}", dyntex_px, dyntex_px)
        for i in range(app.dyntex_count)
    ]
    shadow_px = _scaled_px(app.shadow_map_px, scale)
    shadow_maps = [
        allocate_surface(space, f"shadow{i}", shadow_px, shadow_px)
        for i in range(app.shadow_maps)
    ]
    shadow_depth = (
        allocate_surface(space, "shadow_depth", shadow_px, shadow_px)
        if app.shadow_maps
        else None
    )
    texture_px = _scaled_px(app.texture_px, scale)
    textures = [
        allocate_texture(space, f"texture{i}", texture_px, texture_px)
        for i in range(app.texture_count)
    ]
    vertex_blocks = max(64, int(app.vertex_buffer_blocks * scale * scale))
    vertex_base = space.allocate(vertex_blocks * 64)
    shader_base = space.allocate(SHADER_BLOCKS * 64)
    return FrameResources(
        space=space,
        back_buffer=back_buffer,
        display=display,
        depth=depth,
        hiz=hiz,
        stencil=stencil,
        scene_color=scene_color,
        aux_targets=aux_targets,
        post_targets=post_targets,
        dyntex_targets=dyntex_targets,
        shadow_maps=shadow_maps,
        shadow_depth=shadow_depth,
        textures=textures,
        vertex_base=vertex_base,
        vertex_blocks=vertex_blocks,
        shader_base=shader_base,
    )


def _random_region(
    target: Surface,
    area_fraction: float,
    rng: np.random.Generator,
    center: Optional[Tuple[float, float]] = None,
) -> Tuple[int, int, int, int]:
    """A random rectangle covering roughly ``area_fraction`` of a target.

    With ``center`` the rectangle lands near that (fractional) position —
    used to keep consecutive draws spatially coherent.
    """
    area_fraction = min(1.0, max(0.01, area_fraction))
    aspect = rng.uniform(0.6, 1.6)
    w = max(1, int(round(target.tiles_x * np.sqrt(area_fraction) * aspect)))
    h = max(1, int(round(target.tiles_y * np.sqrt(area_fraction) / aspect)))
    w = min(w, target.tiles_x)
    h = min(h, target.tiles_y)
    if center is None:
        x0 = int(rng.integers(0, target.tiles_x - w + 1))
        y0 = int(rng.integers(0, target.tiles_y - h + 1))
    else:
        x0 = int(round(center[0] * target.tiles_x - w / 2))
        y0 = int(round(center[1] * target.tiles_y - h / 2))
        x0 = max(0, min(x0, target.tiles_x - w))
        y0 = max(0, min(y0, target.tiles_y - h))
    return (x0, y0, x0 + w, y0 + h)


def _geometry_draws(
    app: AppProfile,
    resources: FrameResources,
    target: Surface,
    frame_index: int,
    rng: np.random.Generator,
    shadow_bindings: bool,
    area_scale: float = 1.0,
) -> Tuple[DrawCall, ...]:
    """The draw calls of one geometry (main or aux) pass."""
    draws: List[DrawCall] = []
    area_per_draw = area_scale * app.overdraw / app.draws_per_pass
    vertex_stride = max(
        1, resources.vertex_blocks // max(1, app.draws_per_pass * app.main_passes)
    )
    # Each dynamic source (shadow map, environment probe) is consumed by
    # only one or two draws: spreading it over many overlapping draws
    # would create short-distance re-reads the paper's frames do not
    # exhibit ("this particular type of inter-stream reuse is not
    # observed much", Section 2.1).
    dynamic_consumers: Dict[int, TextureBinding] = {}
    if shadow_bindings:
        sources: List[Surface] = []
        for shadow in resources.shadow_maps:
            if rng.random() < app.shadow_sample_probability:
                sources.append(shadow)
        for probe in resources.aux_targets:
            if rng.random() < 0.6:
                sources.append(probe)
        for source in sources:
            consumer = int(rng.integers(0, app.draws_per_pass))
            dynamic_consumers.setdefault(
                consumer,
                TextureBinding(source=source, screen_mapped=True, full_read=True),
            )
    # Consecutive draws are spatially coherent: a slow random walk over
    # the screen, with occasional exact revisits (decals, multi-material
    # objects).  This produces the short-distance Z/RT overlap that real
    # scenes have and random rectangles would not.
    walk_x, walk_y = float(rng.random()), float(rng.random())
    previous_region: Optional[Tuple[int, int, int, int]] = None
    # Blending comes in bursts: particle systems and transparency layers
    # draw several overlapping quads back to back onto one region, so
    # blend re-reads are immediate rather than spread across the pass.
    blend_burst = 0
    for draw_index in range(app.draws_per_pass):
        bindings: List[TextureBinding] = []
        # Primary material texture (Zipf-like popularity over textures).
        texture_index = min(
            len(resources.textures) - 1,
            int(rng.zipf(1.6)) - 1 if len(resources.textures) > 1 else 0,
        )
        # Texture reuse is bursty: a minority of draws use hot materials
        # (lightmaps, atlases) that recur across draws and passes, the
        # rest stream cold texels that die in E0 (Section 2.3).
        hot_draw = rng.random() < app.hot_draw_fraction
        bindings.append(
            TextureBinding(
                source=resources.textures[texture_index],
                samples_per_tile=app.samples_per_tile,
                # Most screen area is near-field geometry sampling the
                # base MIP level; small far levels mostly live in the
                # texture caches.
                lod=int(rng.choice([0, 0, 0, 0, 0, 0, 0, 1, 1, 2])),
                hot_probability=min(0.85, 1.2 * app.hot_probability)
                if hot_draw
                else 0.05,
                hot_fraction=app.hot_fraction,
            )
        )
        if draw_index in dynamic_consumers:
            bindings.append(dynamic_consumers[draw_index])
        walk_x = (walk_x + float(rng.normal(0.0, 0.12))) % 1.0
        walk_y = (walk_y + float(rng.normal(0.0, 0.12))) % 1.0
        if blend_burst > 0 and previous_region is not None:
            region = previous_region
            blend_burst -= 1
            blend = True
        else:
            blend = rng.random() < app.blend_fraction / 2
            if blend:
                blend_burst = 2
            if previous_region is not None and rng.random() < 0.3:
                region = previous_region
            else:
                region = _random_region(
                    target, area_per_draw, rng, center=(walk_x, walk_y)
                )
        previous_region = region
        draws.append(
            DrawCall(
                region=region,
                coverage=float(rng.uniform(0.6, 0.95)),
                textures=tuple(bindings),
                blend=blend,
                depth_test=True,
                depth_write=not blend,
                stencil_test=bool(rng.random() < app.stencil_fraction),
                vertex_blocks=vertex_stride,
                # Random per-draw phase: draws read independent texel
                # regions whose overlaps are unstructured; the per-frame
                # shift models camera movement.
                uv_phase=int(rng.integers(0, 1 << 14)) + frame_index * 257,
                vertex_phase=(draw_index * vertex_stride)
                % max(1, resources.vertex_blocks),
            )
        )
    return tuple(draws)


def _dyntex_pass(
    app: AppProfile,
    resources: FrameResources,
    target: Surface,
    rng: np.random.Generator,
) -> RenderPass:
    """Render a small dynamic texture (no depth, a couple of draws)."""
    draws = tuple(
        DrawCall(
            region=_random_region(target, 0.7, rng),
            coverage=float(rng.uniform(0.8, 1.0)),
            textures=(
                TextureBinding(
                    source=resources.textures[
                        int(rng.integers(0, len(resources.textures)))
                    ],
                    samples_per_tile=0.8,
                    lod=2,
                    hot_probability=0.3,
                    hot_fraction=app.hot_fraction,
                ),
            )
            if resources.textures
            else (),
            depth_test=False,
            depth_write=False,
            vertex_blocks=1,
        )
        for _ in range(2)
    )
    return RenderPass(name=f"dyntex:{target.name}", color_target=target, draws=draws)


def _post_chain(
    app: AppProfile, resources: FrameResources, rng: np.random.Generator
) -> Tuple[List[RenderPass], Surface]:
    """Post-processing ping-pong passes; returns them and the last output.

    The first pass downsamples the full-resolution scene color into a
    half-resolution target (reading *every* scene block — the
    long-distance render-to-texture consumption); the remaining passes
    ping-pong between the two half-resolution targets, whose short
    producer->consumer distance even plain SRRIP can capture.
    """
    passes: List[RenderPass] = []
    source = resources.scene_color
    for post_index in range(app.post_passes):
        destination = resources.post_targets[post_index % 2]
        if post_index == 0:
            # Downsampling: each destination tile averages a 2x2 group of
            # source tiles, so the whole scene color gets consumed.
            samples = 4.0
        else:
            samples = app.post_samples_per_tile
        bindings = [
            TextureBinding(
                source=source, samples_per_tile=samples, screen_mapped=True
            )
        ]
        if post_index == app.post_passes - 1 and app.post_passes > 1:
            # Composite effects (bloom etc.) re-read part of the scene.
            bindings.append(
                TextureBinding(
                    source=resources.scene_color,
                    samples_per_tile=0.5,
                    screen_mapped=True,
                )
            )
        passes.append(
            RenderPass(
                name=f"post{post_index}",
                color_target=destination,
                draws=(
                    DrawCall(
                        region=full_screen_region(destination),
                        textures=tuple(bindings),
                        depth_test=False,
                        depth_write=False,
                        vertex_blocks=1,
                    ),
                ),
            )
        )
        source = destination
    return passes, source


class _DyntexRotation:
    """Rotates through the small dynamic-texture targets of a frame."""

    def __init__(self, app: AppProfile, resources: FrameResources) -> None:
        self.app = app
        self.resources = resources
        self.cursor = 0

    def maybe_interleave(
        self, group: List[DrawCall], passes: List[RenderPass], rng: np.random.Generator
    ) -> List[DrawCall]:
        """Possibly render a dynamic texture and bind one draw to it."""
        app, resources = self.app, self.resources
        if not resources.dyntex_targets or rng.random() >= app.dyntex_probability:
            return group
        dyntex = resources.dyntex_targets[
            self.cursor % len(resources.dyntex_targets)
        ]
        self.cursor += 1
        passes.append(_dyntex_pass(app, resources, dyntex, rng))
        # Exactly one nearby draw consumes the fresh surface — repeated
        # consumption by overlapping draws would inject short-distance
        # texture re-reads the paper's traces do not show.
        consumer = int(rng.integers(0, len(group)))
        group = list(group)
        group[consumer] = dataclasses.replace(
            group[consumer],
            textures=group[consumer].textures
            + (TextureBinding(source=dyntex, screen_mapped=True, full_read=True),),
        )
        return group


def build_frame_passes(
    app: AppProfile,
    resources: FrameResources,
    frame_index: int,
    rng: np.random.Generator,
) -> List[RenderPass]:
    """The full pass list of one frame."""
    passes: List[RenderPass] = []
    dyntex = _DyntexRotation(app, resources)
    # 1. Auxiliary targets (reflection probes, environment views) render
    #    a reduced scene first; main-pass draws sample some of them at
    #    mid distance, the rest stay unconsumed and cap the potential
    #    render-target-to-texture consumption below 100%.  Dynamic
    #    texturing events run here too, so render-to-texture consumption
    #    flows from the very first windows of the frame.
    for aux_index, aux in enumerate(resources.aux_targets):
        aux_draws = list(
            _geometry_draws(
                app, resources, aux, frame_index, rng, False, area_scale=0.5
            )
        )
        half = max(1, len(aux_draws) // 2)
        for chunk_index, start in enumerate(range(0, len(aux_draws), half)):
            group = dyntex.maybe_interleave(
                aux_draws[start : start + half], passes, rng
            )
            passes.append(
                RenderPass(
                    name=f"aux{aux_index}.{chunk_index}",
                    color_target=aux,
                    depth_target=resources.depth,
                    hiz_target=resources.hiz,
                    draws=tuple(group),
                    early_z_reject=app.early_z_reject,
                    depth_pass_rate=0.5,
                )
            )
    # 2. Shadow maps, rendered right before the geometry that samples
    #    them: depth from the light view lands in a color surface that
    #    the main passes consume (render-to-texture shadows).
    for shadow_index, shadow in enumerate(resources.shadow_maps):
        draws = tuple(
            DrawCall(
                region=_random_region(shadow, 0.5, rng),
                coverage=float(rng.uniform(0.7, 1.0)),
                depth_test=True,
                depth_write=True,
                vertex_blocks=max(
                    1, resources.vertex_blocks // (8 * max(1, len(resources.shadow_maps)))
                ),
                vertex_phase=int(rng.integers(0, resources.vertex_blocks)),
            )
            for _ in range(app.shadow_draws)
        )
        passes.append(
            RenderPass(
                name=f"shadow{shadow_index}",
                color_target=shadow,
                depth_target=resources.shadow_depth,
                draws=draws,
                early_z_reject=0.1,
                depth_pass_rate=0.5,
            )
        )
    # 3. Main geometry passes into the scene color target, interleaved
    #    with small dynamic-texture productions (impostors, water copies)
    #    that nearby draws consume — render-to-texture reuse flows
    #    throughout the frame, not only at the post-processing tail.
    #
    #    Every main pass re-renders the *same* scene (depth pre-pass,
    #    opaque pass, transparent pass...), so the same texture and depth
    #    blocks recur cyclically with a period of one whole pass — the
    #    far-flung intra-stream reuse that thrashes recency-based
    #    policies but that a large well-managed LLC can capture.
    scene_draws = _geometry_draws(
        app, resources, resources.scene_color, frame_index, rng, True
    )
    for pass_index in range(app.main_passes):
        if pass_index == 0:
            draws = scene_draws
        else:
            # Replay most of the scene (later passes skip geometry that
            # is fully opaque-resolved): identical regions and textures;
            # depth was already resolved, so no further Z writes.
            draws = tuple(
                dataclasses.replace(draw, depth_write=False)
                for draw in scene_draws
                if rng.random() < 0.7
            )
            if not draws:
                continue
        chunk = max(3, len(draws) // 3)
        for chunk_index, start in enumerate(range(0, len(draws), chunk)):
            group = dyntex.maybe_interleave(
                list(draws[start : start + chunk]), passes, rng
            )
            passes.append(
                RenderPass(
                    name=f"main{pass_index}.{chunk_index}",
                    color_target=resources.scene_color,
                    depth_target=resources.depth,
                    hiz_target=resources.hiz,
                    stencil_target=resources.stencil
                    if app.stencil_fraction
                    else None,
                    draws=tuple(group),
                    early_z_reject=app.early_z_reject if pass_index else 0.15,
                    depth_pass_rate=0.35,
                )
            )
    # 4. Post-processing chain consuming the scene color.
    post_passes, post_output = _post_chain(app, resources, rng)
    passes.extend(post_passes)
    # 5. Final pass: composite into the back buffer (+ UI), then resolve
    #    the displayable color surface.
    final_bindings: List[TextureBinding] = [
        TextureBinding(source=post_output, samples_per_tile=1.0, screen_mapped=True)
    ]
    if resources.textures:
        final_bindings.append(
            TextureBinding(
                source=resources.textures[0],
                samples_per_tile=0.3,
                hot_probability=0.9,
                hot_fraction=0.1,
            )
        )
    passes.append(
        RenderPass(
            name="final",
            color_target=resources.back_buffer,
            draws=(
                DrawCall(
                    region=full_screen_region(resources.back_buffer),
                    textures=tuple(final_bindings),
                    blend=True,
                    depth_test=False,
                    depth_write=False,
                    vertex_blocks=1,
                ),
            ),
            resolve_to=resources.display,
        )
    )
    return passes


def generate_frame_trace(
    app: AppProfile,
    frame_index: int = 0,
    scale: float = 0.125,
    render_caches: Optional[RenderCachesConfig] = None,
) -> Trace:
    """Render one synthetic frame and return its LLC access trace."""
    if frame_index < 0:
        raise WorkloadError(f"frame index must be non-negative: {frame_index}")
    from repro.workloads.raster import emit_pass  # local import: avoid cycle

    rng = np.random.default_rng((app.seed << 8) ^ frame_index)
    resources = build_resources(app, scale, rng)
    passes = build_frame_passes(app, resources, frame_index, rng)
    # Render caches shrink as scale**1.25 rather than scale**2: real small
    # caches cannot shrink proportionally (associativity and structure
    # floors), and this keeps their *filtering power* — the fraction of
    # short-range reuse absorbed before the LLC — at paper-like levels.
    caches = render_caches or RenderCachesConfig().scaled(scale**1.25)
    builder = TraceBuilder(
        {
            "name": f"{app.abbrev}#f{frame_index}",
            "app": app.name,
            "abbrev": app.abbrev,
            "frame": frame_index,
            "scale": scale,
            "width_px": resources.back_buffer.width_px,
            "height_px": resources.back_buffer.height_px,
        }
    )
    front = RenderCacheFrontEnd(caches, builder)
    for render_pass in passes:
        emit_pass(
            front,
            render_pass,
            rng,
            resources.vertex_base,
            resources.shader_base,
            SHADER_BLOCKS,
        )
    trace = builder.build()
    trace.meta["raw_accesses"] = front.raw_accesses
    return trace
