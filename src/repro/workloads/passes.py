"""Render-pass and draw-call descriptions.

A synthetic frame is a sequence of :class:`RenderPass` objects — shadow
passes, main geometry passes, post-processing passes, and a final pass
that resolves into the displayable surface — each containing
:class:`DrawCall` objects with their texture bindings.  These are plain
descriptions; :mod:`repro.workloads.raster` turns them into memory
accesses.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

from repro.workloads.surfaces import MipmappedTexture, Surface


@dataclasses.dataclass(frozen=True)
class TextureBinding:
    """One texture sampled by a draw call.

    ``source`` is either a static MIP-mapped texture or a previously
    rendered surface (dynamic texturing / render-to-texture — the
    paper's primary inter-stream reuse).
    """

    source: Union[MipmappedTexture, Surface]
    #: Average texel-block reads per covered tile.
    samples_per_tile: float = 1.0
    #: MIP level bias for static textures (ignored for dynamic sources).
    lod: int = 0
    #: Identity screen-space mapping (post-processing reads); otherwise
    #: an affine UV mapping with hot/cold popularity is used.
    screen_mapped: bool = False
    #: Read the *entire* source surface once (shadow-map lookups span
    #: the light frustum; impostors/probes are consumed whole).  Only
    #: meaningful for dynamic sources; samples_per_tile is ignored.
    full_read: bool = False
    #: Probability that a static sample lands in the texture's hot set.
    hot_probability: float = 0.5
    #: Fraction of the MIP level forming the hot set.
    hot_fraction: float = 0.15

    @property
    def is_dynamic(self) -> bool:
        return isinstance(self.source, Surface)


@dataclasses.dataclass(frozen=True)
class DrawCall:
    """A batch of geometry covering a region of the render target."""

    #: Covered rectangle in *tile* coordinates of the color target:
    #: (x0, y0, x1, y1), half-open.
    region: Tuple[int, int, int, int]
    #: Fraction of the rectangle's tiles actually covered by geometry.
    coverage: float = 1.0
    textures: Tuple[TextureBinding, ...] = ()
    #: Read-modify-write blending into the color target.
    blend: bool = False
    depth_test: bool = True
    depth_write: bool = True
    stencil_test: bool = False
    #: Vertex-buffer blocks fetched by the input assembler.
    vertex_blocks: int = 0
    #: Phase shifts for UV/vertex progression (varies per frame/draw).
    uv_phase: int = 0
    vertex_phase: int = 0

    def tile_count(self) -> int:
        x0, y0, x1, y1 = self.region
        return max(0, x1 - x0) * max(0, y1 - y0)


@dataclasses.dataclass(frozen=True)
class RenderPass:
    """One pass through the rendering pipeline."""

    name: str
    color_target: Surface
    depth_target: Optional[Surface] = None
    hiz_target: Optional[Surface] = None
    stencil_target: Optional[Surface] = None
    draws: Tuple[DrawCall, ...] = ()
    #: Fraction of depth-tested tiles discarded by the early/HiZ test.
    early_z_reject: float = 0.0
    #: Fraction of depth tests that pass and write a new depth value.
    depth_pass_rate: float = 0.6
    #: Resolve the color target into this displayable surface at the end
    #: of the pass (the final pass of the frame).
    resolve_to: Optional[Surface] = None


@dataclasses.dataclass(frozen=True)
class Frame:
    """A complete frame: passes plus the resources they render into."""

    name: str
    width_px: int
    height_px: int
    passes: Tuple[RenderPass, ...] = ()

    @property
    def num_draws(self) -> int:
        return sum(len(p.draws) for p in self.passes)


def full_screen_region(surface: Surface) -> Tuple[int, int, int, int]:
    return (0, 0, surface.tiles_x, surface.tiles_y)


def clip_region(
    region: Tuple[int, int, int, int], surface: Surface
) -> Tuple[int, int, int, int]:
    x0, y0, x1, y1 = region
    return (
        max(0, min(x0, surface.tiles_x)),
        max(0, min(y0, surface.tiles_y)),
        max(0, min(x1, surface.tiles_x)),
        max(0, min(y1, surface.tiles_y)),
    )
