"""Command-stream capture and replay.

``capture_frame_commands`` records the command stream of one synthetic
frame; ``replay_command_list`` executes a (possibly deserialized)
command stream against an arbitrary render-cache configuration and
returns the resulting LLC trace.  Replay is seeded independently of
capture, but the command stream pins every decision that matters
(regions, coverage, phases, bindings, states), so the *structure* of
the generated accesses is identical across replays; only per-tile
coverage noise differs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.hierarchy import RenderCacheFrontEnd
from repro.config import RenderCachesConfig
from repro.trace.record import Trace, TraceBuilder
from repro.workloads.apps import AppProfile
from repro.workloads.commands import CommandList, capture_commands, passes_from_commands
from repro.workloads.framegen import (
    SHADER_BLOCKS,
    build_frame_passes,
    build_resources,
)
from repro.workloads.raster import emit_pass


def capture_frame_commands(
    app: AppProfile, frame_index: int = 0, scale: float = 0.125
) -> CommandList:
    """Capture one synthetic frame as a serializable command stream."""
    rng = np.random.default_rng((app.seed << 8) ^ frame_index)
    resources = build_resources(app, scale, rng)
    passes = build_frame_passes(app, resources, frame_index, rng)
    command_list = capture_commands(
        passes,
        meta={
            "name": f"{app.abbrev}#f{frame_index}",
            "app": app.name,
            "abbrev": app.abbrev,
            "frame": frame_index,
            "scale": scale,
            "vertex_base": resources.vertex_base,
            "vertex_blocks": resources.vertex_blocks,
            "shader_base": resources.shader_base,
        },
    )
    return command_list


def replay_command_list(
    command_list: CommandList,
    render_caches: Optional[RenderCachesConfig] = None,
    seed: int = 0,
) -> Trace:
    """Execute a command stream; returns the LLC access trace."""
    scale = float(command_list.meta.get("scale", 1.0))
    caches = render_caches or RenderCachesConfig().scaled(scale**1.25)
    builder = TraceBuilder(dict(command_list.meta))
    front = RenderCacheFrontEnd(caches, builder)
    rng = np.random.default_rng(seed)
    vertex_base = int(command_list.meta.get("vertex_base", 1 << 48))
    shader_base = int(command_list.meta.get("shader_base", 1 << 49))
    for render_pass in passes_from_commands(command_list):
        emit_pass(front, render_pass, rng, vertex_base, shader_base, SHADER_BLOCKS)
    trace = builder.build()
    trace.meta["raw_accesses"] = front.raw_accesses
    trace.meta["replayed"] = True
    return trace
