"""Multi-frame animation sequences (an extension beyond the paper).

The paper evaluates 52 *discrete* frames; a natural follow-on question
is how the policies behave across consecutive frames of an animation,
where persistent resources (static textures, shadow maps, the depth
buffer) are re-touched frame after frame while per-frame surfaces are
fully overwritten.  ``generate_sequence_trace`` concatenates several
consecutive frames of one application *sharing one resource
allocation*, so cross-frame reuse is real: the same texture hot sets,
shifted cold windows (camera motion), and re-rendered render targets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.hierarchy import RenderCacheFrontEnd
from repro.config import RenderCachesConfig
from repro.errors import WorkloadError
from repro.trace.record import Trace, TraceBuilder
from repro.workloads.apps import AppProfile
from repro.workloads.framegen import (
    SHADER_BLOCKS,
    build_frame_passes,
    build_resources,
)
from repro.workloads.raster import emit_pass


def generate_sequence_trace(
    app: AppProfile,
    num_frames: int = 2,
    scale: float = 0.125,
    start_frame: int = 0,
    render_caches: Optional[RenderCachesConfig] = None,
) -> Trace:
    """Render ``num_frames`` consecutive frames into one LLC trace.

    Unlike calling :func:`~repro.workloads.framegen.generate_frame_trace`
    per frame, all frames share one set of surfaces and textures and the
    render caches stay warm across frame boundaries — the LLC sees the
    cross-frame reuse a real animation produces.
    """
    if num_frames < 1:
        raise WorkloadError(f"need at least one frame, got {num_frames}")
    rng = np.random.default_rng((app.seed << 8) ^ 0xA11CE)
    resources = build_resources(app, scale, rng)
    caches = render_caches or RenderCachesConfig().scaled(scale**1.25)
    builder = TraceBuilder(
        {
            "name": f"{app.abbrev}#seq{start_frame}+{num_frames}",
            "app": app.name,
            "abbrev": app.abbrev,
            "frames": num_frames,
            "scale": scale,
        }
    )
    front = RenderCacheFrontEnd(caches, builder)
    boundaries = []
    for frame_offset in range(num_frames):
        frame_index = start_frame + frame_offset
        passes = build_frame_passes(app, resources, frame_index, rng)
        for render_pass in passes:
            emit_pass(
                front,
                render_pass,
                rng,
                resources.vertex_base,
                resources.shader_base,
                SHADER_BLOCKS,
            )
        boundaries.append(len(builder))
    trace = builder.build()
    trace.meta["frame_boundaries"] = boundaries
    trace.meta["raw_accesses"] = front.raw_accesses
    return trace
