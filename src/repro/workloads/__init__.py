"""Synthetic DirectX-style 3D rendering workloads.

The paper replays DirectX call traces captured from commercial games.
Those traces are proprietary, so this package synthesizes frames with
the same memory-system structure: multi-pass rendering into tiled
surfaces, hierarchical/early depth testing, render-target blending,
MIP-mapped texture sampling with hot/cold popularity, render-to-texture
(dynamic texturing) chains, and a final display resolve — filtered
through the GPU's small render caches so the LLC sees only their misses
(see DESIGN.md for the substitution argument).
"""

from repro.workloads.apps import (
    ALL_APPS,
    AppProfile,
    FrameSpec,
    all_frames,
    app_by_name,
    frames_for_app,
)
from repro.workloads.commands import CommandList
from repro.workloads.framegen import generate_frame_trace
from repro.workloads.replay import capture_frame_commands, replay_command_list
from repro.workloads.sequence import generate_sequence_trace
from repro.workloads.surfaces import AddressSpace, Surface

__all__ = [
    "ALL_APPS",
    "AppProfile",
    "FrameSpec",
    "all_frames",
    "app_by_name",
    "frames_for_app",
    "generate_frame_trace",
    "generate_sequence_trace",
    "capture_frame_commands",
    "replay_command_list",
    "CommandList",
    "AddressSpace",
    "Surface",
]
