"""Deterministic fault injection for orchestration testing.

The sweep engine (and, through :func:`repro.parallel.jobs.execute_job`,
the plain ``--jobs`` pool) can be told to misbehave on purpose so that
the retry, timeout, and journal-recovery paths are testable in CI
instead of only firing on real production incidents.  A
:class:`FaultSpec` names one job — by plan ordinal or by a substring of
its job id — plus a fault kind and the attempt(s) on which it fires:

* ``crash`` — the worker process hard-exits (``os._exit``), exactly
  like an OOM kill or a segfault: no result file, non-zero exit code.
* ``hang`` — the worker sleeps past any reasonable deadline so the
  orchestrator's per-job timeout fires and the attempt is retried.
* ``corrupt`` — the worker completes but ships back a mangled result
  payload; the orchestrator must reject it (checksum/parse failure)
  and re-run the job.  Applied at the payload-serialization layer
  (:mod:`repro.sweep.worker`), never here.

Specs parse from ``--inject-fault`` or the ``REPRO_FAULT_SPEC``
environment variable, e.g. ``job=3,kind=crash,attempt=*``.  By default
a fault fires only on attempt 1, so a retried attempt succeeds and the
recovery path — not just the failure — is exercised.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Mapping, Optional

from repro.errors import SweepError

#: Environment variable consulted when no ``--inject-fault`` is given.
FAULT_ENV = "REPRO_FAULT_SPEC"
#: Recognized fault kinds.
FAULT_KINDS = ("crash", "hang", "corrupt")
#: Exit code of a worker taken down by an injected crash.
CRASH_EXIT_CODE = 70
#: Wildcard accepted by the ``attempt=`` field.
EVERY_ATTEMPT = "*"


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: which job, what kind, which attempt."""

    #: Plan ordinal (``"3"``) or job-id substring (``"sim:HAWX"``).
    job: str
    kind: str
    #: Attempt number the fault fires on, or ``"*"`` for every attempt.
    attempt: str = "1"
    #: How long a ``hang`` sleeps before giving up and crashing.
    hang_seconds: float = 300.0

    def __post_init__(self) -> None:
        if not self.job:
            raise SweepError("fault spec needs a job= selector")
        if self.kind not in FAULT_KINDS:
            raise SweepError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.attempt != EVERY_ATTEMPT:
            try:
                if int(self.attempt) < 1:
                    raise ValueError
            except ValueError:
                raise SweepError(
                    f"fault attempt must be a positive integer or "
                    f"{EVERY_ATTEMPT!r}, got {self.attempt!r}"
                ) from None
        if self.hang_seconds <= 0:
            raise SweepError(
                f"fault hang_seconds must be > 0, got {self.hang_seconds!r}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``job=K,kind=crash[,attempt=N|*][,hang_seconds=S]``."""
        fields = {}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            key, sep, value = chunk.partition("=")
            if not sep or not value:
                raise SweepError(
                    f"malformed fault field {chunk!r} in {text!r}; "
                    "expected key=value"
                )
            fields[key.strip()] = value.strip()
        unknown = set(fields) - {"job", "kind", "attempt", "hang_seconds"}
        if unknown:
            raise SweepError(
                f"unknown fault field(s) {sorted(unknown)} in {text!r}"
            )
        if "job" not in fields or "kind" not in fields:
            raise SweepError(
                f"fault spec {text!r} needs at least job= and kind="
            )
        try:
            hang_seconds = float(fields.get("hang_seconds", 300.0))
        except ValueError:
            raise SweepError(
                f"fault hang_seconds must be a number, "
                f"got {fields['hang_seconds']!r}"
            ) from None
        return cls(
            job=fields["job"],
            kind=fields["kind"],
            attempt=fields.get("attempt", "1"),
            hang_seconds=hang_seconds,
        )

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultSpec"]:
        """The fault named by ``$REPRO_FAULT_SPEC``, if any."""
        text = (environ if environ is not None else os.environ).get(FAULT_ENV)
        return cls.parse(text) if text else None

    def describe(self) -> str:
        """Human-readable one-liner for logs and CLI banners."""
        target = (
            f"job ordinal {self.job}"
            if self.job.isdigit()
            else f"job id containing {self.job!r}"
        )
        attempts = (
            "every attempt"
            if self.attempt == EVERY_ATTEMPT
            else f"attempt {self.attempt}"
        )
        return f"{self.kind} on {target}, {attempts}"

    def matches(self, index: int, job_id: str, attempt: int) -> bool:
        """Does this fault fire for (plan ordinal, job id, attempt)?"""
        if self.attempt != EVERY_ATTEMPT and int(self.attempt) != attempt:
            return False
        if self.job.isdigit():
            return int(self.job) == index
        return self.job in job_id


def fire(kind: str, hang_seconds: float = 300.0) -> None:
    """Execute an injected ``crash`` or ``hang`` in the current process.

    A hang that outlives ``hang_seconds`` without being killed by the
    orchestrator turns into a crash, so a fault can never accidentally
    become a slow success.  ``corrupt`` is payload-level and rejected
    here — the result writer applies it.
    """
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        time.sleep(hang_seconds)
        os._exit(CRASH_EXIT_CODE)
    raise SweepError(
        f"fault kind {kind!r} cannot fire in-process; "
        "'corrupt' is applied when the result payload is written"
    )
