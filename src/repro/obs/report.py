"""gspc-report — one human-readable report for a run.

Merges the three artifact kinds a run leaves behind — JSON manifests
(:mod:`repro.obs.manifest`), sweep journals (:mod:`repro.sweep.journal`)
and Chrome trace files (:mod:`repro.obs.traceexport`) — into one
terminal report: per-phase wall-time breakdown (count/total/mean/max),
per-policy throughput, worker utilization per pid, and the retry
timeline of a fault-tolerant sweep.

Inputs are sniffed, so everything composes::

    gspc-report results/small              # a sweep directory
    gspc-report out/                       # a directory of manifests
    gspc-report run.trace.json             # a Chrome trace file
    gspc-report results/small out/sim.json # any mix

Exit codes (docs/observability.md): 0 report printed, 1 nothing usable
found or unreadable input, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.tables import Table
from repro.errors import ObservabilityError, ReproError
from repro.obs import log as obs_log
from repro.obs.manifest import load_manifest, validate_manifest
from repro.obs.traceexport import is_trace, validate_trace

EXIT_OK = 0
EXIT_RUNTIME = 1
EXIT_USAGE = 2


class RunData:
    """Everything the report found across all inputs."""

    def __init__(self) -> None:
        self.manifests: List[Tuple[str, Dict[str, object]]] = []
        self.traces: List[Tuple[str, Dict[str, object]]] = []
        #: (path, ordered verified journal records)
        self.journals: List[Tuple[str, List[Dict[str, object]]]] = []
        self.problems: List[str] = []

    @property
    def empty(self) -> bool:
        return not (self.manifests or self.traces or self.journals)


def _read_journal(path: str) -> List[Dict[str, object]]:
    """Verified journal records, in append order (rejects skipped)."""
    from repro.sweep.journal import verify

    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            record = verify(data)
            if record is not None:
                records.append(record)
    return records


def _collect_file(path: str, data: RunData, explicit: bool = True) -> None:
    if path.endswith(".jsonl"):
        try:
            data.journals.append((path, _read_journal(path)))
        except OSError as exc:
            data.problems.append(f"{path}: {exc}")
        return
    try:
        parsed = load_manifest(path)
    except ObservabilityError as exc:
        data.problems.append(str(exc))
        return
    if is_trace(parsed):
        issues = validate_trace(parsed)
        if issues:
            data.problems.append(f"{path}: invalid trace: {issues[0]}")
        else:
            data.traces.append((path, parsed))
        return
    if not explicit and not (isinstance(parsed, dict) and "kind" in parsed):
        # Directory scans hit unrelated JSON (a sweep's spec.json, say);
        # only flag files the user named themselves.
        return
    issues = validate_manifest(parsed)
    if issues:
        data.problems.append(f"{path}: invalid manifest: {issues[0]}")
    else:
        data.manifests.append((path, parsed))


def _collect_dir(directory: str, data: RunData) -> None:
    """A sweep directory, or any directory holding manifests/traces."""
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            continue
        if name.endswith(".jsonl") or name.endswith(".json"):
            _collect_file(path, data, explicit=False)


def collect(paths: Sequence[str]) -> RunData:
    """Sniff every input path into manifests, traces and journals."""
    data = RunData()
    for path in paths:
        if os.path.isdir(path):
            _collect_dir(path, data)
        elif os.path.isfile(path):
            _collect_file(path, data)
        else:
            data.problems.append(f"no such file or directory: {path}")
    return data


# -- sections -----------------------------------------------------------------

def _overview(data: RunData) -> Table:
    table = Table("Run overview", ["Source", "Kind", "Detail"])
    for path, manifest in data.manifests:
        kind = str(manifest.get("kind", "?"))
        if kind == "sweep":
            sweep = manifest.get("sweep") or {}
            detail = (
                f"{sweep.get('name', '?')}: "
                f"{sweep.get('completed', 0)}/{sweep.get('total_jobs', 0)} "
                f"jobs ok, {sweep.get('failed', 0)} failed, "
                f"{sweep.get('resumed', 0)} resumed"
            )
        elif kind == "experiment":
            experiment = manifest.get("experiment") or {}
            detail = f"{experiment.get('id', '?')}: {experiment.get('title', '')}"
        else:
            trace_meta = manifest.get("trace") or {}
            detail = (
                f"{manifest.get('policy', '?')} over "
                f"{trace_meta.get('accesses', '?')} accesses"
            )
        table.add_row(os.path.basename(path), f"manifest/{kind}", detail)
    for path, trace in data.traces:
        metadata = trace.get("metadata") or {}
        events = trace.get("traceEvents") or []
        spans = sum(1 for e in events if e.get("ph") == "X")
        pids = metadata.get("pids") or sorted(
            {e.get("pid") for e in events}
        )
        table.add_row(
            os.path.basename(path),
            "trace",
            f"run {metadata.get('run_id', '?')}: {spans} spans "
            f"across {len(pids)} process(es)",
        )
    for path, records in data.journals:
        oks = sum(1 for r in records if r.get("status") == "ok")
        table.add_row(
            os.path.basename(path),
            "journal",
            f"{len(records)} attempt record(s), {oks} ok",
        )
    return table


def _phase_rows(data: RunData) -> Dict[str, List[float]]:
    """path -> [count, total_seconds, max_seconds], traces preferred."""
    rows: Dict[str, List[float]] = {}

    def add(path: str, count: float, total: float, longest: float) -> None:
        entry = rows.setdefault(path, [0, 0.0, 0.0])
        entry[0] += count
        entry[1] += total
        entry[2] = max(entry[2], longest)

    for _, trace in data.traces:
        for event in trace.get("traceEvents") or []:
            if event.get("ph") != "X":
                continue
            args = event.get("args") or {}
            path = str(args.get("path", event.get("name", "?")))
            add(path, 1, float(event.get("dur", 0)) / 1e6,
                float(event.get("dur", 0)) / 1e6)
    if rows:
        return rows
    # No trace file: fall back to manifest span aggregates.
    for _, manifest in data.manifests:
        spans = (manifest.get("phases") or {}).get("spans") or {}
        if not isinstance(spans, Mapping):
            continue
        for path, entry in spans.items():
            if not isinstance(entry, Mapping):
                continue
            add(
                str(path),
                float(entry.get("count", 1)),
                float(entry.get("seconds", 0.0)),
                float(entry.get("max_seconds", entry.get("seconds", 0.0))),
            )
    return rows


def _phase_breakdown(data: RunData) -> Optional[Table]:
    rows = _phase_rows(data)
    if not rows:
        return None
    table = Table(
        "Phase breakdown",
        ["Phase", "Count", "Total s", "Mean s", "Max s (p100)"],
    )
    for path in sorted(rows, key=lambda p: -rows[p][1]):
        count, total, longest = rows[path]
        table.add_row(
            path,
            int(count),
            total,
            total / count if count else 0.0,
            longest,
        )
    return table


def _throughput(data: RunData) -> Optional[Table]:
    """Per-policy throughput from sweep manifests + journal seconds."""
    seconds_by_job: Dict[str, float] = {}
    for _, records in data.journals:
        for record in records:
            if record.get("status") == "ok":
                seconds_by_job.setdefault(
                    str(record["job"]), float(record.get("seconds", 0.0))
                )
    per_policy: Dict[Tuple[str, object], List[float]] = {}
    for _, manifest in data.manifests:
        if manifest.get("kind") != "sweep":
            continue
        metrics = manifest.get("metrics") or {}
        if not isinstance(metrics, Mapping):
            continue
        for job_id, payload in metrics.items():
            if not isinstance(payload, Mapping):
                continue
            key = (str(payload.get("policy", "?")), payload.get("llc_mb"))
            entry = per_policy.setdefault(key, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += float(payload.get("accesses", 0) or 0)
            entry[2] += seconds_by_job.get(str(job_id), 0.0)
    if not per_policy:
        return None
    table = Table(
        "Per-policy throughput",
        ["Policy", "LLC MB", "Jobs", "Accesses", "Seconds", "Accesses/s"],
    )
    for (policy, llc_mb), (jobs, accesses, seconds) in sorted(
        per_policy.items(), key=lambda item: (item[0][0], str(item[0][1]))
    ):
        table.add_row(
            policy,
            llc_mb,
            int(jobs),
            int(accesses),
            seconds,
            accesses / seconds if seconds > 0 else None,
        )
    return table


def _utilization(data: RunData) -> Optional[Table]:
    """Per-pid busy time from trace root spans vs. the run's wall span."""
    if not data.traces:
        return None
    busy: Dict[int, List[float]] = {}  # pid -> [events, busy_us]
    start: Optional[float] = None
    end: Optional[float] = None
    names: Dict[int, str] = {}
    for _, trace in data.traces:
        for event in trace.get("traceEvents") or []:
            pid = int(event.get("pid", 0))
            if event.get("ph") == "M" and event.get("name") == "process_name":
                names[pid] = str((event.get("args") or {}).get("name", ""))
                continue
            if event.get("ph") != "X":
                continue
            ts = float(event.get("ts", 0))
            dur = float(event.get("dur", 0))
            start = ts if start is None else min(start, ts)
            end = ts + dur if end is None else max(end, ts + dur)
            args = event.get("args") or {}
            path = str(args.get("path", event.get("name", "?")))
            entry = busy.setdefault(pid, [0, 0.0])
            entry[0] += 1
            # Only root spans count as busy time — nested spans overlap
            # their parent and would double-count.
            if "/" not in path:
                entry[1] += dur
    if not busy or start is None or end is None:
        return None
    wall_us = max(end - start, 1e-9)
    table = Table(
        "Worker utilization",
        ["Process", "Pid", "Spans", "Busy s", "Utilization"],
    )
    for pid in sorted(busy):
        events, busy_us = busy[pid]
        table.add_row(
            names.get(pid, f"worker {pid}"),
            pid,
            int(events),
            busy_us / 1e6,
            f"{100.0 * busy_us / wall_us:.1f}%",
        )
    table.notes.append(
        f"wall span {wall_us / 1e6:.3f}s; busy time counts root spans only"
    )
    return table


def _retry_timeline(data: RunData) -> Optional[Table]:
    records = [record for _, journal in data.journals for record in journal]
    if not records:
        return None
    base: Optional[float] = None
    for record in records:
        unix = record.get("unix")
        if isinstance(unix, (int, float)):
            base = unix if base is None else min(base, unix)
    table = Table(
        "Attempt timeline", ["T+", "Job", "Attempt", "Status", "Detail"]
    )
    for record in records:
        unix = record.get("unix")
        offset = (
            f"{float(unix) - base:+.2f}s"
            if base is not None and isinstance(unix, (int, float))
            else "-"
        )
        status = str(record.get("status", "?"))
        if status == "ok":
            detail = f"{float(record.get('seconds', 0.0)):.2f}s"
        else:
            detail = (
                f"{record.get('kind', '?')}: {record.get('error', '')}"[:60]
            )
        table.add_row(
            offset,
            str(record.get("job", "?")),
            int(record.get("attempt", 0)),
            status,
            detail,
        )
    return table


def render_report(data: RunData) -> str:
    sections = [_overview(data)]
    for section in (
        _phase_breakdown(data),
        _throughput(data),
        _utilization(data),
        _retry_timeline(data),
    ):
        if section is not None:
            sections.append(section)
    return "\n\n".join(section.render() for section in sections)


# -- CLI ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gspc-report",
        description=(
            "Merge run manifests, sweep journals and trace files into one "
            "readable run report."
        ),
    )
    parser.add_argument(
        "inputs",
        nargs="+",
        metavar="PATH",
        help="sweep directory, manifest directory, manifest/trace JSON "
        "file, or journal JSONL file",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the rendered report to FILE",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="logging level (default: $REPRO_LOG_LEVEL or WARNING)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        obs_log.configure(args.log_level)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    data = collect(args.inputs)
    for problem in data.problems:
        print(f"warning: {problem}", file=sys.stderr)
    if data.empty:
        print("error: no manifests, traces or journals found", file=sys.stderr)
        return EXIT_RUNTIME
    report = render_report(data)
    print(report)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return EXIT_RUNTIME
        print(f"\nwrote {args.out}")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
