"""Timing spans: nested ``with span("replay")`` blocks that aggregate
into a per-run phase breakdown.

A :class:`SpanRecorder` keeps a stack of open spans and an aggregate
table keyed by the span *path* (``("run", "replay")``), so repeated
entries into the same phase accumulate rather than multiply.  The
resulting tree — trace generation vs. future precompute vs. replay vs.
timing model — goes into the run manifest's ``phases`` section.

    recorder = SpanRecorder()
    with recorder.span("run"):
        with recorder.span("setup"):
            ...
        with recorder.span("replay"):
            ...
    recorder.to_dict()
    # {"run": {"count": 1, "seconds": ..., "max_seconds": ...,
    #          "children": {"setup": ...}}}

Beyond the aggregate table the recorder can record **individual timed
events** for distributed tracing (:func:`enable_events`): every
completed span becomes one bounded, optionally sampled event dict
(wall-clock start, duration, pid, trace context — see
:mod:`repro.obs.tracing`) ready for the Chrome/Perfetto exporter in
:mod:`repro.obs.traceexport`.  Event recording is off by default and
costs nothing when off.

The module-level :func:`span` uses a process-wide default recorder for
quick scripts; library entry points take an explicit recorder argument.
"""

from __future__ import annotations

import dataclasses
import os
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.tracing import TraceContext

SpanPath = Tuple[str, ...]

#: Default cap on buffered span events per recorder.
DEFAULT_MAX_EVENTS = 50_000


@dataclasses.dataclass
class _Frame:
    """One currently open span."""

    name: str
    path: SpanPath
    started: float


class SpanRecorder:
    """Aggregating (and optionally event-recording) span recorder."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        *,
        record_events: bool = False,
        max_events: int = DEFAULT_MAX_EVENTS,
        sample_period: int = 1,
        context: Optional[TraceContext] = None,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self._clock = clock
        self._wall = wall
        self._stack: List[_Frame] = []
        #: path -> [entry count, total seconds, max seconds]
        self._aggregate: Dict[SpanPath, List[float]] = {}
        self._events: Optional[List[Dict[str, object]]] = None
        self._max_events = max_events
        self._sample_period = 1
        self._sample_counter = 0
        self._context = context
        self.dropped_events = 0
        if record_events:
            self.enable_events(
                max_events=max_events,
                sample_period=sample_period,
                context=context,
            )

    # -- event recording ------------------------------------------------------

    def enable_events(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        sample_period: int = 1,
        context: Optional[TraceContext] = None,
    ) -> None:
        """Start recording one event per completed span.

        ``sample_period=N`` keeps every N-th completed span (the first
        one always recorded), ``max_events`` bounds the buffer — past
        it, events are counted in :attr:`dropped_events`, never stored.
        Re-enabling on a live recorder (e.g. the process default) just
        updates the knobs.
        """
        if max_events < 1:
            raise ObservabilityError(
                f"max_events must be >= 1, got {max_events}"
            )
        if sample_period < 1:
            raise ObservabilityError(
                f"sample_period must be >= 1, got {sample_period}"
            )
        if self._events is None:
            self._events = []
            # Anchor the monotonic span clock to the wall clock once, so
            # events from different processes merge onto one timeline.
            self._anchor_wall = self._wall()
            self._anchor_perf = self._clock()
        self._max_events = max_events
        self._sample_period = sample_period
        if context is not None:
            self._context = context

    def disable_events(self) -> None:
        """Stop (and forget) event recording; aggregates are kept."""
        self._events = None
        self._sample_counter = 0
        self.dropped_events = 0

    @property
    def events_enabled(self) -> bool:
        return self._events is not None

    @property
    def context(self) -> Optional[TraceContext]:
        return self._context

    def events_payload(self) -> List[Dict[str, object]]:
        """The buffered span events (copies), oldest first.

        Each event is the plain-dict shape defined in
        :mod:`repro.obs.tracing`: ``name``/``path``/``ts`` (unix
        seconds)/``dur`` (seconds)/``pid`` plus the ``ctx`` dict —
        JSON- and pickle-safe for shipping across process boundaries.
        """
        return [dict(event) for event in (self._events or [])]

    # -- span lifecycle -------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a named phase; nests under any currently open span."""
        frame = self._push(name)
        try:
            yield
        finally:
            self._close(frame)

    def _push(self, name: str) -> _Frame:
        if not name or "/" in name:
            raise ObservabilityError(f"invalid span name {name!r}")
        frame = _Frame(
            name,
            tuple(entry.name for entry in self._stack) + (name,),
            self._clock(),
        )
        self._stack.append(frame)
        return frame

    def _close(self, frame: _Frame) -> None:
        if frame not in self._stack:
            return  # already force-closed by abandon_open_spans()
        # Close any children left open above this frame (leaked by a
        # manual __enter__ without __exit__) before closing it.
        while self._stack and self._stack[-1] is not frame:
            self._finish(self._stack.pop())
        self._finish(self._stack.pop())

    def _finish(self, frame: _Frame) -> None:
        elapsed = self._clock() - frame.started
        entry = self._aggregate.setdefault(frame.path, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += elapsed
        if elapsed > entry[2]:
            entry[2] = elapsed
        if self._events is None:
            return
        self._sample_counter += 1
        if (self._sample_counter - 1) % self._sample_period:
            return
        if len(self._events) >= self._max_events:
            self.dropped_events += 1
            return
        event: Dict[str, object] = {
            "name": frame.name,
            "path": "/".join(frame.path),
            "ts": self._anchor_wall + (frame.started - self._anchor_perf),
            "dur": elapsed,
            "pid": os.getpid(),
        }
        if self._context is not None:
            event["ctx"] = self._context.to_dict()
        self._events.append(event)

    def abandon_open_spans(self) -> int:
        """Force-close every open span (top-of-stack first).

        Exception paths that bail out of a run without unwinding a
        ``with`` block (a manual ``__enter__``, a killed generator)
        would otherwise leave the recorder with open spans — and a
        later :meth:`reset` raising :class:`ObservabilityError`.  CLIs
        call this in their top-level ``finally``.  Returns the number
        of spans that had to be closed (0 on a clean run).
        """
        closed = 0
        while self._stack:
            self._finish(self._stack.pop())
            closed += 1
        return closed

    # -- views ----------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Nesting depth of currently open spans."""
        return len(self._stack)

    def seconds(self, *path: str) -> float:
        """Total seconds accumulated by the span at ``path`` (0 if never
        entered)."""
        return self._aggregate.get(tuple(path), (0, 0.0, 0.0))[1]

    def count(self, *path: str) -> int:
        return int(self._aggregate.get(tuple(path), (0, 0.0, 0.0))[0])

    def max_seconds(self, *path: str) -> float:
        """Longest single entry of the span at ``path`` (0 if never
        entered)."""
        return self._aggregate.get(tuple(path), (0, 0.0, 0.0))[2]

    def flat(self) -> Dict[str, Dict[str, float]]:
        """``{"run/replay": {"count": n, "seconds": s, "max_seconds": m}}``
        for manifests."""
        return {
            "/".join(path): {
                "count": entry[0],
                "seconds": entry[1],
                "max_seconds": entry[2],
            }
            for path, entry in sorted(self._aggregate.items())
        }

    def to_dict(self) -> Dict[str, Dict]:
        """Nested phase tree (children keyed under ``"children"``)."""
        root: Dict[str, Dict] = {}
        for path, entry in sorted(self._aggregate.items()):
            level = root
            for name in path[:-1]:
                level = level.setdefault(
                    name,
                    {"count": 0, "seconds": 0.0, "max_seconds": 0.0,
                     "children": {}},
                )["children"]
            node = level.setdefault(
                path[-1],
                {"count": 0, "seconds": 0.0, "max_seconds": 0.0,
                 "children": {}},
            )
            node["count"] += entry[0]
            node["seconds"] += entry[1]
            node["max_seconds"] = max(node["max_seconds"], entry[2])
        return root

    def reset(self) -> None:
        if self._stack:
            raise ObservabilityError(
                "cannot reset with open spans: "
                + "/".join(frame.name for frame in self._stack)
            )
        self._aggregate.clear()
        if self._events is not None:
            self._events = []
        self._sample_counter = 0
        self.dropped_events = 0


#: Process-wide default recorder backing the module-level :func:`span`.
_DEFAULT = SpanRecorder()


def default_recorder() -> SpanRecorder:
    return _DEFAULT


def span(name: str) -> Iterator[None]:
    """``with span("replay"):`` against the default recorder."""
    return _DEFAULT.span(name)
