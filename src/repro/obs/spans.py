"""Timing spans: nested ``with span("replay")`` blocks that aggregate
into a per-run phase breakdown.

A :class:`SpanRecorder` keeps a stack of open spans and an aggregate
table keyed by the span *path* (``("run", "replay")``), so repeated
entries into the same phase accumulate rather than multiply.  The
resulting tree — trace generation vs. future precompute vs. replay vs.
timing model — goes into the run manifest's ``phases`` section.

    recorder = SpanRecorder()
    with recorder.span("run"):
        with recorder.span("setup"):
            ...
        with recorder.span("replay"):
            ...
    recorder.to_dict()
    # {"run": {"count": 1, "seconds": ..., "children": {"setup": ...}}}

The module-level :func:`span` uses a process-wide default recorder for
quick scripts; library entry points take an explicit recorder argument.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Tuple

from repro.errors import ObservabilityError

SpanPath = Tuple[str, ...]


class SpanRecorder:
    """Aggregating recorder of nested timing spans."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._stack: List[str] = []
        #: path -> [entry count, total seconds]
        self._aggregate: Dict[SpanPath, List[float]] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a named phase; nests under any currently open span."""
        if not name or "/" in name:
            raise ObservabilityError(f"invalid span name {name!r}")
        self._stack.append(name)
        path = tuple(self._stack)
        started = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - started
            self._stack.pop()
            entry = self._aggregate.setdefault(path, [0, 0.0])
            entry[0] += 1
            entry[1] += elapsed

    @property
    def depth(self) -> int:
        """Nesting depth of currently open spans."""
        return len(self._stack)

    def seconds(self, *path: str) -> float:
        """Total seconds accumulated by the span at ``path`` (0 if never
        entered)."""
        return self._aggregate.get(tuple(path), (0, 0.0))[1]

    def count(self, *path: str) -> int:
        return int(self._aggregate.get(tuple(path), (0, 0.0))[0])

    def flat(self) -> Dict[str, Dict[str, float]]:
        """``{"run/replay": {"count": n, "seconds": s}}`` for manifests."""
        return {
            "/".join(path): {"count": entry[0], "seconds": entry[1]}
            for path, entry in sorted(self._aggregate.items())
        }

    def to_dict(self) -> Dict[str, Dict]:
        """Nested phase tree (children keyed under ``"children"``)."""
        root: Dict[str, Dict] = {}
        for path, entry in sorted(self._aggregate.items()):
            level = root
            for name in path[:-1]:
                level = level.setdefault(
                    name, {"count": 0, "seconds": 0.0, "children": {}}
                )["children"]
            node = level.setdefault(
                path[-1], {"count": 0, "seconds": 0.0, "children": {}}
            )
            node["count"] += entry[0]
            node["seconds"] += entry[1]
        return root

    def reset(self) -> None:
        if self._stack:
            raise ObservabilityError(
                f"cannot reset with open spans: {'/'.join(self._stack)}"
            )
        self._aggregate.clear()


#: Process-wide default recorder backing the module-level :func:`span`.
_DEFAULT = SpanRecorder()


def default_recorder() -> SpanRecorder:
    return _DEFAULT


def span(name: str) -> Iterator[None]:
    """``with span("replay"):`` against the default recorder."""
    return _DEFAULT.span(name)
