"""Event tracing: a sampling :class:`~repro.cache.llc.LLCObserver`.

The observer counts every hit/fill/evict per stream and per set with
bare list increments (cheap enough to leave on for ordinary runs), and
additionally records every ``sample_period``-th event into a fixed-size
ring buffer so a manifest can show *what* the cache was doing around
any point of the replay without retaining the whole event stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.llc import LLCObserver
from repro.core.base import AccessContext
from repro.errors import ObservabilityError
from repro.streams import Stream

#: Event kinds recorded by the observer.
HIT, FILL, EVICT = 0, 1, 2
KIND_NAMES = ("hit", "fill", "evict")


class EventRing:
    """A fixed-capacity overwrite-oldest ring of event tuples."""

    __slots__ = ("capacity", "_slots", "_written")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ObservabilityError(f"ring capacity must be positive: {capacity}")
        self.capacity = capacity
        self._slots: List[Optional[Tuple[int, int, int, int]]] = [None] * capacity
        self._written = 0

    def push(self, event: Tuple[int, int, int, int]) -> None:
        self._slots[self._written % self.capacity] = event
        self._written += 1

    def __len__(self) -> int:
        return min(self._written, self.capacity)

    @property
    def pushed(self) -> int:
        """Total events ever pushed (>= len once the ring wraps)."""
        return self._written

    def events(self) -> List[Tuple[int, int, int, int]]:
        """Retained events, oldest first."""
        if self._written <= self.capacity:
            return [e for e in self._slots[: self._written] if e is not None]
        start = self._written % self.capacity
        return [
            e
            for e in self._slots[start:] + self._slots[:start]
            if e is not None
        ]


class SamplingObserver(LLCObserver):
    """Samples hit/fill/evict events per stream and per set.

    The observer declares its ``sample_period`` as the engine-level
    ``engine_sample_period`` (see :class:`~repro.cache.llc.LLCObserver`),
    so the LLC dispatches only the events of every ``sample_period``-th
    access — the hot path pays one countdown decrement per access, no
    Python call — and this observer records every event it is handed:
    per-stream and per-set counters plus a detailed event ring.  A
    sampled miss keeps its fill and evict paired in the ring.  Multiply
    sampled counts by ``sample_period`` for unbiased estimates
    (:meth:`summary` pre-computes the total); with ``sample_period=1``
    every access is forwarded and the per-stream counts match the
    engine's exact :class:`~repro.cache.stats.LLCStats` — the
    cross-check the test suite pins.
    """

    __slots__ = ("sample_period", "engine_sample_period", "ring",
                 "_streams", "_sets")

    def __init__(
        self, sample_period: int = 64, ring_capacity: int = 1024
    ) -> None:
        if sample_period < 1:
            raise ObservabilityError(
                f"sample period must be >= 1: {sample_period}"
            )
        self.sample_period = sample_period
        #: Engine decimation contract (read by the LLC constructor).
        self.engine_sample_period = sample_period
        self.ring = EventRing(ring_capacity)
        num_streams = len(Stream)
        #: per-kind, per-stream sampled counts: _streams[kind][stream].
        self._streams = [[0] * num_streams for _ in range(3)]
        #: set_index -> [sampled hits, fills, evicts]
        self._sets: Dict[int, List[int]] = {}

    # -- LLCObserver hooks (called only for sampled accesses) -------------

    def on_hit(self, ctx: AccessContext, slot: int, was_rt: bool) -> None:
        self._record(HIT, ctx)

    def on_fill(self, ctx: AccessContext, slot: int) -> None:
        self._record(FILL, ctx)

    def on_evict(self, ctx: AccessContext, slot: int) -> None:
        self._record(EVICT, ctx)

    def _record(self, kind: int, ctx: AccessContext) -> None:
        self._streams[kind][ctx.stream] += 1
        set_counts = self._sets.get(ctx.set_index)
        if set_counts is None:
            set_counts = self._sets[ctx.set_index] = [0, 0, 0]
        set_counts[kind] += 1
        self.ring.push((ctx.index, kind, ctx.stream, ctx.set_index))

    # -- results ----------------------------------------------------------

    @property
    def sampled_events(self) -> int:
        """Number of events recorded in detail (1 per ``sample_period``)."""
        return self.ring.pushed

    @property
    def estimated_events(self) -> int:
        """Unbiased estimate of total events observed."""
        return self.ring.pushed * self.sample_period

    def hits_of(self, stream: Stream) -> int:
        """Sampled hit count for ``stream`` (exact when period is 1)."""
        return self._streams[HIT][int(stream)]

    def fills_of(self, stream: Stream) -> int:
        return self._streams[FILL][int(stream)]

    def evictions_of(self, stream: Stream) -> int:
        return self._streams[EVICT][int(stream)]

    def hot_sets(self, top: int = 8) -> List[Dict[str, int]]:
        """The ``top`` busiest sets by *sampled* event count."""
        ranked = sorted(
            self._sets.items(), key=lambda item: sum(item[1]), reverse=True
        )
        return [
            {
                "set": set_index,
                "hits": counts[HIT],
                "fills": counts[FILL],
                "evictions": counts[EVICT],
            }
            for set_index, counts in ranked[:top]
        ]

    def summary(self, max_samples: int = 64) -> Dict[str, object]:
        """Manifest-ready digest of everything observed."""
        samples = self.ring.events()[-max_samples:]
        return {
            "events": self.sampled_events,
            "events_estimated": self.estimated_events,
            "sample_period": self.sample_period,
            "sets_sampled": len(self._sets),
            "per_stream": {
                stream.short_name: {
                    "hits": self._streams[HIT][int(stream)],
                    "fills": self._streams[FILL][int(stream)],
                    "evictions": self._streams[EVICT][int(stream)],
                }
                for stream in Stream
            },
            "hot_sets": self.hot_sets(),
            "sampled": {
                "capacity": self.ring.capacity,
                "recorded": len(self.ring),
                "pushed": self.ring.pushed,
                "events": [
                    {
                        "access": access_index,
                        "kind": KIND_NAMES[kind],
                        "stream": Stream(stream).short_name,
                        "set": set_index,
                    }
                    for access_index, kind, stream, set_index in samples
                ],
            },
        }
