"""``python -m repro.obs FILE...`` — validate run-manifest and
Chrome/Perfetto trace JSON files (sniffed by shape)."""

import sys

from repro.obs.manifest import main

if __name__ == "__main__":
    sys.exit(main())
