"""``python -m repro.obs FILE...`` — validate run-manifest JSON files."""

import sys

from repro.obs.manifest import main

if __name__ == "__main__":
    sys.exit(main())
