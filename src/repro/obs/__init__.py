"""repro.obs — the observability layer of the simulator.

Four small, dependency-free pieces that every execution path shares:

* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry` with plain-dict snapshots.
* :mod:`repro.obs.spans` — nested ``with span("replay")`` timing blocks
  aggregating into a per-run phase breakdown.
* :mod:`repro.obs.events` — :class:`~repro.obs.events.SamplingObserver`,
  an :class:`~repro.cache.llc.LLCObserver` cheap enough to leave on,
  with per-stream/per-set counts and a sampled event ring.
* :mod:`repro.obs.manifest` — JSON run manifests (config + trace +
  metrics + phase timings + event summaries) with a schema validator.
* :mod:`repro.obs.log` — stdlib logging under the ``repro`` hierarchy,
  configured from ``--log-level`` / ``$REPRO_LOG_LEVEL``, stamped with
  the active trace context.
* :mod:`repro.obs.tracing` — the cross-process
  :class:`~repro.obs.tracing.TraceContext` and the bounded
  :class:`~repro.obs.tracing.TraceCollector` of span events.
* :mod:`repro.obs.traceexport` — Chrome/Perfetto ``trace_event``
  export, the trace-file validator, and a Prometheus-style text dump.
* :mod:`repro.obs.report` — the ``gspc-report`` run-report CLI.
"""

from repro.obs.events import EventRing, SamplingObserver
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.manifest import (
    SCHEMA_VERSION,
    check_manifest,
    experiment_manifest,
    load_manifest,
    manifest_filename,
    sim_manifest,
    timing_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.spans import SpanRecorder, default_recorder, span
from repro.obs.tracing import (
    TraceCollector,
    TraceContext,
    activate,
    current,
    deactivate,
)
from repro.obs.traceexport import (
    build_chrome_trace,
    load_trace_file,
    prometheus_text,
    validate_trace,
    write_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "SpanRecorder",
    "default_recorder",
    "span",
    "EventRing",
    "SamplingObserver",
    "configure_logging",
    "get_logger",
    "SCHEMA_VERSION",
    "sim_manifest",
    "timing_manifest",
    "experiment_manifest",
    "manifest_filename",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
    "check_manifest",
    "TraceCollector",
    "TraceContext",
    "activate",
    "current",
    "deactivate",
    "build_chrome_trace",
    "load_trace_file",
    "prometheus_text",
    "validate_trace",
    "write_trace_file",
]
