"""Machine-readable run manifests.

Every simulation entry point can emit one JSON *manifest* describing
what ran and what happened: configuration, policy, trace metadata,
metric snapshots, the setup/replay phase-timing split, and a sampled
event-trace summary.  Manifests make the repo's performance trajectory
data instead of stdout — ``benchmarks/manifest_report.py`` consumes
them, and CI validates a freshly emitted one against the schema on
every push (``python -m repro.obs.manifest out/*.json``).

Six manifest kinds share one envelope (``schema_version``, ``kind``,
``created_unix``, ``config``, ``phases``):

* ``offline-sim`` — one policy replayed over one trace
  (:func:`sim_manifest`).
* ``frame-timing`` — the frame-timing model's outcome
  (:func:`timing_manifest`).
* ``experiment`` — one registered paper experiment
  (:func:`experiment_manifest`).
* ``sweep`` — one fault-tolerant sweep run (:func:`sweep_manifest`):
  per-job deterministic result payloads in ``metrics`` and per-job
  attempt bookkeeping in ``jobs`` (kept out of ``metrics`` so
  crash/resume-equivalence diffs compare results, not retry history).
* ``serve`` — one ``gspc-serve`` process life (:func:`serve_manifest`):
  request/cache/coalescing counters in ``serve`` and the service's
  metrics-registry snapshot (latency histogram included) in
  ``metrics``.
* ``ingest`` — one ``gspc-ingest`` conversion (:func:`ingest_manifest`):
  the originating source's identity in ``source``, aggregate conversion
  counters in ``metrics``, and one per-frame entry in ``frames`` with
  the stream-mix/reuse characterization and its Table 1 envelope
  verdict.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import time
from typing import Dict, List, Mapping, Optional

from repro.errors import ObservabilityError
from repro.obs.events import SamplingObserver
from repro.obs.spans import SpanRecorder

SCHEMA_VERSION = 1

#: Top-level keys every manifest must carry.
ENVELOPE_KEYS = ("schema_version", "kind", "created_unix", "config", "phases")
#: Keys the ``phases`` section must carry, all numbers.
PHASE_KEYS = ("setup_seconds", "replay_seconds", "elapsed_seconds")
#: Additional required keys per manifest kind.
KIND_KEYS = {
    "offline-sim": ("policy", "trace", "metrics", "events"),
    "frame-timing": ("policy", "trace", "metrics"),
    "experiment": ("experiment", "metrics"),
    "sweep": ("sweep", "metrics", "jobs"),
    "serve": ("serve", "metrics"),
    "ingest": ("source", "metrics", "frames"),
}


def _jsonable(value):
    """Coerce numpy scalars, dataclasses, tuples and sets to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    for caster in (int, float):
        try:
            return caster(value)  # numpy integer/floating scalars
        except (TypeError, ValueError):
            continue
    return str(value)


def _phases(
    setup_seconds: float,
    replay_seconds: float,
    spans: Optional[SpanRecorder] = None,
    spans_flat: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    phases: Dict[str, object] = {
        "setup_seconds": setup_seconds,
        "replay_seconds": replay_seconds,
        "elapsed_seconds": setup_seconds + replay_seconds,
    }
    if spans is not None:
        phases["spans"] = spans.flat()
    elif spans_flat is not None:
        # Spans recorded in a worker process arrive pre-flattened.
        phases["spans"] = dict(spans_flat)
    return phases


def _envelope(kind: str, config, phases: Dict[str, object]) -> Dict[str, object]:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "created_unix": time.time(),
        "config": _jsonable(config if config is not None else {}),
        "phases": phases,
    }


def sim_manifest(
    result,
    config=None,
    observer: Optional[SamplingObserver] = None,
    spans: Optional[SpanRecorder] = None,
    extras: Optional[Mapping[str, object]] = None,
    events_summary: Optional[Mapping[str, object]] = None,
    spans_flat: Optional[Mapping[str, object]] = None,
    parallel: Optional[Mapping[str, object]] = None,
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Manifest for one :class:`~repro.sim.results.SimResult`.

    Telemetry can arrive either as live ``observer`` / ``spans`` objects
    (serial runs) or as the pre-serialized ``events_summary`` /
    ``spans_flat`` a ``--jobs`` worker shipped back across the process
    boundary.  ``parallel`` attaches the execution report of the run
    that produced this result.  ``engine`` records which replay engine
    produced the result (``"reference"`` or ``"fast"``, never the
    unresolved ``"auto"``).
    """
    manifest = _envelope(
        "offline-sim",
        config,
        _phases(result.setup_seconds, result.replay_seconds, spans, spans_flat),
    )
    if observer is not None:
        events_summary = observer.summary()
    manifest.update(
        policy=result.policy,
        trace={"accesses": result.accesses, **_jsonable(result.trace_meta)},
        metrics=_jsonable(result.stats.snapshot()),
        events=_jsonable(events_summary) if events_summary is not None else None,
        extras=_jsonable(dict(result.extras, **(extras or {}))),
    )
    if parallel is not None:
        manifest["parallel"] = _jsonable(parallel)
    if engine is not None:
        manifest["engine"] = engine
    return manifest


def timing_manifest(
    timing,
    config=None,
    spans: Optional[SpanRecorder] = None,
    trace_meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Manifest for one :class:`~repro.gpu.timing.FrameTiming`."""
    manifest = _envelope(
        "frame-timing",
        config,
        _phases(timing.setup_seconds, timing.replay_seconds, spans),
    )
    manifest.update(
        policy=timing.policy,
        trace={"accesses": timing.accesses, **_jsonable(trace_meta or {})},
        metrics=_jsonable(timing.to_dict()),
    )
    return manifest


def experiment_manifest(
    experiment_id: str,
    title: str,
    config=None,
    elapsed_seconds: float = 0.0,
    tables: Optional[List] = None,
    spans: Optional[SpanRecorder] = None,
    parallel: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Manifest for one registered experiment run.

    ``parallel``, when the experiment ran under ``--jobs``, records the
    :meth:`~repro.parallel.pool.ParallelReport.manifest_section` —
    worker count, per-job wall times, and the speedup over the
    estimated serial time.
    """
    manifest = _envelope(
        "experiment", config, _phases(0.0, elapsed_seconds, spans)
    )
    manifest.update(
        experiment={"id": experiment_id, "title": title},
        metrics={
            "tables": [
                {"title": table.title, "columns": list(table.headers),
                 "rows": len(table.rows)}
                for table in (tables or [])
            ]
        },
    )
    if parallel is not None:
        manifest["parallel"] = _jsonable(parallel)
    return manifest


def sweep_manifest(
    config,
    sweep: Mapping[str, object],
    metrics: Mapping[str, object],
    jobs: List,
    wall_seconds: float = 0.0,
) -> Dict[str, object]:
    """Manifest for one :mod:`repro.sweep` run.

    ``config`` is the sweep spec dict (deterministic identity of the
    run); ``sweep`` summarizes orchestration (job counts, workers,
    retry policy, resumed-job count); ``metrics`` maps sim job ids to
    their deterministic result payloads; ``jobs`` carries per-job
    attempt bookkeeping (``attempts``, ``executed_attempts``,
    ``resumed``, terminal status) — deliberately outside ``metrics`` so
    metric diffs between a resumed and an uninterrupted run compare
    clean.
    """
    manifest = _envelope("sweep", config, _phases(0.0, wall_seconds))
    manifest.update(
        sweep=_jsonable(dict(sweep)),
        metrics=_jsonable(dict(metrics)),
        jobs=_jsonable(list(jobs)),
    )
    return manifest


def serve_manifest(
    config,
    serve: Mapping[str, object],
    metrics: Mapping[str, object],
    wall_seconds: float = 0.0,
) -> Dict[str, object]:
    """Manifest for one :mod:`repro.serve` process life.

    ``serve`` is the service's stats view (request, cache-hit,
    coalescing and computation counters plus store stats); ``metrics``
    is its metrics-registry snapshot, request-latency histogram
    included.
    """
    manifest = _envelope("serve", config, _phases(0.0, wall_seconds))
    manifest.update(
        serve=_jsonable(dict(serve)),
        metrics=_jsonable(dict(metrics)),
    )
    return manifest


def ingest_manifest(
    config,
    source: Mapping[str, object],
    metrics: Mapping[str, object],
    frames: List,
    wall_seconds: float = 0.0,
) -> Dict[str, object]:
    """Manifest for one ``gspc-ingest`` conversion.

    ``source`` is the originating :meth:`TraceSource.identity` (kind,
    path, content digest); ``metrics`` aggregates the conversion
    (frames/accesses converted, unknown-tag counts, conformance
    failures); ``frames`` carries one entry per converted frame with
    its ``workload``/``frame``/``file``/``sha256``, the
    :func:`~repro.trace.sources.envelope.characterize_capture` stream
    characterization, and the envelope verdict.
    """
    manifest = _envelope("ingest", config, _phases(0.0, wall_seconds))
    manifest.update(
        source=_jsonable(dict(source)),
        metrics=_jsonable(dict(metrics)),
        frames=_jsonable(list(frames)),
    )
    return manifest


# -- I/O ---------------------------------------------------------------------

def manifest_filename(manifest: Mapping[str, object]) -> str:
    """A stable, filesystem-safe name for a manifest."""
    kind = str(manifest.get("kind", "run"))
    if kind == "experiment":
        label = str(manifest.get("experiment", {}).get("id", "unknown"))
    elif kind == "sweep":
        label = str(manifest.get("sweep", {}).get("name", "unknown"))
    elif kind == "ingest":
        source = manifest.get("source") or {}
        label = (
            f"{source.get('kind', 'source')}_"
            f"{str(source.get('sha256', 'unknown'))[:12]}"
        )
    else:
        trace = manifest.get("trace") or {}
        label = f"{trace.get('name', 'trace')}_{manifest.get('policy', '')}"
    safe = re.sub(r"[^A-Za-z0-9._+-]+", "-", f"{kind}_{label}").strip("-")
    return f"{safe}.json"


def write_manifest(
    manifest: Mapping[str, object],
    directory: str,
    filename: Optional[str] = None,
) -> str:
    """Serialize ``manifest`` into ``directory``; returns the path."""
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot create manifest directory {directory!r}: {exc}"
        ) from exc
    path = os.path.join(directory, filename or manifest_filename(manifest))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_manifest(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot load manifest {path}: {exc}") from exc


# -- validation --------------------------------------------------------------

def validate_manifest(manifest: Mapping[str, object]) -> List[str]:
    """Schema-check a manifest; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(manifest, Mapping):
        return [f"manifest must be an object, got {type(manifest).__name__}"]
    for key in ENVELOPE_KEYS:
        if key not in manifest:
            problems.append(f"missing required key {key!r}")
    version = manifest.get("schema_version")
    if version is not None and version != SCHEMA_VERSION:
        problems.append(
            f"schema_version {version!r} != supported {SCHEMA_VERSION}"
        )
    kind = manifest.get("kind")
    if kind is not None and kind not in KIND_KEYS:
        problems.append(
            f"unknown kind {kind!r}; expected one of {sorted(KIND_KEYS)}"
        )
    for key in KIND_KEYS.get(kind, ()):
        if key not in manifest:
            problems.append(f"kind {kind!r} requires key {key!r}")
    phases = manifest.get("phases")
    if phases is not None:
        if not isinstance(phases, Mapping):
            problems.append("'phases' must be an object")
        else:
            for key in PHASE_KEYS:
                value = phases.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(f"phases.{key} must be a number, got {value!r}")
    metrics = manifest.get("metrics")
    if kind == "offline-sim" and isinstance(metrics, Mapping):
        for key in ("accesses", "hits", "misses", "per_stream"):
            if key not in metrics:
                problems.append(f"offline-sim metrics missing {key!r}")
    trace = manifest.get("trace")
    if kind in ("offline-sim", "frame-timing") and isinstance(trace, Mapping):
        if "accesses" not in trace:
            problems.append("trace section missing 'accesses'")
    events = manifest.get("events")
    if kind == "offline-sim" and isinstance(events, Mapping):
        for key in ("events", "sample_period", "per_stream", "sampled"):
            if key not in events:
                problems.append(f"events summary missing {key!r}")
    if kind == "sweep":
        problems.extend(_validate_sweep(manifest))
    if kind == "serve":
        problems.extend(_validate_serve(manifest))
    if kind == "ingest":
        problems.extend(_validate_ingest(manifest))
    if "parallel" in manifest:
        problems.extend(_validate_parallel(manifest["parallel"]))
    engine = manifest.get("engine")
    if engine is not None and engine not in ("reference", "fast"):
        problems.append(
            f"engine must be 'reference' or 'fast', got {engine!r}"
        )
    return problems


#: Numeric keys the optional ``parallel`` section must carry.
PARALLEL_KEYS = (
    "workers", "jobs", "wall_seconds", "serial_seconds_estimate", "speedup"
)


#: Numeric keys the ``sweep`` summary section must carry.
SWEEP_KEYS = ("total_jobs", "completed", "failed", "resumed")
#: Keys every entry of a sweep manifest's ``jobs`` list must carry.
SWEEP_JOB_KEYS = ("job", "status", "attempts", "executed_attempts", "resumed")


def _validate_sweep(manifest: Mapping[str, object]) -> List[str]:
    problems: List[str] = []
    sweep = manifest.get("sweep")
    if not isinstance(sweep, Mapping):
        problems.append(
            f"'sweep' must be an object, got {type(sweep).__name__}"
        )
    else:
        for key in SWEEP_KEYS:
            value = sweep.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(
                    f"sweep.{key} must be an integer, got {value!r}"
                )
    jobs = manifest.get("jobs")
    if not isinstance(jobs, list):
        problems.append(f"'jobs' must be a list, got {type(jobs).__name__}")
    else:
        for position, entry in enumerate(jobs):
            if not isinstance(entry, Mapping):
                problems.append(f"jobs[{position}] must be an object")
                continue
            for key in SWEEP_JOB_KEYS:
                if key not in entry:
                    problems.append(f"jobs[{position}] missing {key!r}")
    metrics = manifest.get("metrics")
    if metrics is not None and not isinstance(metrics, Mapping):
        problems.append("sweep 'metrics' must be an object of job payloads")
    return problems


#: Integer counters the ``serve`` summary section must carry.
SERVE_KEYS = (
    "requests", "submitted", "cache_hits", "coalesced", "computed", "failed"
)


def _validate_serve(manifest: Mapping[str, object]) -> List[str]:
    problems: List[str] = []
    serve = manifest.get("serve")
    if not isinstance(serve, Mapping):
        problems.append(
            f"'serve' must be an object, got {type(serve).__name__}"
        )
    else:
        for key in SERVE_KEYS:
            value = serve.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(
                    f"serve.{key} must be an integer, got {value!r}"
                )
    metrics = manifest.get("metrics")
    if metrics is not None and not isinstance(metrics, Mapping):
        problems.append("serve 'metrics' must be an object")
    return problems


#: Integer counters the ``ingest`` ``metrics`` section must carry.
INGEST_METRIC_KEYS = (
    "frames", "accesses", "unknown_tags", "envelope_violations"
)
#: Keys every entry of an ingest manifest's ``frames`` list must carry.
INGEST_FRAME_KEYS = (
    "workload", "frame", "file", "sha256", "characterization", "conformant"
)


def _validate_ingest(manifest: Mapping[str, object]) -> List[str]:
    problems: List[str] = []
    source = manifest.get("source")
    if not isinstance(source, Mapping):
        problems.append(
            f"'source' must be an object, got {type(source).__name__}"
        )
    elif "kind" not in source:
        problems.append("source section missing 'kind'")
    metrics = manifest.get("metrics")
    if not isinstance(metrics, Mapping):
        problems.append(
            f"ingest 'metrics' must be an object, got {type(metrics).__name__}"
        )
    else:
        for key in INGEST_METRIC_KEYS:
            value = metrics.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(
                    f"metrics.{key} must be an integer, got {value!r}"
                )
    frames = manifest.get("frames")
    if not isinstance(frames, list) or not frames:
        problems.append("'frames' must be a non-empty list")
    else:
        for position, entry in enumerate(frames):
            if not isinstance(entry, Mapping):
                problems.append(f"frames[{position}] must be an object")
                continue
            for key in INGEST_FRAME_KEYS:
                if key not in entry:
                    problems.append(f"frames[{position}] missing {key!r}")
            characterization = entry.get("characterization")
            if isinstance(characterization, Mapping):
                for key in ("accesses", "streams", "classes"):
                    if key not in characterization:
                        problems.append(
                            f"frames[{position}].characterization "
                            f"missing {key!r}"
                        )
    return problems


def _validate_parallel(section) -> List[str]:
    if not isinstance(section, Mapping):
        return [
            f"'parallel' must be an object, got {type(section).__name__}"
        ]
    problems = []
    for key in PARALLEL_KEYS:
        value = section.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"parallel.{key} must be a number, got {value!r}")
    per_job = section.get("per_job")
    if per_job is not None and not isinstance(per_job, list):
        problems.append("parallel.per_job must be a list")
    return problems


def check_manifest(manifest: Mapping[str, object]) -> None:
    """Raise :class:`ObservabilityError` if the manifest is invalid."""
    problems = validate_manifest(manifest)
    if problems:
        raise ObservabilityError(
            "invalid manifest: " + "; ".join(problems)
        )


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs FILE...`` — validate manifests and traces.

    Files are sniffed: JSON with a top-level ``traceEvents`` key is
    validated as a Chrome/Perfetto trace
    (:func:`repro.obs.traceexport.validate_trace`); everything else as a
    run manifest.
    """
    import argparse
    import sys

    from repro.obs.traceexport import is_trace, validate_trace

    parser = argparse.ArgumentParser(
        prog="repro.obs.manifest",
        description="Validate run-manifest and trace JSON files against "
        "their schemas.",
    )
    parser.add_argument("files", nargs="+", help="manifest/trace JSON paths")
    args = parser.parse_args(argv)
    failures = 0
    for path in args.files:
        try:
            document = load_manifest(path)
        except ObservabilityError as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        if is_trace(document):
            problems = validate_trace(document)
            label = "trace"
        else:
            problems = validate_manifest(document)
            label = document.get("kind")
        if problems:
            failures += 1
            print(f"FAIL {path}:", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
        else:
            print(f"ok   {path} ({label})")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
