"""Structured logging for the repro package.

All library loggers hang off the ``"repro"`` root so one call configures
everything::

    from repro.obs import log
    log.configure()               # level from REPRO_LOG_LEVEL (default WARNING)
    logger = log.get_logger("sim")
    logger.info("replayed %d accesses", n)

The CLIs expose ``--log-level`` (and ``--verbose`` as a DEBUG shortcut);
the ``REPRO_LOG_LEVEL`` environment variable applies everywhere else.
Configuration is idempotent — repeated calls adjust the level without
stacking handlers, and nothing is touched until :func:`configure` runs,
so embedding applications keep control of the logging tree.

When a trace context is active (:func:`repro.obs.tracing.activate`),
every record emitted through the configured handler is stamped with the
run id (and job id/attempt inside workers), so interleaved log output
from many processes stays attributable to its run.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

from repro.errors import ObservabilityError

ROOT_LOGGER_NAME = "repro"
ENV_VAR = "REPRO_LOG_LEVEL"
DEFAULT_LEVEL = "WARNING"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s%(trace)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: Marker attribute identifying the handler installed by configure().
_HANDLER_TAG = "_repro_obs_handler"


class TraceContextFilter(logging.Filter):
    """Stamp the current trace context onto every record as ``trace``.

    The attribute is always set (empty string when no context is
    active), so the format string stays valid either way.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        from repro.obs import tracing

        context = tracing.current()
        if context is None:
            record.trace = ""
        elif context.job_id:
            record.trace = (
                f" [{context.run_id} {context.job_id}"
                f"#{context.attempt or 1}]"
            )
        else:
            record.trace = f" [{context.run_id}]"
        return True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def resolve_level(level: Optional[str] = None) -> int:
    """Turn a level name (or None => $REPRO_LOG_LEVEL) into an int."""
    name = (level or os.environ.get(ENV_VAR) or DEFAULT_LEVEL).strip().upper()
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        raise ObservabilityError(
            f"unknown log level {name!r} (use DEBUG/INFO/WARNING/ERROR)"
        )
    return resolved


def configure(level: Optional[str] = None, stream=None) -> logging.Logger:
    """Install (once) a formatted stderr handler on the ``repro`` logger.

    ``level`` overrides ``$REPRO_LOG_LEVEL``; both default to WARNING.
    Returns the configured root library logger.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(resolve_level(level))
    handler = next(
        (h for h in root.handlers if getattr(h, _HANDLER_TAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        handler.addFilter(TraceContextFilter())
        setattr(handler, _HANDLER_TAG, True)
        root.addHandler(handler)
        root.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    return root
