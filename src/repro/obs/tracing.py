"""Cross-process trace context and event collection.

A :class:`TraceContext` identifies one *run* (a CLI invocation) and,
inside a run, one *job attempt*.  It is created once at a CLI entry
point (:meth:`TraceContext.new_run`), serialized into every worker
payload (``ProcessPoolExecutor`` jobs, :mod:`repro.sweep` per-attempt
processes), and stamped on every span event, log record, and metrics
dump those workers produce — so a merged timeline can always answer
"which run, which job, which attempt, which process did this".

The pieces:

* :class:`TraceContext` — frozen, picklable identity
  ``(run_id, job_id, attempt, parent_span_id)`` with dict round-trip
  for process boundaries.
* :func:`activate` / :func:`current` / :func:`deactivate` — the
  process-wide current context (what :mod:`repro.obs.log` stamps onto
  log records).
* :class:`TraceCollector` — a bounded in-memory sink an orchestrator
  feeds with span events from many processes (its own scheduling spans
  plus whatever workers shipped back), ready for
  :func:`repro.obs.traceexport.build_chrome_trace`.

Span *events* everywhere in this package are plain dicts::

    {"name": "replay", "path": "sim/replay", "ts": <unix seconds>,
     "dur": <seconds>, "pid": 1234, "ctx": {"run_id": ..., ...}}

kept JSON/pickle-clean so they cross process boundaries unchanged.
"""

from __future__ import annotations

import dataclasses
import os
import time
import uuid
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import ObservabilityError

#: Default cap on events a collector keeps in memory.
DEFAULT_MAX_EVENTS = 200_000

#: Keys of the serialized context dict (empty values are dropped).
CONTEXT_KEYS = ("run_id", "job_id", "attempt", "parent_span_id")


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """Identity of one run (and optionally one job attempt) of it."""

    run_id: str
    job_id: str = ""
    attempt: int = 0
    parent_span_id: str = ""

    def __post_init__(self) -> None:
        if not self.run_id:
            raise ObservabilityError("trace context needs a run_id")
        if self.attempt < 0:
            raise ObservabilityError(
                f"trace context attempt must be >= 0, got {self.attempt}"
            )

    @classmethod
    def new_run(cls, prefix: str = "run") -> "TraceContext":
        """A fresh run-level context (called once per CLI invocation)."""
        return cls(run_id=f"{prefix}-{uuid.uuid4().hex[:12]}")

    def child(
        self,
        job_id: str,
        attempt: int = 1,
        parent_span_id: str = "",
    ) -> "TraceContext":
        """The context one job attempt runs under."""
        return TraceContext(
            run_id=self.run_id,
            job_id=job_id,
            attempt=attempt,
            parent_span_id=parent_span_id or self.parent_span_id,
        )

    def to_dict(self) -> Dict[str, object]:
        """Pickle/JSON-safe form; falsy fields are omitted."""
        data: Dict[str, object] = {"run_id": self.run_id}
        if self.job_id:
            data["job_id"] = self.job_id
        if self.attempt:
            data["attempt"] = self.attempt
        if self.parent_span_id:
            data["parent_span_id"] = self.parent_span_id
        return data

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, object]]) -> Optional["TraceContext"]:
        """Rebuild a context shipped across a process boundary."""
        if not data:
            return None
        unknown = set(data) - set(CONTEXT_KEYS)
        if unknown:
            raise ObservabilityError(
                f"unknown trace-context key(s): {sorted(unknown)}"
            )
        return cls(
            run_id=str(data.get("run_id", "")),
            job_id=str(data.get("job_id", "")),
            attempt=int(data.get("attempt", 0)),  # type: ignore[arg-type]
            parent_span_id=str(data.get("parent_span_id", "")),
        )


#: Process-wide current context (None until a CLI activates one).
_CURRENT: Optional[TraceContext] = None


def activate(context: TraceContext) -> TraceContext:
    """Install ``context`` as this process's current trace context."""
    global _CURRENT
    _CURRENT = context
    return context


def current() -> Optional[TraceContext]:
    """The process's current trace context, if any."""
    return _CURRENT


def deactivate() -> None:
    global _CURRENT
    _CURRENT = None


# -- event collection ---------------------------------------------------------

#: Keys a span event must carry to be mergeable/exportable.
EVENT_KEYS = ("name", "path", "ts", "dur", "pid")


def make_event(
    name: str,
    start_unix: float,
    duration: float,
    pid: Optional[int] = None,
    path: Optional[str] = None,
    ctx: Optional[Mapping[str, object]] = None,
    args: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """One well-formed span-event dict (see module docstring)."""
    event: Dict[str, object] = {
        "name": name,
        "path": path if path is not None else name,
        "ts": float(start_unix),
        "dur": max(0.0, float(duration)),
        "pid": int(pid if pid is not None else os.getpid()),
    }
    if ctx:
        event["ctx"] = dict(ctx)
    if args:
        event["args"] = dict(args)
    return event


class TraceCollector:
    """Bounded in-memory sink for span events from many processes.

    The orchestrator owns one collector per run: its own scheduling
    spans go in through :meth:`add_span`, and whatever each worker
    shipped back goes in through :meth:`extend`.  The buffer is bounded
    (events past ``max_events`` are counted as dropped, never stored),
    so a pathological run cannot exhaust memory.
    """

    def __init__(
        self,
        context: TraceContext,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if max_events < 1:
            raise ObservabilityError(
                f"collector max_events must be >= 1, got {max_events}"
            )
        self.context = context
        self.max_events = max_events
        self.events: List[Dict[str, object]] = []
        self.dropped = 0

    def add(self, event: Mapping[str, object]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(dict(event))

    def extend(self, events: Optional[Iterable[Mapping[str, object]]]) -> None:
        for event in events or ():
            self.add(event)

    def add_span(
        self,
        name: str,
        start_unix: float,
        duration: float,
        pid: Optional[int] = None,
        path: Optional[str] = None,
        ctx: Optional[TraceContext] = None,
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one orchestrator-side span (wall-clock timed)."""
        self.add(
            make_event(
                name,
                start_unix,
                duration,
                pid=pid,
                path=path,
                ctx=(ctx or self.context).to_dict(),
                args=args,
            )
        )

    def pids(self) -> List[int]:
        """Distinct process ids seen so far, sorted."""
        return sorted({int(event.get("pid", 0)) for event in self.events})

    def __len__(self) -> int:
        return len(self.events)


def now_unix() -> float:
    """Wall-clock seconds (one indirection point for tests)."""
    return time.time()


__all__ = [
    "CONTEXT_KEYS",
    "DEFAULT_MAX_EVENTS",
    "EVENT_KEYS",
    "TraceCollector",
    "TraceContext",
    "activate",
    "current",
    "deactivate",
    "make_event",
    "now_unix",
]
