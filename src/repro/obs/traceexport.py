"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and a
Prometheus-style text metrics dump.

:func:`build_chrome_trace` turns the plain span-event dicts produced by
:class:`~repro.obs.spans.SpanRecorder` and
:class:`~repro.obs.tracing.TraceCollector` — possibly gathered from
many processes — into one Chrome ``trace_event`` JSON object that loads
directly in ``chrome://tracing`` and https://ui.perfetto.dev: one track
per pid, complete (``"ph": "X"``) events, trace context surfaced in
each event's ``args`` and the run id in top-level ``metadata``.

:func:`validate_trace` schema-checks such a file (CI runs it through
``python -m repro.obs FILE``, which sniffs trace files vs. manifests),
and :func:`prometheus_text` renders a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` as Prometheus
exposition text for scrape-style consumption.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import ObservabilityError

#: Trace-file schema version (ours, carried in ``metadata``).
TRACE_VERSION = 1

#: Event phases the validator accepts (complete spans + metadata).
KNOWN_PHASES = ("X", "M")

MICROS = 1e6


def build_chrome_trace(
    events: Iterable[Mapping[str, object]],
    run_id: str,
    process_names: Optional[Mapping[int, str]] = None,
    extra_metadata: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """One merged Chrome ``trace_event`` JSON object for a run.

    ``events`` are span-event dicts (``ts`` in unix seconds, ``dur`` in
    seconds — see :mod:`repro.obs.tracing`); timestamps are rebased to
    the earliest event so the timeline starts at zero.  ``process_names``
    labels tracks (e.g. the orchestrator pid); unnamed pids become
    ``"worker <pid>"``.
    """
    events = [dict(event) for event in events]
    base = min((float(e["ts"]) for e in events), default=0.0)
    pids = sorted({int(e.get("pid", 0)) for e in events})
    names = dict(process_names or {})
    trace_events: List[Dict[str, object]] = []
    for pid in pids:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": names.get(pid, f"worker {pid}")},
            }
        )
    for event in sorted(
        events, key=lambda e: (float(e["ts"]), -float(e["dur"]))
    ):
        ctx = event.get("ctx") or {}
        args: Dict[str, object] = {"path": event.get("path", event["name"])}
        if isinstance(ctx, Mapping):
            args.update(ctx)
        extra_args = event.get("args")
        if isinstance(extra_args, Mapping):
            args.update(extra_args)
        pid = int(event.get("pid", 0))
        trace_events.append(
            {
                "name": str(event["name"]),
                "cat": "span",
                "ph": "X",
                "ts": round((float(event["ts"]) - base) * MICROS, 3),
                "dur": round(float(event["dur"]) * MICROS, 3),
                "pid": pid,
                "tid": int(event.get("tid", pid)),
                "args": args,
            }
        )
    metadata: Dict[str, object] = {
        "trace_version": TRACE_VERSION,
        "run_id": run_id,
        "base_unix": base,
        "pids": pids,
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    return {
        "displayTimeUnit": "ms",
        "metadata": metadata,
        "traceEvents": trace_events,
    }


def write_trace_file(trace: Mapping[str, object], path: str) -> str:
    """Serialize a built trace to ``path``; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise ObservabilityError(
                f"cannot create trace directory {directory!r}: {exc}"
            ) from exc
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return path


def load_trace_file(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot load trace {path}: {exc}") from exc


def is_trace(data: object) -> bool:
    """Sniff: does this parsed JSON look like a Chrome trace file?"""
    return isinstance(data, Mapping) and "traceEvents" in data


def validate_trace(data: object) -> List[str]:
    """Schema-check a Chrome trace object; returns problems (empty = ok).

    Checks the structural contract Perfetto/chrome://tracing need
    (phases, numeric non-negative ``ts``/``dur``, pid/tid) plus ours:
    every complete event that carries a ``run_id`` arg must agree with
    the trace-level ``metadata.run_id`` — one file, one run.
    """
    if not isinstance(data, Mapping):
        return [f"trace must be an object, got {type(data).__name__}"]
    problems: List[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    metadata = data.get("metadata")
    run_id = None
    if metadata is not None:
        if not isinstance(metadata, Mapping):
            problems.append("'metadata' must be an object")
        else:
            run_id = metadata.get("run_id")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where} must be an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            problems.append(
                f"{where}.ph must be one of {KNOWN_PHASES}, got {phase!r}"
            )
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where} needs a non-empty string 'name'")
        for key in ("pid", "tid"):
            value = event.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"{where}.{key} must be an integer")
        if phase != "X":
            continue
        for key in ("ts", "dur"):
            value = event.get(key)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value < 0
            ):
                problems.append(
                    f"{where}.{key} must be a non-negative number, "
                    f"got {value!r}"
                )
        args = event.get("args")
        if args is not None and not isinstance(args, Mapping):
            problems.append(f"{where}.args must be an object")
        elif isinstance(args, Mapping) and run_id is not None:
            event_run = args.get("run_id")
            if event_run is not None and event_run != run_id:
                problems.append(
                    f"{where} belongs to run {event_run!r}, "
                    f"but the trace is for run {run_id!r}"
                )
    return problems


def check_trace(data: object) -> None:
    """Raise :class:`ObservabilityError` if the trace is invalid."""
    problems = validate_trace(data)
    if problems:
        raise ObservabilityError("invalid trace: " + "; ".join(problems))


# -- Prometheus-style text dump ----------------------------------------------

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str = "repro_") -> str:
    mangled = _METRIC_NAME_RE.sub("_", name)
    if not mangled or not (mangled[0].isalpha() or mangled[0] in "_:"):
        mangled = "_" + mangled
    return prefix + mangled


def _prom_labels(labels: Optional[Mapping[str, object]]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{str(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _merge(labels, extra):
    merged = dict(labels or {})
    merged.update(extra)
    return merged


def prometheus_text(
    snapshot: Mapping[str, Mapping[str, object]],
    labels: Optional[Mapping[str, object]] = None,
) -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output (grouped
    ``counters``/``gauges``/``histograms``); ``labels`` (e.g. the run
    id) are attached to every sample.  Metric names are mangled to the
    Prometheus charset under a ``repro_`` prefix.
    """
    lines: List[str] = []
    label_text = _prom_labels(labels)
    for name, value in sorted(dict(snapshot.get("counters", {})).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}{label_text} {value}")
    for name, value in sorted(dict(snapshot.get("gauges", {})).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom}{label_text} {value}")
    for name, hist in sorted(dict(snapshot.get("histograms", {})).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        buckets = hist.get("buckets", {}) if isinstance(hist, Mapping) else {}
        for bound, count in buckets.items():
            le = "+Inf" if bound == "inf" else str(bound)[len("le_"):]
            cumulative += int(count)
            bucket_labels = _prom_labels(_merge(labels, {"le": le}))
            lines.append(f"{prom}_bucket{bucket_labels} {cumulative}")
        lines.append(f"{prom}_sum{label_text} {hist.get('sum', 0.0)}")
        lines.append(f"{prom}_count{label_text} {hist.get('count', 0)}")
    return "\n".join(lines) + "\n"


def write_metrics_text(
    snapshot: Mapping[str, Mapping[str, object]],
    path: str,
    labels: Optional[Mapping[str, object]] = None,
) -> str:
    """Write :func:`prometheus_text` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(snapshot, labels))
    return path


__all__ = [
    "TRACE_VERSION",
    "build_chrome_trace",
    "check_trace",
    "is_trace",
    "load_trace_file",
    "prometheus_text",
    "validate_trace",
    "write_metrics_text",
    "write_trace_file",
]
