"""A lightweight metrics registry: counters, gauges, and histograms.

The registry is deliberately tiny — a run of the offline simulator
touches the hot loop millions of times, so metric updates must be plain
attribute increments, never dictionary lookups or string formatting.
Instruments are created (or fetched) once by name, held in a local
variable, and updated directly::

    registry = MetricsRegistry()
    replayed = registry.counter("sim.replay.accesses")
    for access in trace:
        ...
        replayed.inc()
    print(registry.snapshot())

Snapshots are plain dicts with stable keys, ready for a run manifest
(:mod:`repro.obs.manifest`) or any JSON sink.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that can go up and down (resident blocks, queue depth…)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


#: Default histogram bucket upper bounds — a 1/2/5 decade ladder that
#: suits both latencies in seconds and integer magnitudes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max tracking."""

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs >= 1 bucket")
        self.name = name
        self.buckets = bounds
        #: counts[i] observes values <= buckets[i]; counts[-1] is +Inf.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{f"le_{bound:g}": count
                   for bound, count in zip(self.buckets, self.counts)},
                "inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Owns named instruments; get-or-create by name, kind-checked."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: Dict) -> None:
        for registered in (self._counters, self._gauges, self._histograms):
            if registered is not kind and name in registered:
                raise ObservabilityError(
                    f"metric {name!r} already registered with a different kind"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_unique(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_unique(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if name not in self._histograms:
            self._check_unique(name, self._histograms)
            self._histograms[name] = Histogram(name, buckets)
        return self._histograms[name]

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every instrument, grouped by kind."""
        return {
            "counters": {
                name: c.snapshot() for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.snapshot() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    #: ``to_dict`` is the manifest-facing alias of :meth:`snapshot`.
    to_dict = snapshot

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: Process-wide default registry (library code may share it; runs that
#: need isolation construct their own).
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT
