"""LLC statistics: per-stream hit/miss accounting and the inter-stream
(render-target to texture) production/consumption bookkeeping used
throughout Section 2 of the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable

from repro.streams import ALL_STREAMS, Stream, StreamClass, STREAM_CLASS_OF


@dataclasses.dataclass
class StreamStats:
    """Hit/miss/bypass counts for a single stream."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.bypasses

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LLCStats:
    """Aggregate statistics collected by the LLC engine."""

    __slots__ = (
        "per_stream",
        "evictions",
        "writebacks",
        "fills",
        "tex_inter_hits",
        "tex_intra_hits",
        "rt_produced",
        "rt_consumed",
        "dram_reads",
        "dram_writes",
    )

    def __init__(self) -> None:
        self.per_stream: Dict[Stream, StreamStats] = {
            stream: StreamStats() for stream in ALL_STREAMS
        }
        self.evictions = 0
        self.writebacks = 0
        self.fills = 0
        #: Texture hits satisfied by a block carrying the RT bit
        #: (render-target production consumed by the samplers).
        self.tex_inter_hits = 0
        #: Texture hits on blocks without the RT bit.
        self.tex_intra_hits = 0
        #: Render-target blocks produced into the LLC (fills + blocks
        #: re-acquired by the RT stream while resident).
        self.rt_produced = 0
        #: Render-target blocks consumed by the texture samplers from
        #: the LLC before eviction.
        self.rt_consumed = 0
        #: DRAM traffic: block reads (LLC fills + uncached reads) and
        #: block writes (dirty evictions + uncached writes).
        self.dram_reads = 0
        self.dram_writes = 0

    # -- totals -----------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.per_stream.values())

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.per_stream.values())

    @property
    def bypasses(self) -> int:
        return sum(s.bypasses for s in self.per_stream.values())

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.bypasses

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    # -- stream class helpers ----------------------------------------------

    def _streams_of_class(self, sclass: StreamClass) -> Iterable[Stream]:
        return (s for s in ALL_STREAMS if STREAM_CLASS_OF[s] == sclass)

    def class_hits(self, sclass: StreamClass) -> int:
        return sum(self.per_stream[s].hits for s in self._streams_of_class(sclass))

    def class_misses(self, sclass: StreamClass) -> int:
        return sum(self.per_stream[s].misses for s in self._streams_of_class(sclass))

    def class_hit_rate(self, sclass: StreamClass) -> float:
        hits = self.class_hits(sclass)
        lookups = hits + self.class_misses(sclass)
        return hits / lookups if lookups else 0.0

    # -- paper metrics ------------------------------------------------------

    @property
    def tex_hit_rate(self) -> float:
        return self.per_stream[Stream.TEXTURE].hit_rate

    @property
    def z_hit_rate(self) -> float:
        return self.per_stream[Stream.Z].hit_rate

    @property
    def rt_hit_rate(self) -> float:
        """Hit rate of render-target (blending) accesses only."""
        return self.per_stream[Stream.RT].hit_rate

    @property
    def rt_consumption_rate(self) -> float:
        """Fraction of produced render-target blocks consumed as texture
        through the LLC (the lower panel of Figure 6)."""
        return self.rt_consumed / self.rt_produced if self.rt_produced else 0.0

    @property
    def tex_inter_fraction(self) -> float:
        """Fraction of texture hits that are inter-stream reuses."""
        total = self.tex_inter_hits + self.tex_intra_hits
        return self.tex_inter_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict summary (stable keys) for reports and JSON."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "dram_reads": self.dram_reads,
            "dram_writes": self.dram_writes,
            "tex_hit_rate": self.tex_hit_rate,
            "z_hit_rate": self.z_hit_rate,
            "rt_hit_rate": self.rt_hit_rate,
            "rt_consumption_rate": self.rt_consumption_rate,
            "tex_inter_fraction": self.tex_inter_fraction,
            "per_stream": {
                stream.short_name: dataclasses.asdict(stats)
                for stream, stats in self.per_stream.items()
            },
        }
