"""Cache geometry: address decomposition, banking, and sample-set choice.

The paper dedicates sixteen sample sets in every 1024 LLC sets (one in
64), "identified by simple Boolean functions on the LLC index bits".  We
use the standard constituency construction: a set is a sample when its low
index bits equal its next-higher index bits, which spreads samples evenly
over the index space (and therefore over the banks, which are interleaved
on the low index bits).
"""

from __future__ import annotations

from typing import List

from repro.config import LLCConfig
from repro.errors import ConfigError
from repro.utils.bitops import ilog2


class CacheGeometry:
    """Immutable geometry shared by the LLC engine and its policies."""

    __slots__ = (
        "num_sets",
        "ways",
        "block_bytes",
        "banks",
        "sample_period",
        "set_bits",
        "block_bits",
        "bank_of_set",
        "is_sample_set",
        "sample_sets",
    )

    def __init__(
        self,
        num_sets: int,
        ways: int,
        block_bytes: int = 64,
        banks: int = 1,
        sample_period: int = 64,
    ) -> None:
        if ways <= 0:
            raise ConfigError(f"ways must be positive, got {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self.block_bytes = block_bytes
        self.banks = banks
        self.set_bits = ilog2(num_sets)
        self.block_bits = ilog2(block_bytes)
        ilog2(banks)
        if banks > num_sets:
            raise ConfigError(f"{banks} banks exceed {num_sets} sets")
        # Clamp the sampling period so every cache, however small, keeps a
        # majority of follower sets.
        period = min(sample_period, max(2, num_sets // 2))
        period_bits = max(1, period.bit_length() - 1)
        period = 1 << period_bits
        self.sample_period = period
        mask = period - 1
        self.bank_of_set: List[int] = [s & (banks - 1) for s in range(num_sets)]
        self.is_sample_set: List[bool] = [
            (s & mask) == ((s >> period_bits) & mask) for s in range(num_sets)
        ]
        self.sample_sets = tuple(
            s for s in range(num_sets) if self.is_sample_set[s]
        )

    @classmethod
    def from_config(cls, config: LLCConfig) -> "CacheGeometry":
        return cls(
            num_sets=config.num_sets,
            ways=config.ways,
            block_bytes=config.block_bytes,
            banks=config.banks,
            sample_period=config.sample_period,
        )

    def set_index(self, block_address: int) -> int:
        """Set index of a block address (already shifted by block bits)."""
        return block_address & (self.num_sets - 1)

    def tag(self, block_address: int) -> int:
        return block_address >> self.set_bits

    def block_address(self, byte_address: int) -> int:
        return byte_address >> self.block_bits

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.block_bytes

    def __repr__(self) -> str:
        return (
            f"CacheGeometry(sets={self.num_sets}, ways={self.ways}, "
            f"block={self.block_bytes}B, banks={self.banks}, "
            f"sample_period={self.sample_period})"
        )
