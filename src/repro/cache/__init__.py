"""Cache substrates: geometry, render caches, and the shared LLC engine."""

from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import LRUCache
from repro.cache.llc import LLC
from repro.cache.stats import LLCStats, StreamStats

__all__ = ["CacheGeometry", "LRUCache", "LLC", "LLCStats", "StreamStats"]
