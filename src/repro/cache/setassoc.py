"""A fast generic LRU set-associative cache.

Used for the small render caches in front of the LLC (vertex, HiZ, Z,
stencil, render target, and the texture hierarchy levels).  Each set is a
Python dict from tag to dirty flag; insertion order doubles as LRU order
(hits delete and re-insert), which keeps the hot path allocation-free and
O(1).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.config import CacheParams
from repro.utils.bitops import ilog2


@dataclasses.dataclass
class SetAssocStats:
    """Hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class LRUCache:
    """Set-associative, write-back, write-allocate LRU cache."""

    __slots__ = (
        "name",
        "num_sets",
        "ways",
        "block_bits",
        "set_mask",
        "_sets",
        "stats",
    )

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.name = name
        self.num_sets = params.num_sets
        self.ways = params.ways
        self.block_bits = ilog2(params.block_bytes)
        self.set_mask = self.num_sets - 1
        self._sets: List[dict] = [{} for _ in range(self.num_sets)]
        self.stats = SetAssocStats()

    def access(self, address: int, is_write: bool = False) -> Tuple[bool, Optional[int]]:
        """Access a byte address.

        Returns ``(hit, evicted_block_address)``.  The evicted block
        address (or None) lets callers model write-back traffic; only
        dirty victims are reported, clean victims are dropped silently.
        """
        block = address >> self.block_bits
        set_index = block & self.set_mask
        tag = block >> 0  # full block address doubles as the tag
        cache_set = self._sets[set_index]
        if tag in cache_set:
            # Move to MRU position, merging the dirty bit.
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or is_write
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        victim_writeback = None
        if len(cache_set) >= self.ways:
            victim_tag = next(iter(cache_set))
            victim_dirty = cache_set.pop(victim_tag)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                victim_writeback = victim_tag << self.block_bits
        cache_set[tag] = is_write
        return False, victim_writeback

    def contains(self, address: int) -> bool:
        """Presence check without touching LRU state or statistics."""
        block = address >> self.block_bits
        return block in self._sets[block & self.set_mask]

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty blocks."""
        dirty = sum(sum(1 for d in s.values() if d) for s in self._sets)
        for cache_set in self._sets:
            cache_set.clear()
        return dirty

    def __repr__(self) -> str:
        return (
            f"LRUCache({self.name!r}, sets={self.num_sets}, ways={self.ways})"
        )
