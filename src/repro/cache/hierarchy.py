"""The render-cache front end between the pipeline and the LLC.

The GPU's fixed-function units never talk to the LLC directly: vertex
fetches go through the vertex cache, depth tests through the HiZ and Z
caches, blending through the render-target cache, stencil tests through
the stencil cache, and sampler reads through a three-level texture
hierarchy (Section 4).  Misses at the innermost levels — plus dirty
write-backs — form the LLC access trace.  Displayable color writes and
miscellaneous (shader code/constant) reads are uncached internally and
reach the LLC directly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.cache.setassoc import LRUCache
from repro.config import RenderCachesConfig
from repro.streams import Stream
from repro.trace.record import TraceBuilder


class RenderCacheFrontEnd:
    """Routes raw pipeline accesses through the render caches.

    Every miss that escapes the innermost cache of a stream is appended
    to ``sink`` as an LLC load; every dirty line evicted from a render
    cache is appended as an LLC store (write-back).
    """

    def __init__(
        self, config: Optional[RenderCachesConfig] = None, sink: Optional[TraceBuilder] = None
    ) -> None:
        config = config or RenderCachesConfig()
        self.sink = sink if sink is not None else TraceBuilder()
        self.caches: Dict[Stream, LRUCache] = {
            Stream.VERTEX: LRUCache(config.vertex, "vertex"),
            Stream.HIZ: LRUCache(config.hiz, "hiz"),
            Stream.Z: LRUCache(config.z, "z"),
            Stream.STENCIL: LRUCache(config.stencil, "stencil"),
            Stream.RT: LRUCache(config.render_target, "rt"),
        }
        self.texture_levels = (
            LRUCache(config.texture_l1, "tex-l1"),
            LRUCache(config.texture_l2, "tex-l2"),
            LRUCache(config.texture_l3, "tex-l3"),
        )
        self.raw_accesses = 0

    # -- scalar path --------------------------------------------------------

    def access(self, address: int, stream: Stream, is_write: bool = False) -> None:
        self.raw_accesses += 1
        if stream is Stream.TEXTURE:
            self._texture_access(address)
            return
        if stream is Stream.DISPLAY or stream is Stream.OTHER:
            # Uncached internally: straight to the LLC.
            self.sink.append(address, stream, is_write)
            return
        cache = self.caches[stream]
        hit, writeback = cache.access(address, is_write)
        if writeback is not None:
            self.sink.append(writeback, stream, True)
        if not hit:
            self.sink.append(address, stream, False)

    def _texture_access(self, address: int) -> None:
        for level in self.texture_levels:
            hit, _ = level.access(address, False)
            if hit:
                return
        self.sink.append(address, Stream.TEXTURE, False)

    # -- batch path ----------------------------------------------------------

    def access_blocks(
        self, addresses: np.ndarray, stream: Stream, is_write: bool = False
    ) -> None:
        """Route a batch of block addresses through one stream's caches."""
        if stream is Stream.DISPLAY or stream is Stream.OTHER:
            self.raw_accesses += len(addresses)
            self.sink.extend(addresses, stream, is_write)
            return
        if stream is Stream.TEXTURE:
            access = self._texture_access
            self.raw_accesses += len(addresses)
            for address in addresses.tolist():
                access(address)
            return
        cache_access = self.caches[stream].access
        append = self.sink.append
        self.raw_accesses += len(addresses)
        for address in addresses.tolist():
            hit, writeback = cache_access(address, is_write)
            if writeback is not None:
                append(writeback, stream, True)
            if not hit:
                append(address, stream, False)

    # -- bookkeeping ----------------------------------------------------------

    def filtered_fraction(self) -> float:
        """Fraction of raw accesses absorbed before reaching the LLC."""
        if self.raw_accesses == 0:
            return 0.0
        return 1.0 - len(self.sink) / self.raw_accesses
