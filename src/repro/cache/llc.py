"""The shared last-level cache engine.

The LLC is non-inclusive/non-exclusive: a miss always fills the
requested block (unless the stream is configured as uncached, or a
bypass-capable policy vetoes the fill), and evictions never invalidate
the internal render caches (Section 2).  The engine owns tags, dirty
bits, the stream identity of each resident block, and the engine-level
RT bit used for the paper's inter-stream statistics — the latter is
deliberately independent of any policy's own state so every policy can
be characterized identically (Figures 5, 6, 13).

Replacement decisions are delegated to a
:class:`~repro.core.base.ReplacementPolicy` through the hook interface;
an optional *observer* (e.g. the epoch tracker of
:mod:`repro.sim.epochs`) receives fill/hit/evict events.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import LLCStats
from repro.core.base import NEVER, AccessContext, ReplacementPolicy
from repro.streams import STREAM_CLASS_TABLE, Stream, StreamClass

#: Result codes of :meth:`LLC.access`.
MISS = 0
HIT = 1
BYPASS = 2

_TEX_CLASS = int(StreamClass.TEX)
_RT_CLASS = int(StreamClass.RT)


class LLCObserver:
    """Event sink for characterization tools (all hooks optional).

    An observer may expose an ``engine_sample_period`` attribute (int,
    default 1).  With period ``N > 1`` the engine forwards only the
    events of every ``N``-th access — all of that access's events
    together (a miss's fill and evict stay paired) — skipping the hook
    dispatch entirely for the rest, so sampling observers cost almost
    nothing in the hot path.  Observers that need the full event stream
    (e.g. the epoch tracker) simply omit the attribute.
    """

    # Empty slots so subclasses may opt into __slots__ for cheap
    # attribute access in the per-event hooks.
    __slots__ = ()

    def on_hit(self, ctx: AccessContext, slot: int, was_rt: bool) -> None:
        """A hit on block slot ``slot``; ``was_rt`` is the engine RT bit
        *before* this access's consumption handling."""

    def on_fill(self, ctx: AccessContext, slot: int) -> None:
        """A new block was installed in ``slot``."""

    def on_evict(self, ctx: AccessContext, slot: int) -> None:
        """The block in ``slot`` is about to be evicted."""


class LLC:
    """A banked, set-associative LLC driven by a replacement policy."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        uncached_streams: Iterable[Stream] = (),
        observer: Optional[LLCObserver] = None,
        writeback_sink=None,
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        policy.bind(geometry)
        self.stats = LLCStats()
        self.observer = observer
        # Pre-bound hook methods: one attribute load per event instead
        # of an observer lookup plus a method lookup in the hot path.
        self._on_hit = observer.on_hit if observer is not None else None
        self._on_fill = observer.on_fill if observer is not None else None
        self._on_evict = observer.on_evict if observer is not None else None
        # Observer decimation (see LLCObserver): period 0 = no observer,
        # 1 = every access forwarded, N = every N-th access forwarded.
        self._obs_period = (
            max(1, int(getattr(observer, "engine_sample_period", 1)))
            if observer is not None
            else 0
        )
        self._obs_countdown = 1
        #: Whether the current access's events reach the observer.
        self._obs_live = self._obs_period == 1
        #: Optional callable(byte_address) invoked for every dirty
        #: eviction — lets timing models see real write-back addresses.
        self.writeback_sink = writeback_sink
        self._uncached = frozenset(int(s) for s in uncached_streams)
        num_sets, ways = geometry.num_sets, geometry.ways
        blocks = num_sets * ways
        #: Per-set tag -> way lookup.
        self._lookup: List[dict] = [{} for _ in range(num_sets)]
        #: Per-slot metadata (slot = set * ways + way).
        self._tag: List[int] = [0] * blocks
        self._dirty: List[bool] = [False] * blocks
        self._stream: List[int] = [int(Stream.OTHER)] * blocks
        self._rt_flag: List[bool] = [False] * blocks
        #: Number of ways ever filled per set — ways fill in order and
        #: are never invalidated, so this finds free ways in O(1).
        self._filled: List[int] = [0] * num_sets
        self._ctx = AccessContext()
        self._access_index = 0
        # Dense per-stream stats list indexed by int(stream) — avoids an
        # enum construction on every access of the hot loop.
        self._per_stream = [self.stats.per_stream[s] for s in Stream]

    # -- hot path ---------------------------------------------------------

    def access(
        self,
        address: int,
        stream: int,
        is_write: bool = False,
        next_use: int = NEVER,
    ) -> int:
        """Perform one LLC access; returns MISS, HIT, or BYPASS."""
        geometry = self.geometry
        ctx = self._ctx
        stream_int = int(stream)
        block = address >> geometry.block_bits
        set_index = block & (geometry.num_sets - 1)

        ctx.index = self._access_index
        self._access_index += 1
        ctx.address = address
        ctx.block = block
        ctx.set_index = set_index
        ctx.bank = geometry.bank_of_set[set_index]
        ctx.is_sample = geometry.is_sample_set[set_index]
        ctx.stream = stream_int
        ctx.sclass = STREAM_CLASS_TABLE[stream_int]
        ctx.is_write = is_write
        ctx.next_use = next_use

        if self._obs_period > 1:
            self._obs_countdown -= 1
            if not self._obs_countdown:
                self._obs_countdown = self._obs_period
                self._obs_live = True
            else:
                self._obs_live = False

        per_stream = self._per_stream[stream_int]

        if stream_int in self._uncached:
            per_stream.bypasses += 1
            if is_write:
                self.stats.dram_writes += 1
            else:
                self.stats.dram_reads += 1
            return BYPASS

        way = self._lookup[set_index].get(block)
        if way is not None:
            self._record_hit(ctx, way, per_stream)
            return HIT

        per_stream.misses += 1
        self.stats.dram_reads += 1
        if self.policy.should_bypass(ctx):
            # A policy-vetoed fill is still an LLC miss (the data is
            # fetched from DRAM for the requesting render cache); only
            # statically uncached streams count as bypasses.
            if is_write:
                self.stats.dram_writes += 1
            return BYPASS
        self._fill(ctx)
        return MISS

    def _record_hit(self, ctx: AccessContext, way: int, per_stream) -> None:
        slot = ctx.set_index * self.geometry.ways + way
        per_stream.hits += 1
        stats = self.stats
        was_rt = self._rt_flag[slot]
        sclass = ctx.sclass
        if sclass == _TEX_CLASS:
            if was_rt:
                stats.tex_inter_hits += 1
                stats.rt_consumed += 1
                self._rt_flag[slot] = False
            else:
                stats.tex_intra_hits += 1
        elif sclass == _RT_CLASS and not was_rt:
            # A render-target access re-acquires a resident block
            # (render-target object reuse): a fresh production.
            self._rt_flag[slot] = True
            stats.rt_produced += 1
        if ctx.is_write:
            self._dirty[slot] = True
        self._stream[slot] = ctx.stream
        if self._obs_live:
            self._on_hit(ctx, slot, was_rt)
        self.policy.on_hit(ctx, way)

    def _fill(self, ctx: AccessContext) -> None:
        set_index = ctx.set_index
        ways = self.geometry.ways
        if self._filled[set_index] < ways:
            way = self._filled[set_index]
            self._filled[set_index] += 1
        else:
            way = self.policy.select_victim(ctx)
            self._evict(ctx, set_index, way)
        slot = set_index * ways + way
        stats = self.stats
        stats.fills += 1
        self._lookup[set_index][ctx.block] = way
        self._tag[slot] = ctx.block
        self._dirty[slot] = ctx.is_write
        self._stream[slot] = ctx.stream
        is_rt = ctx.sclass == _RT_CLASS
        self._rt_flag[slot] = is_rt
        if is_rt:
            stats.rt_produced += 1
        if self._obs_live:
            self._on_fill(ctx, slot)
        self.policy.on_fill(ctx, way)

    def _evict(self, ctx: AccessContext, set_index: int, way: int) -> None:
        slot = set_index * self.geometry.ways + way
        stats = self.stats
        stats.evictions += 1
        if self._dirty[slot]:
            stats.writebacks += 1
            stats.dram_writes += 1
            if self.writeback_sink is not None:
                self.writeback_sink(self._tag[slot] << self.geometry.block_bits)
        if self._obs_live:
            self._on_evict(ctx, slot)
        self.policy.on_evict(ctx, way)
        self._rt_flag[slot] = False
        del self._lookup[set_index][self._tag[slot]]

    # -- introspection ------------------------------------------------------

    def resident_blocks(self) -> int:
        return sum(self._filled)

    def contains(self, address: int) -> bool:
        block = address >> self.geometry.block_bits
        return block in self._lookup[block & (self.geometry.num_sets - 1)]

    def way_of(self, address: int) -> Optional[int]:
        block = address >> self.geometry.block_bits
        return self._lookup[block & (self.geometry.num_sets - 1)].get(block)

    def rt_flag_of(self, address: int) -> Optional[bool]:
        """Engine-level RT bit of a resident block (None if absent)."""
        way = self.way_of(address)
        if way is None:
            return None
        block = address >> self.geometry.block_bits
        set_index = block & (self.geometry.num_sets - 1)
        return self._rt_flag[set_index * self.geometry.ways + way]

    def __repr__(self) -> str:
        return f"LLC({self.geometry!r}, policy={self.policy.name!r})"
