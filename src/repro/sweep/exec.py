"""Fault-tolerant sweep execution: DAG scheduling, timeouts, retries.

:class:`SweepRunner` drives the job DAG from :func:`repro.sweep.spec.expand`
to completion over a bounded set of worker slots:

* a job becomes *ready* once every dependency reached a terminal state
  (completed **or** permanently failed — dependency edges are
  scheduling constraints, and sim jobs self-heal a missing trace);
* every attempt runs under an optional per-job **timeout** — an
  overdue attempt is cancelled (the worker process killed) and counted
  as a ``timeout`` failure;
* failed attempts are retried with **exponential backoff**
  (:class:`RetryPolicy`), and a job that exhausts its budget is a
  *permanent failure*: the sweep keeps going and reports it at the end
  (graceful degradation, exit code 3);
* every attempt's outcome is appended to the crash-safe journal the
  moment it is known, so ``--resume`` can reconstruct the run.

The runner is deliberately abstracted over *how* attempts execute (a
``Launcher``) and over *time* (injectable ``clock``/``sleep``), so unit
tests pin the exact retry schedule and timeout behaviour with no real
processes and no real sleeping.  Production uses
:class:`ProcessLauncher`: one daemonic ``multiprocessing.Process`` per
attempt — full isolation, so a crashing job can never take the
orchestrator (or a pool) down with it — with results handed back
through checksummed files (:mod:`repro.sweep.worker`).
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing
import os
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SweepError
from repro.faults import FaultSpec
from repro.obs.tracing import TraceCollector, TraceContext
from repro.sweep.journal import Journal, JournalState, RECORD_VERSION
from repro.sweep.spec import SweepJob, SweepSpec
from repro.sweep.worker import (
    job_payload,
    load_result,
    result_filename,
    run_job_in_worker,
)

#: How long the scheduler sleeps between polls while attempts run.
POLL_INTERVAL = 0.05


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff."""

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_mult: float = 2.0
    backoff_max: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SweepError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise SweepError("backoff delays must be >= 0")
        if self.backoff_mult < 1.0:
            raise SweepError(
                f"backoff_mult must be >= 1, got {self.backoff_mult}"
            )

    def delay_after(self, failed_attempts: int) -> float:
        """Backoff before the next attempt, after N failures this run."""
        return min(
            self.backoff_base * self.backoff_mult ** (failed_attempts - 1),
            self.backoff_max,
        )

    def schedule(self) -> Tuple[float, ...]:
        """The full backoff schedule (one delay per retry)."""
        return tuple(
            self.delay_after(n) for n in range(1, self.max_attempts)
        )


@dataclasses.dataclass
class AttemptResult:
    """What one attempt produced, as observed by the orchestrator."""

    ok: bool
    payload: Optional[Dict[str, object]] = None
    seconds: float = 0.0
    #: Failure class: ``crash`` | ``timeout`` | ``corrupt`` | ``error``.
    kind: str = ""
    error: str = ""
    #: Worker-process telemetry from the result envelope (never part of
    #: the journalled payload): the worker pid, its flat span table, and
    #: its individual span events for the merged run timeline.
    pid: int = 0
    spans: Optional[Dict[str, object]] = None
    events: List[Dict[str, object]] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class SweepOutcome:
    """Aggregate result of one orchestrator invocation."""

    #: job id -> deterministic result payload (journal-backed).
    completed: Dict[str, Dict[str, object]]
    #: job id -> total attempts across the journal's whole history.
    attempts: Dict[str, int]
    #: job id -> attempts executed by *this* invocation.
    executed: Dict[str, int]
    #: job id -> {"attempt", "kind", "error"} for permanent failures.
    failures: Dict[str, Dict[str, object]]
    #: Job ids skipped because the journal already had their result.
    resumed: Tuple[str, ...]
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


# -- process-backed launcher --------------------------------------------------

@dataclasses.dataclass
class _ProcessHandle:
    job: SweepJob
    process: multiprocessing.Process
    out_path: str


class ProcessLauncher:
    """One isolated process per attempt, results via checksummed files."""

    def __init__(
        self,
        spec: SweepSpec,
        cache_dir: Optional[str],
        tmp_dir: str,
        fault: Optional[FaultSpec] = None,
        trace_ctx: Optional[TraceContext] = None,
        trace_sample: int = 1,
    ):
        self.spec = spec
        self.cache_dir = cache_dir
        self.tmp_dir = tmp_dir
        self.fault = fault
        self.trace_ctx = trace_ctx
        self.trace_sample = trace_sample

    def start(self, job: SweepJob, index: int, attempt: int) -> _ProcessHandle:
        inject = None
        hang_seconds = 300.0
        if self.fault is not None and self.fault.matches(
            index, job.job_id, attempt
        ):
            inject = self.fault.kind
            hang_seconds = self.fault.hang_seconds
        os.makedirs(self.tmp_dir, exist_ok=True)
        out_path = os.path.join(
            self.tmp_dir, result_filename(job.job_id, attempt)
        )
        if os.path.exists(out_path):
            os.unlink(out_path)  # stale handoff from a killed run
        child_ctx = (
            self.trace_ctx.child(job.job_id, attempt).to_dict()
            if self.trace_ctx is not None
            else None
        )
        payload = job_payload(
            job, self.spec, self.cache_dir, inject, hang_seconds, child_ctx,
            self.trace_sample,
        )
        process = multiprocessing.Process(
            target=run_job_in_worker, args=(payload, out_path), daemon=True
        )
        process.start()
        return _ProcessHandle(job, process, out_path)

    def poll(self, handle: _ProcessHandle) -> Optional[AttemptResult]:
        if handle.process.is_alive():
            return None
        handle.process.join()
        exitcode = handle.process.exitcode
        try:
            if exitcode != 0:
                return AttemptResult(
                    ok=False,
                    kind="crash",
                    error=f"worker exited with code {exitcode}",
                )
            try:
                envelope = load_result(handle.out_path, handle.job.job_id)
            except SweepError as exc:
                return AttemptResult(ok=False, kind="corrupt", error=str(exc))
            events = envelope.get("events")
            spans = envelope.get("spans")
            return AttemptResult(
                ok=True,
                payload=envelope["payload"],  # type: ignore[arg-type]
                seconds=float(envelope.get("seconds", 0.0)),  # type: ignore[arg-type]
                pid=int(envelope.get("pid", 0) or 0),  # type: ignore[arg-type]
                spans=spans if isinstance(spans, dict) else None,
                events=list(events) if isinstance(events, list) else [],
            )
        finally:
            if os.path.exists(handle.out_path):
                os.unlink(handle.out_path)

    def cancel(self, handle: _ProcessHandle) -> None:
        handle.process.terminate()
        handle.process.join(1.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join()
        if os.path.exists(handle.out_path):
            os.unlink(handle.out_path)

    def wait(self, handles: Sequence[_ProcessHandle], timeout: float) -> None:
        """Block until a worker exits or ``timeout`` elapses."""
        sentinels = [
            handle.process.sentinel
            for handle in handles
            if handle.process.is_alive()
        ]
        if sentinels:
            multiprocessing.connection.wait(sentinels, timeout=timeout)


# -- the scheduler ------------------------------------------------------------

@dataclasses.dataclass
class _Running:
    handle: object
    job: SweepJob
    attempt: int
    index: int
    deadline: Optional[float]
    #: Wall-clock start, anchoring the orchestrator's attempt span on
    #: the same unix timeline the workers' events use.
    started_unix: float = 0.0


class SweepRunner:
    """Drive a sweep DAG to completion with retries and timeouts."""

    def __init__(
        self,
        jobs: Sequence[SweepJob],
        launcher,
        journal: Journal,
        *,
        workers: int = 1,
        timeout: Optional[float] = None,
        retry: RetryPolicy = RetryPolicy(),
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        poll_interval: float = POLL_INTERVAL,
        progress: Optional[Callable[[str], None]] = None,
        collector: Optional[TraceCollector] = None,
        wall: Callable[[], float] = time.time,
    ):
        if workers < 1:
            raise SweepError(f"worker count must be >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise SweepError(f"per-job timeout must be > 0, got {timeout}")
        self.jobs = list(jobs)
        self.launcher = launcher
        self.journal = journal
        self.workers = workers
        self.timeout = timeout
        self.retry = retry
        self.clock = clock
        self.sleep = sleep
        self.poll_interval = poll_interval
        self.progress = progress
        #: Optional sink for the run's merged span-event timeline: one
        #: orchestrator-side span per attempt, plus whatever events each
        #: worker shipped back in its result envelope.
        self.collector = collector
        self.wall = wall

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _trace_attempt(self, entry: "_Running", result: AttemptResult) -> None:
        """Feed the run's trace collector with one finished attempt.

        Records an orchestrator-side span covering the attempt's wall
        time (path ``attempt`` on success, ``attempt/<kind>`` on
        failure) and merges in whatever events the worker shipped back.
        """
        if self.collector is None:
            return
        job_id = entry.job.job_id
        self.collector.add_span(
            job_id,
            entry.started_unix,
            max(0.0, self.wall() - entry.started_unix),
            path="attempt" if result.ok else f"attempt/{result.kind}",
            ctx=self.collector.context.child(job_id, entry.attempt),
            args={"attempt": entry.attempt, "ok": result.ok},
        )
        self.collector.extend(result.events)

    def run(self, resume: Optional[JournalState] = None) -> SweepOutcome:
        started = self.clock()
        index_of = {
            job.job_id: ordinal
            for ordinal, job in enumerate(self.jobs, start=1)
        }
        plan_ids = set(index_of)
        completed: Dict[str, Dict[str, object]] = {}
        base_attempts: Dict[str, int] = {}
        if resume is not None:
            completed = {
                job_id: payload
                for job_id, payload in resume.completed_payloads.items()
                if job_id in plan_ids
            }
            base_attempts = {
                job_id: count
                for job_id, count in resume.attempts.items()
                if job_id in plan_ids
            }
        resumed = tuple(
            job.job_id for job in self.jobs if job.job_id in completed
        )
        executed: Dict[str, int] = {}
        failures: Dict[str, Dict[str, object]] = {}
        terminal = set(resumed)

        # Dependency bookkeeping: only edges to jobs actually in the plan.
        unmet: Dict[str, set] = {}
        dependents: Dict[str, List[str]] = {}
        ready: deque = deque()
        for job in self.jobs:
            if job.job_id in completed:
                continue
            deps = {
                dep for dep in job.deps if dep in plan_ids and dep not in terminal
            }
            if deps:
                unmet[job.job_id] = deps
                for dep in deps:
                    dependents.setdefault(dep, []).append(job.job_id)
            else:
                ready.append(job)
        job_by_id = {job.job_id: job for job in self.jobs}

        total = len(self.jobs)
        done_count = len(resumed)
        delayed: List[Tuple[float, int, str]] = []  # (not_before, seq, job_id)
        seq = 0
        running: Dict[str, _Running] = {}

        def release(job_id: str) -> None:
            terminal.add(job_id)
            for dependent in dependents.get(job_id, ()):  # plan order below
                deps = unmet.get(dependent)
                if deps is None:
                    continue
                deps.discard(job_id)
                if not deps:
                    del unmet[dependent]
                    ready.append(job_by_id[dependent])

        while ready or delayed or running:
            progressed = False
            while ready and len(running) < self.workers:
                job = ready.popleft()
                job_id = job.job_id
                executed[job_id] = executed.get(job_id, 0) + 1
                attempt = base_attempts.get(job_id, 0) + executed[job_id]
                handle = self.launcher.start(job, index_of[job_id], attempt)
                deadline = (
                    self.clock() + self.timeout
                    if self.timeout is not None
                    else None
                )
                running[job_id] = _Running(
                    handle, job, attempt, index_of[job_id], deadline,
                    self.wall(),
                )
                progressed = True

            for job_id in list(running):
                entry = running[job_id]
                result = self.launcher.poll(entry.handle)
                if (
                    result is None
                    and entry.deadline is not None
                    and self.clock() >= entry.deadline
                ):
                    self.launcher.cancel(entry.handle)
                    result = AttemptResult(
                        ok=False,
                        kind="timeout",
                        error=(
                            f"attempt timed out after {self.timeout:g}s"
                        ),
                    )
                if result is None:
                    continue
                progressed = True
                del running[job_id]
                self._trace_attempt(entry, result)
                if result.ok:
                    self.journal.append(
                        {
                            "v": RECORD_VERSION,
                            "job": job_id,
                            "status": "ok",
                            "attempt": entry.attempt,
                            "seconds": result.seconds,
                            "unix": self.wall(),
                            "payload": result.payload,
                        }
                    )
                    completed[job_id] = result.payload or {}
                    done_count += 1
                    self._say(
                        f"[{done_count}/{total}] {job_id} ok "
                        f"({result.seconds:.2f}s, attempt {entry.attempt})"
                    )
                    release(job_id)
                    continue
                self.journal.append(
                    {
                        "v": RECORD_VERSION,
                        "job": job_id,
                        "status": "failed",
                        "attempt": entry.attempt,
                        "kind": result.kind,
                        "error": result.error,
                        "unix": self.wall(),
                    }
                )
                failed_attempts = executed[job_id]
                if failed_attempts < self.retry.max_attempts:
                    delay = self.retry.delay_after(failed_attempts)
                    seq += 1
                    heapq.heappush(
                        delayed, (self.clock() + delay, seq, job_id)
                    )
                    self._say(
                        f"{job_id} failed ({result.kind}: {result.error}) — "
                        f"retry {failed_attempts + 1}/"
                        f"{self.retry.max_attempts} in {delay:g}s"
                    )
                else:
                    failures[job_id] = {
                        "attempt": entry.attempt,
                        "kind": result.kind,
                        "error": result.error,
                    }
                    done_count += 1
                    self._say(
                        f"[{done_count}/{total}] {job_id} FAILED permanently "
                        f"({result.kind}: {result.error}, "
                        f"attempt {entry.attempt})"
                    )
                    release(job_id)

            now = self.clock()
            while delayed and delayed[0][0] <= now:
                _, _, job_id = heapq.heappop(delayed)
                ready.append(job_by_id[job_id])
                progressed = True

            if progressed:
                continue
            if running:
                waiter = getattr(self.launcher, "wait", None)
                if waiter is not None:
                    waiter(
                        [entry.handle for entry in running.values()],
                        self.poll_interval,
                    )
                else:
                    self.sleep(self.poll_interval)
            elif delayed:
                # Nothing running and nothing ready: sleep out exactly
                # the remaining backoff (tests pin this schedule).
                self.sleep(max(0.0, delayed[0][0] - self.clock()))

        attempts = {
            job.job_id: base_attempts.get(job.job_id, 0)
            + executed.get(job.job_id, 0)
            for job in self.jobs
        }
        return SweepOutcome(
            completed=completed,
            attempts=attempts,
            executed=executed,
            failures=failures,
            resumed=resumed,
            wall_seconds=self.clock() - started,
        )
