"""Crash-safe result journal for sweep runs.

The journal is an append-only JSONL file: one self-checksummed record
per job attempt, flushed and fsync'd as soon as it is written, so a
sweep killed at any instant loses at most the attempt that was in
flight.  :func:`replay` reconstructs the run state from whatever made
it to disk — a torn final line, a corrupted record, or a checksum
mismatch is *rejected* (counted, never trusted), which means the
corresponding job simply runs again on ``--resume``.

Record shapes (all carry ``v``, ``job``, ``status``, ``attempt`` and a
``sha256`` over the canonical JSON of the rest):

* ``{"status": "ok", "seconds": ..., "payload": {...}}`` — the job's
  deterministic result payload (what the final CSV/manifest is built
  from).
* ``{"status": "failed", "kind": "crash|timeout|corrupt|error",
  "error": "..."}`` — one failed attempt.

The first ``ok`` record per job wins on replay; later records for the
same job (possible only if two orchestrators raced on one directory)
are ignored, keeping replay monotone under journal truncation — the
property the hypothesis resume test pins down.

Everything else the sweep writes (result payload handoff files, the
final CSV, the failure report, the persisted spec) goes through
:func:`write_atomic`: serialize into a process-unique temporary file in
the destination directory, fsync, then ``os.replace`` — readers never
observe a partial file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Optional

from repro.errors import SweepError

#: Journal filename inside a sweep directory.
JOURNAL_FILENAME = "journal.jsonl"
#: Record schema version.
RECORD_VERSION = 1
#: Terminal attempt statuses a record may carry.
RECORD_STATUSES = ("ok", "failed")


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def checksum(value: object) -> str:
    """SHA-256 over the canonical JSON of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def seal(record: Dict[str, object]) -> str:
    """One journal line: the record plus its self-checksum."""
    return canonical_json({**record, "sha256": checksum(record)})


def verify(data: object) -> Optional[Dict[str, object]]:
    """The record inside a parsed line, or None if it fails validation."""
    if not isinstance(data, dict):
        return None
    body = {key: value for key, value in data.items() if key != "sha256"}
    if data.get("sha256") != checksum(body):
        return None
    if body.get("v") != RECORD_VERSION:
        return None
    if not isinstance(body.get("job"), str) or not body["job"]:
        return None
    if body.get("status") not in RECORD_STATUSES:
        return None
    attempt = body.get("attempt")
    if not isinstance(attempt, int) or isinstance(attempt, bool) or attempt < 1:
        return None
    if body["status"] == "ok" and not isinstance(body.get("payload"), dict):
        return None
    return body


class Journal:
    """Append-only writer; every record hits the platter before return."""

    def __init__(self, path: str):
        self.path = path
        self._handle = None

    def append(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(seal(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclasses.dataclass
class JournalState:
    """Everything :func:`replay` could reconstruct from disk."""

    #: job id -> the winning (first) ``ok`` record.
    completed: Dict[str, Dict[str, object]]
    #: job id -> highest attempt number seen in any accepted record.
    attempts: Dict[str, int]
    #: job id -> last ``failed`` record, for jobs with no ``ok`` yet.
    failures: Dict[str, Dict[str, object]]
    #: Lines dropped as torn/corrupt/checksum-mismatched.
    rejected_lines: int = 0

    @property
    def completed_payloads(self) -> Dict[str, Dict[str, object]]:
        return {
            job_id: record["payload"]  # type: ignore[index]
            for job_id, record in self.completed.items()
        }


def replay(path: str) -> JournalState:
    """Rebuild run state from a journal (missing file = empty state)."""
    state = JournalState(completed={}, attempts={}, failures={})
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return state
    except OSError as exc:
        raise SweepError(f"cannot read journal {path}: {exc}") from exc
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            state.rejected_lines += 1
            continue
        record = verify(data)
        if record is None:
            state.rejected_lines += 1
            continue
        job_id = str(record["job"])
        attempt = int(record["attempt"])  # type: ignore[arg-type]
        state.attempts[job_id] = max(state.attempts.get(job_id, 0), attempt)
        if record["status"] == "ok":
            state.completed.setdefault(job_id, record)
        elif job_id not in state.completed:
            state.failures[job_id] = record
    for job_id in state.completed:
        state.failures.pop(job_id, None)
    return state


def journal_path(sweep_dir: str) -> str:
    return os.path.join(sweep_dir, JOURNAL_FILENAME)


def write_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via tmp + fsync + rename."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
