"""Crash-safe result journal for sweep runs.

The journal is one instance of the generic checksummed write-ahead log
(:mod:`repro.wal`): an append-only JSONL file, one self-checksummed
record per job attempt, flushed and fsync'd as soon as it is written,
so a sweep killed at any instant loses at most the attempt that was in
flight.  :func:`replay` reconstructs the run state from whatever made
it to disk — a torn final line, a corrupted record, or a checksum
mismatch is *rejected* (counted, never trusted), which means the
corresponding job simply runs again on ``--resume``.

Record shapes (all carry ``v``, ``job``, ``status``, ``attempt`` and a
``sha256`` over the canonical JSON of the rest):

* ``{"status": "ok", "seconds": ..., "payload": {...}}`` — the job's
  deterministic result payload (what the final CSV/manifest is built
  from).
* ``{"status": "failed", "kind": "crash|timeout|corrupt|error",
  "error": "..."}`` — one failed attempt.

The first ``ok`` record per job wins on replay; later records for the
same job (possible only if two orchestrators raced on one directory)
are ignored, keeping replay monotone under journal truncation — the
property the hypothesis resume test pins down.

Everything else the sweep writes (result payload handoff files, the
final CSV, the failure report, the persisted spec) goes through
:func:`repro.wal.write_atomic` (re-exported here): serialize into a
process-unique temporary file in the destination directory, fsync,
then ``os.replace`` — readers never observe a partial file.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Optional

from repro import wal
from repro.errors import SweepError, WALError
from repro.wal import (  # noqa: F401  (re-exported journal vocabulary)
    RECORD_VERSION,
    WriteAheadLog,
    canonical_json,
    checksum,
    seal,
    write_atomic,
)

#: Journal filename inside a sweep directory.
JOURNAL_FILENAME = "journal.jsonl"
#: Terminal attempt statuses a record may carry.
RECORD_STATUSES = ("ok", "failed")


def verify(data: object) -> Optional[Dict[str, object]]:
    """The record inside a parsed line, or None if it fails validation."""
    body = wal.verify_sealed(data)
    if body is None:
        return None
    if not isinstance(body.get("job"), str) or not body["job"]:
        return None
    if body.get("status") not in RECORD_STATUSES:
        return None
    attempt = body.get("attempt")
    if not isinstance(attempt, int) or isinstance(attempt, bool) or attempt < 1:
        return None
    if body["status"] == "ok" and not isinstance(body.get("payload"), dict):
        return None
    return body


class Journal(WriteAheadLog):
    """Append-only writer; every record hits the platter before return."""

    def __enter__(self) -> "Journal":
        return self


@dataclasses.dataclass
class JournalState:
    """Everything :func:`replay` could reconstruct from disk."""

    #: job id -> the winning (first) ``ok`` record.
    completed: Dict[str, Dict[str, object]]
    #: job id -> highest attempt number seen in any accepted record.
    attempts: Dict[str, int]
    #: job id -> last ``failed`` record, for jobs with no ``ok`` yet.
    failures: Dict[str, Dict[str, object]]
    #: Lines dropped as torn/corrupt/checksum-mismatched.
    rejected_lines: int = 0

    @property
    def completed_payloads(self) -> Dict[str, Dict[str, object]]:
        return {
            job_id: record["payload"]  # type: ignore[index]
            for job_id, record in self.completed.items()
        }


def replay(path: str) -> JournalState:
    """Rebuild run state from a journal (missing file = empty state)."""
    try:
        raw = wal.replay(path, validator=verify)
    except WALError as exc:
        raise SweepError(f"cannot read journal {path}: {exc}") from exc
    state = JournalState(
        completed={},
        attempts={},
        failures={},
        rejected_lines=raw.rejected_lines,
    )
    for record in raw.records:
        job_id = str(record["job"])
        attempt = int(record["attempt"])  # type: ignore[arg-type]
        state.attempts[job_id] = max(state.attempts.get(job_id, 0), attempt)
        if record["status"] == "ok":
            state.completed.setdefault(job_id, record)
        elif job_id not in state.completed:
            state.failures[job_id] = record
    for job_id in state.completed:
        state.failures.pop(job_id, None)
    return state


def journal_path(sweep_dir: str) -> str:
    return os.path.join(sweep_dir, JOURNAL_FILENAME)
