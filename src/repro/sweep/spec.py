"""Declarative sweep specifications and their job-DAG expansion.

A :class:`SweepSpec` names a (policy × cache geometry × workload-set ×
engine) grid.  :func:`expand` turns it into a deterministic list of
:class:`SweepJob` nodes: one ``trace`` job per (app, frame) — shared by
every geometry, since traces are geometry-independent — and one ``sim``
job per (app, frame, policy, llc_mb), each declaring a dependency edge
on its frame's trace job.  The plan order (traces first, then sims in
sorted order) is what fault specs' ``job=K`` ordinals and the result
CSV's row order refer to, so it must stay stable across releases.

Specs serialize to canonical JSON; the CLI persists the spec into the
sweep directory on the first run so ``--resume`` re-expands the exact
same DAG.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_SCALE
from repro.core.registry import UCD_SUFFIX, available_policies
from repro.errors import ReproError, SourceError, SweepError
from repro.experiments.common import ExperimentConfig
from repro.fastsim.dispatch import ENGINES
from repro.parallel.jobs import SimJob
from repro.trace.sources import (
    SOURCE_SYNTHETIC,
    resolve_source,
    validate_source_spec,
)
from repro.workloads.apps import ALL_APPS, FrameSpec

#: Filename the CLI persists the spec under inside the sweep directory.
SPEC_FILENAME = "spec.json"

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")

#: Keys a spec dict may carry (anything else is a typo, not a feature).
SPEC_KEYS = (
    "name",
    "policies",
    "llc_mb",
    "apps",
    "frames_per_app",
    "scale",
    "engine",
    "source",
)


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """One declarative (policy × geometry × workload × engine) grid."""

    name: str
    policies: Tuple[str, ...]
    llc_mb: Tuple[int, ...] = (8,)
    #: Workload names (Table 1 abbreviations for the synthetic source,
    #: captured workload names otherwise); empty = every workload the
    #: source exposes.
    apps: Tuple[str, ...] = ()
    frames_per_app: int = 1
    scale: float = DEFAULT_SCALE
    engine: str = "auto"
    #: Trace source axis: ``"synthetic"``, ``"capture:PATH"`` or
    #: ``"replay:DIR"`` (see :mod:`repro.trace.sources`).
    source: str = SOURCE_SYNTHETIC

    def __post_init__(self) -> None:
        if not self.name or not _NAME_RE.match(self.name):
            raise SweepError(
                f"sweep name must match {_NAME_RE.pattern}, got {self.name!r}"
            )
        if not self.policies:
            raise SweepError("sweep needs at least one policy")
        known = set(available_policies())
        for policy in self.policies:
            base = policy[: -len(UCD_SUFFIX)] if policy.endswith(UCD_SUFFIX) else policy
            if base not in known:
                raise SweepError(
                    f"unknown policy {policy!r}; known: {sorted(known)}"
                )
        if len(set(self.policies)) != len(self.policies):
            raise SweepError(f"duplicate policies in {self.policies}")
        if not self.llc_mb:
            raise SweepError("sweep needs at least one llc_mb geometry")
        for mb in self.llc_mb:
            if not isinstance(mb, int) or isinstance(mb, bool) or mb < 1:
                raise SweepError(f"llc_mb entries must be positive ints, got {mb!r}")
        if len(set(self.llc_mb)) != len(self.llc_mb):
            raise SweepError(f"duplicate llc_mb geometries in {self.llc_mb}")
        try:
            validate_source_spec(self.source)
        except SourceError as exc:
            raise SweepError(str(exc)) from exc
        if self.source == SOURCE_SYNTHETIC:
            # Non-synthetic workload names live in capture files; they
            # are validated lazily when the source is resolved.
            from repro.workloads.families import is_family_workload

            known_apps = {app.abbrev for app in ALL_APPS}
            for abbrev in self.apps:
                if abbrev not in known_apps and not is_family_workload(abbrev):
                    raise SweepError(
                        f"unknown app {abbrev!r}; known: {sorted(known_apps)} "
                        "plus the extended family workloads "
                        "(`python -m repro.workloads.families list`)"
                    )
        if self.frames_per_app < 1:
            raise SweepError(
                f"frames_per_app must be >= 1, got {self.frames_per_app}"
            )
        if not (0 < self.scale <= 1.0):
            raise SweepError(f"scale must be in (0, 1], got {self.scale}")
        if self.engine not in ENGINES:
            raise SweepError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )

    @classmethod
    def from_dict(cls, data: object) -> "SweepSpec":
        if not isinstance(data, dict):
            raise SweepError(
                f"sweep spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - set(SPEC_KEYS)
        if unknown:
            raise SweepError(f"unknown spec key(s): {sorted(unknown)}")
        if "name" not in data or "policies" not in data:
            raise SweepError("sweep spec needs at least 'name' and 'policies'")
        kwargs = dict(data)
        for key in ("policies", "llc_mb", "apps"):
            if key in kwargs:
                value = kwargs[key]
                if not isinstance(value, (list, tuple)):
                    raise SweepError(f"spec {key!r} must be a list, got {value!r}")
                kwargs[key] = tuple(value)
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form, stable key order (the canonical identity)."""
        return {
            "name": self.name,
            "policies": list(self.policies),
            "llc_mb": list(self.llc_mb),
            "apps": list(self.apps),
            "frames_per_app": self.frames_per_app,
            "scale": self.scale,
            "engine": self.engine,
            "source": self.source,
        }

    def frames(self) -> List[FrameSpec]:
        try:
            source = resolve_source(self.source)
            available = source.frames()
        except SourceError as exc:
            raise SweepError(str(exc)) from exc
        by_app: Dict[str, List[FrameSpec]] = {}
        for frame in available:
            by_app.setdefault(frame.app.abbrev, []).append(frame)
        names = tuple(self.apps) if self.apps else tuple(sorted(by_app))
        missing: List[str] = []
        for name in names:
            if name in by_app:
                continue
            # Workloads the source resolves by name without enumerating —
            # the extended family presets (coherent/graph/compute) ride
            # the workload axis this way, keeping the enumerated Table 1
            # frame set (and every golden pinned to it) untouched.
            try:
                workload = source.frame_spec(name, 0).app
            except ReproError:
                missing.append(name)
                continue
            count = min(self.frames_per_app, int(workload.num_frames))
            by_app[name] = [
                FrameSpec(workload, index) for index in range(count)
            ]
        if missing:
            raise SweepError(
                f"source {self.source!r} has no workload(s) {missing}; "
                f"available: {sorted(by_app)}"
            )
        return [
            frame
            for name in names
            for frame in by_app[name][: self.frames_per_app]
        ]

    def config_for(
        self, llc_mb: int, cache_dir: Optional[str]
    ) -> ExperimentConfig:
        """The per-job :class:`ExperimentConfig` for one geometry."""
        return ExperimentConfig(
            scale=self.scale,
            frames_per_app=self.frames_per_app,
            llc_mb=llc_mb,
            cache_dir=cache_dir,
            engine=self.engine,
            source=self.source,
        )


@dataclasses.dataclass(frozen=True, order=True)
class SweepJob:
    """One node of the sweep DAG (a geometry-qualified ``SimJob``)."""

    kind: str  # "trace" | "sim"
    app: str
    frame_index: int
    policy: str = ""
    llc_mb: int = 0
    #: Job ids that must reach a terminal state before this job starts.
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("trace", "sim"):
            raise SweepError(f"unknown sweep job kind {self.kind!r}")
        if self.kind == "sim" and (not self.policy or self.llc_mb < 1):
            raise SweepError(f"sim job needs a policy and geometry: {self}")

    @property
    def job_id(self) -> str:
        if self.kind == "trace":
            return f"trace:{self.app}:f{self.frame_index}"
        return f"sim:{self.app}:f{self.frame_index}:{self.policy}:llc{self.llc_mb}"

    def sim_job(self) -> SimJob:
        """The :mod:`repro.parallel` payload this node executes."""
        return SimJob(self.kind, self.app, self.frame_index, self.policy)


def expand(spec: SweepSpec) -> List[SweepJob]:
    """The spec's full job DAG in canonical plan order.

    Trace jobs come first (each frame generated exactly once, shared by
    every geometry through the on-disk trace cache); sim jobs follow,
    sorted by (app, frame, llc_mb, policy).  Sim→trace dependency edges
    are scheduling constraints, not correctness requirements — a sim
    whose trace job failed permanently still runs and regenerates the
    trace itself.
    """
    frames = sorted(
        spec.frames(), key=lambda f: (f.app.abbrev, f.frame_index)
    )
    traces = [
        SweepJob("trace", frame.app.abbrev, frame.frame_index)
        for frame in frames
    ]
    trace_id = {
        (job.app, job.frame_index): job.job_id for job in traces
    }
    sims = [
        SweepJob(
            "sim",
            frame.app.abbrev,
            frame.frame_index,
            policy,
            llc_mb,
            deps=(trace_id[(frame.app.abbrev, frame.frame_index)],),
        )
        for frame in frames
        for llc_mb in spec.llc_mb
        for policy in spec.policies
    ]
    sims.sort(key=lambda j: (j.app, j.frame_index, j.llc_mb, j.policy))
    plan = traces + sims
    ids = [job.job_id for job in plan]
    if len(set(ids)) != len(ids):
        raise SweepError("sweep expansion produced duplicate job ids")
    return plan


# -- spec persistence ---------------------------------------------------------

def load_spec(path: str) -> SweepSpec:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SweepError(f"cannot load sweep spec {path}: {exc}") from exc
    return SweepSpec.from_dict(data)


def save_spec(spec: SweepSpec, path: str) -> None:
    """Persist the spec atomically (tmp + rename, fsync'd)."""
    from repro.sweep.journal import write_atomic

    write_atomic(path, json.dumps(spec.to_dict(), indent=2) + "\n")


def spec_path(sweep_dir: str) -> str:
    return os.path.join(sweep_dir, SPEC_FILENAME)


def specs_equal(left: SweepSpec, right: SweepSpec) -> bool:
    return left.to_dict() == right.to_dict()


def spec_from_args(
    name: str,
    policies: Sequence[str],
    llc_mb: Sequence[int],
    apps: Sequence[str],
    frames_per_app: int,
    scale: float,
    engine: str,
    source: str = SOURCE_SYNTHETIC,
) -> SweepSpec:
    """Build a spec from CLI flags (same validation as a spec file)."""
    return SweepSpec(
        name=name,
        policies=tuple(policies),
        llc_mb=tuple(llc_mb),
        apps=tuple(apps),
        frames_per_app=frames_per_app,
        scale=scale,
        engine=engine,
        source=source,
    )
