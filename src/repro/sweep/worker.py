"""Sweep worker: the child-process entry point for one job attempt.

The orchestrator hands each attempt a plain-dict payload (spawn-safe
under any multiprocessing start method) plus an output path.  The
worker executes the job through :func:`repro.parallel.jobs.execute_job`
— the same entry point ``--jobs`` workers use — and ships its result
back as a checksummed JSON file written atomically, so the parent can
distinguish "crashed before finishing" (no file) from "finished but the
payload is garbage" (checksum/parse failure → the attempt is rejected
and retried).

Fault injection threads through here: ``crash``/``hang`` fire before
any work (see :mod:`repro.faults`); ``corrupt`` lets the job finish and
then mangles the serialized result, exercising the parent's rejection
path.
"""

from __future__ import annotations

import json
import os
import re
import sys
from typing import Dict, Optional

from repro import faults
from repro.errors import SweepError
from repro.parallel.jobs import SimJob, execute_job
from repro.sweep.journal import canonical_json, checksum, write_atomic
from repro.sweep.spec import SweepJob, SweepSpec

#: Result-envelope schema version.
RESULT_VERSION = 1

_UNSAFE_RE = re.compile(r"[^A-Za-z0-9._+-]+")


def result_filename(job_id: str, attempt: int) -> str:
    """Filesystem-safe handoff filename for one attempt."""
    return f"{_UNSAFE_RE.sub('-', job_id)}.a{attempt}.json"


def job_payload(
    job: SweepJob,
    spec: SweepSpec,
    cache_dir: Optional[str],
    inject: Optional[str] = None,
    hang_seconds: float = 300.0,
    trace_ctx: Optional[Dict[str, object]] = None,
    trace_sample: int = 1,
) -> Dict[str, object]:
    """The picklable description of one attempt.

    ``trace_ctx`` is the serialized per-attempt
    :class:`~repro.obs.tracing.TraceContext` (already narrowed to this
    job id and attempt number by the launcher); the worker activates it
    so its spans, logs, and shipped events correlate to the parent run.
    """
    return {
        "job": job.job_id,
        "kind": job.kind,
        "app": job.app,
        "frame_index": job.frame_index,
        "policy": job.policy,
        "llc_mb": job.llc_mb or 8,
        "scale": spec.scale,
        "engine": spec.engine,
        "source": spec.source,
        "cache_dir": cache_dir,
        "inject": inject,
        "hang_seconds": hang_seconds,
        "trace_ctx": trace_ctx,
        "trace_sample": trace_sample,
    }


def _reset_inherited_pools() -> None:
    """Detach from any thread-pool state a fork inherited.

    A child forked from a :class:`~concurrent.futures.ThreadPoolExecutor`
    worker thread (gspc-serve's computation pool does exactly this)
    inherits the pool's interpreter-shutdown hook and its registry of
    worker threads — threads that no longer exist after the fork.  The
    hook's join on those ghosts raises during child shutdown, and
    multiprocessing's fork trampoline pre-arms ``os._exit(1)``, so the
    attempt reports a silent crash even though the job itself succeeded.
    Emptying the registry turns the inherited hook into a no-op.
    """
    pool_mod = sys.modules.get("concurrent.futures.thread")
    if pool_mod is not None:
        pool_mod._threads_queues.clear()


def run_job_in_worker(payload: Dict[str, object], out_path: str) -> None:
    """Child-process entry point: run one attempt, ship the result."""
    _reset_inherited_pools()
    inject = payload.get("inject")
    if inject in ("crash", "hang"):
        faults.fire(str(inject), float(payload["hang_seconds"]))  # type: ignore[arg-type]
    from repro.experiments.common import ExperimentConfig

    sim_job = SimJob(
        str(payload["kind"]),
        str(payload["app"]),
        int(payload["frame_index"]),  # type: ignore[arg-type]
        str(payload["policy"]),
    )
    config = ExperimentConfig(
        scale=float(payload["scale"]),  # type: ignore[arg-type]
        frames_per_app=None,
        llc_mb=int(payload["llc_mb"]),  # type: ignore[arg-type]
        cache_dir=payload["cache_dir"],  # type: ignore[arg-type]
        engine=str(payload["engine"]),
        # Pre-source payloads (an old journal replayed by a newer
        # binary) default to the synthetic renderer, matching their
        # original meaning.
        source=str(payload.get("source", "synthetic")),
    )
    from repro.obs.tracing import TraceContext

    trace_ctx = TraceContext.from_dict(payload.get("trace_ctx"))  # type: ignore[arg-type]
    outcome = execute_job(
        sim_job,
        config,
        trace_ctx=trace_ctx,
        trace_sample=int(payload.get("trace_sample", 1) or 1),  # type: ignore[arg-type]
    )
    result: Dict[str, object] = {
        "job": payload["job"],
        "kind": payload["kind"],
        "app": payload["app"],
        "frame": payload["frame_index"],
    }
    if sim_job.kind == "sim":
        from repro.fastsim.dispatch import choose_engine

        sim_result = outcome.value
        result.update(
            policy=payload["policy"],
            llc_mb=payload["llc_mb"],
            engine=choose_engine(str(payload["engine"]), sim_job.policy, None),
            accesses=sim_result.accesses,
            metrics=sim_result.stats.snapshot(),
        )
    # Timing telemetry rides in the *envelope*, never in ``payload``:
    # the journal stores only the payload, and CI diffs journal/manifest
    # metrics byte-for-byte between clean and resumed runs — wall-clock
    # data there would break that determinism contract.
    envelope = {
        "v": RESULT_VERSION,
        "payload": result,
        "seconds": outcome.seconds,
        "pid": os.getpid(),
        "spans": outcome.spans,
        "events": outcome.events,
    }
    text = canonical_json({**envelope, "sha256": checksum(envelope)})
    if inject == "corrupt":
        # Finish the work, then ship garbage: truncating mid-record is
        # both a JSON parse failure and a checksum mismatch.
        text = text[: max(1, len(text) // 2)]
    write_atomic(out_path, text)


def load_result(out_path: str, expected_job: str) -> Dict[str, object]:
    """Parse and verify a worker's result envelope.

    Raises :class:`SweepError` on a missing file, unparsable JSON, a
    checksum mismatch, or a payload for the wrong job — all of which
    the orchestrator treats as a rejected (``corrupt``) attempt.
    """
    try:
        with open(out_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise SweepError("worker produced no result file") from None
    except (OSError, ValueError) as exc:
        raise SweepError(f"unreadable result payload: {exc}") from exc
    if not isinstance(data, dict):
        raise SweepError("result payload is not an object")
    body = {key: value for key, value in data.items() if key != "sha256"}
    if data.get("sha256") != checksum(body):
        raise SweepError("result payload failed its checksum")
    if body.get("v") != RESULT_VERSION:
        raise SweepError(f"unsupported result version {body.get('v')!r}")
    payload = body.get("payload")
    if not isinstance(payload, dict) or payload.get("job") != expected_job:
        raise SweepError(
            f"result payload names job {payload.get('job') if isinstance(payload, dict) else None!r}, "
            f"expected {expected_job!r}"
        )
    return body


__all__ = [
    "RESULT_VERSION",
    "job_payload",
    "load_result",
    "result_filename",
    "run_job_in_worker",
]
