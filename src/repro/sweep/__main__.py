"""``python -m repro.sweep`` — alias for the ``gspc-sweep`` CLI."""

import sys

from repro.sweep.cli import main

if __name__ == "__main__":
    sys.exit(main())
