"""Fault-tolerant, resumable sweep orchestration.

Layers on :mod:`repro.parallel`: a declarative :class:`SweepSpec`
expands into a job DAG (:func:`expand`), a :class:`SweepRunner` drives
it with per-job timeouts and bounded exponential-backoff retries, and a
crash-safe journal (:mod:`repro.sweep.journal`) makes any interrupted
run resumable with byte-identical final artifacts.  The ``gspc-sweep``
CLI (:mod:`repro.sweep.cli`) fronts it all.
"""

from repro.sweep.exec import (
    ProcessLauncher,
    RetryPolicy,
    SweepOutcome,
    SweepRunner,
)
from repro.sweep.journal import Journal, JournalState, journal_path, replay
from repro.sweep.report import results_csv, write_reports
from repro.sweep.spec import SweepJob, SweepSpec, expand, load_spec, save_spec

__all__ = [
    "Journal",
    "JournalState",
    "ProcessLauncher",
    "RetryPolicy",
    "SweepJob",
    "SweepOutcome",
    "SweepRunner",
    "SweepSpec",
    "expand",
    "journal_path",
    "load_spec",
    "replay",
    "results_csv",
    "save_spec",
    "write_reports",
]
