"""gspc-sweep — fault-tolerant, resumable sweep orchestration.

Expand a declarative (policy × cache geometry × workload × engine)
sweep into a job DAG and drive it to completion with per-job timeouts,
bounded retry with exponential backoff, and a crash-safe result
journal.  Kill the run at any instant and ``--resume`` picks up where
the journal left off, re-executing only jobs without a recorded result;
the final CSV and manifest metrics are byte-identical to an
uninterrupted run.

Examples::

    gspc-sweep --out results/small --policies drrip gspc+ucd --llc-mb 4 8
    gspc-sweep --out results/small --spec sweep.json --jobs 4 --timeout 600
    gspc-sweep --resume results/small
    gspc-sweep --out /tmp/s --policies lru --apps DMC \\
        --inject-fault job=1,kind=crash --max-attempts 2

Exit codes (docs/observability.md): 0 every job completed, 2 usage
error, 3 some jobs failed permanently (partial results written).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.cli import EXIT_OK, EXIT_PARTIAL, EXIT_USAGE, ensure_directory
from repro.config import DEFAULT_SCALE
from repro.errors import ReproError, SweepError
from repro.faults import FAULT_ENV, FaultSpec
from repro.fastsim.dispatch import ENGINE_AUTO, ENGINES
from repro.obs import log as obs_log
from repro.obs import tracing
from repro.obs.spans import default_recorder
from repro.obs.tracing import TraceCollector, TraceContext
from repro.obs.traceexport import build_chrome_trace, write_trace_file
from repro.parallel import resolve_jobs
from repro.sweep.exec import ProcessLauncher, RetryPolicy, SweepRunner
from repro.sweep.journal import Journal, journal_path, replay
from repro.sweep.report import write_reports
from repro.sweep.spec import (
    SweepSpec,
    expand,
    load_spec,
    save_spec,
    spec_from_args,
    spec_path,
    specs_equal,
)

#: Handoff scratch directory inside a sweep directory.
TMP_DIRNAME = "tmp"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gspc-sweep",
        description="Run a fault-tolerant, resumable policy/geometry sweep.",
    )
    where = parser.add_mutually_exclusive_group(required=True)
    where.add_argument(
        "--out", metavar="DIR", help="directory for a fresh sweep"
    )
    where.add_argument(
        "--resume",
        metavar="DIR",
        help="resume an interrupted sweep from its journal",
    )
    parser.add_argument(
        "--spec", metavar="FILE", help="sweep spec JSON (instead of flags)"
    )
    parser.add_argument(
        "--name", default="sweep", help="sweep name (default: sweep)"
    )
    parser.add_argument(
        "--policies", nargs="+", default=[], help="policy names to sweep"
    )
    parser.add_argument(
        "--llc-mb",
        nargs="+",
        type=int,
        default=[8],
        metavar="MB",
        help="LLC sizes in MB (default: 8)",
    )
    parser.add_argument(
        "--apps",
        nargs="+",
        default=[],
        metavar="APP",
        help="application abbreviations (default: all twelve)",
    )
    parser.add_argument(
        "--frames-per-app", type=int, default=1, help="frames per application"
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE, help="linear frame scale"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=ENGINE_AUTO,
        help="replay engine for the sim jobs",
    )
    parser.add_argument(
        "--source",
        default="synthetic",
        metavar="SPEC",
        help="trace source axis: 'synthetic' (default), 'capture:PATH' "
        "or 'replay:DIR' (gspc-ingest output); see docs/traces.md",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="concurrent worker processes (0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job attempt timeout (default: none)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per job per invocation (default 3)",
    )
    parser.add_argument(
        "--backoff-base",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="first retry delay (default 0.5; doubles per retry)",
    )
    parser.add_argument(
        "--backoff-max",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="retry delay ceiling (default 30)",
    )
    parser.add_argument(
        "--inject-fault",
        metavar="SPEC",
        help="deterministic fault injection, e.g. job=3,kind=crash "
        f"(testing; also honoured from ${FAULT_ENV})",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        metavar="DIR",
        help="shared trace cache (default: .repro_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the trace cache"
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write one merged Chrome/Perfetto trace JSON for the run "
        "(orchestrator + every worker attempt as separate tracks)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="keep every N-th span event per worker (default 1 = all)",
    )
    parser.add_argument(
        "--metrics-text",
        metavar="FILE",
        help="also dump run metrics in Prometheus text format to FILE",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="logging level (default: $REPRO_LOG_LEVEL or WARNING)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug logging (shorthand for --log-level DEBUG)",
    )
    return parser


def _resolve_spec(
    args: argparse.Namespace, sweep_dir: str, resuming: bool
) -> SweepSpec:
    """The sweep's spec, from flags, a spec file, or the sweep directory.

    On resume the persisted spec is authoritative; a conflicting --spec
    or inline grid is a usage error (the journal's job ids would no
    longer match the plan).
    """
    requested: Optional[SweepSpec] = None
    if args.spec:
        requested = load_spec(args.spec)
    elif args.policies:
        requested = spec_from_args(
            args.name,
            args.policies,
            args.llc_mb,
            args.apps,
            args.frames_per_app,
            args.scale,
            args.engine,
            args.source,
        )
    persisted_path = spec_path(sweep_dir)
    if resuming:
        if not os.path.exists(persisted_path):
            raise SweepError(
                f"{sweep_dir} has no {os.path.basename(persisted_path)}; "
                "not a sweep directory (start one with --out)"
            )
        persisted = load_spec(persisted_path)
        if requested is not None and not specs_equal(requested, persisted):
            raise SweepError(
                "--resume with a different spec than the sweep was started "
                "with; drop the spec flags or start a fresh --out directory"
            )
        return persisted
    if requested is None:
        raise SweepError(
            "a fresh sweep needs --spec FILE or at least --policies"
        )
    return requested


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        obs_log.configure("DEBUG" if args.verbose else args.log_level)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    logger = obs_log.get_logger("sweep")

    resuming = args.resume is not None
    sweep_dir = args.resume if resuming else args.out
    try:
        workers = resolve_jobs(args.jobs)
        retry = RetryPolicy(
            max_attempts=args.max_attempts,
            backoff_base=args.backoff_base,
            backoff_max=args.backoff_max,
        )
        if args.timeout is not None and args.timeout <= 0:
            raise SweepError(
                f"--timeout must be > 0, got {args.timeout}"
            )
        if args.trace_sample < 1:
            raise SweepError(
                f"--trace-sample must be >= 1, got {args.trace_sample}"
            )
        fault = (
            FaultSpec.parse(args.inject_fault)
            if args.inject_fault
            else FaultSpec.from_env()
        )
        spec = _resolve_spec(args, sweep_dir, resuming)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    # One trace context per invocation, even without --trace-out: it
    # stamps every log line with the run id for free.
    ctx = tracing.activate(TraceContext.new_run("gspc-sweep"))
    tracing_on = args.trace_out is not None
    recorder = default_recorder()
    collector = None
    if tracing_on:
        # disable first: a previous in-process invocation (tests, REPL)
        # may have left a buffer behind on the shared default recorder.
        recorder.disable_events()
        recorder.enable_events(
            sample_period=args.trace_sample, context=ctx
        )
        collector = TraceCollector(ctx)
    logger.info("run %s starting", ctx.run_id)

    problem = ensure_directory(sweep_dir, "--resume" if resuming else "--out")
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return EXIT_USAGE
    if not resuming and os.path.exists(journal_path(sweep_dir)):
        print(
            f"error: {sweep_dir} already holds a sweep journal; "
            "use --resume to continue it or pick a fresh --out directory",
            file=sys.stderr,
        )
        return EXIT_USAGE

    # Top-level spans are wrapped in try/finally: an exception anywhere
    # below must not leave open spans on the process-wide recorder (a
    # later reset() would raise — the span-leak bug this fixes).
    try:
        with recorder.span("sweep"):
            with recorder.span("plan"):
                jobs = expand(spec)
                save_spec(spec, spec_path(sweep_dir))
                state = replay(journal_path(sweep_dir))
            cache_dir = None if args.no_cache else args.cache_dir
            if fault is not None:
                print(f"fault injection armed: {fault.describe()}")
                logger.warning("fault injection armed: %s", fault.describe())

            print(
                f"sweep {spec.name!r}: {len(jobs)} jobs "
                f"({sum(1 for j in jobs if j.kind == 'sim')} sims over "
                f"{len(spec.policies)} policies x {len(spec.llc_mb)} "
                f"geometries), {workers} worker(s)"
            )
            if tracing_on:
                print(f"tracing run {ctx.run_id} -> {args.trace_out}")
            if resuming:
                print(
                    f"resume: {len(state.completed)} of {len(jobs)} jobs "
                    f"already journalled"
                    + (
                        f", {state.rejected_lines} corrupt journal line(s) "
                        "rejected"
                        if state.rejected_lines
                        else ""
                    )
                )

            launcher = ProcessLauncher(
                spec,
                cache_dir,
                os.path.join(sweep_dir, TMP_DIRNAME),
                fault,
                trace_ctx=ctx if tracing_on else None,
                trace_sample=args.trace_sample,
            )
            with recorder.span("run"):
                with Journal(journal_path(sweep_dir)) as journal:
                    runner = SweepRunner(
                        jobs,
                        launcher,
                        journal,
                        workers=workers,
                        timeout=args.timeout,
                        retry=retry,
                        progress=print,
                        collector=collector,
                    )
                    outcome = runner.run(state)

            with recorder.span("reports"):
                paths = write_reports(
                    sweep_dir,
                    spec,
                    jobs,
                    outcome,
                    workers=workers,
                    timeout=args.timeout,
                    retry=retry,
                    rejected_journal_lines=state.rejected_lines,
                )
        for label, path in sorted(paths.items()):
            print(f"wrote {label}: {path}")
    finally:
        leaked = recorder.abandon_open_spans()
        if leaked:
            logger.debug("closed %d leaked span(s) on exit", leaked)

    if tracing_on:
        events = recorder.events_payload() + collector.events
        trace = build_chrome_trace(
            events,
            ctx.run_id,
            process_names={os.getpid(): "gspc-sweep orchestrator"},
            extra_metadata={
                "sweep": spec.name,
                "dropped_events": recorder.dropped_events + collector.dropped,
            },
        )
        write_trace_file(trace, args.trace_out)
        print(
            f"wrote trace: {args.trace_out} "
            f"({len(events)} events, {len(trace['metadata']['pids'])} "
            f"process(es))"
        )
    if args.metrics_text:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.traceexport import write_metrics_text

        registry = MetricsRegistry()
        registry.counter("sweep.jobs.total").inc(len(jobs))
        registry.counter("sweep.jobs.completed").inc(len(outcome.completed))
        registry.counter("sweep.jobs.failed").inc(len(outcome.failures))
        registry.counter("sweep.jobs.resumed").inc(len(outcome.resumed))
        registry.gauge("sweep.wall_seconds").set(outcome.wall_seconds)
        duration = registry.histogram("sweep.attempt_seconds")
        for record in replay(journal_path(sweep_dir)).completed.values():
            duration.observe(float(record.get("seconds", 0.0)))
        write_metrics_text(
            registry.snapshot(), args.metrics_text, {"run_id": ctx.run_id}
        )
        print(f"wrote metrics: {args.metrics_text}")

    if outcome.failures:
        print(
            f"sweep finished with {len(outcome.failures)} permanently "
            f"failed job(s) of {len(jobs)} in {outcome.wall_seconds:.1f}s; "
            f"see {paths['failures']}",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    print(
        f"sweep complete: {len(outcome.completed)}/{len(jobs)} jobs ok "
        f"in {outcome.wall_seconds:.1f}s"
    )
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
