"""Final sweep artifacts: results CSV, failure report, run manifest.

Everything here is built **from journal payloads only** — never from
in-memory state a crashed run would have lost — so a resumed sweep
produces byte-identical final artifacts to an uninterrupted one by
construction: same plan order, same payloads, same formatting.

Per-job attempt counts (which *do* differ between an interrupted and an
uninterrupted run — that is how CI proves completed jobs were not
re-executed) live in the manifest's ``jobs`` section, which
``benchmarks/diff_manifest_metrics.py`` deliberately does not compare.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.manifest import sweep_manifest
from repro.sweep.exec import RetryPolicy, SweepOutcome
from repro.sweep.journal import canonical_json, write_atomic
from repro.sweep.spec import SweepJob, SweepSpec

#: Final artifact filenames inside a sweep directory.
RESULTS_FILENAME = "results.csv"
FAILURES_FILENAME = "failures.json"
MANIFEST_FILENAME = "manifest.json"

#: CSV columns, in order.  ``metrics.*`` keys index into each sim
#: payload's :meth:`~repro.cache.stats.LLCStats.snapshot` dict.
CSV_COLUMNS = (
    "app",
    "frame",
    "policy",
    "llc_mb",
    "engine",
    "accesses",
    "metrics.hits",
    "metrics.misses",
    "metrics.bypasses",
    "metrics.hit_rate",
    "metrics.dram_reads",
    "metrics.dram_writes",
)


def _cell(value: object) -> str:
    """Deterministic CSV cell: shortest-repr floats, plain ints/strs."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return repr(value)
    if value is None:
        return ""
    return str(value)


def _column_value(payload: Dict[str, object], column: str) -> object:
    if column.startswith("metrics."):
        metrics = payload.get("metrics")
        if isinstance(metrics, dict):
            return metrics.get(column[len("metrics."):])
        return None
    return payload.get(column)


def results_csv(
    jobs: Sequence[SweepJob], completed: Dict[str, Dict[str, object]]
) -> str:
    """The final CSV: one row per *completed* sim job, in plan order.

    Jobs that failed permanently are simply absent — the failure report
    and the manifest's ``jobs`` section carry that story.
    """
    lines = [",".join(CSV_COLUMNS)]
    for job in jobs:
        if job.kind != "sim":
            continue
        payload = completed.get(job.job_id)
        if payload is None:
            continue
        lines.append(
            ",".join(_cell(_column_value(payload, col)) for col in CSV_COLUMNS)
        )
    return "\n".join(lines) + "\n"


def failure_report(
    outcome: SweepOutcome, jobs: Sequence[SweepJob]
) -> Dict[str, object]:
    """What went permanently wrong, for humans and for CI artifacts."""
    return {
        "failed_jobs": len(outcome.failures),
        "total_jobs": len(jobs),
        "failures": {
            job.job_id: {
                "attempts": outcome.attempts.get(job.job_id, 0),
                "last_kind": outcome.failures[job.job_id].get("kind"),
                "last_error": outcome.failures[job.job_id].get("error"),
            }
            for job in jobs
            if job.job_id in outcome.failures
        },
    }


def jobs_section(
    outcome: SweepOutcome, jobs: Sequence[SweepJob]
) -> List[Dict[str, object]]:
    """Per-job bookkeeping for the manifest (not metric-compared).

    ``executed_attempts`` is what this invocation ran; ``resumed`` marks
    jobs whose result came straight from the journal.  CI's
    crash/resume-equivalence gate asserts ``resumed`` jobs have
    ``executed_attempts == 0`` — completed work is never re-executed.
    """
    resumed = set(outcome.resumed)
    section = []
    for job in jobs:
        job_id = job.job_id
        if job_id in outcome.failures:
            status = "failed"
        elif job_id in outcome.completed:
            status = "ok"
        else:
            status = "missing"
        entry: Dict[str, object] = {
            "job": job_id,
            "status": status,
            "attempts": outcome.attempts.get(job_id, 0),
            "executed_attempts": outcome.executed.get(job_id, 0),
            "resumed": job_id in resumed,
        }
        if job_id in outcome.failures:
            entry["last_kind"] = outcome.failures[job_id].get("kind")
            entry["last_error"] = outcome.failures[job_id].get("error")
        section.append(entry)
    return section


def metrics_section(
    jobs: Sequence[SweepJob], completed: Dict[str, Dict[str, object]]
) -> Dict[str, object]:
    """Deterministic result payloads, keyed by job id, sims only.

    This is the section ``diff_manifest_metrics.py`` compares between a
    crashed-and-resumed sweep and an uninterrupted one, so it must be a
    pure function of the journal payloads.
    """
    return {
        job.job_id: completed[job.job_id]
        for job in jobs
        if job.kind == "sim" and job.job_id in completed
    }


def write_reports(
    sweep_dir: str,
    spec: SweepSpec,
    jobs: Sequence[SweepJob],
    outcome: SweepOutcome,
    *,
    workers: int,
    timeout: Optional[float],
    retry: RetryPolicy,
    rejected_journal_lines: int = 0,
) -> Dict[str, str]:
    """Write results.csv, the manifest, and (on failure) failures.json.

    Returns a mapping of artifact name -> path for everything written.
    All whole-file artifacts go through atomic tmp+fsync+rename.
    """
    paths: Dict[str, str] = {}

    csv_path = os.path.join(sweep_dir, RESULTS_FILENAME)
    write_atomic(csv_path, results_csv(jobs, outcome.completed))
    paths["results"] = csv_path

    manifest = sweep_manifest(
        spec.to_dict(),
        sweep={
            "name": spec.name,
            "total_jobs": len(jobs),
            "completed": len(outcome.completed),
            "failed": len(outcome.failures),
            "resumed": len(outcome.resumed),
            "workers": workers,
            "timeout": timeout,
            "retry": {
                "max_attempts": retry.max_attempts,
                "backoff_base": retry.backoff_base,
                "backoff_mult": retry.backoff_mult,
                "backoff_max": retry.backoff_max,
            },
            "rejected_journal_lines": rejected_journal_lines,
        },
        metrics=metrics_section(jobs, outcome.completed),
        jobs=jobs_section(outcome, jobs),
        wall_seconds=outcome.wall_seconds,
    )
    # write_manifest is not atomic; route its serialization through the
    # same tmp+rename path every other sweep artifact uses.
    manifest_path = os.path.join(sweep_dir, MANIFEST_FILENAME)
    write_atomic(
        manifest_path, json.dumps(manifest, indent=2, sort_keys=False) + "\n"
    )
    paths["manifest"] = manifest_path

    failures_path = os.path.join(sweep_dir, FAILURES_FILENAME)
    if outcome.failures:
        write_atomic(
            failures_path,
            canonical_json(failure_report(outcome, jobs)) + "\n",
        )
        paths["failures"] = failures_path
    elif os.path.exists(failures_path):
        # A fully successful resume supersedes the failure report the
        # interrupted invocation left behind.
        os.unlink(failures_path)
    return paths


__all__ = [
    "CSV_COLUMNS",
    "FAILURES_FILENAME",
    "MANIFEST_FILENAME",
    "RESULTS_FILENAME",
    "failure_report",
    "jobs_section",
    "metrics_section",
    "results_csv",
    "write_reports",
]
