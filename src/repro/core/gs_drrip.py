"""Graphics stream-aware DRRIP (GS-DRRIP).

The paper derives this comparison policy from thread-aware DRRIP
[Jaleel et al., PACT'08] by treating the four graphics stream classes
(Z, TEX, RT, OTHER) as the "threads": each class runs its own
SRRIP-vs-BRRIP duel with its own PSEL and its own leader sets, so each
stream independently converges on an insertion RRPV of ``2**n - 2`` or
``2**n - 1``.
"""

from __future__ import annotations

from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.base import AccessContext
from repro.core.brrip import BIMODAL_PERIOD
from repro.core.dueling import LEADER_A, LEADER_B, PolicySelector, leader_roles
from repro.core.rrip import RRIPPolicy

NUM_STREAM_CLASSES = 4


class GSDRRIPPolicy(RRIPPolicy):
    name = "gs-drrip"

    def __init__(
        self,
        rrpv_bits: int = 2,
        psel_bits: int = 10,
        target_leaders: int = 32,
    ) -> None:
        super().__init__(rrpv_bits)
        self.psel_bits = psel_bits
        self.target_leaders = target_leaders
        if rrpv_bits != 2:
            self.name = f"gs-drrip{rrpv_bits}"

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self.roles: List[List[int]] = [
            leader_roles(
                geometry.num_sets,
                duel_index=sclass,
                num_duels=NUM_STREAM_CLASSES,
                target_leaders=self.target_leaders,
            )
            for sclass in range(NUM_STREAM_CLASSES)
        ]
        self.psels = [PolicySelector(self.psel_bits) for _ in range(NUM_STREAM_CLASSES)]
        self._fill_ticks = [0] * NUM_STREAM_CLASSES

    def _bimodal_rrpv(self, sclass: int) -> int:
        self._fill_ticks[sclass] += 1
        if self._fill_ticks[sclass] >= BIMODAL_PERIOD:
            self._fill_ticks[sclass] = 0
            return self.long_rrpv
        return self.distant_rrpv

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        sclass = ctx.sclass
        # A set may lead for this stream's duel; fills of *other* streams
        # in that set follow their own winners (thread-aware dueling).
        role = self.roles[sclass][ctx.set_index]
        self.psels[sclass].record_leader_miss(role)
        if role == LEADER_A:
            choice = LEADER_A
        elif role == LEADER_B:
            choice = LEADER_B
        else:
            choice = self.psels[sclass].winner
        if choice == LEADER_A:
            self.insert(ctx, way, self.long_rrpv)
        else:
            self.insert(ctx, way, self._bimodal_rrpv(sclass))
