"""DIP — dynamic insertion policy [Qureshi et al., ISCA'07].

The recency-stack ancestor of DRRIP, covered in the paper's related
work: set-dueling between plain LRU insertion (at MRU) and *bimodal*
insertion (BIP: insert at LRU, promoting to MRU only one fill in 32),
with hits always promoting to MRU.  Included as an additional baseline
so the RRIP-family results can be contrasted with the best
recency-stack policy.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.base import AccessContext
from repro.core.brrip import BIMODAL_PERIOD
from repro.core.dueling import LEADER_A, LEADER_B, PolicySelector, leader_roles
from repro.core.lru import LRUPolicy


class BIPPolicy(LRUPolicy):
    """Bimodal insertion: fills land at the LRU position except one in
    32, which lands at MRU; hits promote to MRU."""

    name = "bip"

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self._fill_tick = 0

    def _insert_at_lru(self, set_index: int, way: int) -> None:
        base = set_index * self.geometry.ways
        stamps = self.stamps
        oldest = min(stamps[base : base + self.geometry.ways])
        stamps[base + way] = oldest - 1

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        self._fill_tick += 1
        if self._fill_tick >= BIMODAL_PERIOD:
            self._fill_tick = 0
            self._touch(ctx.set_index, way)      # MRU insertion
        else:
            self._insert_at_lru(ctx.set_index, way)


class DIPPolicy(BIPPolicy):
    """Set-duel between LRU insertion and bimodal insertion."""

    name = "dip"

    def __init__(self, psel_bits: int = 10, target_leaders: int = 32) -> None:
        super().__init__()
        self.psel_bits = psel_bits
        self.target_leaders = target_leaders

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self.roles = leader_roles(
            geometry.num_sets, target_leaders=self.target_leaders
        )
        self.psel = PolicySelector(self.psel_bits)

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        role = self.roles[ctx.set_index]
        self.psel.record_leader_miss(role)
        if role == LEADER_A:
            choice = LEADER_A
        elif role == LEADER_B:
            choice = LEADER_B
        else:
            choice = self.psel.winner
        if choice == LEADER_A:
            self._touch(ctx.set_index, way)      # LRU policy: MRU insert
        else:
            BIPPolicy.on_fill(self, ctx, way)    # bimodal insert
