"""GSPC — graphics stream-aware probabilistic caching (Table 5).

The final proposal: GSPZTC+TSE plus *dynamic* render-target management.
Two extra per-bank counters estimate the probability that a render
target produced into the LLC is later consumed by the texture samplers:
PROD counts render-target fills into sample sets, CONS counts texture
hits on sample blocks in the RT state.  A non-sample render-target fill
is protected according to the sampled CONS/PROD ratio:

* ``PROD > 16*CONS``            (probability < 1/16)  -> RRPV 3
* ``16*CONS >= PROD > 8*CONS``  (1/16 <= p < 1/8)     -> RRPV 2
* otherwise                     (p >= 1/8)            -> RRPV 0

The thresholds are deliberately small because they are measured in the
SRRIP-managed samples and amplified in the followers.  Render-target
hits from blending always promote to RRPV 0.
"""

from __future__ import annotations

from repro.core.base import AccessContext
from repro.core.gspztc_tse import GSPZTCTSEPolicy

#: Probability thresholds of Table 5 (1/16 and 1/8).
LOW_FACTOR = 16
MID_FACTOR = 8


class GSPCPolicy(GSPZTCTSEPolicy):
    name = "gspc"
    counter_names = GSPZTCTSEPolicy.counter_names + ("prod", "cons")

    def _on_sample_rt_fill(self, bank: int) -> None:
        self._inc("prod", bank)

    def _on_sample_rt_consumption(self, bank: int) -> None:
        self._inc("cons", bank)

    def _rt_fill_rrpv(self, ctx: AccessContext) -> int:
        prod = self.counters["prod"][ctx.bank]
        cons = self.counters["cons"][ctx.bank]
        if prod > LOW_FACTOR * cons:
            return self.distant_rrpv
        if prod > MID_FACTOR * cons:
            return self.long_rrpv
        return 0

    def rt_consumption_probability(self, bank: int) -> float:
        """The sampled CONS/PROD estimate (for introspection and tests)."""
        return self.reuse_probability("prod", "cons", bank)
