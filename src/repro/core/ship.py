"""SHiP-mem: memory-region signature-based hit prediction [Wu et al.].

Graphics fills come largely from fixed-function hardware, so the PC and
instruction-sequence SHiP variants are inapplicable; the paper evaluates
the memory variant (Section 5.1): the physical address space is divided
into contiguous 16 KB regions, a 14-bit region identifier (address bits
[27:14]) is hashed into a per-bank 16K-entry table of 3-bit saturating
counters, hits increment the region counter, evictions of never-reused
blocks decrement it, and a fill inserts with the distant RRPV when the
region counter is zero (else ``2**n - 2``).
"""

from __future__ import annotations

from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.base import AccessContext
from repro.core.rrip import RRIPPolicy
from repro.utils.bitops import mix_bits

REGION_BITS = 14
REGION_SHIFT = 14          # 16 KB regions
TABLE_ENTRIES = 1 << 14    # 16K entries per bank
COUNTER_MAX = 7            # 3-bit counters


class SHiPMemPolicy(RRIPPolicy):
    name = "ship-mem"

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        blocks = geometry.num_sets * geometry.ways
        #: Per-bank signature history counter tables (SHCT).
        self.shct: List[List[int]] = [
            [1] * TABLE_ENTRIES for _ in range(geometry.banks)
        ]
        #: Stored signature and was-reused outcome per resident block.
        self.signature = [0] * blocks
        self.reused = [False] * blocks

    @staticmethod
    def _signature(address: int) -> int:
        region = (address >> REGION_SHIFT) & ((1 << REGION_BITS) - 1)
        return mix_bits(region) & (TABLE_ENTRIES - 1)

    def on_hit(self, ctx: AccessContext, way: int) -> None:
        super().on_hit(ctx, way)
        slot = ctx.set_index * self.geometry.ways + way
        table = self.shct[ctx.bank]
        signature = self.signature[slot]
        if table[signature] < COUNTER_MAX:
            table[signature] += 1
        self.reused[slot] = True

    def on_evict(self, ctx: AccessContext, way: int) -> None:
        slot = ctx.set_index * self.geometry.ways + way
        if not self.reused[slot]:
            table = self.shct[ctx.bank]
            signature = self.signature[slot]
            if table[signature] > 0:
                table[signature] -= 1

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        slot = ctx.set_index * self.geometry.ways + way
        signature = self._signature(ctx.address)
        self.signature[slot] = signature
        self.reused[slot] = False
        if self.shct[ctx.bank][signature] == 0:
            self.insert(ctx, way, self.distant_rrpv)
        else:
            self.insert(ctx, way, self.long_rrpv)
