"""Belady's optimal replacement (OPT / MIN).

The offline upper bound of Figures 1, 5, 6, 7 and 9.  The simulator
precomputes, for every access, the index of the *next* access to the
same block (:mod:`repro.sim.future`) and exposes it as
``ctx.next_use``; the victim is the resident block whose next use lies
farthest in the future, with "never used again" treated as infinitely
far and ties broken toward the smallest way id.
"""

from __future__ import annotations

from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.base import NEVER, AccessContext, ReplacementPolicy
from repro.errors import PolicyError


class BeladyPolicy(ReplacementPolicy):
    name = "belady"
    needs_future = True

    def __init__(self) -> None:
        super().__init__()
        self.next_use: List[int] = []

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self.next_use = [NEVER] * (geometry.num_sets * geometry.ways)

    def _check_future(self, ctx: AccessContext) -> None:
        if ctx.next_use < 0:
            raise PolicyError(
                "Belady's OPT requires precomputed next-use indices; run it "
                "through repro.sim.offline with future information enabled"
            )

    def select_victim(self, ctx: AccessContext) -> int:
        ways = self.geometry.ways
        base = ctx.set_index * ways
        next_use = self.next_use
        victim = 0
        farthest = next_use[base]
        for way in range(1, ways):
            distance = next_use[base + way]
            if distance > farthest:
                farthest = distance
                victim = way
        return victim

    def on_hit(self, ctx: AccessContext, way: int) -> None:
        self._check_future(ctx)
        self.next_use[ctx.set_index * self.geometry.ways + way] = ctx.next_use

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        self._check_future(ctx)
        self.next_use[ctx.set_index * self.geometry.ways + way] = ctx.next_use
