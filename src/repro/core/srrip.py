"""Static re-reference interval prediction (SRRIP) [Jaleel et al., ISCA'10].

Every block is inserted with RRPV ``2**n - 2`` (a "long" re-reference
interval), promoted to RRPV 0 on hits, and evicted at RRPV ``2**n - 1``.
SRRIP is also the fixed policy executed by the paper's LLC sample sets.
"""

from __future__ import annotations

from repro.core.base import AccessContext
from repro.core.rrip import RRIPPolicy


class SRRIPPolicy(RRIPPolicy):
    name = "srrip"

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        self.insert(ctx, way, self.long_rrpv)
