"""GSPZTC — graphics stream-aware probabilistic Z and texture caching.

The first proposal (Table 3).  Sample sets run SRRIP and learn one reuse
probability per stream through FILL(Z)/HIT(Z) and FILL(TEX)/HIT(TEX)
counters; a texture hit that consumes a render target (RT bit set)
counts as a texture *fill*, because the consumed block enters a fresh
texture life.  Non-sample sets insert:

* Z fills at RRPV 3 when ``FILL(Z) > t*HIT(Z)``, else 2;
* TEX fills at RRPV 3 when ``FILL(TEX) > t*HIT(TEX)``, else 0;
* RT fills at RRPV 0 (static maximum protection);
* everything else at RRPV 2; and every hit promotes to RRPV 0.
"""

from __future__ import annotations

from repro.core.base import AccessContext
from repro.core.gspc_base import STATE_E0, STATE_RT, ProbabilisticStreamPolicy
from repro.streams import StreamClass

_Z = int(StreamClass.Z)
_TEX = int(StreamClass.TEX)
_RT = int(StreamClass.RT)


class GSPZTCPolicy(ProbabilisticStreamPolicy):
    name = "gspztc"
    counter_names = ("fill_z", "hit_z", "fill_tex", "hit_tex")

    def on_hit(self, ctx: AccessContext, way: int) -> None:
        slot = self._slot(ctx.set_index, way)
        state = self.state
        sclass = ctx.sclass
        if ctx.is_sample:
            bank = ctx.bank
            self._tick(bank)
            if sclass == _TEX:
                if state[slot] == STATE_RT:
                    # RT -> TEX consumption starts a new texture life.
                    self._inc("fill_tex", bank)
                else:
                    self._inc("hit_tex", bank)
            elif sclass == _Z:
                self._inc("hit_z", bank)
        if sclass == _RT:
            state[slot] = STATE_RT
        elif sclass == _TEX and state[slot] == STATE_RT:
            state[slot] = STATE_E0
        # Table 3: any hit promotes to RRPV 0 (samples run SRRIP, which
        # promotes identically).
        self.rrpv[slot] = 0

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        slot = self._slot(ctx.set_index, way)
        sclass = ctx.sclass
        self.state[slot] = STATE_RT if sclass == _RT else STATE_E0
        if ctx.is_sample:
            bank = ctx.bank
            self._tick(bank)
            if sclass == _Z:
                self._inc("fill_z", bank)
            elif sclass == _TEX:
                self._inc("fill_tex", bank)
            self.insert(ctx, way, self.long_rrpv)  # SRRIP insertion
            return
        if sclass == _Z:
            value = (
                self.distant_rrpv
                if self._low_reuse("fill_z", "hit_z", ctx.bank)
                else self.long_rrpv
            )
        elif sclass == _TEX:
            value = (
                self.distant_rrpv
                if self._low_reuse("fill_tex", "hit_tex", ctx.bank)
                else 0
            )
        elif sclass == _RT:
            value = 0
        else:
            value = self.long_rrpv
        self.insert(ctx, way, value)

    def on_evict(self, ctx: AccessContext, way: int) -> None:
        # The RT bit is reset on eviction (we only track in-LLC reuses).
        self.state[self._slot(ctx.set_index, way)] = STATE_E0
