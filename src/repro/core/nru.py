"""Single-bit not-recently-used (NRU) replacement.

Each block carries one reference bit, set on fill and on every hit.  The
victim is the lowest-numbered way whose bit is clear; if every bit in the
set is set, all bits are cleared first (equivalent to one-bit RRIP).
NRU is one of the two reference policies of Figure 1.
"""

from __future__ import annotations

from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.base import AccessContext, ReplacementPolicy


class NRUPolicy(ReplacementPolicy):
    name = "nru"

    def __init__(self) -> None:
        super().__init__()
        self.referenced: List[bool] = []

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self.referenced = [False] * (geometry.num_sets * geometry.ways)

    def select_victim(self, ctx: AccessContext) -> int:
        ways = self.geometry.ways
        base = ctx.set_index * ways
        referenced = self.referenced
        for way in range(ways):
            if not referenced[base + way]:
                return way
        for way in range(ways):
            referenced[base + way] = False
        return 0

    def on_hit(self, ctx: AccessContext, way: int) -> None:
        self.referenced[ctx.set_index * self.geometry.ways + way] = True

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        self.referenced[ctx.set_index * self.geometry.ways + way] = True
