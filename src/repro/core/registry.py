"""Policy registry: construct any evaluated policy from its name.

Names match Table 6 of the paper (lower-cased):

``drrip``, ``nru``, ``ship-mem``, ``gs-drrip``, ``gspztc``,
``gspztc+tse``, ``gspc``, plus the baselines ``lru``, ``srrip``,
``brrip``, ``belady``, the four-bit variants ``drrip4`` / ``gs-drrip4``
(Figure 14), and a ``+ucd`` suffix on any name for the uncached
displayable color variant (e.g. ``gspc+ucd``, ``drrip+ucd``).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple, Union

from repro.core.base import ReplacementPolicy
from repro.core.belady import BeladyPolicy
from repro.core.brrip import BRRIPPolicy
from repro.core.dip import BIPPolicy, DIPPolicy
from repro.core.drrip import DRRIPPolicy
from repro.core.gs_drrip import GSDRRIPPolicy
from repro.core.gspc import GSPCPolicy
from repro.core.gspc_bypass import GSPCBypassPolicy
from repro.core.gspztc import GSPZTCPolicy
from repro.core.gspztc_tse import GSPZTCTSEPolicy
from repro.core.lru import LRUPolicy
from repro.core.nru import NRUPolicy
from repro.core.ship import SHiPMemPolicy
from repro.core.srrip import SRRIPPolicy
from repro.errors import PolicyError
from repro.streams import Stream

UCD_SUFFIX = "+ucd"

_FACTORIES: Dict[str, Tuple[Callable[..., ReplacementPolicy], str]] = {
    "nru": (NRUPolicy, "Single-bit not-recently-used"),
    "lru": (LRUPolicy, "True least-recently-used"),
    "srrip": (SRRIPPolicy, "Static re-reference interval prediction"),
    "brrip": (BRRIPPolicy, "Bimodal re-reference interval prediction"),
    "bip": (BIPPolicy, "Bimodal insertion policy (recency stack)"),
    "dip": (DIPPolicy, "Dynamic insertion policy (LRU vs BIP dueling)"),
    "drrip": (DRRIPPolicy, "Dynamic re-reference interval prediction"),
    "drrip4": (
        lambda **kw: DRRIPPolicy(rrpv_bits=4, **kw),
        "Four-bit DRRIP (iso-overhead study)",
    ),
    "gs-drrip": (GSDRRIPPolicy, "Graphics stream-aware DRRIP"),
    "gs-drrip4": (
        lambda **kw: GSDRRIPPolicy(rrpv_bits=4, **kw),
        "Four-bit graphics stream-aware DRRIP",
    ),
    "ship-mem": (SHiPMemPolicy, "Memory signature-based hit prediction"),
    "belady": (BeladyPolicy, "Belady's optimal policy (offline)"),
    "gspztc": (
        GSPZTCPolicy,
        "Graphics stream-aware probabilistic Z and texture caching",
    ),
    "gspztc+tse": (GSPZTCTSEPolicy, "GSPZTC with texture sampler epochs"),
    "gspc": (GSPCPolicy, "Graphics stream-aware probabilistic caching"),
    "gspc+bypass": (
        GSPCBypassPolicy,
        "GSPC extension: bypass probably-dead texture fills",
    ),
}


@dataclasses.dataclass(frozen=True)
class PolicySpec:
    """A resolved policy name: how to build it and how to run it."""

    name: str
    base_name: str
    description: str
    #: Streams that bypass the LLC entirely (the UCD variants).
    uncached_streams: FrozenSet[Stream]
    factory: Callable[..., ReplacementPolicy]

    def build(self, **kwargs: object) -> ReplacementPolicy:
        policy = self.factory(**kwargs)
        policy.name = self.name
        return policy


def policy_spec(name: str) -> PolicySpec:
    """Resolve a (possibly ``+ucd``-suffixed) policy name."""
    key = name.strip().lower()
    uncached: FrozenSet[Stream] = frozenset()
    description_suffix = ""
    if key.endswith(UCD_SUFFIX):
        key = key[: -len(UCD_SUFFIX)]
        uncached = frozenset({Stream.DISPLAY})
        description_suffix = " with uncached displayable color"
    if key not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise PolicyError(f"unknown policy {name!r}; known policies: {known}")
    factory, description = _FACTORIES[key]
    return PolicySpec(
        name=key + (UCD_SUFFIX if uncached else ""),
        base_name=key,
        description=description + description_suffix,
        uncached_streams=uncached,
        factory=factory,
    )


#: Anything the simulators accept as a policy argument.
PolicyLike = Union[str, PolicySpec, ReplacementPolicy]


def resolve_policy(
    policy: PolicyLike, uncached_streams: Optional[Iterable[Stream]] = None
) -> "Tuple[ReplacementPolicy, FrozenSet[Stream]]":
    """Resolve a name/spec/instance into ``(instance, uncached streams)``.

    The shared front door of both simulation engines: a registry name
    (``"gspc+ucd"``) resolves through :func:`policy_spec`, a
    :class:`PolicySpec` is built directly, and a ready policy instance
    passes through.  An explicit ``uncached_streams`` overrides whatever
    the spec declares (e.g. the ``+ucd`` suffix).
    """
    if isinstance(policy, str):
        spec = policy_spec(policy)
        instance = spec.build()
        uncached = spec.uncached_streams
    elif isinstance(policy, PolicySpec):
        instance = policy.build()
        uncached = policy.uncached_streams
    else:
        instance = policy
        uncached = frozenset()
    if uncached_streams is not None:
        uncached = frozenset(uncached_streams)
    return instance, uncached


def make_policy(name: str, **kwargs: object) -> ReplacementPolicy:
    """Build a policy instance by name (ignores the UCD suffix's bypass —
    use :func:`policy_spec` when running a simulation)."""
    return policy_spec(name).build(**kwargs)


def available_policies() -> Tuple[str, ...]:
    """All registered base policy names (each also accepts ``+ucd``)."""
    return tuple(sorted(_FACTORIES))
