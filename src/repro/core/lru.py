"""True least-recently-used replacement.

LRU keeps a full recency order per set (log2(ways!) bits in hardware —
four state bits per block for a 16-way set, which is why Figure 14 uses
it as the iso-overhead reference against four-bit DRRIP and GSPC).
Blocks are inserted at MRU and promoted to MRU on hits.
"""

from __future__ import annotations

from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.base import AccessContext, ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        #: Monotonic per-set clocks and per-block last-touch stamps.  A
        #: stamp comparison reproduces exact LRU order without list moves.
        self.stamps: List[int] = []
        self.clocks: List[int] = []

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self.stamps = [0] * (geometry.num_sets * geometry.ways)
        self.clocks = [0] * geometry.num_sets

    def _touch(self, set_index: int, way: int) -> None:
        self.clocks[set_index] += 1
        self.stamps[set_index * self.geometry.ways + way] = self.clocks[set_index]

    def select_victim(self, ctx: AccessContext) -> int:
        ways = self.geometry.ways
        base = ctx.set_index * ways
        stamps = self.stamps
        victim = 0
        oldest = stamps[base]
        for way in range(1, ways):
            stamp = stamps[base + way]
            if stamp < oldest:
                oldest = stamp
                victim = way
        return victim

    def on_hit(self, ctx: AccessContext, way: int) -> None:
        self._touch(ctx.set_index, way)

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        self._touch(ctx.set_index, way)
