"""Replacement-policy interface.

The LLC engine (:mod:`repro.cache.llc`) drives a policy through five
hooks: victim selection, hit, fill, eviction, and an optional bypass
veto.  Policies keep their own per-block metadata, allocated when the
engine binds them to a :class:`~repro.cache.geometry.CacheGeometry`; the
engine owns tags, validity, stream identity and statistics.

``AccessContext`` is a single mutable object reused for every access —
policies must read what they need inside the hook and never retain a
reference across accesses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import PolicyError

if TYPE_CHECKING:  # geometry is only referenced in annotations; a
    # runtime import would be circular (cache.llc imports this module).
    from repro.cache.geometry import CacheGeometry

#: "Never referenced again" marker for next-use indices (Belady).
NEVER = 1 << 62


class AccessContext:
    """Per-access information passed to every policy hook."""

    __slots__ = (
        "index",
        "address",
        "block",
        "set_index",
        "bank",
        "is_sample",
        "stream",
        "sclass",
        "is_write",
        "next_use",
    )

    def __init__(self) -> None:
        self.index = 0          #: position of this access in the trace
        self.address = 0        #: byte address
        self.block = 0          #: block address (byte address >> block bits)
        self.set_index = 0
        self.bank = 0
        self.is_sample = False  #: True in the dedicated SRRIP sample sets
        self.stream = 0         #: int(repro.streams.Stream)
        self.sclass = 0         #: int(repro.streams.StreamClass)
        self.is_write = False
        self.next_use = NEVER   #: next access index of this block, or NEVER


class ReplacementPolicy:
    """Base class for all LLC replacement policies."""

    #: Registry name; subclasses override.
    name = "abstract"
    #: True if the policy needs ``ctx.next_use`` (Belady's OPT).  The
    #: offline simulator precomputes next-use indices only when asked.
    needs_future = False

    def __init__(self) -> None:
        self.geometry: Optional["CacheGeometry"] = None

    # -- lifecycle -----------------------------------------------------

    def bind(self, geometry: CacheGeometry) -> None:
        """Allocate per-block metadata for ``geometry``.

        Subclasses must call ``super().bind(geometry)`` first.
        """
        self.geometry = geometry

    def _require_bound(self) -> CacheGeometry:
        if self.geometry is None:
            raise PolicyError(f"policy {self.name!r} used before bind()")
        return self.geometry

    # -- hooks (hot path) ------------------------------------------------

    def should_bypass(self, ctx: AccessContext) -> bool:
        """Veto the fill of a missing block (never called for hits)."""
        return False

    def select_victim(self, ctx: AccessContext) -> int:
        """Choose a way to evict in ``ctx.set_index`` (all ways valid)."""
        raise NotImplementedError

    def on_hit(self, ctx: AccessContext, way: int) -> None:
        """The access hit way ``way``."""
        raise NotImplementedError

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        """The missing block was installed in way ``way``."""
        raise NotImplementedError

    def on_evict(self, ctx: AccessContext, way: int) -> None:
        """Way ``way`` is being evicted (before the new block lands)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
