"""Dynamic re-reference interval prediction (DRRIP) — the paper's baseline.

DRRIP set-duels SRRIP insertion (RRPV ``2**n - 2``) against BRRIP
insertion (RRPV ``2**n - 1`` except one fill in 32) and lets the
follower sets copy the winner.  Hits always promote to RRPV 0.  The
two-bit variant is the baseline of every figure in the paper; the
four-bit variant appears in the iso-overhead study of Figure 14.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.base import AccessContext
from repro.core.brrip import BIMODAL_PERIOD
from repro.core.dueling import LEADER_A, LEADER_B, PolicySelector, leader_roles
from repro.core.rrip import RRIPPolicy


class DRRIPPolicy(RRIPPolicy):
    name = "drrip"

    def __init__(
        self,
        rrpv_bits: int = 2,
        psel_bits: int = 10,
        target_leaders: int = 32,
    ) -> None:
        super().__init__(rrpv_bits)
        self.psel_bits = psel_bits
        self.target_leaders = target_leaders
        if rrpv_bits != 2:
            self.name = f"drrip{rrpv_bits}"

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self.roles = leader_roles(
            geometry.num_sets, target_leaders=self.target_leaders
        )
        self.psel = PolicySelector(self.psel_bits)
        self._fill_tick = 0

    def _bimodal_rrpv(self) -> int:
        self._fill_tick += 1
        if self._fill_tick >= BIMODAL_PERIOD:
            self._fill_tick = 0
            return self.long_rrpv
        return self.distant_rrpv

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        role = self.roles[ctx.set_index]
        self.psel.record_leader_miss(role)
        if role == LEADER_A:
            choice = LEADER_A
        elif role == LEADER_B:
            choice = LEADER_B
        else:
            choice = self.psel.winner
        if choice == LEADER_A:
            self.insert(ctx, way, self.long_rrpv)
        else:
            self.insert(ctx, way, self._bimodal_rrpv())
