"""Replacement policies: the paper's GSPC family and all baselines."""

from repro.core.base import AccessContext, ReplacementPolicy
from repro.core.registry import available_policies, make_policy, policy_spec

__all__ = [
    "AccessContext",
    "ReplacementPolicy",
    "available_policies",
    "make_policy",
    "policy_spec",
]
