"""Set-dueling support [Qureshi et al., ISCA'07].

A small number of *leader* sets are statically dedicated to each
competing insertion policy; a saturating policy-selector (PSEL) counter
counts their misses and the remaining *follower* sets adopt the winner.
The leader assignment uses the constituency construction: leaders for
duel ``d`` live at set offsets ``2d`` (policy A) and ``2d + 1`` (policy
B) within each constituency, so multiple independent duels (one per
graphics stream class in GS-DRRIP) never share a leader set.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two
from repro.utils.counters import SaturatingCounter

#: Leader-set roles.
FOLLOWER = 0
LEADER_A = 1   # e.g. SRRIP insertion
LEADER_B = 2   # e.g. BRRIP insertion


def leader_roles(
    num_sets: int, duel_index: int = 0, num_duels: int = 1, target_leaders: int = 32
) -> List[int]:
    """Role of every set for one duel.

    ``target_leaders`` is the desired number of leader sets per policy
    (32 in the DRRIP paper for a 4096-set cache); it is reduced
    automatically for small caches so that followers always remain the
    majority.
    """
    if not is_power_of_two(num_sets):
        raise ConfigError(f"set count must be a power of two, got {num_sets}")
    if duel_index >= num_duels:
        raise ConfigError(f"duel index {duel_index} >= duel count {num_duels}")
    min_period = 1
    while min_period < 2 * num_duels:
        min_period *= 2
    # Keep leader sets a small minority even for scaled-down caches: at
    # most one leader pair per 16 sets (the DRRIP paper dedicates 32+32
    # leaders out of 4096 sets, i.e. one pair per 128).
    period = max(min_period, num_sets // target_leaders, 16)
    period = min(period, num_sets)
    if period < 2 * num_duels:
        raise ConfigError(
            f"{num_sets} sets cannot host {num_duels} independent duels"
        )
    mask = period - 1
    offset_a = 2 * duel_index
    offset_b = 2 * duel_index + 1
    roles = [FOLLOWER] * num_sets
    for set_index in range(num_sets):
        offset = set_index & mask
        if offset == offset_a:
            roles[set_index] = LEADER_A
        elif offset == offset_b:
            roles[set_index] = LEADER_B
    return roles


class PolicySelector:
    """The PSEL counter of one duel.

    Misses in policy-A leaders increment, misses in policy-B leaders
    decrement; followers use policy B when A has accumulated strictly
    more misses (value above the midpoint starting position).
    """

    __slots__ = ("counter", "midpoint")

    def __init__(self, bits: int = 10) -> None:
        self.midpoint = 1 << (bits - 1)
        self.counter = SaturatingCounter(bits, value=self.midpoint)

    def record_leader_miss(self, role: int) -> None:
        if role == LEADER_A:
            self.counter.increment()
        elif role == LEADER_B:
            self.counter.decrement()

    @property
    def winner(self) -> int:
        """LEADER_A or LEADER_B — the policy followers should copy."""
        return LEADER_B if self.counter.value > self.midpoint else LEADER_A
