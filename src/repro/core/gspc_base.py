"""Shared machinery for the GSPC policy family (Section 3).

All three proposals (GSPZTC, GSPZTC+TSE, GSPC) share the same substrate:

* the dedicated *sample sets* always execute SRRIP while updating
  per-bank saturating FILL/HIT (and later PROD/CONS) counters;
* a 7-bit ACC(ALL) counter per bank counts every sample access and, on
  saturation, halves the other counters and resets itself;
* non-sample ("follower") sets amplify the sampled reuse probabilities
  by choosing insertion RRPVs through threshold tests of the form
  ``FILL > t * HIT`` with ``t`` a power of two (t = 8 by default,
  Figure 11).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cache.geometry import CacheGeometry
from repro.core.rrip import RRIPPolicy
from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two

#: Block states of Figure 10 (GSPZTC+TSE and GSPC).  GSPZTC itself only
#: distinguishes RT from non-RT, which it stores in the same field.
STATE_E0 = 0
STATE_E1 = 1
STATE_E2PLUS = 2
STATE_RT = 3


class ProbabilisticStreamPolicy(RRIPPolicy):
    """Base class: per-bank saturating stream counters + sample plumbing."""

    #: Counter names allocated per bank; subclasses override.
    counter_names: Tuple[str, ...] = ()

    def __init__(
        self,
        t: int = 8,
        rrpv_bits: int = 2,
        counter_bits: int = 8,
        acc_bits: int = 7,
    ) -> None:
        super().__init__(rrpv_bits)
        if not is_power_of_two(t):
            raise ConfigError(f"threshold t must be a power of two, got {t}")
        self.t = t
        self.counter_max = (1 << counter_bits) - 1
        self.acc_max = (1 << acc_bits) - 1

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        banks = geometry.banks
        self.counters: Dict[str, List[int]] = {
            name: [0] * banks for name in self.counter_names
        }
        self.acc = [0] * banks
        #: Per-block stream state (RT bit for GSPZTC, Figure-10 state for
        #: the epoch-aware policies).
        self.state = [STATE_E0] * (geometry.num_sets * geometry.ways)

    # -- counter plumbing -------------------------------------------------

    def _inc(self, name: str, bank: int) -> None:
        values = self.counters[name]
        if values[bank] < self.counter_max:
            values[bank] += 1

    def _tick(self, bank: int) -> None:
        """Count one sample-set access; halve everything on saturation."""
        if self.acc[bank] >= self.acc_max:
            for values in self.counters.values():
                values[bank] >>= 1
            self.acc[bank] = 0
        else:
            self.acc[bank] += 1

    def _low_reuse(self, fill_name: str, hit_name: str, bank: int) -> bool:
        """The paper's probability test: FILL > t * HIT."""
        return self.counters[fill_name][bank] > self.t * self.counters[hit_name][bank]

    # -- block-state helpers ----------------------------------------------

    def _slot(self, set_index: int, way: int) -> int:
        return set_index * self.geometry.ways + way

    def reuse_probability(self, fill_name: str, hit_name: str, bank: int) -> float:
        """Observed HIT / FILL ratio — for introspection and tests."""
        fills = self.counters[fill_name][bank]
        hits = self.counters[hit_name][bank]
        return hits / fills if fills else 0.0
