"""GSPC with dead-texture bypass (an extension beyond the paper).

The paper inserts probably-dead texture blocks at the distant RRPV; the
logical next step (its Section 1.1 cites bypass algorithms [4, 11]) is
to not install them at all.  ``GSPCBypassPolicy`` bypasses a texture
fill whenever the sampled epoch-0 reuse probability is below the same
``1/(t+1)`` threshold that would have produced a distant insertion —
sample sets still cache everything, so the probabilities keep being
learned and the policy can exit bypass mode when textures become hot.

The LLC stays non-inclusive, so bypassing is architecturally legal: the
requesting render cache receives the data either way.
"""

from __future__ import annotations

from repro.core.base import AccessContext
from repro.core.gspc import GSPCPolicy
from repro.streams import StreamClass

_TEX = int(StreamClass.TEX)


class GSPCBypassPolicy(GSPCPolicy):
    name = "gspc+bypass"

    def bind(self, geometry) -> None:
        super().bind(geometry)
        self.bypassed_fills = 0

    def should_bypass(self, ctx: AccessContext) -> bool:
        # Never bypass in the sample sets: they must keep learning the
        # true reuse probabilities under SRRIP.
        if ctx.is_sample or ctx.sclass != _TEX or ctx.is_write:
            return False
        if self._low_reuse("fill_e0", "hit_e0", ctx.bank):
            self.bypassed_fills += 1
            return True
        return False
