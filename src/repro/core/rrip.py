"""Shared re-reference interval prediction (RRIP) machinery.

All RRIP-family policies (SRRIP, BRRIP, DRRIP, GS-DRRIP, SHiP and the
GSPC family) share the same victim-selection rule: evict the block with
RRPV ``2**n - 1``; if none exists, increment every block's RRPV in the
set until one reaches it; break ties toward the smallest way id
(Section 1 of the paper).
"""

from __future__ import annotations

from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.base import AccessContext, ReplacementPolicy


class RRIPPolicy(ReplacementPolicy):
    """Base class holding a per-block RRPV array and the victim scan."""

    def __init__(self, rrpv_bits: int = 2) -> None:
        super().__init__()
        self.rrpv_bits = rrpv_bits
        self.max_rrpv = (1 << rrpv_bits) - 1
        #: RRPV of insertion for long re-reference interval ("distant").
        self.distant_rrpv = self.max_rrpv
        #: RRPV of insertion for intermediate re-reference interval.
        self.long_rrpv = self.max_rrpv - 1
        self.rrpv: List[int] = []

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self.rrpv = [self.max_rrpv] * (geometry.num_sets * geometry.ways)
        # fill_rrpv_counts[stream class][rrpv] — Figure 8 reports the
        # fraction of RT and TEX fills inserted with the distant RRPV.
        self.fill_rrpv_counts = [
            [0] * (self.max_rrpv + 1) for _ in range(4)
        ]

    def insert(self, ctx: AccessContext, way: int, value: int) -> None:
        """Install a fill RRPV and record it for fill-RRPV statistics."""
        self.rrpv[ctx.set_index * self.geometry.ways + way] = value
        self.fill_rrpv_counts[ctx.sclass][value] += 1

    def fill_fraction_at(self, sclass: int, value: int) -> float:
        """Fraction of class ``sclass`` fills inserted with RRPV ``value``."""
        counts = self.fill_rrpv_counts[sclass]
        total = sum(counts)
        return counts[value] / total if total else 0.0

    def select_victim(self, ctx: AccessContext) -> int:
        """Age the set until some RRPV saturates; evict the lowest way."""
        ways = self.geometry.ways
        base = ctx.set_index * ways
        rrpv = self.rrpv
        set_rrpvs = rrpv[base : base + ways]
        oldest = max(set_rrpvs)
        victim = set_rrpvs.index(oldest)
        if oldest < self.max_rrpv:
            # One aging step of (max - oldest) is equivalent to repeated
            # unit increments until a block saturates; the first block at
            # the pre-aging maximum is the first to saturate.
            delta = self.max_rrpv - oldest
            for way in range(ways):
                rrpv[base + way] += delta
        return victim

    # Common default: promote to RRPV 0 on a hit.
    def on_hit(self, ctx: AccessContext, way: int) -> None:
        self.rrpv[ctx.set_index * self.geometry.ways + way] = 0

    def set_rrpv(self, set_index: int, way: int, value: int) -> None:
        self.rrpv[set_index * self.geometry.ways + way] = value

    def get_rrpv(self, set_index: int, way: int) -> int:
        return self.rrpv[set_index * self.geometry.ways + way]
