"""GSPZTC+TSE — GSPZTC with texture sampler epochs (Table 4, Figure 10).

Two state bits per block track the texture epochs: 00 = E0 (filled or
freshly consumed from a render target), 01 = E1 (one texture hit),
10 = E>=2, and 11 identifies a render-target block (replacing the RT
bit).  The single FILL/HIT(TEX) pair of GSPZTC becomes per-epoch pairs
FILL(0)/HIT(0) and FILL(1)/HIT(1), so a texture hit no longer blindly
promotes to RRPV 0: the new RRPV is deduced from the reuse probability
of the epoch the block is *entering*.
"""

from __future__ import annotations

from repro.core.base import AccessContext
from repro.core.gspc_base import (
    STATE_E0,
    STATE_E1,
    STATE_E2PLUS,
    STATE_RT,
    ProbabilisticStreamPolicy,
)
from repro.streams import StreamClass

_Z = int(StreamClass.Z)
_TEX = int(StreamClass.TEX)
_RT = int(StreamClass.RT)


class GSPZTCTSEPolicy(ProbabilisticStreamPolicy):
    name = "gspztc+tse"
    counter_names = ("fill_z", "hit_z", "fill_e0", "hit_e0", "fill_e1", "hit_e1")

    # -- non-sample insertion decisions ---------------------------------

    def _tex_entry_rrpv(self, epoch: int, bank: int) -> int:
        """RRPV for a texture block entering epoch 0 or 1 (Table 4)."""
        fill_name, hit_name = ("fill_e0", "hit_e0") if epoch == 0 else (
            "fill_e1",
            "hit_e1",
        )
        return self.distant_rrpv if self._low_reuse(fill_name, hit_name, bank) else 0

    def _rt_fill_rrpv(self, ctx: AccessContext) -> int:
        """RT fills keep the static RRPV-0 protection (refined by GSPC)."""
        return 0

    def _on_sample_rt_fill(self, bank: int) -> None:
        """GSPC overrides this to count render-target production."""

    def _on_sample_rt_consumption(self, bank: int) -> None:
        """GSPC overrides this to count render-target consumption."""

    # -- hooks -----------------------------------------------------------

    def on_hit(self, ctx: AccessContext, way: int) -> None:
        slot = self._slot(ctx.set_index, way)
        state = self.state
        sclass = ctx.sclass
        bank = ctx.bank
        if ctx.is_sample:
            self._tick(bank)
            if sclass == _TEX:
                current = state[slot]
                if current == STATE_RT:
                    self._inc("fill_e0", bank)
                    self._on_sample_rt_consumption(bank)
                    state[slot] = STATE_E0
                elif current == STATE_E0:
                    self._inc("hit_e0", bank)
                    self._inc("fill_e1", bank)
                    state[slot] = STATE_E1
                elif current == STATE_E1:
                    self._inc("hit_e1", bank)
                    state[slot] = STATE_E2PLUS
                else:
                    state[slot] = STATE_E2PLUS
            elif sclass == _Z:
                self._inc("hit_z", bank)
            elif sclass == _RT:
                state[slot] = STATE_RT
            self.rrpv[slot] = 0  # samples run SRRIP: hits promote to 0
            return
        if sclass == _TEX:
            current = state[slot]
            if current == STATE_RT:
                self.rrpv[slot] = self._tex_entry_rrpv(0, bank)
                state[slot] = STATE_E0
            elif current == STATE_E0:
                self.rrpv[slot] = self._tex_entry_rrpv(1, bank)
                state[slot] = STATE_E1
            else:
                self.rrpv[slot] = 0
                state[slot] = STATE_E2PLUS
            return
        if sclass == _RT:
            state[slot] = STATE_RT
        self.rrpv[slot] = 0

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        slot = self._slot(ctx.set_index, way)
        sclass = ctx.sclass
        bank = ctx.bank
        self.state[slot] = STATE_RT if sclass == _RT else STATE_E0
        if ctx.is_sample:
            self._tick(bank)
            if sclass == _Z:
                self._inc("fill_z", bank)
            elif sclass == _TEX:
                self._inc("fill_e0", bank)
            elif sclass == _RT:
                self._on_sample_rt_fill(bank)
            self.insert(ctx, way, self.long_rrpv)
            return
        if sclass == _Z:
            value = (
                self.distant_rrpv
                if self._low_reuse("fill_z", "hit_z", bank)
                else self.long_rrpv
            )
        elif sclass == _TEX:
            value = self._tex_entry_rrpv(0, bank)
        elif sclass == _RT:
            value = self._rt_fill_rrpv(ctx)
        else:
            value = self.long_rrpv
        self.insert(ctx, way, value)

    def on_evict(self, ctx: AccessContext, way: int) -> None:
        self.state[self._slot(ctx.set_index, way)] = STATE_E0
