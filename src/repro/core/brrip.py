"""Bimodal re-reference interval prediction (BRRIP) [Jaleel et al.].

Inserts with the distant RRPV (``2**n - 1``) most of the time and with
the long RRPV (``2**n - 2``) with low probability (1/32), making the
policy thrash-resistant.  The bimodal choice is implemented with a
deterministic 1-in-32 fill counter, like hardware throttles do, so runs
are reproducible.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.base import AccessContext
from repro.core.rrip import RRIPPolicy

#: One fill in BIMODAL_PERIOD is inserted with the long RRPV.
BIMODAL_PERIOD = 32


class BRRIPPolicy(RRIPPolicy):
    name = "brrip"

    def bind(self, geometry: CacheGeometry) -> None:
        super().bind(geometry)
        self._fill_tick = 0

    def on_fill(self, ctx: AccessContext, way: int) -> None:
        self._fill_tick += 1
        if self._fill_tick >= BIMODAL_PERIOD:
            self._fill_tick = 0
            self.insert(ctx, way, self.long_rrpv)
        else:
            self.insert(ctx, way, self.distant_rrpv)
