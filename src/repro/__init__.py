"""repro — graphics stream-aware probabilistic caching (GSPC) for GPU LLCs.

A full reproduction of Gaur, Srinivasan, Subramoney and Chaudhuri,
"Efficient Management of Last-level Caches in Graphics Processors for
3D Scene Rendering Workloads" (MICRO 2013), built on pure-Python
substrates: a synthetic DirectX-style frame renderer, a render-cache
front end, an offline LLC simulator hosting thirteen replacement
policies, and a GPU frame-timing model.

Quick start::

    from repro import simulate_trace, generate_frame_trace, app_by_name
    from repro.config import paper_baseline

    system = paper_baseline(llc_mb=8, scale=0.125)
    trace = generate_frame_trace(app_by_name("AssnCreed"), frame_index=0,
                                 scale=0.125)
    gspc = simulate_trace(trace, "gspc+ucd", system.llc)
    drrip = simulate_trace(trace, "drrip", system.llc)
    print(gspc.misses / drrip.misses)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    DDR3_1600,
    DDR3_1867,
    GPU_BASELINE,
    GPU_SMALL,
    CacheParams,
    DRAMConfig,
    GPUConfig,
    LLCConfig,
    RenderCachesConfig,
    SystemConfig,
    paper_baseline,
)
from repro.core import available_policies, make_policy, policy_spec
from repro.errors import (
    ConfigError,
    ObservabilityError,
    ParallelError,
    PolicyError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.gpu.timing import FrameTiming, FrameTimingSimulator, simulate_frame_timing
from repro.sim import SimResult, simulate_trace
from repro.streams import Stream, StreamClass
from repro.trace import Access, Trace, TraceBuilder, load_trace, save_trace
from repro.workloads import (
    ALL_APPS,
    AppProfile,
    all_frames,
    app_by_name,
    generate_frame_trace,
)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "CacheParams",
    "LLCConfig",
    "RenderCachesConfig",
    "DRAMConfig",
    "GPUConfig",
    "SystemConfig",
    "paper_baseline",
    "DDR3_1600",
    "DDR3_1867",
    "GPU_BASELINE",
    "GPU_SMALL",
    # streams & traces
    "Stream",
    "StreamClass",
    "Access",
    "Trace",
    "TraceBuilder",
    "load_trace",
    "save_trace",
    # policies
    "available_policies",
    "make_policy",
    "policy_spec",
    # simulation
    "SimResult",
    "simulate_trace",
    "FrameTiming",
    "FrameTimingSimulator",
    "simulate_frame_timing",
    # workloads
    "ALL_APPS",
    "AppProfile",
    "all_frames",
    "app_by_name",
    "generate_frame_trace",
    # errors
    "ReproError",
    "ConfigError",
    "TraceError",
    "PolicyError",
    "SimulationError",
    "WorkloadError",
    "ObservabilityError",
    "ParallelError",
]
