"""Generic checksummed write-ahead log primitives.

Extracted from the sweep result journal (:mod:`repro.sweep.journal`) so
that any durable subsystem can reuse the same crash-safety recipe the
sweep engine proved out:

* every record is one JSONL line carrying a ``sha256`` over the
  canonical JSON of the rest of the record, flushed and fsync'd before
  the append returns — a process killed at any instant loses at most
  the record in flight;
* replay parses whatever made it to disk and *rejects* (counts, never
  trusts) torn lines, corrupt JSON, checksum mismatches, and records a
  caller-supplied validator refuses — so recovery is monotone under
  truncation at any byte offset;
* whole-file artifacts go through :func:`write_atomic` (serialize into
  a process-unique temporary file, fsync, ``os.replace``) so readers
  never observe a partial file.

Two subsystems build on this module: the sweep journal (per-attempt
records keyed by job id) and the serve result store's WAL
(:mod:`repro.serve.store`, content-addressed result records keyed by
cache key).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from typing import Callable, Dict, List, Optional

from repro.errors import WALError

#: Record schema version shared by every WAL built on this module.
RECORD_VERSION = 1


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def checksum(value: object) -> str:
    """SHA-256 over the canonical JSON of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def seal(record: Dict[str, object]) -> str:
    """One WAL line: the record plus its self-checksum."""
    return canonical_json({**record, "sha256": checksum(record)})


def verify_sealed(data: object) -> Optional[Dict[str, object]]:
    """The record inside a parsed line, or None on checksum/version failure.

    Checks only the properties every sealed record shares — it is an
    object, its ``sha256`` matches the canonical JSON of the rest, and
    it carries the supported ``v`` — leaving record-shape semantics to
    each WAL's own validator.
    """
    if not isinstance(data, dict):
        return None
    body = {key: value for key, value in data.items() if key != "sha256"}
    if data.get("sha256") != checksum(body):
        return None
    if body.get("v") != RECORD_VERSION:
        return None
    return body


class WriteAheadLog:
    """Append-only writer; every record hits the platter before return."""

    def __init__(self, path: str):
        self.path = path
        self._handle = None

    def append(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(seal(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def append_once(path: str, record: Dict[str, object]) -> None:
    """Append one sealed record, open-to-fsync-to-close.

    The short-lived open in append mode makes this safe for many
    concurrent writer *processes* on one file: each ``write`` is a
    single whole-line ``O_APPEND`` write, so lines from racing writers
    interleave only at line granularity, which replay handles.
    """
    with WriteAheadLog(path) as log:
        log.append(record)


@dataclasses.dataclass
class WALState:
    """What :func:`replay` could reconstruct from one WAL file."""

    #: Accepted records, in on-disk order.
    records: List[Dict[str, object]]
    #: Lines dropped as torn/corrupt/checksum-mismatched/invalid.
    rejected_lines: int = 0


def replay(
    path: str,
    validator: Optional[
        Callable[[object], Optional[Dict[str, object]]]
    ] = None,
) -> WALState:
    """Accepted records from a WAL file (missing file = empty state).

    ``validator`` receives each parsed JSON line and returns the record
    or ``None`` to reject it; the default accepts any checksummed record
    (:func:`verify_sealed`).
    """
    accept = validator if validator is not None else verify_sealed
    state = WALState(records=[])
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return state
    except OSError as exc:
        raise WALError(f"cannot read WAL {path}: {exc}") from exc
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            state.rejected_lines += 1
            continue
        record = accept(data)
        if record is None:
            state.rejected_lines += 1
            continue
        state.records.append(record)
    return state


#: Per-process serial for tmp-file names: concurrent writer *threads*
#: in one process (the serve worker pool) must never share a tmp path,
#: or their interleaved writes could be renamed into place torn.
_TMP_SERIAL = itertools.count()


def write_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via tmp + fsync + rename."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp-{os.getpid()}-{next(_TMP_SERIAL)}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


__all__ = [
    "RECORD_VERSION",
    "WALState",
    "WriteAheadLog",
    "append_once",
    "canonical_json",
    "checksum",
    "replay",
    "seal",
    "verify_sealed",
    "write_atomic",
]
