"""Engine selection: which runs may take the fast replay path.

The fast engine covers the policies whose per-access transitions
specialize into a flat loop: ``nru``, ``lru``, ``srrip``, ``drrip``
(any RRPV width, set-dueling included), ``belady``, and the paper's
GSPC family — ``gspztc``, ``gspztc+tse``, and ``gspc`` (epoch/TSE
state machine plus PROD/CONS render-target protection).  Everything
else — SHiP, GS-DRRIP, ``gspc+bypass``, and any run that attaches an
:class:`~repro.cache.llc.LLCObserver` (the fast kernels have no event
hooks) — uses the reference engine.

``auto`` (the default everywhere) picks the fast engine exactly when it
is applicable and silently falls back otherwise, so results never
change with the engine knob; ``fast`` is strict and raises when the run
cannot take the fast path.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.base import ReplacementPolicy
from repro.core.belady import BeladyPolicy
from repro.core.drrip import DRRIPPolicy
from repro.core.gspc import GSPCPolicy
from repro.core.gspztc import GSPZTCPolicy
from repro.core.gspztc_tse import GSPZTCTSEPolicy
from repro.core.lru import LRUPolicy
from repro.core.nru import NRUPolicy
from repro.core.registry import (
    PolicyLike,
    available_policies,
    policy_spec,
    resolve_policy,
)
from repro.core.srrip import SRRIPPolicy
from repro.errors import SimulationError

ENGINE_REFERENCE = "reference"
ENGINE_FAST = "fast"
ENGINE_AUTO = "auto"
#: Valid ``--engine`` values.
ENGINES = (ENGINE_REFERENCE, ENGINE_FAST, ENGINE_AUTO)

#: Exact policy classes with a specialized kernel, keyed to the kernel
#: name.  Exact type checks, not ``isinstance``: a subclass (GS-DRRIP
#: derives from DRRIP, SHiP from SRRIP, the bypass extension from GSPC)
#: overrides hooks the kernel has inlined, so it must take the
#: reference path.
_KERNEL_OF_TYPE = {
    NRUPolicy: "nru",
    LRUPolicy: "lru",
    SRRIPPolicy: "srrip",
    DRRIPPolicy: "drrip",
    BeladyPolicy: "belady",
    GSPZTCPolicy: "gspztc",
    GSPZTCTSEPolicy: "gspztc_tse",
    GSPCPolicy: "gspc",
}


def _covered_registry_names() -> Tuple[str, ...]:
    """Registry base names whose *built* policy has a kernel.

    Derived from the registry rather than hand-listed so the strict
    ``--engine fast`` error (and the benchmarks) stay truthful as
    kernel coverage grows.  Exact-type semantics carry over: a name
    that builds a subclass with overridden hooks is not covered.
    """
    names = []
    for name in available_policies():
        if type(policy_spec(name).build()) in _KERNEL_OF_TYPE:
            names.append(name)
    return tuple(sorted(names))


#: Registry base names covered by the fast engine (each also accepts
#: ``+ucd`` and, for DRRIP, any RRPV width — coverage is by class).
FAST_POLICIES = _covered_registry_names()


def kernel_kind(instance: ReplacementPolicy) -> Optional[str]:
    """The kernel name for a bound-ready policy instance, or ``None``."""
    return _KERNEL_OF_TYPE.get(type(instance))


def supports_policy(policy: PolicyLike) -> bool:
    """Whether the fast engine has a kernel for ``policy``."""
    instance, _ = resolve_policy(policy)
    return kernel_kind(instance) is not None


def choose_engine(
    engine: str, policy: PolicyLike, observer: Optional[object] = None
) -> str:
    """Resolve an ``--engine`` request into ``reference`` or ``fast``.

    Raises :class:`~repro.errors.SimulationError` for an unknown engine
    name, and for ``fast`` when the run cannot take the fast path (the
    policy has no kernel, or an observer is attached).
    """
    if engine not in ENGINES:
        known = ", ".join(ENGINES)
        raise SimulationError(f"unknown engine {engine!r}; expected one of: {known}")
    if engine == ENGINE_REFERENCE:
        return ENGINE_REFERENCE
    instance, _ = resolve_policy(policy)
    covered = kernel_kind(instance) is not None
    if engine == ENGINE_FAST:
        if observer is not None:
            raise SimulationError(
                "the fast engine has no observer hooks; drop the observer "
                "or use --engine reference"
            )
        if not covered:
            supported = ", ".join(FAST_POLICIES)
            raise SimulationError(
                f"policy {instance.name!r} is not covered by the fast engine "
                f"(covered: {supported}); use --engine auto or reference"
            )
        return ENGINE_FAST
    if observer is not None or not covered:
        return ENGINE_REFERENCE
    return ENGINE_FAST
