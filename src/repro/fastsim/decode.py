"""Trace pre-decoding for the fast replay kernels.

One vectorized pass turns a :class:`~repro.trace.record.Trace` into the
flat Python lists the kernels iterate: block addresses, set indices,
streams, stream classes, write flags, and (for Belady) next-use
indices.  Statically uncached streams are accounted here — vectorized
``isin``/``bincount`` replaces the reference engine's per-access bypass
branch — and filtered out of the replay arrays entirely, so the kernels
never see them.

Next-use indices are computed on the *full* trace before the uncached
filter, exactly like the reference simulator: a bypassed access still
counts as a future use of its block there (it never does in practice —
uncached streams touch disjoint surfaces — but equivalence is
byte-for-byte, not approximate).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.sim.future import next_use_indices
from repro.streams import STREAM_CLASS_TABLE, Stream
from repro.trace.record import Trace

_NUM_STREAMS = len(Stream)
_CLASS_TABLE = np.array(STREAM_CLASS_TABLE, dtype=np.uint8)


@dataclasses.dataclass
class DecodedTrace:
    """Replay-ready arrays plus the pre-counted bypass statistics."""

    blocks: List[int]
    #: Base slot of each access's set (``set_index * ways``), so the
    #: kernels index per-set state without a per-access multiply.
    bases: List[int]
    streams: List[int]
    sclasses: List[int]
    writes: List[bool]
    #: Next-use index per replayed access (``None`` unless Belady).
    next_uses: Optional[List[int]]
    #: Bank and sample-set flag of each access's set (``None`` unless
    #: the kernel needs them — the GSPC family's counter plumbing).
    banks: Optional[List[int]]
    samples: Optional[List[bool]]
    #: Bypass count per ``int(Stream)`` (uncached streams only).
    bypasses_per_stream: List[int]
    #: DRAM traffic of the bypassed accesses.
    bypass_reads: int
    bypass_writes: int


def decode_trace(
    trace: Trace,
    geometry: CacheGeometry,
    uncached: FrozenSet[Stream] = frozenset(),
    needs_future: bool = False,
    needs_bank: bool = False,
) -> DecodedTrace:
    """Pre-decode ``trace`` for replay under ``geometry``."""
    blocks = trace.block_addresses(geometry.block_bytes)
    streams = trace.streams
    writes = trace.writes
    next_uses = next_use_indices(blocks) if needs_future else None

    bypasses = [0] * _NUM_STREAMS
    bypass_reads = 0
    bypass_writes = 0
    if uncached:
        # Dense table lookup instead of np.isin: one O(n) take against 8
        # slots, which matters now that ingested captures (unbounded,
        # unlike synthetic frames) flow through this path too.
        uncached_table = np.zeros(_NUM_STREAMS, dtype=bool)
        for stream in uncached:
            uncached_table[int(stream)] = True
        mask = uncached_table[streams]
        if mask.any():
            counts = np.bincount(streams[mask], minlength=_NUM_STREAMS)
            bypasses = [int(count) for count in counts]
            bypass_writes = int(writes[mask].sum())
            bypass_reads = int(mask.sum()) - bypass_writes
            keep = ~mask
            blocks = blocks[keep]
            streams = streams[keep]
            writes = writes[keep]
            if next_uses is not None:
                next_uses = next_uses[keep]

    sets = blocks & np.uint64(geometry.num_sets - 1)
    bases = sets * np.uint64(geometry.ways)
    sclasses = _CLASS_TABLE[streams]
    banks = samples = None
    if needs_bank:
        set_indices = sets.astype(np.int64)
        banks = np.asarray(geometry.bank_of_set, dtype=np.int64)[set_indices].tolist()
        samples = np.asarray(geometry.is_sample_set, dtype=bool)[set_indices].tolist()
    return DecodedTrace(
        blocks=blocks.tolist(),
        bases=bases.tolist(),
        streams=streams.tolist(),
        sclasses=sclasses.tolist(),
        writes=writes.tolist(),
        next_uses=next_uses.tolist() if next_uses is not None else None,
        banks=banks,
        samples=samples,
        bypasses_per_stream=bypasses,
        bypass_reads=bypass_reads,
        bypass_writes=bypass_writes,
    )
