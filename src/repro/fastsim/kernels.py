"""Specialized per-policy replay kernels, generated from one template.

The reference engine pays, per access, an ``AccessContext`` refresh,
several method dispatches, and a per-set dict lookup.  Each kernel here
is a single generated function: the engine's hit/fill/evict bookkeeping
inlined into one loop, with the policy's state transitions substituted
at the marked points and all state held in flat Python lists plus one
global ``{block: slot}`` dict (a block address determines its set, so
one dict replaces the per-set lookups).  Generating every kernel from
the same template keeps the engine semantics single-source — a policy
only contributes its ``setup`` / ``on hit`` / ``select victim`` /
``on fill`` snippets, mirroring the hook interface of
:class:`~repro.core.base.ReplacementPolicy` line for line.

Victim-selection snippets must leave the chosen slot in ``slot``;
``base`` is the set's first slot and ``end`` the one past its last.
They lean on C-level list primitives — ``list.index`` with bounds,
``min``/``max`` over a slice, slice assignment — instead of Python
``for`` loops, which is where most of the engine's speedup comes from
on miss-heavy traces.  Stream-class constants are inlined: ``0`` is Z,
``1`` is TEX, ``2`` is RT (:data:`repro.streams.StreamClass`).

The GSPC family (``gspztc``, ``gspztc_tse``, ``gspc``) adds per-bank
saturating counters and a per-line epoch state array on top of the
RRIP substrate; those kernels additionally consume the pre-decoded
``bank`` / ``sample`` columns (see :mod:`repro.fastsim.decode`).
"""

from __future__ import annotations

import string
import textwrap
from typing import Callable, Dict, Tuple

from repro.core.base import NEVER
from repro.core.brrip import BIMODAL_PERIOD
from repro.core.dueling import leader_roles
from repro.core.gspc import LOW_FACTOR, MID_FACTOR
from repro.core.gspc_base import ProbabilisticStreamPolicy
from repro.core.rrip import RRIPPolicy
from repro.errors import SimulationError

_TEMPLATE = string.Template("""\
def replay(blocks, bases, streams, sclasses, writes, next_uses,
           banks, samples, num_sets, ways, params):
    total_slots = num_sets * ways
    lookup = {}
    lookup_get = lookup.get
    # Per-set state is indexed by the set's base slot (set * ways, as
    # pre-decoded into ``bases``) so the loop never multiplies.
    filled = [0] * total_slots
    tags = [0] * total_slots
    dirty = [False] * total_slots
    rt = [False] * total_slots
${setup}
    hits_s = [0] * 8
    misses_s = [0] * 8
    evictions = 0
    writebacks = 0
    fills = 0
    tex_inter = 0
    tex_intra = 0
    rt_prod = 0
    rt_cons = 0
    dram_reads = 0
    dram_writes = 0
    for ${loop_vars} in zip(${loop_srcs}):
        slot = lookup_get(block)
        if slot is not None:
            hits_s[stream] += 1
${hit_body}
            continue
        misses_s[stream] += 1
        dram_reads += 1
        count = filled[base]
        if count < ways:
            slot = base + count
            filled[base] = count + 1
        else:
            end = base + ways
${select_victim}
            evictions += 1
            if dirty[slot]:
                writebacks += 1
                dram_writes += 1
            del lookup[tags[slot]]
        fills += 1
        lookup[block] = slot
        tags[slot] = block
        dirty[slot] = write
        if sclass == 2:
            rt[slot] = True
            rt_prod += 1
        else:
            rt[slot] = False
${on_fill}
    return {
        "hits": hits_s,
        "misses": misses_s,
        "evictions": evictions,
        "writebacks": writebacks,
        "fills": fills,
        "tex_inter_hits": tex_inter,
        "tex_intra_hits": tex_intra,
        "rt_produced": rt_prod,
        "rt_consumed": rt_cons,
        "dram_reads": dram_reads,
        "dram_writes": dram_writes,
        "fill_counts": ${fill_counts},
    }
""")

# Default hit body: the engine's inter-stream (RT-bit) bookkeeping
# followed by the policy's ``on hit`` snippet.  A spec may instead
# provide a full ``hit_body`` that fuses both into one stream-class
# dispatch — the GSPC kernels do, so the hot hit path pays a single
# branch tree instead of two sequential ones.
_DEFAULT_HIT_BODY = string.Template("""\
if sclass == 1:
    if rt[slot]:
        tex_inter += 1
        rt_cons += 1
        rt[slot] = False
    else:
        tex_intra += 1
elif sclass == 2 and not rt[slot]:
    rt[slot] = True
    rt_prod += 1
if write:
    dirty[slot] = True
${on_hit}
""")

# RRPVs are stored *relative* to a per-set aging offset: the effective
# RRPV of a block is ``rrpv[slot] + age[base]``.  The reference engine's
# aging step adds (max - oldest) to every block in the set, which the
# offset absorbs in O(1) — orderings inside a set are unchanged because
# the offset is common to all its blocks.
_RRIP_SETUP = """\
max_rrpv = params["max_rrpv"]
long_rrpv = max_rrpv - 1
rrpv = [max_rrpv] * total_slots
age = [0] * total_slots
fill_counts = [[0] * (max_rrpv + 1) for _ in range(4)]
"""

# First way at the maximal effective RRPV wins.  After the reference
# engine's aging the set maximum is exactly ``max_rrpv``, so the new
# offset is always ``max_rrpv - oldest_stored`` (a no-op when the set
# already held a saturated block).
_RRIP_VICTIM = """\
seg = rrpv[base:end]
oldest = max(seg)
slot = base + seg.index(oldest)
age[base] = max_rrpv - oldest
"""

_LRU_TOUCH = """\
clock = clocks[base] + 1
clocks[base] = clock
stamps[slot] = clock
"""

# DRRIP fill: leader misses move PSEL first, then the set's role (or
# the duel winner, for followers) picks SRRIP or BRRIP insertion.
# Roles: 1 = SRRIP leader, 2 = BRRIP leader, 0 = follower.
_DRRIP_FILL = """\
role = roles_by_base[base]
if role == 1:
    if psel < psel_max:
        psel += 1
    value = long_rrpv
elif role == 2:
    if psel > 0:
        psel -= 1
    fill_tick += 1
    if fill_tick >= bimodal_period:
        fill_tick = 0
        value = long_rrpv
    else:
        value = max_rrpv
elif psel > psel_mid:
    fill_tick += 1
    if fill_tick >= bimodal_period:
        fill_tick = 0
        value = long_rrpv
    else:
        value = max_rrpv
else:
    value = long_rrpv
rrpv[slot] = value - age[base]
fill_counts[sclass][value] += 1
"""

# -- GSPC family -------------------------------------------------------------
#
# The epoch/TSE state machine of the GSPC family (gspztc, gspztc+tse,
# gspc) compiles to the same flat shape as the baselines: one per-line
# ``pstate`` array holding the Figure-10 block state (0 = E0, 1 = E1,
# 2 = E>=2, 3 = RT), the relative-RRPV array of the RRIP substrate, and
# one flat saturating-counter list per (counter, bank).  Probabilistic
# insertion is a threshold compare against the live sampled counters —
# ``FILL > t * HIT`` — exactly the reference's ``_low_reuse``, so the
# replay stays deterministic and byte-identical.  Sample-set accesses
# additionally drive the per-bank ACC tick that halves every counter on
# saturation.  These kernels consume two extra per-access inputs,
# ``bank`` and ``sample``, pre-decoded from the set index.


def _inc(counter: str) -> str:
    """Saturating increment of one per-bank counter (``_inc``)."""
    return (
        f"if {counter}[bank] < counter_max:\n"
        f"    {counter}[bank] += 1"
    )


def _tick(counters: Tuple[str, ...]) -> str:
    """One sample-set ACC tick: halve every counter on saturation."""
    halves = "\n".join(f"    {name}[bank] >>= 1" for name in counters)
    return (
        "if acc[bank] >= acc_max:\n"
        f"{halves}\n"
        "    acc[bank] = 0\n"
        "else:\n"
        "    acc[bank] += 1"
    )


def _gspc_setup(counters: Tuple[str, ...]) -> str:
    lines = [
        _RRIP_SETUP.rstrip(),
        't = params["t"]',
        'counter_max = params["counter_max"]',
        'acc_max = params["acc_max"]',
        'acc = [0] * params["banks"]',
        "pstate = [0] * total_slots",
    ]
    lines.extend(f'{name} = [0] * params["banks"]' for name in counters)
    return "\n".join(lines)


_GSPZTC_COUNTERS = ("fill_z", "hit_z", "fill_tex", "hit_tex")

# Fused hit bodies: the engine's TEX/RT inter-stream bookkeeping and
# the policy's transitions dispatch on ``sclass`` once.  The class
# branches are mutually exclusive, so dispatch order is free to favor
# the cheap bookkeeping-free OTHER class; *within* each class the
# order matches the reference hooks exactly (tick before counter
# increments, counter reads before state updates).
_GSPZTC_HIT_BODY = f"""\
if sclass == 3:
    if write:
        dirty[slot] = True
    if sample:
{textwrap.indent(_tick(_GSPZTC_COUNTERS), "        ")}
    rrpv[slot] = -age[base]
elif sclass == 1:
    if rt[slot]:
        tex_inter += 1
        rt_cons += 1
        rt[slot] = False
    else:
        tex_intra += 1
    if write:
        dirty[slot] = True
    if sample:
{textwrap.indent(_tick(_GSPZTC_COUNTERS), "        ")}
        if pstate[slot] == 3:
{textwrap.indent(_inc("fill_tex"), "            ")}
        else:
{textwrap.indent(_inc("hit_tex"), "            ")}
    if pstate[slot] == 3:
        pstate[slot] = 0
    rrpv[slot] = -age[base]
elif sclass == 2:
    if not rt[slot]:
        rt[slot] = True
        rt_prod += 1
    if write:
        dirty[slot] = True
    if sample:
{textwrap.indent(_tick(_GSPZTC_COUNTERS), "        ")}
    pstate[slot] = 3
    rrpv[slot] = -age[base]
else:
    if write:
        dirty[slot] = True
    if sample:
{textwrap.indent(_tick(_GSPZTC_COUNTERS), "        ")}
{textwrap.indent(_inc("hit_z"), "        ")}
    rrpv[slot] = -age[base]
"""

_GSPZTC_ON_FILL = f"""\
pstate[slot] = 3 if sclass == 2 else 0
if sample:
{textwrap.indent(_tick(_GSPZTC_COUNTERS), "    ")}
    if sclass == 0:
{textwrap.indent(_inc("fill_z"), "        ")}
    elif sclass == 1:
{textwrap.indent(_inc("fill_tex"), "        ")}
    value = long_rrpv
elif sclass == 0:
    value = max_rrpv if fill_z[bank] > t * hit_z[bank] else long_rrpv
elif sclass == 1:
    value = max_rrpv if fill_tex[bank] > t * hit_tex[bank] else 0
elif sclass == 2:
    value = 0
else:
    value = long_rrpv
rrpv[slot] = value - age[base]
fill_counts[sclass][value] += 1
"""

_TSE_COUNTERS = ("fill_z", "hit_z", "fill_e0", "hit_e0", "fill_e1", "hit_e1")
_GSPC_COUNTERS = _TSE_COUNTERS + ("prod", "cons")


def _tse_hit_body(counters: Tuple[str, ...], rt_consumed: str = "") -> str:
    """Shared GSPZTC+TSE fused hit body; ``rt_consumed`` is GSPC's
    extra CONS count on an RT -> TEX consumption in a sample set."""
    consumed = (
        textwrap.indent(_inc(rt_consumed), "            ") + "\n"
        if rt_consumed
        else ""
    )
    return f"""\
if sclass == 3:
    if write:
        dirty[slot] = True
    if sample:
{textwrap.indent(_tick(counters), "        ")}
    rrpv[slot] = -age[base]
elif sclass == 1:
    if rt[slot]:
        tex_inter += 1
        rt_cons += 1
        rt[slot] = False
    else:
        tex_intra += 1
    if write:
        dirty[slot] = True
    current = pstate[slot]
    if sample:
{textwrap.indent(_tick(counters), "        ")}
        if current == 3:
{textwrap.indent(_inc("fill_e0"), "            ")}
{consumed}\
            pstate[slot] = 0
        elif current == 0:
{textwrap.indent(_inc("hit_e0"), "            ")}
{textwrap.indent(_inc("fill_e1"), "            ")}
            pstate[slot] = 1
        elif current == 1:
{textwrap.indent(_inc("hit_e1"), "            ")}
            pstate[slot] = 2
        else:
            pstate[slot] = 2
        rrpv[slot] = -age[base]
    elif current == 3:
        rrpv[slot] = (
            max_rrpv if fill_e0[bank] > t * hit_e0[bank] else 0
        ) - age[base]
        pstate[slot] = 0
    elif current == 0:
        rrpv[slot] = (
            max_rrpv if fill_e1[bank] > t * hit_e1[bank] else 0
        ) - age[base]
        pstate[slot] = 1
    else:
        rrpv[slot] = -age[base]
        pstate[slot] = 2
elif sclass == 2:
    if not rt[slot]:
        rt[slot] = True
        rt_prod += 1
    if write:
        dirty[slot] = True
    if sample:
{textwrap.indent(_tick(counters), "        ")}
    pstate[slot] = 3
    rrpv[slot] = -age[base]
else:
    if write:
        dirty[slot] = True
    if sample:
{textwrap.indent(_tick(counters), "        ")}
{textwrap.indent(_inc("hit_z"), "        ")}
    rrpv[slot] = -age[base]
"""


def _tse_on_fill(
    counters: Tuple[str, ...], rt_value: str, rt_produced: str = ""
) -> str:
    """Shared GSPZTC+TSE fill insertion; ``rt_value`` is the RT-fill
    RRPV snippet (static 0, or GSPC's PROD/CONS thresholds) and
    ``rt_produced`` is GSPC's PROD count on a sample-set RT fill."""
    produced = (
        "    elif sclass == 2:\n"
        + textwrap.indent(_inc(rt_produced), "        ")
        + "\n"
        if rt_produced
        else ""
    )
    return f"""\
pstate[slot] = 3 if sclass == 2 else 0
if sample:
{textwrap.indent(_tick(counters), "    ")}
    if sclass == 0:
{textwrap.indent(_inc("fill_z"), "        ")}
    elif sclass == 1:
{textwrap.indent(_inc("fill_e0"), "        ")}
{produced}\
    value = long_rrpv
elif sclass == 0:
    value = max_rrpv if fill_z[bank] > t * hit_z[bank] else long_rrpv
elif sclass == 1:
    value = max_rrpv if fill_e0[bank] > t * hit_e0[bank] else 0
elif sclass == 2:
{textwrap.indent(rt_value, "    ")}
else:
    value = long_rrpv
rrpv[slot] = value - age[base]
fill_counts[sclass][value] += 1
"""


# Table 5's dynamic render-target protection: the sampled CONS/PROD
# ratio picks distant (< 1/16), long (< 1/8), or maximal protection.
_GSPC_RT_VALUE = f"""\
prod_b = prod[bank]
cons_b = cons[bank]
if prod_b > {LOW_FACTOR} * cons_b:
    value = max_rrpv
elif prod_b > {MID_FACTOR} * cons_b:
    value = long_rrpv
else:
    value = 0
"""

_SPECS: Dict[str, Dict[str, object]] = {
    "nru": {
        "setup": (
            "referenced = [False] * total_slots\n"
            "clear_ways = [False] * ways"
        ),
        "on_hit": "referenced[slot] = True",
        "select_victim": """\
try:
    slot = referenced.index(False, base, end)
except ValueError:
    referenced[base:end] = clear_ways
    slot = base
""",
        "on_fill": "referenced[slot] = True",
    },
    "lru": {
        "setup": "stamps = [0] * total_slots\nclocks = [0] * total_slots",
        "on_hit": _LRU_TOUCH,
        "select_victim": """\
seg = stamps[base:end]
slot = base + seg.index(min(seg))
""",
        "on_fill": _LRU_TOUCH,
    },
    "srrip": {
        "setup": _RRIP_SETUP,
        "on_hit": "rrpv[slot] = -age[base]",
        "select_victim": _RRIP_VICTIM,
        "on_fill": (
            "rrpv[slot] = long_rrpv - age[base]\n"
            "fill_counts[sclass][long_rrpv] += 1"
        ),
        "fill_counts": True,
    },
    "drrip": {
        "setup": _RRIP_SETUP
        + """\
roles = params["roles"]
roles_by_base = [0] * total_slots
for set_i in range(num_sets):
    roles_by_base[set_i * ways] = roles[set_i]
psel = params["psel_midpoint"]
psel_mid = params["psel_midpoint"]
psel_max = params["psel_max"]
bimodal_period = params["bimodal_period"]
fill_tick = 0
""",
        "on_hit": "rrpv[slot] = -age[base]",
        "select_victim": _RRIP_VICTIM,
        "on_fill": _DRRIP_FILL,
        "fill_counts": True,
    },
    "belady": {
        "setup": 'next_slot = [params["never"]] * total_slots',
        "on_hit": "next_slot[slot] = next_use",
        "select_victim": """\
seg = next_slot[base:end]
slot = base + seg.index(max(seg))
""",
        "on_fill": "next_slot[slot] = next_use",
        "needs_future": True,
    },
    "gspztc": {
        "setup": _gspc_setup(_GSPZTC_COUNTERS),
        "hit_body": _GSPZTC_HIT_BODY,
        "select_victim": _RRIP_VICTIM,
        "on_fill": _GSPZTC_ON_FILL,
        "fill_counts": True,
        "needs_bank": True,
    },
    "gspztc_tse": {
        "setup": _gspc_setup(_TSE_COUNTERS),
        "hit_body": _tse_hit_body(_TSE_COUNTERS),
        "select_victim": _RRIP_VICTIM,
        "on_fill": _tse_on_fill(_TSE_COUNTERS, "value = 0"),
        "fill_counts": True,
        "needs_bank": True,
    },
    "gspc": {
        "setup": _gspc_setup(_GSPC_COUNTERS),
        "hit_body": _tse_hit_body(_GSPC_COUNTERS, rt_consumed="cons"),
        "select_victim": _RRIP_VICTIM,
        "on_fill": _tse_on_fill(
            _GSPC_COUNTERS, _GSPC_RT_VALUE, rt_produced="prod"
        ),
        "fill_counts": True,
        "needs_bank": True,
    },
}

_COMPILED: Dict[str, Callable] = {}


def kernel_source(kind: str) -> str:
    """The generated source of one kernel (also kept on the function)."""
    if kind not in _SPECS:
        known = ", ".join(sorted(_SPECS))
        raise SimulationError(f"no fast kernel {kind!r}; known kernels: {known}")
    spec = _SPECS[kind]
    loop_vars = "block, base, stream, sclass, write"
    loop_srcs = "blocks, bases, streams, sclasses, writes"
    if spec.get("needs_future"):
        loop_vars += ", next_use"
        loop_srcs += ", next_uses"
    if spec.get("needs_bank"):
        loop_vars += ", bank, sample"
        loop_srcs += ", banks, samples"
    hit_body = spec.get("hit_body")
    if hit_body is None:
        hit_body = _DEFAULT_HIT_BODY.substitute(on_hit=str(spec["on_hit"]).rstrip())
    return _TEMPLATE.substitute(
        setup=textwrap.indent(str(spec["setup"]).rstrip(), " " * 4),
        hit_body=textwrap.indent(str(hit_body).rstrip(), " " * 12),
        select_victim=textwrap.indent(
            str(spec["select_victim"]).rstrip(), " " * 12
        ),
        on_fill=textwrap.indent(str(spec["on_fill"]).rstrip(), " " * 8),
        loop_vars=loop_vars,
        loop_srcs=loop_srcs,
        fill_counts="fill_counts" if spec.get("fill_counts") else "None",
    )


def kernel_for(kind: str) -> Callable:
    """Compile (once) and return the replay kernel named ``kind``."""
    kernel = _COMPILED.get(kind)
    if kernel is None:
        source = kernel_source(kind)
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<fastsim-kernel:{kind}>", "exec"), namespace)
        kernel = namespace["replay"]
        kernel.__name__ = f"replay_{kind}"
        kernel.__source__ = source
        _COMPILED[kind] = kernel
    return kernel


def kernel_params(instance, geometry) -> Dict[str, object]:
    """Per-run parameters a kernel reads from its policy instance."""
    if isinstance(instance, ProbabilisticStreamPolicy):
        return {
            "max_rrpv": instance.max_rrpv,
            "t": instance.t,
            "counter_max": instance.counter_max,
            "acc_max": instance.acc_max,
            "banks": geometry.banks,
        }
    if isinstance(instance, RRIPPolicy):
        params: Dict[str, object] = {"max_rrpv": instance.max_rrpv}
        if hasattr(instance, "psel_bits"):  # DRRIP set-dueling state
            params.update(
                roles=leader_roles(
                    geometry.num_sets, target_leaders=instance.target_leaders
                ),
                psel_max=(1 << instance.psel_bits) - 1,
                psel_midpoint=1 << (instance.psel_bits - 1),
                bimodal_period=BIMODAL_PERIOD,
            )
        return params
    if getattr(instance, "needs_future", False):
        return {"never": NEVER}
    return {}
