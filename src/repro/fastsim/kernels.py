"""Specialized per-policy replay kernels, generated from one template.

The reference engine pays, per access, an ``AccessContext`` refresh,
several method dispatches, and a per-set dict lookup.  Each kernel here
is a single generated function: the engine's hit/fill/evict bookkeeping
inlined into one loop, with the policy's state transitions substituted
at the marked points and all state held in flat Python lists plus one
global ``{block: slot}`` dict (a block address determines its set, so
one dict replaces the per-set lookups).  Generating every kernel from
the same template keeps the engine semantics single-source — a policy
only contributes its ``setup`` / ``on hit`` / ``select victim`` /
``on fill`` snippets, mirroring the hook interface of
:class:`~repro.core.base.ReplacementPolicy` line for line.

Victim-selection snippets must leave the chosen slot in ``slot``;
``base`` is the set's first slot and ``end`` the one past its last.
They lean on C-level list primitives — ``list.index`` with bounds,
``min``/``max`` over a slice, slice assignment — instead of Python
``for`` loops, which is where most of the engine's speedup comes from
on miss-heavy traces.  Stream-class constants are inlined: ``1`` is
TEX, ``2`` is RT (:data:`repro.streams.StreamClass`).
"""

from __future__ import annotations

import string
import textwrap
from typing import Callable, Dict

from repro.core.base import NEVER
from repro.core.brrip import BIMODAL_PERIOD
from repro.core.dueling import leader_roles
from repro.core.rrip import RRIPPolicy
from repro.errors import SimulationError

_TEMPLATE = string.Template("""\
def replay(blocks, bases, streams, sclasses, writes, next_uses,
           num_sets, ways, params):
    total_slots = num_sets * ways
    lookup = {}
    lookup_get = lookup.get
    # Per-set state is indexed by the set's base slot (set * ways, as
    # pre-decoded into ``bases``) so the loop never multiplies.
    filled = [0] * total_slots
    tags = [0] * total_slots
    dirty = [False] * total_slots
    rt = [False] * total_slots
${setup}
    hits_s = [0] * 8
    misses_s = [0] * 8
    evictions = 0
    writebacks = 0
    fills = 0
    tex_inter = 0
    tex_intra = 0
    rt_prod = 0
    rt_cons = 0
    dram_reads = 0
    dram_writes = 0
    for ${loop_vars} in zip(${loop_srcs}):
        slot = lookup_get(block)
        if slot is not None:
            hits_s[stream] += 1
            if sclass == 1:
                if rt[slot]:
                    tex_inter += 1
                    rt_cons += 1
                    rt[slot] = False
                else:
                    tex_intra += 1
            elif sclass == 2 and not rt[slot]:
                rt[slot] = True
                rt_prod += 1
            if write:
                dirty[slot] = True
${on_hit}
            continue
        misses_s[stream] += 1
        dram_reads += 1
        count = filled[base]
        if count < ways:
            slot = base + count
            filled[base] = count + 1
        else:
            end = base + ways
${select_victim}
            evictions += 1
            if dirty[slot]:
                writebacks += 1
                dram_writes += 1
            del lookup[tags[slot]]
        fills += 1
        lookup[block] = slot
        tags[slot] = block
        dirty[slot] = write
        if sclass == 2:
            rt[slot] = True
            rt_prod += 1
        else:
            rt[slot] = False
${on_fill}
    return {
        "hits": hits_s,
        "misses": misses_s,
        "evictions": evictions,
        "writebacks": writebacks,
        "fills": fills,
        "tex_inter_hits": tex_inter,
        "tex_intra_hits": tex_intra,
        "rt_produced": rt_prod,
        "rt_consumed": rt_cons,
        "dram_reads": dram_reads,
        "dram_writes": dram_writes,
        "fill_counts": ${fill_counts},
    }
""")

# RRPVs are stored *relative* to a per-set aging offset: the effective
# RRPV of a block is ``rrpv[slot] + age[base]``.  The reference engine's
# aging step adds (max - oldest) to every block in the set, which the
# offset absorbs in O(1) — orderings inside a set are unchanged because
# the offset is common to all its blocks.
_RRIP_SETUP = """\
max_rrpv = params["max_rrpv"]
long_rrpv = max_rrpv - 1
rrpv = [max_rrpv] * total_slots
age = [0] * total_slots
fill_counts = [[0] * (max_rrpv + 1) for _ in range(4)]
"""

# First way at the maximal effective RRPV wins.  After the reference
# engine's aging the set maximum is exactly ``max_rrpv``, so the new
# offset is always ``max_rrpv - oldest_stored`` (a no-op when the set
# already held a saturated block).
_RRIP_VICTIM = """\
seg = rrpv[base:end]
oldest = max(seg)
slot = base + seg.index(oldest)
age[base] = max_rrpv - oldest
"""

_LRU_TOUCH = """\
clock = clocks[base] + 1
clocks[base] = clock
stamps[slot] = clock
"""

# DRRIP fill: leader misses move PSEL first, then the set's role (or
# the duel winner, for followers) picks SRRIP or BRRIP insertion.
# Roles: 1 = SRRIP leader, 2 = BRRIP leader, 0 = follower.
_DRRIP_FILL = """\
role = roles_by_base[base]
if role == 1:
    if psel < psel_max:
        psel += 1
    value = long_rrpv
elif role == 2:
    if psel > 0:
        psel -= 1
    fill_tick += 1
    if fill_tick >= bimodal_period:
        fill_tick = 0
        value = long_rrpv
    else:
        value = max_rrpv
elif psel > psel_mid:
    fill_tick += 1
    if fill_tick >= bimodal_period:
        fill_tick = 0
        value = long_rrpv
    else:
        value = max_rrpv
else:
    value = long_rrpv
rrpv[slot] = value - age[base]
fill_counts[sclass][value] += 1
"""

_SPECS: Dict[str, Dict[str, object]] = {
    "nru": {
        "setup": (
            "referenced = [False] * total_slots\n"
            "clear_ways = [False] * ways"
        ),
        "on_hit": "referenced[slot] = True",
        "select_victim": """\
try:
    slot = referenced.index(False, base, end)
except ValueError:
    referenced[base:end] = clear_ways
    slot = base
""",
        "on_fill": "referenced[slot] = True",
    },
    "lru": {
        "setup": "stamps = [0] * total_slots\nclocks = [0] * total_slots",
        "on_hit": _LRU_TOUCH,
        "select_victim": """\
seg = stamps[base:end]
slot = base + seg.index(min(seg))
""",
        "on_fill": _LRU_TOUCH,
    },
    "srrip": {
        "setup": _RRIP_SETUP,
        "on_hit": "rrpv[slot] = -age[base]",
        "select_victim": _RRIP_VICTIM,
        "on_fill": (
            "rrpv[slot] = long_rrpv - age[base]\n"
            "fill_counts[sclass][long_rrpv] += 1"
        ),
        "fill_counts": True,
    },
    "drrip": {
        "setup": _RRIP_SETUP
        + """\
roles = params["roles"]
roles_by_base = [0] * total_slots
for set_i in range(num_sets):
    roles_by_base[set_i * ways] = roles[set_i]
psel = params["psel_midpoint"]
psel_mid = params["psel_midpoint"]
psel_max = params["psel_max"]
bimodal_period = params["bimodal_period"]
fill_tick = 0
""",
        "on_hit": "rrpv[slot] = -age[base]",
        "select_victim": _RRIP_VICTIM,
        "on_fill": _DRRIP_FILL,
        "fill_counts": True,
    },
    "belady": {
        "setup": 'next_slot = [params["never"]] * total_slots',
        "on_hit": "next_slot[slot] = next_use",
        "select_victim": """\
seg = next_slot[base:end]
slot = base + seg.index(max(seg))
""",
        "on_fill": "next_slot[slot] = next_use",
        "needs_future": True,
    },
}

_COMPILED: Dict[str, Callable] = {}


def kernel_source(kind: str) -> str:
    """The generated source of one kernel (also kept on the function)."""
    if kind not in _SPECS:
        known = ", ".join(sorted(_SPECS))
        raise SimulationError(f"no fast kernel {kind!r}; known kernels: {known}")
    spec = _SPECS[kind]
    loop_vars = "block, base, stream, sclass, write"
    loop_srcs = "blocks, bases, streams, sclasses, writes"
    if spec.get("needs_future"):
        loop_vars += ", next_use"
        loop_srcs += ", next_uses"
    return _TEMPLATE.substitute(
        setup=textwrap.indent(str(spec["setup"]).rstrip(), " " * 4),
        on_hit=textwrap.indent(str(spec["on_hit"]).rstrip(), " " * 12),
        select_victim=textwrap.indent(
            str(spec["select_victim"]).rstrip(), " " * 12
        ),
        on_fill=textwrap.indent(str(spec["on_fill"]).rstrip(), " " * 8),
        loop_vars=loop_vars,
        loop_srcs=loop_srcs,
        fill_counts="fill_counts" if spec.get("fill_counts") else "None",
    )


def kernel_for(kind: str) -> Callable:
    """Compile (once) and return the replay kernel named ``kind``."""
    kernel = _COMPILED.get(kind)
    if kernel is None:
        source = kernel_source(kind)
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<fastsim-kernel:{kind}>", "exec"), namespace)
        kernel = namespace["replay"]
        kernel.__name__ = f"replay_{kind}"
        kernel.__source__ = source
        _COMPILED[kind] = kernel
    return kernel


def kernel_params(instance, num_sets: int) -> Dict[str, object]:
    """Per-run parameters a kernel reads from its policy instance."""
    if isinstance(instance, RRIPPolicy):
        params: Dict[str, object] = {"max_rrpv": instance.max_rrpv}
        if hasattr(instance, "psel_bits"):  # DRRIP set-dueling state
            params.update(
                roles=leader_roles(
                    num_sets, target_leaders=instance.target_leaders
                ),
                psel_max=(1 << instance.psel_bits) - 1,
                psel_midpoint=1 << (instance.psel_bits - 1),
                bimodal_period=BIMODAL_PERIOD,
            )
        return params
    if getattr(instance, "needs_future", False):
        return {"never": NEVER}
    return {}
