"""The fast engine's ``simulate_trace`` equivalent.

``fast_simulate_trace`` mirrors :func:`repro.sim.offline.simulate_trace`
observable-for-observable: the same ``setup``/``replay`` span names,
the same ``SimResult`` fields, the same stats, and the same
``fill_distant_fraction`` extras for RRIP-family policies.  It refuses
(rather than silently degrading) to run a policy without a kernel —
engine *selection* lives in :mod:`repro.fastsim.dispatch`.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import LLCStats
from repro.config import LLCConfig
from repro.core.gspc_base import ProbabilisticStreamPolicy
from repro.core.registry import PolicyLike, resolve_policy
from repro.core.rrip import RRIPPolicy
from repro.errors import SimulationError
from repro.fastsim.decode import decode_trace
from repro.fastsim.dispatch import kernel_kind
from repro.fastsim.kernels import kernel_for, kernel_params
from repro.obs.spans import SpanRecorder
from repro.sim.results import SimResult
from repro.streams import ALL_STREAMS, Stream, StreamClass
from repro.trace.record import Trace


def fast_simulate_trace(
    trace: Trace,
    policy: PolicyLike,
    llc_config: Optional[LLCConfig] = None,
    uncached_streams: Optional[Iterable[Stream]] = None,
    spans: Optional[SpanRecorder] = None,
) -> SimResult:
    """Replay ``trace`` under ``policy`` through the fast engine."""
    if spans is None:
        spans = SpanRecorder()
    instance, uncached = resolve_policy(policy, uncached_streams)
    kind = kernel_kind(instance)
    if kind is None:
        raise SimulationError(
            f"policy {instance.name!r} has no fast kernel; "
            "route it through the reference engine"
        )
    geometry = CacheGeometry.from_config(llc_config or LLCConfig())
    kernel = kernel_for(kind)
    params = kernel_params(instance, geometry)

    setup_started = time.perf_counter()
    with spans.span("setup"):
        decoded = decode_trace(
            trace,
            geometry,
            uncached,
            needs_future=instance.needs_future,
            needs_bank=isinstance(instance, ProbabilisticStreamPolicy),
        )
    setup_seconds = time.perf_counter() - setup_started

    replay_started = time.perf_counter()
    with spans.span("replay"):
        counters = kernel(
            decoded.blocks,
            decoded.bases,
            decoded.streams,
            decoded.sclasses,
            decoded.writes,
            decoded.next_uses,
            decoded.banks,
            decoded.samples,
            geometry.num_sets,
            geometry.ways,
            params,
        )
    replay_seconds = time.perf_counter() - replay_started

    result = SimResult(
        policy=instance.name,
        stats=_assemble_stats(counters, decoded),
        accesses=len(trace),
        elapsed_seconds=setup_seconds + replay_seconds,
        setup_seconds=setup_seconds,
        replay_seconds=replay_seconds,
        trace_meta=dict(trace.meta),
    )
    if isinstance(instance, RRIPPolicy):
        result.extras["fill_distant_fraction"] = _fill_distant_fractions(
            counters["fill_counts"], instance.distant_rrpv
        )
    return result


def _assemble_stats(counters: dict, decoded) -> LLCStats:
    stats = LLCStats()
    hits = counters["hits"]
    misses = counters["misses"]
    for stream in ALL_STREAMS:
        per_stream = stats.per_stream[stream]
        index = int(stream)
        per_stream.hits = hits[index]
        per_stream.misses = misses[index]
        per_stream.bypasses = decoded.bypasses_per_stream[index]
    stats.evictions = counters["evictions"]
    stats.writebacks = counters["writebacks"]
    stats.fills = counters["fills"]
    stats.tex_inter_hits = counters["tex_inter_hits"]
    stats.tex_intra_hits = counters["tex_intra_hits"]
    stats.rt_produced = counters["rt_produced"]
    stats.rt_consumed = counters["rt_consumed"]
    stats.dram_reads = counters["dram_reads"] + decoded.bypass_reads
    stats.dram_writes = counters["dram_writes"] + decoded.bypass_writes
    return stats


def _fill_distant_fractions(fill_counts, distant_rrpv: int) -> dict:
    fractions = {}
    for sclass in StreamClass:
        counts = fill_counts[int(sclass)]
        total = sum(counts)
        fractions[sclass.name] = counts[distant_rrpv] / total if total else 0.0
    return fractions
