"""Array-backed fast LLC replay engine.

The reference engine (:mod:`repro.cache.llc`) dispatches every access
through policy hook methods and a mutable :class:`AccessContext`; this
package instead pre-decodes the trace once (:mod:`repro.fastsim.decode`)
and replays it through one *specialized* per-policy loop
(:mod:`repro.fastsim.kernels`) over flat state arrays — the classic
array-backed simulator structure of the SHiP/DRRIP artifact lineage.
Statistics are byte-identical to the reference engine by construction;
CI enforces it (the ``engine-equivalence`` job) and
``tests/test_fastsim.py`` property-checks it on random traces.

Use :func:`repro.fastsim.dispatch.choose_engine` to pick an engine and
:func:`repro.fastsim.engine.fast_simulate_trace` to run one; most
callers go through :func:`repro.sim.offline.simulate_trace` with
``engine="auto"`` and never touch this package directly.
"""

from repro.fastsim.dispatch import (
    ENGINE_AUTO,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENGINES,
    FAST_POLICIES,
    choose_engine,
    supports_policy,
)
from repro.fastsim.engine import fast_simulate_trace

__all__ = [
    "ENGINE_AUTO",
    "ENGINE_FAST",
    "ENGINE_REFERENCE",
    "ENGINES",
    "FAST_POLICIES",
    "choose_engine",
    "fast_simulate_trace",
    "supports_policy",
]
