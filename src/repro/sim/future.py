"""Next-use precomputation for Belady's optimal policy.

For each access ``i`` we need the index of the next access to the same
block, or "never".  A lexicographic sort by (block, index) places every
block's accesses consecutively in time order, so each access's successor
is simply the next entry when the block matches — fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import NEVER
from repro.trace.record import Trace


def next_use_indices(blocks: np.ndarray) -> np.ndarray:
    """Next-use index for every position of a block-address array.

    Returns an ``int64`` array where entry ``i`` is the smallest ``j > i``
    with ``blocks[j] == blocks[i]``, or :data:`repro.core.base.NEVER`.
    """
    n = len(blocks)
    result = np.full(n, NEVER, dtype=np.int64)
    if n < 2:
        return result
    order = np.lexsort((np.arange(n), blocks))
    sorted_blocks = blocks[order]
    same_block = sorted_blocks[:-1] == sorted_blocks[1:]
    result[order[:-1][same_block]] = order[1:][same_block]
    return result


def trace_next_use(trace: Trace, block_bytes: int = 64) -> np.ndarray:
    """Next-use indices for a trace at a given block granularity."""
    return next_use_indices(trace.block_addresses(block_bytes))
